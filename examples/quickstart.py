#!/usr/bin/env python
"""Quickstart: uncertain categorical data in five minutes.

Recreates Table 1(a) of the paper — a vehicle-complaints relation whose
``Problem`` attribute is uncertain (a text classifier produced several
plausible problem categories per complaint) — then answers the paper's
motivating query: *which vehicles are highly likely to have a brake
problem?*  Both index structures return exactly the same answer as the
naive scan; the difference is how many disk pages they touch.

Run:  python examples/quickstart.py
"""

from repro import (
    CategoricalDomain,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    UncertainAttribute,
    UncertainRelation,
)
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree


def main() -> None:
    # -- 1. A domain and a relation with one uncertain attribute ---------
    problems = CategoricalDomain(
        ["Brake", "Tires", "Trans", "Suspension", "Exhaust"]
    )
    complaints = UncertainRelation(problems, name="complaints")

    table_1a = [
        ("Explorer", {"Brake": 0.5, "Tires": 0.5}),
        ("Camry", {"Trans": 0.2, "Suspension": 0.8}),
        ("Civic", {"Exhaust": 0.4, "Brake": 0.6}),
        ("Caravan", {"Trans": 1.0}),
    ]
    for make, problem in table_1a:
        uda = UncertainAttribute.from_labels(problems, problem)
        complaints.append(uda, payload=make)

    print(f"Loaded {len(complaints)} complaints over {len(problems)} categories\n")

    # -- 2. A probabilistic equality threshold query (PETQ) --------------
    brake = UncertainAttribute.from_labels(problems, {"Brake": 1.0})
    query = EqualityThresholdQuery(brake, threshold=0.5)

    print("PETQ: Pr(Problem = Brake) >= 0.5")
    for match in complaints.execute(query):
        make = complaints.payload_of(match.tid)
        print(f"  {make:10s} Pr = {match.score:.2f}")

    # -- 3. Top-k: the two complaints most similar to the Explorer's -----
    explorer = complaints.uda_of(0)
    print("\nTop-2 complaints most likely to share the Explorer's problem:")
    for match in complaints.execute(EqualityTopKQuery(explorer, 2)):
        make = complaints.payload_of(match.tid)
        print(f"  {make:10s} Pr = {match.score:.2f}")

    # -- 4. The same queries through both index structures ---------------
    inverted = ProbabilisticInvertedIndex(len(problems))
    inverted.build(complaints)
    tree = PDRTree(len(problems))
    tree.build(complaints)

    naive = complaints.execute(query).tids()
    via_inverted = inverted.execute(query).tids()
    via_tree = tree.execute(query).tids()
    print("\nAll three executors agree:", naive == via_inverted == via_tree)
    print(f"  inverted index: {inverted!r}")
    print(f"  PDR-tree:       {tree!r}")


if __name__ == "__main__":
    main()
