#!/usr/bin/env python
"""RFID nurse tracking: the paper's introductory scenario.

"Nurses carry RFID tags as they move about a hospital.  Numerous readers
located around the building report the presence of tags in their
vicinity ... the application may not be able to identify with certainty
a single location for the nurse at all times."  (Section 1)

This example simulates noisy RFID sightings, fuses them into a location
*distribution* per nurse per epoch, stores the result as an uncertain
relation, and answers occupancy questions with threshold and top-k
queries through the PDR-tree.

Run:  python examples/nurse_tracking.py
"""

import numpy as np

from repro import (
    CategoricalDomain,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    UncertainAttribute,
    UncertainRelation,
)
from repro.pdrtree import PDRTree

NUM_ROOMS = 20
NUM_NURSES = 60
EPOCHS = 10
READERS_PER_SIGHTING = 3


def simulate_sightings(rng):
    """Fuse noisy reader reports into per-(nurse, epoch) room posteriors.

    Each reader detects tags in its own room with high likelihood, in
    adjacent rooms weakly, and elsewhere almost never.  A sighting fuses
    the triggered readers Bayesianly (uniform prior, independent
    readers): ``P(room | readers) ∝ Π_r L[r, room]`` — the standard
    signal-strength fusion that yields peaked but uncertain posteriors.
    """
    likelihood = np.full((NUM_ROOMS, NUM_ROOMS), 0.02)
    for reader in range(NUM_ROOMS):
        likelihood[reader, reader] = 0.8
        likelihood[reader, (reader - 1) % NUM_ROOMS] = 0.09
        likelihood[reader, (reader + 1) % NUM_ROOMS] = 0.09

    rooms = CategoricalDomain([f"Room{i}" for i in range(NUM_ROOMS)])
    track = UncertainRelation(rooms, name="rfid-track")
    truth = {}
    for epoch in range(EPOCHS):
        for nurse in range(NUM_NURSES):
            actual_room = int(rng.integers(NUM_ROOMS))
            readers = {actual_room}
            while len(readers) < READERS_PER_SIGHTING:
                readers.add(int((actual_room + rng.integers(-1, 2)) % NUM_ROOMS))
            posterior = likelihood[sorted(readers)].prod(axis=0)
            posterior /= posterior.sum()
            posterior[posterior < 1e-3] = 0.0  # drop negligible rooms
            posterior /= posterior.sum()
            tid = track.append(
                UncertainAttribute.from_dense(posterior),
                payload=(f"Nurse {nurse}", epoch),
            )
            truth[tid] = actual_room
    return rooms, track, truth


def main() -> None:
    rng = np.random.default_rng(42)
    rooms, track, truth = simulate_sightings(rng)
    print(f"Fused {len(track)} sightings of {NUM_NURSES} nurses "
          f"across {NUM_ROOMS} rooms\n")

    tree = PDRTree(len(rooms))
    tree.build(track)

    # -- Who was probably in Room5 during epoch 3? -------------------------
    room5 = UncertainAttribute.from_labels(rooms, {"Room5": 1.0})
    result = tree.execute(EqualityThresholdQuery(room5, 0.5))
    hits = [
        (track.payload_of(m.tid), m.score, truth[m.tid])
        for m in result
        if track.payload_of(m.tid)[1] == 3
    ]
    print("Probably in Room5 at epoch 3 (Pr >= 0.5):")
    for (nurse, _), probability, actual in hits:
        marker = "correct" if actual == 5 else f"actually Room{actual}"
        print(f"  {nurse:9s} Pr = {probability:.2f}  ({marker})")

    # -- Which sightings most resemble a reference sighting? ---------------
    reference_tid = next(tid for tid, room in truth.items() if room == 5)
    reference = track.uda_of(reference_tid)
    print(f"\nTop-5 sightings most likely co-located with tid {reference_tid}:")
    for match in tree.execute(EqualityTopKQuery(reference, 5)):
        nurse, epoch = track.payload_of(match.tid)
        print(f"  {nurse:9s} epoch {epoch}  Pr = {match.score:.3f}  "
              f"(true room: {truth[match.tid]})")

    naive = track.execute(EqualityThresholdQuery(room5, 0.5))
    indexed = tree.execute(EqualityThresholdQuery(room5, 0.5))
    print("\nPDR-tree answers match the naive scan:",
          naive.tid_set() == indexed.tid_set())


if __name__ == "__main__":
    main()
