#!/usr/bin/env python
"""Probabilistic joins over uncertain assignments (Table 1(b)).

A personnel-planning database stores each employee's *probable* future
department.  The probabilistic equality threshold join (PETJ, Definition
6) answers: *which pairs of employees have at least a 15% chance of
ending up in the same department?* — and PEJ-top-k ranks the most likely
co-placements.  The example also demonstrates index-accelerated joins
and distributional-similarity joins (DSTJ).

Run:  python examples/personnel_join.py
"""

from repro import (
    CategoricalDomain,
    UncertainAttribute,
    UncertainRelation,
    dstj,
    pej_top_k,
    petj,
)
from repro.invindex import ProbabilisticInvertedIndex


def main() -> None:
    departments = CategoricalDomain(
        ["Shoes", "Sales", "Clothes", "Hardware", "HR"]
    )
    employees = UncertainRelation(departments, name="personnel")
    table_1b = [
        ("Jim", {"Shoes": 0.5, "Sales": 0.5}),
        ("Tom", {"Sales": 0.4, "Clothes": 0.6}),
        ("Lin", {"Hardware": 0.6, "Sales": 0.4}),
        ("Nancy", {"HR": 1.0}),
    ]
    for name, dept in table_1b:
        employees.append(
            UncertainAttribute.from_labels(departments, dept), payload=name
        )

    def name_of(tid):
        return employees.payload_of(tid)

    # -- PETJ: same-department pairs with Pr >= 0.15 ----------------------
    print("PETJ(personnel, personnel, 0.15) — distinct pairs:")
    for pair in petj(employees, employees, 0.15):
        if pair.left_tid < pair.right_tid:
            print(f"  {name_of(pair.left_tid):6s} & {name_of(pair.right_tid):6s}"
                  f"  Pr(same department) = {pair.score:.2f}")

    # -- The same join through an inverted index --------------------------
    index = ProbabilisticInvertedIndex(len(departments))
    index.build(employees)
    indexed = petj(employees, employees, 0.15, right_index=index)
    plain = petj(employees, employees, 0.15)
    print("\nIndex-accelerated join matches the nested loop:",
          [(p.left_tid, p.right_tid) for p in indexed]
          == [(p.left_tid, p.right_tid) for p in plain])

    # -- PEJ-top-k: most likely co-placements (excluding self-pairs) ------
    print("\nTop co-placement pairs (PEJ-top-k):")
    for pair in pej_top_k(employees, employees, 8):
        if pair.left_tid < pair.right_tid:
            print(f"  {name_of(pair.left_tid):6s} & {name_of(pair.right_tid):6s}"
                  f"  Pr = {pair.score:.2f}")

    # -- DSTJ: employees with *similar assignment profiles* ----------------
    # Note the paper's Section 2 distinction: similar distributions are a
    # different notion from probable equality.
    print("\nDSTJ (L1 distance <= 1.3) — similar uncertainty profiles:")
    for pair in dstj(employees, employees, 1.3, "l1"):
        if pair.left_tid < pair.right_tid:
            print(f"  {name_of(pair.left_tid):6s} ~ {name_of(pair.right_tid):6s}"
                  f"  L1 = {-pair.score:.2f}")


if __name__ == "__main__":
    main()
