#!/usr/bin/env python
"""CRM complaint triage: the paper's motivating application at scale.

Pipeline (mirroring Section 4's CRM1 dataset):

1. generate a corpus of synthetic "support tickets" (topic mixtures),
2. train the from-scratch naive-Bayes classifier on a labelled sample,
3. store each ticket's posterior over 50 problem categories as a UDA,
4. index the relation with both structures, and
5. triage: find every ticket that is at least 40% likely to be about a
   given category, and the 10 tickets most similar to a problematic one —
   while counting the disk I/O each index pays under the paper's
   100-block per-query buffer.

Run:  python examples/crm_triage.py
"""

import numpy as np

from repro import EqualityThresholdQuery, EqualityTopKQuery, UncertainAttribute
from repro.datagen import crm1_dataset
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree
from repro.storage import BufferPool

NUM_TICKETS = 4_000


def measured(index, query):
    """Run a query under a fresh 100-frame pool; return (result, reads)."""
    index.pool = BufferPool(index.disk, 100)
    before = index.disk.stats.snapshot()
    result = index.execute(query)
    return result, index.disk.stats.delta_since(before).reads


def main() -> None:
    print(f"Building CRM1-style dataset ({NUM_TICKETS} classified tickets)...")
    tickets = crm1_dataset(num_tuples=NUM_TICKETS, seed=11)
    nnz = np.mean([tickets.uda_of(t).nnz for t in tickets.tids()])
    print(f"  {len(tickets)} tickets, {len(tickets.domain)} categories, "
          f"mean {nnz:.1f} plausible categories each\n")

    inverted = ProbabilisticInvertedIndex(len(tickets.domain))
    inverted.build(tickets)
    tree = PDRTree(len(tickets.domain))
    tree.build(tickets)

    # -- Threshold triage: likely Category7 tickets -----------------------
    category = tickets.domain.index_of("Category7")
    probe = UncertainAttribute.from_pairs([(category, 1.0)])
    query = EqualityThresholdQuery(probe, 0.4)

    naive = tickets.execute(query)
    inv_result, inv_reads = measured(inverted, query)
    pdr_result, pdr_reads = measured(tree, query)
    assert inv_result.tid_set() == pdr_result.tid_set() == naive.tid_set()

    print(f"Tickets >= 40% likely to be about Category7: {len(naive)}")
    print(f"  naive scan examined {naive.stats.candidates_examined} tuples")
    print(f"  inverted index: {inv_reads} page reads")
    print(f"  PDR-tree:       {pdr_reads} page reads\n")

    # -- Top-k triage: tickets most like a known-bad one -------------------
    exemplar_tid = naive.tids()[0]
    exemplar = tickets.uda_of(exemplar_tid)
    topk = EqualityTopKQuery(exemplar, 10)

    inv_result, inv_reads = measured(inverted, topk)
    pdr_result, pdr_reads = measured(tree, topk)
    assert inv_result.tids() == pdr_result.tids()

    print(f"10 tickets most likely to share ticket {exemplar_tid}'s problem:")
    for match in pdr_result:
        mode_item, mode_prob = tickets.uda_of(match.tid).mode()
        label = tickets.domain.label_of(mode_item)
        print(f"  tid {match.tid:5d}  Pr = {match.score:.3f}  "
              f"(mode: {label} @ {mode_prob:.2f})")
    print(f"\n  inverted index: {inv_reads} page reads")
    print(f"  PDR-tree:       {pdr_reads} page reads")


if __name__ == "__main__":
    main()
