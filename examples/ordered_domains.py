#!/usr/bin/env python
"""Ordered-domain operators: severity grading with windowed equality.

Section 2 of the paper notes that totally ordered categorical domains
(e.g. severity levels 1..N) admit extra probabilistic operators:
``Pr(u > v)``, ``Pr(|u - v| <= c)``, and a *windowed* relaxation of
equality.  This example grades incident severities with uncertainty and
answers:

* which incidents are probably more severe than a reference incident,
* which incidents match a target severity *within one level*, indexed
  through both structures (the windowed query expands into a weighted
  equality query that the ordinary machinery answers).

Run:  python examples/ordered_domains.py
"""

import numpy as np

from repro import (
    CategoricalDomain,
    UncertainAttribute,
    UncertainRelation,
    WindowedEqualityQuery,
)
from repro.core.ordered import greater_than_probability
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree

SEVERITIES = 9  # Sev1 (worst) .. Sev9 (cosmetic); index = severity - 1


def main() -> None:
    rng = np.random.default_rng(3)
    levels = CategoricalDomain([f"Sev{i + 1}" for i in range(SEVERITIES)])
    incidents = UncertainRelation(levels, name="incidents")

    # Automatic grading is uncertain: each incident gets a peaked
    # distribution around its true severity.
    for i in range(500):
        center = int(rng.integers(SEVERITIES))
        spread = rng.dirichlet(np.ones(3) * 2)
        pairs = {}
        for offset, mass in zip((-1, 0, 1), spread):
            level = min(max(center + offset, 0), SEVERITIES - 1)
            pairs[level] = pairs.get(level, 0.0) + float(mass)
        incidents.append(
            UncertainAttribute.from_pairs(pairs), payload=f"INC-{1000 + i}"
        )

    # -- Pr(u > v): probably more severe than a reference -----------------
    reference = incidents.uda_of(0)
    print(f"Reference {incidents.payload_of(0)} mode severity: "
          f"Sev{reference.mode()[0] + 1}")
    more_severe = [
        (incidents.payload_of(tid),
         greater_than_probability(reference, incidents.uda_of(tid)))
        for tid in range(1, 40)
    ]
    more_severe = [(name, p) for name, p in more_severe if p >= 0.8]
    print(f"Incidents the reference is >=80% likely to outrank: "
          f"{len(more_severe)} of 39 sampled")

    # -- Windowed equality through both indexes -----------------------------
    target = UncertainAttribute.from_labels(levels, {"Sev3": 1.0})
    query = WindowedEqualityQuery(target, threshold=0.9, window=1)

    naive = incidents.execute(query)
    inverted = ProbabilisticInvertedIndex(len(levels))
    inverted.build(incidents)
    tree = PDRTree(len(levels))
    tree.build(incidents)

    assert inverted.execute(query).tid_set() == naive.tid_set()
    assert tree.execute(query).tid_set() == naive.tid_set()
    print(f"\nIncidents within one level of Sev3 with Pr >= 0.9: {len(naive)}")
    for match in list(naive)[:5]:
        uda = incidents.uda_of(match.tid)
        profile = ", ".join(
            f"Sev{i + 1}:{p:.2f}" for i, p in uda.pairs()
        )
        print(f"  {incidents.payload_of(match.tid)}  Pr = {match.score:.3f}  ({profile})")
    print("\nBoth indexes agree with the naive scan: True")


if __name__ == "__main__":
    main()
