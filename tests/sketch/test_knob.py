"""The ``REPRO_SKETCH`` knob: resolution order and guard rails."""

import pytest

from repro.core import EqualityThresholdQuery, EqualityTopKQuery
from repro.core.exceptions import ConfigError, QueryError
from repro.invindex import ProbabilisticInvertedIndex
from repro.sketch import MODES, SKETCH_ENV, resolve_sketch, sketch_override

from tests.invindex.conftest import random_query, random_relation
from tests.sketch.conftest import full_key


def test_default_is_off(monkeypatch):
    monkeypatch.delenv(SKETCH_ENV, raising=False)
    assert resolve_sketch() == "off"


def test_env_is_honoured(monkeypatch):
    for mode in MODES:
        monkeypatch.setenv(SKETCH_ENV, mode)
        assert resolve_sketch() == mode
    monkeypatch.setenv(SKETCH_ENV, "default")
    assert resolve_sketch() == "off"


def test_override_beats_env_and_arg_beats_override(monkeypatch):
    monkeypatch.setenv(SKETCH_ENV, "approx")
    with sketch_override("exact"):
        assert resolve_sketch() == "exact"
        assert resolve_sketch("off") == "off"
    assert resolve_sketch() == "approx"


def test_malformed_values_raise(monkeypatch):
    monkeypatch.setenv(SKETCH_ENV, "sorta")
    with pytest.raises(ConfigError):
        resolve_sketch()
    monkeypatch.delenv(SKETCH_ENV)
    with pytest.raises(ConfigError):
        resolve_sketch("sorta")
    with pytest.raises(ConfigError):
        with sketch_override("sorta"):
            pass


@pytest.fixture(scope="module")
def bare_index():
    """An index with NO sketch store attached."""
    relation = random_relation(60, 30, seed=53)
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    return index


def test_sketch_modes_require_a_sketch_store(bare_index):
    from repro.core import SimilarityThresholdQuery

    query = SimilarityThresholdQuery(random_query(30, seed=1), 0.5, "l1")
    for mode in ("exact", "approx"):
        with pytest.raises(QueryError, match="sketch"):
            bare_index.execute(query, sketch=mode)
    # off still answers without one.
    assert full_key(bare_index.execute(query, sketch="off"))


def test_sketch_kwarg_rejected_on_equality_queries(bare_index):
    query = EqualityThresholdQuery(random_query(30, seed=2), 0.1)
    with pytest.raises(QueryError, match="similarity"):
        bare_index.execute(query, sketch="exact")


def test_div_ceiling_rejected_off_similarity_topk(bare_index):
    query = EqualityTopKQuery(random_query(30, seed=3), 4)
    with pytest.raises(QueryError, match="div_ceiling"):
        bare_index.execute(query, div_ceiling=0.5)
    from repro.core import SimilarityTopKQuery

    sim = SimilarityTopKQuery(random_query(30, seed=4), 4)
    with pytest.raises(QueryError, match="div_ceiling"):
        bare_index.execute(sim, sketch="off", div_ceiling=-1.0)
