"""Sketch pages are real pages: tagged, persisted, replayed, compacted.

The sketch store must behave like every other paged structure — its
reads appear under the ``"sketch"`` tag, its pages survive save/load,
WAL replay re-sketches inserts identically, deletes leave the live set,
and compaction rebuilds the store deterministically (mutate-then-compact
converges on the byte-identical record stream a fresh build produces).
"""

import numpy as np
import pytest

from repro.core import SimilarityThresholdQuery, SimilarityTopKQuery
from repro.core.exceptions import QueryError
from repro.invindex import ProbabilisticInvertedIndex
from repro.sketch import SKETCH_TAG, SketchParams
from repro.storage import BufferPool
from repro.wal import WriteAheadLog

from tests.invindex.conftest import random_query, random_relation
from tests.sketch.conftest import POOL_SIZE, full_key


@pytest.fixture()
def dataset():
    relation = random_relation(150, 30, seed=29)
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    index.build_sketch()
    return relation, index


def _query(seed, kind="threshold"):
    q = random_query(30, seed=seed)
    if kind == "threshold":
        return SimilarityThresholdQuery(q, 0.8, "l1")
    return SimilarityTopKQuery(q, 5, "l1")


def _exact(index, query):
    index.pool = BufferPool(index.disk, POOL_SIZE)
    return full_key(index.execute(query, sketch="exact"))


def _sketch_records(index):
    """The projection heap's raw record stream (the determinism claim)."""
    return b"".join(chunk for _, chunk in index.sketch._proj_heap.scan())


def test_sketch_reads_carry_their_own_tag(dataset):
    _, index = dataset
    index.pool = BufferPool(index.disk, POOL_SIZE)
    before = dict(index.disk.snapshot_tags())
    index.execute(_query(3), sketch="exact")
    after = index.disk.snapshot_tags()
    delta = {
        tag: count - before.get(tag, 0)
        for tag, count in after.items()
        if count != before.get(tag, 0)
    }
    assert delta.get(SKETCH_TAG, 0) > 0
    # Sketch pages never leak into the equality tags.
    assert set(delta) <= {SKETCH_TAG, "tuples"}


def test_sketch_survives_save_load(dataset, tmp_path):
    _, index = dataset
    queries = [_query(seed, kind) for seed in (3, 4) for kind in ("threshold", "topk")]
    want = [_exact(index, q) for q in queries]
    path = tmp_path / "index.reprodb"
    index.save(path)
    reopened = ProbabilisticInvertedIndex.load(path)
    assert reopened.sketch is not None
    assert reopened.sketch.num_tuples == index.sketch.num_tuples
    assert [_exact(reopened, q) for q in queries] == want


def test_insert_sketches_new_tuples_delete_removes_them(dataset):
    relation, index = dataset
    new_tid = len(relation)
    # A tuple identical to the probe: exact mode must surface it.
    probe = random_query(30, seed=77)
    index.insert(new_tid, probe)
    # Not 0.0: the heap stores f32-exact values, so the stored copy of
    # an f64 probe sits ~1e-8 away from it.
    query = SimilarityThresholdQuery(probe, 1e-4, "l1")
    matches, _ = _exact(index, query)
    assert new_tid in {tid for tid, _ in matches}
    off = index.execute(query, sketch="off")
    assert matches == [(m.tid, m.score) for m in off.matches]
    index.delete(new_tid)
    matches, _ = _exact(index, query)
    assert new_tid not in {tid for tid, _ in matches}


def test_wal_replay_resketches_identically(tmp_path):
    relation = random_relation(120, 30, seed=31)
    base = type(relation)(relation.domain)
    for tid in range(100):
        base.append(relation.uda_of(tid))
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(base)
    index.build_sketch()
    image = tmp_path / "index.reprodb"
    index.save(image)
    wal_path = tmp_path / "log.wal"
    index.attach_wal(WriteAheadLog(wal_path), replay=False)
    for tid in range(100, 120):
        index.insert(tid, relation.uda_of(tid))
    index.delete(5)
    queries = [_query(s, k) for s in (8, 9) for k in ("threshold", "topk")]
    want = [_exact(index, q) for q in queries]
    want_records = _sketch_records(index)

    recovered = ProbabilisticInvertedIndex.load(image)
    recovered.attach_wal(WriteAheadLog(wal_path))
    assert [_exact(recovered, q) for q in queries] == want
    # Replay funnels through insert(), so recovery re-sketches the
    # byte-identical record stream.
    assert _sketch_records(recovered) == want_records


def test_compaction_rebuild_is_deterministic(tmp_path):
    relation = random_relation(140, 30, seed=37)
    grown = ProbabilisticInvertedIndex(len(relation.domain))
    base = type(relation)(relation.domain)
    for tid in range(120):
        base.append(relation.uda_of(tid))
    grown.build(base)
    grown.build_sketch()
    for tid in range(120, 140):
        grown.insert(tid, relation.uda_of(tid))
    grown.delete(3)
    grown.delete(77)
    grown.compact()

    fresh_rel = type(relation)(relation.domain)
    live = [tid for tid in range(140) if tid not in (3, 77)]
    for tid in live:
        fresh_rel.append(relation.uda_of(tid))
    # Tids shift on rebuild of the *relation*, so compare through the
    # compacted index itself: record stream determinism plus the
    # exact/off differential on the mutated index.
    assert grown.sketch.num_tuples == len(live)
    queries = [_query(s, k) for s in (12, 13) for k in ("threshold", "topk")]
    for query in queries:
        grown.pool = BufferPool(grown.disk, POOL_SIZE)
        off = full_key(grown.execute(query, sketch="off"))
        assert _exact(grown, query) == off
    # Compact again: a no-op logical change must reproduce the record
    # stream byte for byte.
    before = _sketch_records(grown)
    grown.compact()
    assert _sketch_records(grown) == before


def test_custom_params_persist(tmp_path):
    relation = random_relation(60, 30, seed=41)
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    params = SketchParams(num_perm=16, bands=8, num_projections=4)
    index.build_sketch(params)
    path = tmp_path / "index.reprodb"
    index.save(path)
    reopened = ProbabilisticInvertedIndex.load(path)
    assert reopened.sketch.params == params


def test_bad_params_are_rejected():
    with pytest.raises(QueryError):
        SketchParams(num_perm=32, bands=5)  # 5 does not divide 32
    with pytest.raises(QueryError):
        SketchParams(num_projections=0)
    with pytest.raises(QueryError):
        SketchParams(bands=0)
