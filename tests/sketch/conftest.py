"""Shared fixtures for the sketch pre-filtering suite."""

import pytest

from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree

from tests.invindex.conftest import random_relation

POOL_SIZE = 100


@pytest.fixture(scope="package")
def relation():
    # Wider domain / sparser supports than the equality suites: support
    # sets must genuinely differ across tuples for a support-based
    # pre-filter to have anything to key on.
    return random_relation(300, 40, seed=11)


@pytest.fixture(scope="package")
def inverted(relation):
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    index.build_sketch()
    return index


@pytest.fixture(scope="package")
def pdr(relation):
    tree = PDRTree(len(relation.domain))
    tree.build(relation)
    tree.build_sketch()
    return tree


def full_key(result):
    """Everything the exactness claim covers: answers, scores, tie
    order, and the stop reason."""
    return (
        [(m.tid, m.score) for m in result.matches],
        result.stats.stop_reason,
    )
