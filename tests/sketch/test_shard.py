"""Scatter-gather similarity: the div_ceiling round protocol is exact.

Similarity top-k over shards is only admitted under exact sketch mode
(sound per-shard lower bounds are what make the ceiling protocol
correct); the merged answer must then be bit-identical to the
single-node run at every fanout.  Similarity thresholds scatter as a
plain fan-out in any mode.
"""

import pytest

from repro.core import SimilarityThresholdQuery, SimilarityTopKQuery
from repro.core.exceptions import QueryError
from repro.shard import LocalTransport, ShardCoordinator, ShardedIndex
from repro.sketch import SketchParams, sketch_override
from repro.storage import BufferPool

from tests.invindex.conftest import random_query
from tests.sketch.conftest import POOL_SIZE, full_key


def _coordinator(relation, num_shards, family, fanout=None):
    sharded = ShardedIndex.build(
        relation,
        num_shards,
        family=family,
        sketch_params=SketchParams(),
    )
    return ShardCoordinator(
        LocalTransport(sharded, pool_size=POOL_SIZE), fanout=fanout
    )


def _single(index, query, mode):
    index.pool = BufferPool(index.disk, POOL_SIZE)
    return full_key(index.execute(query, sketch=mode))


def _queries(kind, count=6):
    out = []
    for i in range(count):
        q = random_query(40, seed=700 + i)
        divergence = ("l1", "l2", "kl")[i % 3]
        if kind == "topk":
            out.append(SimilarityTopKQuery(q, 1 + i % 7, divergence))
        else:
            out.append(
                SimilarityThresholdQuery(q, 0.4 + 0.2 * (i % 3), divergence)
            )
    return out


def test_similarity_topk_requires_exact_mode(relation):
    coordinator = _coordinator(relation, 2, "inverted")
    query = SimilarityTopKQuery(random_query(40, seed=5), 3)
    for mode in ("off", "approx"):
        with sketch_override(mode):
            with pytest.raises(QueryError, match="REPRO_SKETCH=exact"):
                coordinator.execute(query)


@pytest.mark.parametrize("family", ("inverted", "pdr"))
@pytest.mark.parametrize("num_shards,fanout", ((1, None), (3, 1), (3, 3)))
def test_sharded_similarity_topk_matches_single_node(
    relation, inverted, family, num_shards, fanout
):
    coordinator = _coordinator(relation, num_shards, family, fanout=fanout)
    with sketch_override("exact"):
        for query in _queries("topk"):
            sharded = coordinator.execute(query)
            matches = [(m.tid, m.score) for m in sharded.matches]
            single, _ = _single(inverted, query, "exact")
            assert matches == single
            # Rounds follow the fanout schedule.
            if num_shards > 1 and fanout == 1:
                assert sharded.rounds == num_shards


@pytest.mark.parametrize("mode", ("off", "exact"))
def test_sharded_similarity_threshold_matches_single_node(
    relation, inverted, mode
):
    coordinator = _coordinator(relation, 3, "inverted")
    with sketch_override(mode):
        for query in _queries("threshold"):
            sharded = coordinator.execute(query)
            matches = [(m.tid, m.score) for m in sharded.matches]
            single, _ = _single(inverted, query, mode)
            assert matches == single


def test_div_ceiling_appears_in_schema_valid_trace(relation):
    from repro.obs.schema import validate_records
    from repro.obs.trace import MemorySink, Tracer, tracing

    coordinator = _coordinator(relation, 3, "inverted", fanout=1)
    query = SimilarityTopKQuery(random_query(40, seed=9), 2, "l1")
    sink = MemorySink()
    with sketch_override("exact"), tracing(Tracer(sink)):
        coordinator.execute(query)
    validate_records(sink.records)
    rounds = sink.of_kind("shard.round")
    assert len(rounds) == 3
    # Once the heap holds k matches, later rounds carry the ceiling.
    assert any("div_ceiling" in r for r in rounds[1:])
    # The shards' sketch pre-filtering is visible too.
    assert sink.count("sketch.probe") >= 1
