"""Property suite: sketch lower bounds never exceed the true divergence.

Exact mode's soundness rests on one inequality —
``lower_bound(q, v) <= divergence(q, v)`` — holding for *every* pair of
sparse probability vectors and every bounded divergence, including
mass-deficient vectors, disjoint supports, identical vectors, and any
projection count.  Hypothesis hammers exactly that, with ``v`` rounded
through float32 the way the tuple heap stores it.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.divergence import SPARSE_DIVERGENCES
from repro.sketch.bounds import BOUNDED_DIVERGENCES, lower_bound

DOMAIN = 24


def _sparse_vector(rng, max_nnz, f32_exact):
    nnz = int(rng.integers(1, max_nnz + 1))
    items = np.sort(rng.choice(DOMAIN, size=nnz, replace=False))
    probs = rng.dirichlet(np.full(nnz, float(rng.uniform(0.2, 5.0))))
    # Mass-deficient vectors (sum < 1) are legal UDAs and exercise the
    # mass-gap bound.
    probs = probs * float(rng.uniform(0.3, 1.0))
    if f32_exact:
        # Mirror storage: heap records hold f32-exact values, and the
        # sketch is built from (and verified against) those.
        probs = np.asarray(probs, dtype=np.float32).astype(np.float64)
    return items.astype(np.int64), probs


@given(
    seed=st.integers(0, 2**32 - 1),
    divergence=st.sampled_from(BOUNDED_DIVERGENCES),
    num_projections=st.sampled_from((1, 2, 8)),
)
def test_lower_bound_never_exceeds_true_divergence(
    seed, divergence, num_projections
):
    rng = np.random.default_rng(seed)
    q_items, q_probs = _sparse_vector(rng, 8, f32_exact=False)
    v_items, v_probs = _sparse_vector(rng, 8, f32_exact=True)
    true = SPARSE_DIVERGENCES[divergence](
        q_items, q_probs, v_items, v_probs
    )
    bound = lower_bound(
        q_items,
        q_probs,
        v_items,
        v_probs,
        divergence,
        num_projections=num_projections,
    )
    assert bound <= true


@given(seed=st.integers(0, 2**32 - 1), divergence=st.sampled_from(BOUNDED_DIVERGENCES))
def test_identical_vectors_are_never_pruned(seed, divergence):
    """A tuple equal to the query has divergence ~0; its bound must not
    exceed that (strict pruning would otherwise drop an exact match)."""
    rng = np.random.default_rng(seed)
    items, probs = _sparse_vector(rng, 8, f32_exact=True)
    true = SPARSE_DIVERGENCES[divergence](items, probs, items, probs)
    assert lower_bound(items, probs, items, probs, divergence) <= true


def test_pinsker_route_would_be_unsound():
    """The textbook ``KL >= l1^2 / 2`` bound does NOT hold against the
    paper's epsilon-floored ``kl_hat`` (summed over q's support only):
    for q = {a: 0.5}, v = {a: 1.0} it "certifies" a divergence above the
    actual score.  The shipped termwise bound stays below it."""
    q_items = np.array([0], dtype=np.int64)
    q_probs = np.array([0.5])
    v_items = np.array([0], dtype=np.int64)
    v_probs = np.array([1.0])
    kl_hat = SPARSE_DIVERGENCES["kl"](q_items, q_probs, v_items, v_probs)
    l1 = SPARSE_DIVERGENCES["l1"](q_items, q_probs, v_items, v_probs)
    assert kl_hat < 0 < (l1**2) / 2  # Pinsker would overshoot kl_hat
    assert lower_bound(q_items, q_probs, v_items, v_probs, "kl") <= kl_hat
