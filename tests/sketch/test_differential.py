"""Differential suite: exact-sketch similarity execution vs unfiltered.

``REPRO_SKETCH=exact`` claims *bit-identical* answers — tids, scores,
tie order, and stop reasons — on both index families, every bounded
divergence, and every similarity query shape (DSTQ thresholds,
DSQ-top-k, and DSTJ joins through both the block engine and the legacy
per-probe path).  Hypothesis drives the workloads; one test repeats the
comparison under fault injection, where the CRC/retry machinery must
not perturb the answers either.  Approximate mode never gets identity:
it gets the *subset* guarantee (every reported threshold match is a
true match the unfiltered scan also reports).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
)
from repro.core import joins
from repro.exec import BlockJoinExecutor
from repro.invindex import ProbabilisticInvertedIndex
from repro.sketch import sketch_override
from repro.storage import BufferPool
from repro.storage.faults import FaultPlan, fault_plan

from tests.invindex.conftest import random_query, random_relation
from tests.sketch.conftest import POOL_SIZE, full_key

DIVERGENCES = ("l1", "l2", "kl", "symmetric_kl")

#: Threshold draw scale per divergence (l1 caps at 2, l2 at sqrt(2),
#: the KL family is unbounded but these cover sparse-vector practice).
THRESHOLD_SCALE = {"l1": 2.0, "l2": 1.2, "kl": 4.0, "symmetric_kl": 4.0}


def _similarity_query(domain_size, seed, divergence, kind):
    rng = np.random.default_rng(seed)
    q = random_query(domain_size, seed=seed)
    if kind == "threshold":
        threshold = float(rng.uniform(0.0, THRESHOLD_SCALE[divergence]))
        return SimilarityThresholdQuery(q, threshold, divergence)
    return SimilarityTopKQuery(q, int(rng.integers(1, 13)), divergence)


def _run(index, query, mode):
    index.pool = BufferPool(index.disk, POOL_SIZE)
    before = index.disk.stats.snapshot()
    result = index.execute(query, sketch=mode)
    reads = index.disk.stats.delta_since(before).reads
    return full_key(result), reads


@given(
    seed=st.integers(0, 2**31 - 1),
    divergence=st.sampled_from(DIVERGENCES),
    kind=st.sampled_from(("threshold", "topk")),
)
@settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_exact_is_bit_identical_inverted(inverted, seed, divergence, kind):
    query = _similarity_query(40, seed, divergence, kind)
    off, _ = _run(inverted, query, "off")
    exact, _ = _run(inverted, query, "exact")
    assert exact == off


@given(
    seed=st.integers(0, 2**31 - 1),
    divergence=st.sampled_from(DIVERGENCES),
    kind=st.sampled_from(("threshold", "topk")),
)
@settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_exact_is_bit_identical_pdr(pdr, seed, divergence, kind):
    query = _similarity_query(40, seed, divergence, kind)
    off, _ = _run(pdr, query, "off")
    exact, _ = _run(pdr, query, "exact")
    assert exact == off


@given(
    seed=st.integers(0, 2**31 - 1),
    divergence=st.sampled_from(DIVERGENCES),
)
@settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_families_agree_under_exact(inverted, pdr, seed, divergence):
    """Both families must converge on the same exact answers.

    Matches only: stop reasons are an engine-level detail (the tree's
    similarity scan reports its own), asserted per-family above.
    """
    query = _similarity_query(40, seed, divergence, "threshold")
    (inv_matches, _), _ = _run(inverted, query, "exact")
    (tree_matches, _), _ = _run(pdr, query, "exact")
    assert inv_matches == tree_matches


@given(seed=st.integers(0, 2**31 - 1), divergence=st.sampled_from(DIVERGENCES))
@settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_approx_threshold_answers_are_a_subset(inverted, seed, divergence):
    """Approx verifies candidates exactly, so while it may *miss*
    matches, it can never report a false one — and never a wrong
    score."""
    query = _similarity_query(40, seed, divergence, "threshold")
    (off_matches, _), _ = _run(inverted, query, "off")
    (approx_matches, _), _ = _run(inverted, query, "approx")
    assert set(approx_matches) <= set(off_matches)


def test_exact_is_bit_identical_under_faults():
    """Fault injection (CRC failures + retries) must not perturb the
    differential: both modes recover to the same answers."""
    plan = FaultPlan(seed=5, read_error_rate=0.02)
    with fault_plan(plan):
        relation = random_relation(120, 30, seed=17)
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        index.build_sketch()
        for seed in range(6):
            for kind in ("threshold", "topk"):
                query = _similarity_query(30, 400 + seed, "l1", kind)
                off, _ = _run(index, query, "off")
                exact, _ = _run(index, query, "exact")
                assert exact == off


# -- DSTJ -----------------------------------------------------------------


@pytest.fixture(scope="module")
def join_dataset():
    right = random_relation(120, 30, seed=83)
    outer = random_relation(18, 30, seed=19)
    index = ProbabilisticInvertedIndex(len(right.domain))
    index.build(right)
    index.build_sketch()
    return outer, right, index


def _join_key(result):
    return [(p.left_tid, p.right_tid, p.score) for p in result]


@pytest.mark.parametrize("divergence", ("l1", "l2", "kl"))
def test_dstj_block_engine_exact_matches_off(join_dataset, divergence):
    outer, right, index = join_dataset
    keys = {}
    for mode in ("off", "exact"):
        with sketch_override(mode):
            index.pool = BufferPool(index.disk, POOL_SIZE)
            engine = BlockJoinExecutor(right, index, block_size=4)
            keys[mode] = _join_key(engine.dstj(outer, 0.9, divergence))
    assert keys["exact"] == keys["off"]


@pytest.mark.parametrize("divergence", ("l1", "l2", "kl"))
def test_dstj_legacy_path_exact_matches_off(join_dataset, divergence):
    outer, right, index = join_dataset
    keys = {}
    for mode in ("off", "exact"):
        with sketch_override(mode):
            index.pool = BufferPool(index.disk, POOL_SIZE)
            keys[mode] = _join_key(
                joins.dstj(
                    outer,
                    right,
                    0.9,
                    divergence=divergence,
                    right_index=index,
                )
            )
    assert keys["exact"] == keys["off"]
