"""Tests for :mod:`repro.storage.page`."""

import pytest

from repro.core import PageError
from repro.storage import DEFAULT_PAGE_SIZE, Page


class TestConstruction:
    def test_default_is_zeroed_8k(self):
        page = Page(0)
        assert page.size == DEFAULT_PAGE_SIZE == 8192
        assert bytes(page.data) == bytes(8192)

    def test_custom_size(self):
        assert Page(0, size=512).size == 512

    def test_existing_buffer(self):
        data = bytearray(b"\x01" * 256)
        page = Page(3, data, size=256)
        assert page.read_u8(0) == 1

    def test_size_mismatch_rejected(self):
        with pytest.raises(PageError):
            Page(0, bytearray(10), size=20)


class TestTypedAccessors:
    @pytest.fixture()
    def page(self):
        return Page(0, size=256)

    @pytest.mark.parametrize(
        "writer,reader,value",
        [
            ("write_u8", "read_u8", 0xAB),
            ("write_u16", "read_u16", 0xBEEF),
            ("write_u32", "read_u32", 0xDEADBEEF),
            ("write_u64", "read_u64", 0x0123456789ABCDEF),
        ],
    )
    def test_integer_round_trip(self, page, writer, reader, value):
        getattr(page, writer)(16, value)
        assert getattr(page, reader)(16) == value

    def test_f32_round_trip(self, page):
        page.write_f32(8, 0.25)
        assert page.read_f32(8) == 0.25

    def test_f64_round_trip(self, page):
        page.write_f64(8, 0.1)
        assert page.read_f64(8) == 0.1

    def test_bytes_round_trip(self, page):
        page.write_bytes(100, b"hello")
        assert page.read_bytes(100, 5) == b"hello"

    def test_read_bytes_overrun(self, page):
        with pytest.raises(PageError):
            page.read_bytes(250, 10)

    def test_write_bytes_overrun(self, page):
        with pytest.raises(PageError):
            page.write_bytes(250, b"0123456789")

    def test_zero(self, page):
        page.write_bytes(0, b"\xff" * 256)
        page.zero()
        assert bytes(page.data) == bytes(256)

    def test_adjacent_fields_do_not_clobber(self, page):
        page.write_u32(0, 1)
        page.write_u32(4, 2)
        assert page.read_u32(0) == 1
        assert page.read_u32(4) == 2


class TestVersioning:
    @pytest.fixture()
    def page(self):
        return Page(0, size=256)

    def test_fresh_page_is_version_zero(self, page):
        assert page.version == 0

    @pytest.mark.parametrize(
        "write",
        [
            lambda p: p.write_u8(0, 1),
            lambda p: p.write_u16(0, 1),
            lambda p: p.write_u32(0, 1),
            lambda p: p.write_u64(0, 1),
            lambda p: p.write_f32(0, 1.0),
            lambda p: p.write_f64(0, 1.0),
            lambda p: p.write_bytes(0, b"x"),
            lambda p: p.zero(),
            lambda p: p.bump_version(),
        ],
    )
    def test_every_write_bumps(self, page, write):
        before = page.version
        write(page)
        assert page.version == before + 1

    def test_reads_do_not_bump(self, page):
        page.read_u32(0)
        page.read_bytes(0, 16)
        page.view(0, 16)
        assert page.version == 0

    def test_versions_are_monotonic(self, page):
        versions = []
        for i in range(5):
            page.write_u8(0, i)
            versions.append(page.version)
        assert versions == sorted(set(versions))


class TestView:
    def test_view_is_zero_copy(self):
        page = Page(0, size=64)
        page.write_bytes(8, b"abcdef")
        view = page.view(8, 6)
        assert bytes(view) == b"abcdef"
        # The view aliases the live buffer: a later write shows through.
        page.write_bytes(8, b"ABCDEF")
        assert bytes(view) == b"ABCDEF"

    def test_view_defaults_to_whole_page(self):
        page = Page(0, size=64)
        assert len(page.view()) == 64
        assert len(page.view(16)) == 48

    def test_view_overrun_rejected(self):
        page = Page(0, size=64)
        with pytest.raises(PageError):
            page.view(60, 10)
        with pytest.raises(PageError):
            page.view(-1, 4)
