"""``reset_counters`` on the buffer pool and decoded cache.

Long-lived serving pools (``docs/serving.md``) report per-window hit
ratios by resetting counters between windows instead of rebuilding the
pool.  The contract under test: a reset zeroes telemetry only — it
never touches resident pages, pin state, dirty flags, clock order, or
cached decoded entries.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.storage import BufferPool, DiskManager


def _frame_state(pool):
    """Everything about the pool that reset_counters must not touch."""
    return (
        sorted(
            (pid, frame.pin_count, frame.referenced, frame.dirty)
            for pid, frame in pool._frames.items()
        ),
        list(pool._clock_order),
        pool._clock_hand,
        len(pool.decoded),
    )


class TestBufferPoolReset:
    def test_zeroes_all_telemetry(self):
        disk = DiskManager(page_size=16)
        pids = [disk.allocate_page() for _ in range(4)]
        pool = BufferPool(disk, capacity=2, decoded_capacity=8)
        for pid in pids:
            page = pool.fetch_page(pid)
            pool.decoded.get_or_decode("t", page, lambda p: object())
        assert pool.misses > 0 and pool.decoded.misses > 0
        pool.reset_counters()
        assert (pool.hits, pool.misses, pool.retries) == (0, 0, 0)
        assert (pool.decoded.hits, pool.decoded.misses) == (0, 0)
        assert pool.hit_ratio == 0.0
        assert pool.decoded.hit_rate == 0.0

    def test_per_window_hit_ratio(self):
        disk = DiskManager(page_size=16)
        pid = disk.allocate_page()
        pool = BufferPool(disk, capacity=2)
        pool.fetch_page(pid)  # window 1: one miss
        pool.reset_counters()
        pool.fetch_page(pid)  # window 2: pure hit, page still resident
        assert (pool.hits, pool.misses) == (1, 0)
        assert pool.hit_ratio == 1.0

    def test_keeps_decoded_entries_warm(self):
        disk = DiskManager(page_size=16)
        pid = disk.allocate_page()
        pool = BufferPool(disk, capacity=2, decoded_capacity=8)
        page = pool.fetch_page(pid)
        sentinel = object()
        pool.decoded.put("t", page, sentinel)
        pool.reset_counters()
        assert pool.decoded.get("t", page) is sentinel


@given(
    capacity=st.integers(2, 6),
    operations=st.lists(
        st.tuples(
            st.sampled_from(["fetch", "pin", "unpin", "write", "decode", "reset"]),
            st.integers(0, 11),
        ),
        max_size=100,
    ),
)
def test_reset_never_touches_residency_or_pins(capacity, operations):
    """Random traffic with interleaved resets: ``check_invariants``
    passes before and after every reset, and the reset leaves frames,
    pins, dirty flags, clock state, and decoded entries bit-identical."""
    disk = DiskManager(page_size=16)
    pids = [disk.allocate_page() for _ in range(12)]
    pool = BufferPool(disk, capacity=capacity, decoded_capacity=4 * capacity)
    pinned = set()
    for op, slot in operations:
        pid = pids[slot]
        if op == "fetch":
            if len(pinned) < capacity or pid in pinned:
                pool.fetch_page(pid)
        elif op == "pin":
            if pid not in pinned and len(pinned) < capacity:
                pool.fetch_page(pid, pin=True)
                pinned.add(pid)
        elif op == "unpin":
            if pid in pinned:
                pool.unpin_page(pid)
                pinned.discard(pid)
        elif op == "write":
            if len(pinned) < capacity or pid in pinned:
                page = pool.fetch_page(pid)
                page.write_u8(0, slot)
                pool.mark_dirty(pid)
        elif op == "decode":
            if len(pinned) < capacity or pid in pinned:
                page = pool.fetch_page(pid)
                pool.decoded.get_or_decode("t", page, lambda p: (p.page_id,))
        else:
            before = _frame_state(pool)
            pool.check_invariants()
            pool.reset_counters()
            pool.check_invariants()
            assert _frame_state(pool) == before
            assert (pool.hits, pool.misses, pool.retries) == (0, 0, 0)
            assert (pool.decoded.hits, pool.decoded.misses) == (0, 0)
    before = _frame_state(pool)
    pool.reset_counters()
    pool.check_invariants()
    assert _frame_state(pool) == before
    assert pool.pinned_page_ids() == sorted(pinned)
