"""Tests for :mod:`repro.storage.disk`."""

import pytest

from repro.core import PageError
from repro.storage import DiskManager, Page


class TestAllocation:
    def test_sequential_ids(self):
        disk = DiskManager()
        assert disk.allocate_page() == 0
        assert disk.allocate_page() == 1
        assert disk.num_pages == 2

    def test_allocation_counted(self):
        disk = DiskManager()
        disk.allocate_page()
        assert disk.stats.allocations == 1
        assert disk.stats.reads == 0

    def test_new_page_is_zeroed(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page()
        page = disk.read_page(pid)
        assert bytes(page.data) == bytes(64)

    def test_deallocate(self):
        disk = DiskManager()
        pid = disk.allocate_page()
        disk.deallocate_page(pid)
        assert disk.num_pages == 0
        with pytest.raises(PageError):
            disk.read_page(pid)

    def test_deallocate_unknown(self):
        with pytest.raises(PageError):
            DiskManager().deallocate_page(5)


class TestIO:
    def test_write_then_read(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page()
        page = Page(pid, bytearray(b"x" * 64), size=64)
        disk.write_page(page)
        assert bytes(disk.read_page(pid).data) == b"x" * 64

    def test_read_returns_private_copy(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page()
        first = disk.read_page(pid)
        first.write_u8(0, 0xFF)
        second = disk.read_page(pid)
        assert second.read_u8(0) == 0

    def test_io_counters(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page()
        disk.read_page(pid)
        disk.read_page(pid)
        disk.write_page(Page(pid, bytearray(64), size=64))
        assert disk.stats.reads == 2
        assert disk.stats.writes == 1
        assert disk.stats.total == 3

    def test_read_unknown_page(self):
        with pytest.raises(PageError):
            DiskManager().read_page(42)

    def test_write_unknown_page(self):
        with pytest.raises(PageError):
            DiskManager().write_page(Page(42))

    def test_write_wrong_size(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page()
        with pytest.raises(PageError):
            disk.write_page(Page(pid, bytearray(32), size=32))

    def test_snapshot_delta(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page()
        before = disk.stats.snapshot()
        disk.read_page(pid)
        delta = disk.stats.delta_since(before)
        assert delta.reads == 1
        assert delta.writes == 0

    def test_size_in_bytes(self):
        disk = DiskManager(page_size=128)
        disk.allocate_page()
        disk.allocate_page()
        assert disk.size_in_bytes == 256


class TestTagAccounting:
    def test_reads_attributed_to_allocation_tag(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page(tag="postings")
        disk.read_page(pid)
        disk.read_page(pid)
        assert disk.reads_by_tag == {"postings": 2}
        assert disk.tag_of(pid) == "postings"

    def test_tag_of_unknown_page(self):
        with pytest.raises(PageError):
            DiskManager().tag_of(9)

    def test_read_page_tag_lookup_is_strict(self):
        """Regression: read_page and tag_of must agree on unknown tags.

        Before the fix, ``tag_of`` raised :class:`PageError` for a page
        missing from the tag table while ``read_page`` silently
        attributed the same read to ``"untagged"`` — one lifecycle, two
        answers.  Now both go through the same strict lookup, and the
        failed attribution is not counted as a read.
        """
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page(tag="postings")
        del disk._tags[pid]  # model a desynced tag table
        with pytest.raises(PageError):
            disk.tag_of(pid)
        with pytest.raises(PageError):
            disk.read_page(pid)
        assert disk.stats.reads == 0
        assert disk.reads_by_tag == {}

    def test_verify_page_uses_strict_lookups(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page()
        assert disk.verify_page(pid)
        disk.deallocate_page(pid)
        with pytest.raises(PageError):
            disk.verify_page(pid)

    def test_tag_directory_is_a_copy(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page(tag="tuples")
        directory = disk.tag_directory()
        assert directory == {pid: "tuples"}
        directory[pid] = "clobbered"
        assert disk.tag_of(pid) == "tuples"
