"""Tests for :mod:`repro.storage.faults` and page checksum verification."""

import pytest

from repro.core.exceptions import (
    ChecksumError,
    QueryError,
    TransientReadError,
)
from repro.storage import (
    MAX_READ_RETRIES,
    BufferPool,
    DiskManager,
    FaultPlan,
    FaultyDisk,
    Page,
    fault_plan,
    page_checksum,
)
from repro.storage.faults import (
    FAULT_BIT_ROT_ENV,
    FAULT_READ_ERROR_ENV,
    FAULT_SEED_ENV,
    FAULT_TORN_WRITE_ENV,
    active_plan,
)


def write_marker(disk: DiskManager, page_id: int, marker: bytes) -> None:
    page = Page(page_id, size=disk.page_size)
    page.data[: len(marker)] = marker
    disk.write_page(page)


class TestFaultPlan:
    def test_defaults_are_disabled(self):
        assert not FaultPlan().enabled

    def test_any_positive_rate_enables(self):
        assert FaultPlan(bit_rot_rate=0.1).enabled
        assert FaultPlan(read_error_rate=0.1).enabled
        assert FaultPlan(torn_write_rate=0.1).enabled

    def test_rates_validated(self):
        with pytest.raises(QueryError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(QueryError):
            FaultPlan(bit_rot_rate=-0.1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_SEED_ENV, "42")
        monkeypatch.setenv(FAULT_READ_ERROR_ENV, "0.25")
        monkeypatch.setenv(FAULT_TORN_WRITE_ENV, "0.5")
        monkeypatch.setenv(FAULT_BIT_ROT_ENV, "0.125")
        plan = FaultPlan.from_env()
        assert plan == FaultPlan(42, 0.25, 0.5, 0.125)

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(FAULT_READ_ERROR_ENV, "often")
        with pytest.raises(QueryError):
            FaultPlan.from_env()

    def test_active_plan_prefers_override(self, monkeypatch):
        monkeypatch.setenv(FAULT_BIT_ROT_ENV, "0.5")
        override = FaultPlan(seed=7)
        with fault_plan(override):
            assert active_plan() is override
        assert active_plan().bit_rot_rate == 0.5


class TestChecksums:
    def test_fresh_page_verifies(self):
        disk = DiskManager()
        page_id = disk.allocate_page()
        assert disk.verify_page(page_id)
        assert disk.checksum_of(page_id) == page_checksum(bytes(disk.page_size))

    def test_write_recomputes_checksum(self):
        disk = DiskManager()
        page_id = disk.allocate_page()
        write_marker(disk, page_id, b"hello")
        assert disk.verify_page(page_id)
        assert disk.read_page(page_id).data[:5] == b"hello"

    def test_out_of_band_corruption_detected(self):
        # Corrupt the stored bytes directly (bypassing write_page, like a
        # medium error): every read must raise, never return bad bytes.
        disk = DiskManager()
        page_id = disk.allocate_page()
        write_marker(disk, page_id, b"hello")
        tampered = bytearray(disk.raw_page_bytes(page_id))
        tampered[0] ^= 0xFF
        disk.tamper_page(page_id, bytes(tampered))
        with pytest.raises(ChecksumError):
            disk.read_page(page_id)
        assert not disk.verify_page(page_id)
        assert disk.stats.checksum_failures == 1

    def test_failed_read_not_counted(self):
        disk = DiskManager()
        page_id = disk.allocate_page()
        disk.tamper_page(page_id, b"\xff" * disk.page_size)
        with pytest.raises(ChecksumError):
            disk.read_page(page_id)
        assert disk.stats.reads == 0
        assert disk.reads_by_tag == {}


class TestInjection:
    def test_read_error_raises_transient(self):
        disk = FaultyDisk(FaultPlan(seed=1, read_error_rate=1.0))
        page_id = disk.allocate_page()
        with pytest.raises(TransientReadError):
            disk.read_page(page_id)
        assert disk.stats.faults_injected == 1
        assert disk.stats.reads == 0

    def test_bit_rot_caught_by_checksum_and_store_intact(self):
        disk = FaultyDisk(FaultPlan(seed=1, bit_rot_rate=1.0))
        page_id = disk.allocate_page()
        write_marker(disk, page_id, b"payload")
        with pytest.raises(ChecksumError):
            disk.read_page(page_id)
        # The rot hit the in-flight copy only; a clean retry succeeds.
        disk.faults.plan = FaultPlan()
        assert disk.read_page(page_id).data[:7] == b"payload"

    def test_torn_write_fails_persistently(self):
        disk = FaultyDisk(FaultPlan(seed=3, torn_write_rate=1.0))
        page_id = disk.allocate_page()
        # Non-constant full-page payload: any tear point changes the bytes.
        write_marker(
            disk, page_id, bytes(i % 251 + 1 for i in range(disk.page_size))
        )
        for _ in range(3):
            with pytest.raises(ChecksumError):
                disk.read_page(page_id)
        assert not disk.verify_page(page_id)

    def test_same_seed_same_fault_sequence(self):
        outcomes = []
        for _ in range(2):
            disk = FaultyDisk(FaultPlan(seed=9, read_error_rate=0.3))
            page_id = disk.allocate_page()
            run = []
            for _ in range(50):
                try:
                    disk.read_page(page_id)
                    run.append(True)
                except TransientReadError:
                    run.append(False)
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert False in outcomes[0] and True in outcomes[0]

    def test_transient_faults_leave_read_counts_unchanged(self):
        # The paper's metric counts successful page transfers; a plan of
        # transient faults must not perturb it.
        clean = DiskManager(fault_plan=FaultPlan())
        faulty = FaultyDisk(FaultPlan(seed=5, read_error_rate=0.2, bit_rot_rate=0.1))
        for disk in (clean, faulty):
            page_id = disk.allocate_page()
            write_marker(disk, page_id, b"data")
            pool = BufferPool(disk, 10)
            for _ in range(25):
                pool.fetch_page(page_id)
            # Re-fetch through fresh pools to force physical reads.
            for _ in range(4):
                pool = BufferPool(disk, 10)
                pool.fetch_page(page_id)
        assert clean.stats.reads == faulty.stats.reads
        assert faulty.stats.faults_injected > 0


class TestBufferRetry:
    def test_retry_absorbs_intermittent_faults(self):
        disk = FaultyDisk(FaultPlan(seed=2, read_error_rate=0.4))
        page_id = disk.allocate_page()
        write_marker(disk, page_id, b"resilient")
        survived = 0
        for _ in range(30):
            pool = BufferPool(disk, 4)
            page = pool.fetch_page(page_id)
            assert page.data[:9] == b"resilient"
            survived += 1
        assert survived == 30
        assert disk.stats.faults_injected > 0

    def test_retries_counted(self):
        disk = FaultyDisk(FaultPlan(seed=2, read_error_rate=0.4))
        page_id = disk.allocate_page()
        total_retries = 0
        for _ in range(30):
            pool = BufferPool(disk, 4)
            pool.fetch_page(page_id)
            total_retries += pool.retries
        assert total_retries > 0
        assert total_retries == disk.stats.faults_injected

    def test_persistent_corruption_propagates(self):
        disk = DiskManager(fault_plan=FaultPlan())
        page_id = disk.allocate_page()
        disk.tamper_page(page_id, b"\xee" * disk.page_size)  # medium error
        pool = BufferPool(disk, 4)
        with pytest.raises(ChecksumError):
            pool.fetch_page(page_id)
        assert pool.retries == MAX_READ_RETRIES

    def test_env_plan_reaches_new_disks(self, monkeypatch):
        monkeypatch.setenv(FAULT_READ_ERROR_ENV, "1.0")
        disk = DiskManager()
        page_id = disk.allocate_page()
        with pytest.raises(TransientReadError):
            disk.read_page(page_id)
