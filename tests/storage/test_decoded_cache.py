"""Tests for :mod:`repro.storage.cache` (the decoded-object cache)."""

import pytest

from repro.storage import BufferPool, DecodedCache, DiskManager, Page


def make_page(page_id=1, size=64):
    return Page(page_id, size=size)


class TestBasics:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            DecodedCache(-1)

    def test_miss_then_hit(self):
        cache = DecodedCache(4)
        page = make_page()
        calls = []

        def decode(p):
            calls.append(p.page_id)
            return ["decoded"]

        first = cache.get_or_decode("kind", page, decode)
        second = cache.get_or_decode("kind", page, decode)
        assert first is second
        assert calls == [1]
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_kinds_are_independent(self):
        cache = DecodedCache(4)
        page = make_page()
        cache.put("a", page, [1])
        cache.put("b", page, [2])
        assert cache.get("a", page) == [1]
        assert cache.get("b", page) == [2]

    def test_capacity_zero_disables(self):
        cache = DecodedCache(0)
        page = make_page()
        assert not cache.enabled
        cache.put("kind", page, ["value"])
        assert cache.get("kind", page) is None
        assert len(cache) == 0
        calls = []
        cache.get_or_decode("kind", page, lambda p: calls.append(1) or [1])
        cache.get_or_decode("kind", page, lambda p: calls.append(1) or [1])
        assert len(calls) == 2  # decoded every time, never stored


class TestVersionKeying:
    def test_write_strands_stale_entry(self):
        cache = DecodedCache(4)
        page = make_page()
        cache.put("kind", page, ["old"])
        page.write_u8(0, 7)  # bumps the version
        assert cache.get("kind", page) is None

    def test_put_drops_superseded_version(self):
        cache = DecodedCache(4)
        page = make_page()
        cache.put("kind", page, ["v0"])
        page.write_u8(0, 7)
        cache.put("kind", page, ["v1"])
        assert cache.get("kind", page) == ["v1"]
        assert len(cache) == 1  # the v0 entry did not linger
        cache.check_invariants()

    def test_pop_then_reput_across_a_write(self):
        cache = DecodedCache(4)
        page = make_page()
        cache.put("kind", page, ["entries"])
        value = cache.pop("kind", page)
        assert value == ["entries"]
        assert cache.get("kind", page) is None
        page.write_u8(0, 1)
        value.append("new")
        cache.put("kind", page, value)
        assert cache.get("kind", page) == ["entries", "new"]


class TestEviction:
    def test_lru_past_capacity(self):
        cache = DecodedCache(2)
        pages = [make_page(i) for i in range(3)]
        for page in pages:
            cache.put("kind", page, [page.page_id])
        assert cache.get("kind", pages[0]) is None  # oldest evicted
        assert cache.get("kind", pages[1]) == [1]
        assert cache.get("kind", pages[2]) == [2]
        cache.check_invariants()

    def test_hit_refreshes_recency(self):
        cache = DecodedCache(2)
        pages = [make_page(i) for i in range(3)]
        cache.put("kind", pages[0], [0])
        cache.put("kind", pages[1], [1])
        cache.get("kind", pages[0])  # page 0 is now most recent
        cache.put("kind", pages[2], [2])
        assert cache.get("kind", pages[0]) == [0]
        assert cache.get("kind", pages[1]) is None

    def test_evict_page_drops_all_kinds_and_versions(self):
        cache = DecodedCache(8)
        page = make_page(5)
        cache.put("a", page, [1])
        cache.put("b", page, [2])
        other = make_page(6)
        cache.put("a", other, [3])
        cache.evict_page(5)
        assert cache.get("a", page) is None
        assert cache.get("b", page) is None
        assert cache.get("a", other) == [3]
        cache.check_invariants()

    def test_clear(self):
        cache = DecodedCache(8)
        cache.put("a", make_page(1), [1])
        cache.clear()
        assert len(cache) == 0
        cache.check_invariants()


class TestPoolIntegration:
    def test_pool_owns_a_cache_with_default_capacity(self):
        disk = DiskManager(page_size=64)
        pool = BufferPool(disk, capacity=10, decoded_capacity=None)
        assert pool.decoded.capacity >= 10

    def test_env_knob_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECODED_CACHE", "off")
        disk = DiskManager(page_size=64)
        pool = BufferPool(disk, capacity=10)
        assert not pool.decoded.enabled

    def test_env_knob_sets_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECODED_CACHE", "7")
        disk = DiskManager(page_size=64)
        pool = BufferPool(disk, capacity=10)
        assert pool.decoded.capacity == 7

    def test_explicit_capacity_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECODED_CACHE", "7")
        disk = DiskManager(page_size=64)
        pool = BufferPool(disk, capacity=10, decoded_capacity=3)
        assert pool.decoded.capacity == 3

    def test_frame_eviction_drops_decoded_entries(self):
        disk = DiskManager(page_size=64)
        pids = [disk.allocate_page() for _ in range(4)]
        pool = BufferPool(disk, capacity=2, decoded_capacity=16)
        for pid in pids[:2]:
            page = pool.fetch_page(pid)
            pool.decoded.put("kind", page, [pid])
        # Fill the pool past capacity: both original frames get evicted.
        pool.fetch_page(pids[2])
        pool.fetch_page(pids[3])
        pool.check_invariants()
        for pid in pids[:2]:
            page = pool.fetch_page(pid)  # re-read: a fresh version-0 Page
            assert pool.decoded.get("kind", page) is None

    def test_reread_page_cannot_alias_previous_incarnation(self):
        """Evict a page, rewrite it via a second pool, re-read it: the
        decoded cache must not serve the stale decoding (ABA hazard)."""
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page()
        pool = BufferPool(disk, capacity=1, decoded_capacity=16)
        page = pool.fetch_page(pid)
        pool.decoded.put("kind", page, ["stale"])
        other_pid = disk.allocate_page()
        pool.fetch_page(other_pid)  # evicts pid (and its decoded entries)
        writer = BufferPool(disk, capacity=1, decoded_capacity=0)
        writer.fetch_page(pid).write_u8(0, 9)
        writer.flush_all()
        fresh = pool.fetch_page(pid)  # version 0 again — but entry is gone
        assert pool.decoded.get("kind", fresh) is None

class TestZeroAccessCounters:
    def test_hit_rate_zero_access_is_zero(self):
        assert DecodedCache(4).hit_rate == 0.0
