"""Tests for :mod:`repro.storage.serialization`."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import SerializationError
from repro.storage.serialization import (
    POSTING_ENTRY_SIZE,
    decode_heap_record,
    decode_posting_key,
    decode_posting_leaf,
    decode_posting_value,
    decode_uda_payload,
    encode_heap_record,
    encode_posting_key,
    encode_posting_value,
    encode_uda_payload,
    heap_record_size,
    quantize_prob,
    uda_payload_size,
)


class TestUdaPayload:
    def test_round_trip(self):
        items = np.array([1, 5, 9], dtype=np.int64)
        probs = np.array([0.25, 0.5, 0.25], dtype=np.float64)
        payload = encode_uda_payload(items, probs)
        assert len(payload) == uda_payload_size(3)
        pairs, end = decode_uda_payload(payload)
        assert end == len(payload)
        assert pairs["item"].tolist() == [1, 5, 9]
        assert pairs["prob"].tolist() == pytest.approx([0.25, 0.5, 0.25])

    def test_empty_payload(self):
        payload = encode_uda_payload(np.empty(0, dtype=np.int64), np.empty(0))
        pairs, end = decode_uda_payload(payload)
        assert len(pairs) == 0
        assert end == 2

    def test_length_mismatch(self):
        with pytest.raises(SerializationError):
            encode_uda_payload(np.array([1, 2]), np.array([0.5]))

    def test_truncated_buffer(self):
        payload = encode_uda_payload(np.array([1]), np.array([1.0]))
        with pytest.raises(SerializationError):
            decode_uda_payload(payload[:-2])

    def test_decode_at_offset(self):
        payload = encode_uda_payload(np.array([3]), np.array([1.0]))
        buffer = b"\x00" * 7 + payload
        pairs, end = decode_uda_payload(buffer, offset=7)
        assert pairs["item"].tolist() == [3]
        assert end == len(buffer)


class TestHeapRecord:
    def test_round_trip(self):
        record = encode_heap_record(
            42, np.array([0, 2], dtype=np.int64), np.array([0.5, 0.5])
        )
        assert len(record) == heap_record_size(2)
        tid, pairs, end = decode_heap_record(record)
        assert tid == 42
        assert pairs["item"].tolist() == [0, 2]
        assert end == len(record)


class TestPostingKeys:
    def test_descending_probability_order(self):
        high = encode_posting_key(0.9, 5)
        low = encode_posting_key(0.1, 5)
        assert high < low  # byte order == descending probability

    def test_tid_breaks_ties_ascending(self):
        first = encode_posting_key(0.5, 3)
        second = encode_posting_key(0.5, 7)
        assert first < second

    def test_round_trip(self):
        prob, tid = decode_posting_key(encode_posting_key(0.625, 99))
        assert tid == 99
        assert prob == pytest.approx(0.625, abs=1e-9)

    def test_quantize_bounds(self):
        assert quantize_prob(0.0) == 0
        assert quantize_prob(1.0) == 0xFFFFFFFF
        with pytest.raises(SerializationError):
            quantize_prob(1.5)
        with pytest.raises(SerializationError):
            quantize_prob(-0.1)

    def test_value_round_trip(self):
        value = np.float32(0.3)
        assert decode_posting_value(encode_posting_value(float(value))) == value

    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 1.0, allow_nan=False, width=32),
                st.integers(0, 2**31),
            ),
            min_size=2,
            max_size=40,
        )
    )
    def test_byte_order_equals_logical_order(self, postings):
        keys = [encode_posting_key(p, t) for p, t in postings]
        logical = sorted(
            range(len(postings)),
            key=lambda i: (-quantize_prob(postings[i][0]), postings[i][1]),
        )
        byte_order = sorted(range(len(postings)), key=lambda i: keys[i])
        assert byte_order == logical


class TestPostingLeafDecode:
    def test_round_trip(self):
        entries = [(0.9, 1), (0.5, 2), (0.25, 3)]
        run = b"".join(
            encode_posting_key(p, t) + encode_posting_value(p)
            for p, t in entries
        )
        tids, probs = decode_posting_leaf(run)
        assert tids.tolist() == [1, 2, 3]
        assert probs.tolist() == pytest.approx([0.9, 0.5, 0.25])

    def test_invalid_length(self):
        with pytest.raises(SerializationError):
            decode_posting_leaf(b"\x00" * (POSTING_ENTRY_SIZE + 1))

    def test_empty_run(self):
        tids, probs = decode_posting_leaf(b"")
        assert len(tids) == 0
        assert len(probs) == 0
