"""Kill-point recovery, parametrized per storage backend.

The recovery contract of ``docs/fault-model.md`` — reattach either
recovers exactly or fails loudly, never silently wrong — was established
on the simulated backend.  The backend refactor claims the whole
CRC/fault/recovery machinery lives *above* the backend; this battery
holds it to that: the same truncation and torn-page sweeps run with the
reloaded disk placed on each registered backend via ``backend_scope``.

A condensed sweep (sampled kill points) keeps the three-backend matrix
affordable; the exhaustive sweep still runs on the default backend in
``tests/integration/test_crash_recovery.py``.
"""

import struct

import pytest

from repro.core.queries import EqualityThresholdQuery, EqualityTopKQuery
from repro.datagen import uniform_dataset
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree
from repro.storage import BACKEND_NAMES, backend_scope

from tests.integration.test_crash_recovery import (
    check_recovered_or_loud,
    page_record_offsets,
    reference_answers,
)

_U32 = struct.Struct("<I")


@pytest.fixture(scope="module")
def relation():
    return uniform_dataset(num_tuples=250, seed=47)


@pytest.fixture(scope="module")
def queries(relation):
    qs = []
    for tid in (0, 11):
        q = relation.uda_of(tid)
        qs.append(EqualityThresholdQuery(q, 0.15))
        qs.append(EqualityTopKQuery(q, 5))
    return qs


def build_and_save(cls, relation, path):
    index = cls(len(relation.domain))
    index.build(relation)
    index.save(path)
    return index


def sampled(offsets, count=8):
    stride = max(1, len(offsets) // count)
    picks = list(offsets[::stride])
    if offsets[-1] not in picks:  # always include the complete image
        picks.append(offsets[-1])
    return picks


@pytest.mark.parametrize("name", BACKEND_NAMES)
class TestKillPointsPerBackend:
    @pytest.mark.parametrize("cls", [ProbabilisticInvertedIndex, PDRTree])
    def test_truncation_recovers_or_fails_loudly(
        self, name, cls, relation, queries, tmp_path
    ):
        index = build_and_save(cls, relation, tmp_path / "index.reprodb")
        image = (tmp_path / "index.reprodb").read_bytes()
        expected = reference_answers(relation, queries)
        offsets = page_record_offsets(image, index.disk.page_size)
        recovered = loud = 0
        with backend_scope(name):
            for kill_point in sampled(offsets):
                torn = tmp_path / "torn.reprodb"
                torn.write_bytes(image[:kill_point])
                ok, failed = check_recovered_or_loud(
                    lambda: cls.load(torn), relation, queries, expected
                )
                recovered += ok
                loud += failed
            # The reloaded index really sits on the backend under test.
            reopened = cls.load(tmp_path / "index.reprodb")
            assert reopened.disk.backend.name == name
        assert recovered >= 1, f"{name}: even the complete image failed"
        assert recovered + loud == len(sampled(offsets))

    def test_torn_page_recovers_or_fails_loudly(
        self, name, relation, queries, tmp_path
    ):
        path = tmp_path / "index.reprodb"
        index = build_and_save(ProbabilisticInvertedIndex, relation, path)
        image = bytearray(path.read_bytes())
        expected = reference_answers(relation, queries)
        heap_pages = set(index._heap.state()["page_ids"])
        offsets = page_record_offsets(bytes(image), index.disk.page_size)
        recovered = loud = 0
        with backend_scope(name):
            for start in sampled(offsets[:-1], count=6):
                (page_id,) = _U32.unpack_from(image, start)
                torn = bytearray(image)
                torn[start + 8 + 20] ^= 0xFF  # corrupt the payload
                torn_path = tmp_path / "torn.reprodb"
                torn_path.write_bytes(bytes(torn))
                ok, failed = check_recovered_or_loud(
                    lambda: ProbabilisticInvertedIndex.load(torn_path),
                    relation,
                    queries,
                    expected,
                )
                recovered += ok
                loud += failed
                if page_id in heap_pages:
                    assert failed, (
                        f"{name}: torn heap page {page_id} must fail loudly"
                    )
                else:
                    assert ok, (
                        f"{name}: torn posting page {page_id} must rebuild"
                    )
        assert recovered + loud == len(sampled(offsets[:-1], count=6))
