"""Tests for :mod:`repro.storage.buffer` (clock replacement)."""

import pytest

from repro.core import BufferPoolError
from repro.storage import BufferPool, DiskManager


@pytest.fixture()
def disk():
    return DiskManager(page_size=64)


def fill_disk(disk, count):
    return [disk.allocate_page() for _ in range(count)]


class TestBasics:
    def test_capacity_validation(self, disk):
        with pytest.raises(BufferPoolError):
            BufferPool(disk, capacity=0)

    def test_miss_then_hit(self, disk):
        (pid,) = fill_disk(disk, 1)
        pool = BufferPool(disk, capacity=2)
        pool.fetch_page(pid)
        pool.fetch_page(pid)
        assert pool.misses == 1
        assert pool.hits == 1
        assert pool.hit_ratio == 0.5

    def test_miss_costs_one_physical_read(self, disk):
        (pid,) = fill_disk(disk, 1)
        pool = BufferPool(disk, capacity=2)
        before = disk.stats.snapshot()
        pool.fetch_page(pid)
        pool.fetch_page(pid)
        pool.fetch_page(pid)
        assert disk.stats.delta_since(before).reads == 1

    def test_new_page_needs_no_read(self, disk):
        pool = BufferPool(disk, capacity=2)
        before = disk.stats.snapshot()
        page = pool.new_page()
        assert disk.stats.delta_since(before).reads == 0
        assert pool.is_resident(page.page_id)

    def test_capacity_never_exceeded(self, disk):
        pids = fill_disk(disk, 10)
        pool = BufferPool(disk, capacity=3)
        for pid in pids:
            pool.fetch_page(pid)
        assert pool.num_resident <= 3


class TestEviction:
    def test_clock_prefers_unreferenced(self, disk):
        pids = fill_disk(disk, 4)
        pool = BufferPool(disk, capacity=3)
        pool.fetch_page(pids[0])
        pool.fetch_page(pids[1])
        pool.fetch_page(pids[2])
        # Re-reference page 0 so its second-chance bit is set again.
        pool.fetch_page(pids[0])
        pool.fetch_page(pids[3])  # forces an eviction
        assert pool.num_resident == 3
        assert pool.is_resident(pids[3])

    def test_dirty_eviction_writes_back(self, disk):
        pids = fill_disk(disk, 4)
        pool = BufferPool(disk, capacity=2)
        page = pool.fetch_page(pids[0])
        page.write_u8(0, 0x7F)
        pool.mark_dirty(pids[0])
        before = disk.stats.snapshot()
        pool.fetch_page(pids[1])
        pool.fetch_page(pids[2])
        pool.fetch_page(pids[3])
        assert disk.stats.delta_since(before).writes >= 1
        # The modified byte survived eviction.
        fresh = BufferPool(disk, capacity=2)
        assert fresh.fetch_page(pids[0]).read_u8(0) == 0x7F

    def test_clean_eviction_writes_nothing(self, disk):
        pids = fill_disk(disk, 4)
        pool = BufferPool(disk, capacity=2)
        before = disk.stats.snapshot()
        for pid in pids:
            pool.fetch_page(pid)
        assert disk.stats.delta_since(before).writes == 0

    def test_pinned_pages_survive(self, disk):
        pids = fill_disk(disk, 5)
        pool = BufferPool(disk, capacity=2)
        pool.fetch_page(pids[0], pin=True)
        for pid in pids[1:]:
            pool.fetch_page(pid)
        assert pool.is_resident(pids[0])

    def test_all_pinned_raises(self, disk):
        pids = fill_disk(disk, 3)
        pool = BufferPool(disk, capacity=2)
        pool.fetch_page(pids[0], pin=True)
        pool.fetch_page(pids[1], pin=True)
        with pytest.raises(BufferPoolError, match="pinned"):
            pool.fetch_page(pids[2])

    def test_unpin_allows_eviction(self, disk):
        pids = fill_disk(disk, 3)
        pool = BufferPool(disk, capacity=2)
        pool.fetch_page(pids[0], pin=True)
        pool.fetch_page(pids[1])
        pool.unpin_page(pids[0])
        pool.fetch_page(pids[2])  # must not raise
        assert pool.num_resident == 2


class TestErrors:
    def test_mark_dirty_nonresident(self, disk):
        pool = BufferPool(disk, capacity=2)
        with pytest.raises(BufferPoolError):
            pool.mark_dirty(0)

    def test_unpin_nonresident(self, disk):
        pool = BufferPool(disk, capacity=2)
        with pytest.raises(BufferPoolError):
            pool.unpin_page(0)

    def test_unpin_unpinned(self, disk):
        (pid,) = fill_disk(disk, 1)
        pool = BufferPool(disk, capacity=2)
        pool.fetch_page(pid)
        with pytest.raises(BufferPoolError):
            pool.unpin_page(pid)

    def test_flush_nonresident(self, disk):
        pool = BufferPool(disk, capacity=2)
        with pytest.raises(BufferPoolError):
            pool.flush_page(0)


class TestClockBookkeeping:
    def test_invariants_hold_through_heavy_eviction(self, disk):
        pids = fill_disk(disk, 12)
        pool = BufferPool(disk, capacity=3)
        for _ in range(3):
            for pid in pids:
                pool.fetch_page(pid)
                pool.check_invariants()

    def test_clock_order_never_grows_past_capacity(self, disk):
        pids = fill_disk(disk, 20)
        pool = BufferPool(disk, capacity=4)
        for pid in pids:
            pool.fetch_page(pid)
        assert len(pool._clock_order) == pool.num_resident == 4
        assert set(pool._clock_order) == set(pool._frames)

    def test_refetch_after_eviction_keeps_clock_consistent(self, disk):
        pids = fill_disk(disk, 4)
        pool = BufferPool(disk, capacity=2)
        pool.fetch_page(pids[0])
        pool.fetch_page(pids[1])
        pool.fetch_page(pids[2])  # evicts one of the first two
        pool.fetch_page(pids[0])  # refetch — may or may not be resident
        pool.fetch_page(pids[3])
        pool.check_invariants()
        assert pool.num_resident == 2

    def test_invariants_with_pins_and_unpins(self, disk):
        pids = fill_disk(disk, 6)
        pool = BufferPool(disk, capacity=3)
        pool.fetch_page(pids[0], pin=True)
        pool.fetch_page(pids[1])
        pool.fetch_page(pids[2])
        pool.check_invariants()
        pool.fetch_page(pids[3])
        pool.check_invariants()
        pool.unpin_page(pids[0])
        pool.fetch_page(pids[4])
        pool.fetch_page(pids[5])
        pool.check_invariants()


class TestFlush:
    def test_flush_all_persists_dirty_pages(self, disk):
        pool = BufferPool(disk, capacity=4)
        page = pool.new_page()
        page.write_u8(3, 9)
        pool.mark_dirty(page.page_id)
        pool.flush_all()
        assert disk.read_page(page.page_id).read_u8(3) == 9

    def test_flush_clears_dirty_bit(self, disk):
        pool = BufferPool(disk, capacity=4)
        page = pool.new_page()
        pool.mark_dirty(page.page_id)
        pool.flush_page(page.page_id)
        before = disk.stats.snapshot()
        pool.flush_page(page.page_id)  # second flush: nothing to write
        assert disk.stats.delta_since(before).writes == 0


class TestFetchMany:
    def test_duplicates_fetched_and_pinned_once(self, disk):
        pids = fill_disk(disk, 3)
        pool = BufferPool(disk, capacity=4)
        got = pool.fetch_many([pids[0], pids[1], pids[0]], pin=True)
        assert got == [pids[0], pids[1]]  # pin order, dup collapsed
        assert pool.pinned_page_ids() == sorted(got)
        # Each entry in the returned list owes exactly one unpin.
        for pid in got:
            pool.unpin_page(pid)
        assert pool.pinned_page_ids() == []

    def test_unpinned_fetch_returns_empty_list(self, disk):
        pids = fill_disk(disk, 3)
        pool = BufferPool(disk, capacity=4)
        assert pool.fetch_many(pids) == []
        assert pool.num_resident == 3
        assert pool.pinned_page_ids() == []

    def test_reserve_budget_stops_pinning(self, disk):
        pids = fill_disk(disk, 6)
        pool = BufferPool(disk, capacity=4)
        got = pool.fetch_many(pids, pin=True, reserve=2)
        # Only capacity - reserve = 2 frames may hold pins.
        assert got == pids[:2]
        assert pool.pinned_page_ids() == sorted(pids[:2])
        for pid in got:
            pool.unpin_page(pid)

    def test_already_pinned_page_costs_no_budget(self, disk):
        pids = fill_disk(disk, 4)
        pool = BufferPool(disk, capacity=4)
        pool.fetch_page(pids[0], pin=True)
        # pids[0] is already pinned: re-pinning it must not count against
        # the reserve budget, so one *new* pin still fits.
        got = pool.fetch_many([pids[0], pids[1], pids[2]], pin=True, reserve=2)
        assert got == [pids[0], pids[1]]
        for pid in got:
            pool.unpin_page(pid)
        pool.unpin_page(pids[0])
        assert pool.pinned_page_ids() == []

    def test_resident_pages_are_hits(self, disk):
        pids = fill_disk(disk, 2)
        pool = BufferPool(disk, capacity=4)
        pool.fetch_page(pids[0])
        before = disk.stats.snapshot()
        pool.fetch_many(pids, pin=True)
        assert disk.stats.delta_since(before).reads == 1  # only pids[1]
        for pid in pids:
            pool.unpin_page(pid)


class TestCounters:
    def test_hit_ratio_zero_access_is_zero(self, disk):
        pool = BufferPool(disk, capacity=4)
        assert pool.hit_ratio == 0.0

    def test_pinned_page_ids_sorted(self, disk):
        pids = fill_disk(disk, 3)
        pool = BufferPool(disk, capacity=4)
        pool.fetch_page(pids[2], pin=True)
        pool.fetch_page(pids[0], pin=True)
        pool.fetch_page(pids[1])
        assert pool.pinned_page_ids() == sorted([pids[0], pids[2]])
