"""Per-component I/O attribution (allocation tags)."""

import pytest

from repro.bench import IndexUnderTest, measure_query
from repro.core import EqualityThresholdQuery, PageError
from repro.datagen import uniform_dataset
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree
from repro.storage import BufferPool, DiskManager


class TestDiskTags:
    def test_tag_recorded_at_allocation(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page(tag="postings")
        assert disk.tag_of(pid) == "postings"

    def test_default_tag(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page()
        assert disk.tag_of(pid) == "untagged"

    def test_unknown_page(self):
        with pytest.raises(PageError):
            DiskManager().tag_of(7)

    def test_reads_attributed(self):
        disk = DiskManager(page_size=64)
        a = disk.allocate_page(tag="alpha")
        b = disk.allocate_page(tag="beta")
        disk.read_page(a)
        disk.read_page(a)
        disk.read_page(b)
        assert disk.snapshot_tags() == {"alpha": 2, "beta": 1}

    def test_buffer_pool_passes_tag(self):
        disk = DiskManager(page_size=64)
        pool = BufferPool(disk, capacity=4)
        page = pool.new_page(tag="gamma")
        assert disk.tag_of(page.page_id) == "gamma"

    def test_deallocation_drops_tag(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page(tag="alpha")
        disk.deallocate_page(pid)
        with pytest.raises(PageError):
            disk.tag_of(pid)


class TestQueryBreakdown:
    @pytest.fixture(scope="class")
    def relation(self):
        return uniform_dataset(num_tuples=600, seed=4)

    def test_inverted_breakdown_separates_lists_and_tuples(self, relation):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        under_test = IndexUnderTest("Inv", index, "highest_prob_first")
        q = relation.uda_of(0)
        measurement = measure_query(under_test, EqualityThresholdQuery(q, 0.3))
        assert set(measurement.reads_by_tag) <= {"postings", "tuples"}
        assert measurement.reads_by_tag.get("postings", 0) > 0
        assert sum(measurement.reads_by_tag.values()) == measurement.reads

    def test_brute_force_touches_no_tuple_pages(self, relation):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        under_test = IndexUnderTest("Inv", index, "inv_index_search")
        q = relation.uda_of(0)
        measurement = measure_query(under_test, EqualityThresholdQuery(q, 0.3))
        assert "tuples" not in measurement.reads_by_tag

    def test_pdr_reads_only_tree_pages(self, relation):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        under_test = IndexUnderTest("PDR", tree)
        q = relation.uda_of(0)
        measurement = measure_query(under_test, EqualityThresholdQuery(q, 0.3))
        assert set(measurement.reads_by_tag) == {"pdr-node"}
