"""Tests for :mod:`repro.storage.persistence` and index save/load."""

import io

import numpy as np
import pytest

from repro.core import (
    EqualityThresholdQuery,
    EqualityTopKQuery,
    QueryError,
    SerializationError,
    UncertainAttribute,
)
from repro.datagen import gen3_dataset, uniform_dataset
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree, PDRTreeConfig
from repro.storage import BufferPool, DiskManager
from repro.storage.persistence import (
    MAGIC,
    MAGIC_V1,
    load_disk,
    load_disk_from_path,
    save_disk,
    save_disk_to_path,
    scan_disk,
)


class TestDiskRoundTrip:
    def test_pages_and_metadata_survive(self):
        disk = DiskManager(page_size=128)
        pids = [disk.allocate_page() for _ in range(5)]
        for pid in pids:
            page = disk.read_page(pid)
            page.write_u32(0, pid * 7 + 1)
            disk.write_page(page)
        disk.deallocate_page(pids[2])  # leave an id gap
        buffer = io.BytesIO()
        save_disk(buffer, disk, {"hello": "world"})
        buffer.seek(0)
        loaded, metadata = load_disk(buffer)
        assert metadata == {"hello": "world"}
        assert loaded.page_size == 128
        assert loaded.num_pages == 4
        for pid in pids:
            if pid == pids[2]:
                continue
            assert loaded.read_page(pid).read_u32(0) == pid * 7 + 1
        # Fresh allocations continue past the old id space.
        assert loaded.allocate_page() == disk._next_page_id

    def test_bad_magic_rejected(self):
        buffer = io.BytesIO(b"NOTADB00" + b"\x00" * 100)
        with pytest.raises(SerializationError):
            load_disk(buffer)

    def test_truncated_file_rejected(self):
        disk = DiskManager(page_size=64)
        disk.allocate_page()
        buffer = io.BytesIO()
        save_disk(buffer, disk, {})
        truncated = io.BytesIO(buffer.getvalue()[:-10])
        with pytest.raises(SerializationError):
            load_disk(truncated)

    def test_tags_survive_round_trip(self):
        disk = DiskManager(page_size=64)
        disk.allocate_page(tag="tuples")
        disk.allocate_page(tag="postings")
        buffer = io.BytesIO()
        save_disk(buffer, disk, {})
        buffer.seek(0)
        loaded, _ = load_disk(buffer)
        assert loaded.tag_of(0) == "tuples"
        assert loaded.tag_of(1) == "postings"

    def test_checksums_survive_round_trip(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate_page()
        page = disk.read_page(pid)
        page.write_u32(0, 99)
        disk.write_page(page)
        buffer = io.BytesIO()
        save_disk(buffer, disk, {})
        buffer.seek(0)
        loaded, _ = load_disk(buffer)
        assert loaded.checksum_of(pid) == disk.checksum_of(pid)
        assert loaded.verify_page(pid)

    def test_v1_image_still_loads(self):
        # A pre-checksum image: v1 magic, no CRC column, no tags.
        import struct

        disk = DiskManager(page_size=64)
        pid = disk.allocate_page()
        page = disk.read_page(pid)
        page.write_u32(0, 7)
        disk.write_page(page)
        raw = io.BytesIO()
        envelope = b'{"next_page_id": 1, "structure": {"old": true}}'
        raw.write(MAGIC_V1)
        raw.write(struct.pack("<I", 64))
        raw.write(struct.pack("<I", len(envelope)))
        raw.write(envelope)
        raw.write(struct.pack("<I", 1))
        raw.write(struct.pack("<I", pid))
        raw.write(disk.raw_page_bytes(pid))
        raw.seek(0)
        loaded, metadata = load_disk(raw)
        assert metadata == {"old": True}
        assert loaded.read_page(pid).read_u32(0) == 7
        assert loaded.tag_of(pid) == "untagged"


class TestScanDisk:
    def make_image(self, num_pages=4):
        disk = DiskManager(page_size=64)
        for i in range(num_pages):
            pid = disk.allocate_page(tag="tuples" if i == 0 else "postings")
            page = disk.read_page(pid)
            page.write_u32(0, i + 1)
            disk.write_page(page)
        buffer = io.BytesIO()
        save_disk(buffer, disk, {"kind": "test"})
        return disk, buffer.getvalue()

    def test_clean_image(self):
        _, image = self.make_image()
        loaded, metadata, report = scan_disk(io.BytesIO(image))
        assert report.clean
        assert metadata == {"kind": "test"}
        assert loaded.num_pages == 4

    def test_detects_torn_page(self):
        disk, image = self.make_image()
        # Flip a byte inside page 2's payload (records are trailing,
        # 4 + 4 + 64 bytes each).
        records_start = len(image) - 4 * (4 + 4 + 64)
        offset = records_start + 2 * (4 + 4 + 64) + 8 + 10
        damaged = bytearray(image)
        damaged[offset] ^= 0xFF
        loaded, _, report = scan_disk(io.BytesIO(bytes(damaged)))
        assert report.corrupt_page_ids == [2]
        assert not report.truncated
        # The corrupt page still raises on a counted read.
        from repro.core.exceptions import ChecksumError

        with pytest.raises(ChecksumError):
            loaded.read_page(2)
        # Intact pages read fine.
        assert loaded.read_page(1).read_u32(0) == 2

    def test_detects_truncation(self):
        _, image = self.make_image()
        loaded, metadata, report = scan_disk(io.BytesIO(image[:-30]))
        assert report.truncated
        assert not report.clean
        assert metadata == {"kind": "test"}
        assert loaded.num_pages == 3  # the last record was torn off

    def test_unreadable_header_still_raises(self):
        with pytest.raises(SerializationError):
            scan_disk(io.BytesIO(b"NOTADB00" + b"\x00" * 64))
        with pytest.raises(SerializationError):
            scan_disk(io.BytesIO(MAGIC))  # header cut short


@pytest.fixture(scope="module")
def relation():
    return uniform_dataset(num_tuples=400, seed=13)


class TestInvertedIndexPersistence:
    def test_round_trip_answers_identical(self, relation, tmp_path):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        path = tmp_path / "index.reprodb"
        index.save(path)
        reopened = ProbabilisticInvertedIndex.load(path)
        q = relation.uda_of(3)
        for query in (EqualityThresholdQuery(q, 0.2), EqualityTopKQuery(q, 7)):
            expected = [(m.tid, m.score) for m in index.execute(query)]
            got = [(m.tid, m.score) for m in reopened.execute(query)]
            assert got == expected

    def test_reopened_index_supports_updates(self, relation, tmp_path):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        path = tmp_path / "index.reprodb"
        index.save(path)
        reopened = ProbabilisticInvertedIndex.load(path)
        new_tid = len(relation)
        reopened.insert(new_tid, UncertainAttribute.from_pairs([(0, 1.0)]))
        q = UncertainAttribute.from_pairs([(0, 1.0)])
        assert new_tid in reopened.execute(
            EqualityThresholdQuery(q, 0.99)
        ).tid_set()
        reopened.delete(new_tid)
        assert new_tid not in reopened.execute(
            EqualityThresholdQuery(q, 0.99)
        ).tid_set()

    def test_wrong_kind_rejected(self, relation, tmp_path):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        path = tmp_path / "tree.reprodb"
        tree.save(path)
        with pytest.raises(QueryError, match="not an inverted index"):
            ProbabilisticInvertedIndex.load(path)


class TestPDRTreePersistence:
    def test_round_trip_answers_identical(self, relation, tmp_path):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        path = tmp_path / "tree.reprodb"
        tree.save(path)
        reopened = PDRTree.load(path)
        assert reopened.height == tree.height
        assert reopened.num_tuples == tree.num_tuples
        q = relation.uda_of(5)
        for query in (EqualityThresholdQuery(q, 0.2), EqualityTopKQuery(q, 9)):
            expected = [(m.tid, m.score) for m in tree.execute(query)]
            got = [(m.tid, m.score) for m in reopened.execute(query)]
            assert got == expected

    def test_config_survives(self, tmp_path):
        relation = gen3_dataset(num_tuples=200, domain_size=40, seed=3)
        config = PDRTreeConfig(
            split_strategy="top_down", divergence="l1", fold_size=8, bits=4
        )
        tree = PDRTree(len(relation.domain), config=config)
        tree.build(relation)
        path = tmp_path / "tree.reprodb"
        tree.save(path)
        reopened = PDRTree.load(path)
        assert reopened.config == config
        assert reopened.codec == tree.codec

    def test_reopened_tree_supports_updates(self, relation, tmp_path):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        path = tmp_path / "tree.reprodb"
        tree.save(path)
        reopened = PDRTree.load(path)
        new_tid = len(relation)
        reopened.insert(new_tid, UncertainAttribute.from_pairs([(1, 1.0)]))
        q = UncertainAttribute.from_pairs([(1, 1.0)])
        assert new_tid in reopened.execute(
            EqualityThresholdQuery(q, 0.99)
        ).tid_set()
        reopened.delete(new_tid)
        assert reopened.num_tuples == tree.num_tuples

    def test_wrong_kind_rejected(self, relation, tmp_path):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        path = tmp_path / "index.reprodb"
        index.save(path)
        with pytest.raises(QueryError, match="not a PDR-tree"):
            PDRTree.load(path)

    def test_save_load_to_path_helpers(self, tmp_path):
        disk = DiskManager(page_size=64)
        disk.allocate_page()
        path = tmp_path / "raw.reprodb"
        save_disk_to_path(path, disk, {"n": 1})
        loaded, metadata = load_disk_from_path(path)
        assert metadata == {"n": 1}
        assert loaded.num_pages == 1
