"""Property-based tests: the buffer pool against a trivial model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.storage import BufferPool, DiskManager


@given(
    capacity=st.integers(1, 8),
    operations=st.lists(
        st.tuples(st.sampled_from(["fetch", "write", "flush"]), st.integers(0, 15)),
        max_size=80,
    ),
)
def test_buffer_pool_matches_direct_disk_model(capacity, operations):
    """Random fetch/write/flush traffic: pool contents always equal the
    model's, residency never exceeds capacity."""
    disk = DiskManager(page_size=16)
    pids = [disk.allocate_page() for _ in range(16)]
    pool = BufferPool(disk, capacity=capacity)
    model = {pid: bytearray(16) for pid in pids}
    counter = 0
    for op, slot in operations:
        pid = pids[slot]
        if op == "fetch":
            page = pool.fetch_page(pid)
            assert bytes(page.data) == bytes(model[pid])
        elif op == "write":
            counter = (counter + 1) % 251
            page = pool.fetch_page(pid)
            page.write_u8(0, counter)
            pool.mark_dirty(pid)
            model[pid][0] = counter
        else:
            pool.flush_all()
        assert pool.num_resident <= capacity
    pool.flush_all()
    for pid in pids:
        assert bytes(disk.read_page(pid).data) == bytes(model[pid])


@given(
    capacity=st.integers(1, 6),
    operations=st.lists(
        st.tuples(
            st.sampled_from(["fetch", "pin", "unpin", "write", "flush"]),
            st.integers(0, 11),
        ),
        max_size=120,
    ),
)
def test_clock_bookkeeping_invariants(capacity, operations):
    """Random fetch/pin/unpin/write/flush traffic (which drives random
    evict/refetch cycles underneath): the frame table, the clock order
    list, and the capacity bound must stay mutually consistent after
    every operation."""
    disk = DiskManager(page_size=16)
    pids = [disk.allocate_page() for _ in range(12)]
    pool = BufferPool(disk, capacity=capacity)
    pinned = set()
    for op, slot in operations:
        pid = pids[slot]
        if op == "fetch":
            if len(pinned) < capacity or pid in pinned:
                pool.fetch_page(pid)
        elif op == "pin":
            if pid not in pinned and len(pinned) < capacity:
                pool.fetch_page(pid, pin=True)
                pinned.add(pid)
        elif op == "unpin":
            if pid in pinned:
                pool.unpin_page(pid)
                pinned.discard(pid)
        elif op == "write":
            if len(pinned) < capacity or pid in pinned:
                page = pool.fetch_page(pid)
                page.write_u8(0, slot)
                pool.mark_dirty(pid)
        else:
            pool.flush_all()
        pool.check_invariants()
        assert pool.num_resident <= capacity
        for resident_pid in pinned:
            assert pool.is_resident(resident_pid)


@given(
    capacity=st.integers(2, 6),
    prefetches=st.lists(
        st.tuples(
            st.lists(st.integers(0, 11), min_size=1, max_size=8),
            st.integers(0, 3),
        ),
        min_size=1,
        max_size=20,
    ),
)
def test_fetch_many_pins_always_balance(capacity, prefetches):
    """Pin-ahead prefetch hygiene: whatever ids, reserve budgets, and
    fault-layer retries occur, unpinning exactly the returned list leaves
    the pool with zero pins — the batch executor's finally-block contract."""
    from repro.storage.faults import FaultPlan, fault_plan

    disk = DiskManager(page_size=16)
    pids = [disk.allocate_page() for _ in range(12)]
    pool = BufferPool(disk, capacity=capacity)
    plan = FaultPlan(seed=5, read_error_rate=0.05, bit_rot_rate=0.02)
    with fault_plan(plan):
        for slots, reserve in prefetches:
            got = pool.fetch_many(
                [pids[slot] for slot in slots], pin=True, reserve=reserve
            )
            for pid in got:
                pool.unpin_page(pid)
            assert pool.pinned_page_ids() == []
            assert pool.num_resident <= capacity
