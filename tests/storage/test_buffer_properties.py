"""Property-based tests: the buffer pool against a trivial model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.storage import BufferPool, DiskManager


@given(
    capacity=st.integers(1, 8),
    operations=st.lists(
        st.tuples(st.sampled_from(["fetch", "write", "flush"]), st.integers(0, 15)),
        max_size=80,
    ),
)
def test_buffer_pool_matches_direct_disk_model(capacity, operations):
    """Random fetch/write/flush traffic: pool contents always equal the
    model's, residency never exceeds capacity."""
    disk = DiskManager(page_size=16)
    pids = [disk.allocate_page() for _ in range(16)]
    pool = BufferPool(disk, capacity=capacity)
    model = {pid: bytearray(16) for pid in pids}
    counter = 0
    for op, slot in operations:
        pid = pids[slot]
        if op == "fetch":
            page = pool.fetch_page(pid)
            assert bytes(page.data) == bytes(model[pid])
        elif op == "write":
            counter = (counter + 1) % 251
            page = pool.fetch_page(pid)
            page.write_u8(0, counter)
            pool.mark_dirty(pid)
            model[pid][0] = counter
        else:
            pool.flush_all()
        assert pool.num_resident <= capacity
    pool.flush_all()
    for pid in pids:
        assert bytes(disk.read_page(pid).data) == bytes(model[pid])
