"""Tests for :mod:`repro.storage.heapfile`."""

import pytest

from repro.core import PageError, RecordTooLargeError
from repro.storage import BufferPool, DiskManager, HeapFile


@pytest.fixture()
def heap():
    disk = DiskManager(page_size=256)
    return HeapFile(BufferPool(disk, capacity=8))


class TestAppendGet:
    def test_round_trip(self, heap):
        rid = heap.append(b"hello world")
        assert heap.get(rid) == b"hello world"

    def test_many_records_multiple_pages(self, heap):
        records = [bytes([i % 251]) * (20 + i % 50) for i in range(60)]
        rids = [heap.append(record) for record in records]
        assert heap.num_pages > 1
        for rid, record in zip(rids, records):
            assert heap.get(rid) == record

    def test_record_too_large(self, heap):
        with pytest.raises(RecordTooLargeError):
            heap.append(b"x" * 300)

    def test_max_size_record_fits(self, heap):
        # page 256 - header 4 - one slot 4 = 248 bytes available.
        rid = heap.append(b"y" * 248)
        assert heap.get(rid) == b"y" * 248

    def test_bad_slot(self, heap):
        rid = heap.append(b"data")
        with pytest.raises(PageError):
            heap.get((rid[0], 99))

    def test_empty_record(self, heap):
        rid = heap.append(b"")
        assert heap.get(rid) == b""


class TestScan:
    def test_scan_in_append_order(self, heap):
        records = [f"record-{i}".encode() for i in range(25)]
        rids = [heap.append(record) for record in records]
        scanned = list(heap.scan())
        assert [rid for rid, _ in scanned] == rids
        assert [data for _, data in scanned] == records

    def test_scan_empty(self, heap):
        assert list(heap.scan()) == []


class TestPersistence:
    def test_survives_pool_replacement(self):
        disk = DiskManager(page_size=256)
        heap = HeapFile(BufferPool(disk, capacity=8))
        rids = [heap.append(f"r{i}".encode()) for i in range(40)]
        heap.flush()
        # A fresh bounded pool re-reads everything from disk.
        heap.pool = BufferPool(disk, capacity=2)
        for i, rid in enumerate(rids):
            assert heap.get(rid) == f"r{i}".encode()

    def test_random_access_costs_at_most_one_read(self):
        disk = DiskManager(page_size=256)
        heap = HeapFile(BufferPool(disk, capacity=8))
        rids = [heap.append(bytes(30)) for _ in range(40)]
        heap.flush()
        heap.pool = BufferPool(disk, capacity=4)
        before = disk.stats.snapshot()
        heap.get(rids[0])
        assert disk.stats.delta_since(before).reads == 1
        before = disk.stats.snapshot()
        heap.get(rids[0])  # buffered now
        assert disk.stats.delta_since(before).reads == 0
