"""Tests for :mod:`repro.storage.backends`.

Three batteries:

* the backend *contract* (KeyError discipline, independent read copies,
  verbatim bytes) over every registered backend;
* the *differential* suite: identical answers, scores, order, reads, and
  per-tag read attribution across backends in measurement mode — the
  property that lets goldens bind to ``simulated`` while the other
  backends stay honest;
* durability: an ``mmap`` store survives close/reopen with its CRC
  accounting intact, and a ``shm`` store is readable through an attached
  handle in another process.
"""

import multiprocessing

import pytest

from repro.bench.harness import IndexUnderTest, measure_query
from repro.core import ConfigError, PageError
from repro.core.exceptions import ChecksumError
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree
from repro.storage import (
    BACKEND_NAMES,
    BackendSpec,
    DiskManager,
    MmapFileBackend,
    Page,
    SharedMemoryBackend,
    SimulatedBackend,
    active_backend_spec,
    backend_scope,
    create_backend,
)

from tests.exec.test_batch import POOL_SIZE, mixed_workload
from tests.invindex.conftest import random_relation


def make_backend(name, tmp_path, page_size=64):
    if name == "mmap":
        return MmapFileBackend(tmp_path / "store.pages", page_size)
    if name == "shm":
        return SharedMemoryBackend(page_size, pages_per_segment=4)
    return SimulatedBackend(page_size)


@pytest.fixture(params=BACKEND_NAMES)
def backend(request, tmp_path):
    instance = make_backend(request.param, tmp_path)
    yield instance
    instance.close()


class TestContract:
    def test_roundtrip(self, backend):
        backend.allocate(0, b"a" * 64)
        backend.allocate(1, b"b" * 64)
        assert backend.read(0) == b"a" * 64
        backend.write(0, b"c" * 64)
        assert backend.read(0) == b"c" * 64
        assert backend.read(1) == b"b" * 64

    def test_unknown_ids_raise_key_error(self, backend):
        with pytest.raises(KeyError):
            backend.read(7)
        with pytest.raises(KeyError):
            backend.write(7, b"x" * 64)
        with pytest.raises(KeyError):
            backend.deallocate(7)

    def test_double_allocate_raises(self, backend):
        backend.allocate(0, bytes(64))
        with pytest.raises(KeyError):
            backend.allocate(0, bytes(64))

    def test_read_returns_independent_copy(self, backend):
        backend.allocate(0, b"x" * 64)
        first = backend.read(0)
        backend.write(0, b"y" * 64)
        assert first == b"x" * 64

    def test_introspection(self, backend):
        for page_id in (3, 1, 2):
            backend.allocate(page_id, bytes(64))
        assert backend.page_ids() == [1, 2, 3]
        assert len(backend) == 3
        assert 2 in backend and 9 not in backend
        backend.deallocate(2)
        assert backend.page_ids() == [1, 3]
        assert 2 not in backend

    def test_slots_are_reused_after_deallocate(self, backend):
        # Ids above pages_per_segment / GROW_SLOTS force slot recycling.
        for page_id in range(6):
            backend.allocate(page_id, bytes([page_id]) * 64)
        backend.deallocate(2)
        backend.allocate(100, b"\xaa" * 64)
        assert backend.read(100) == b"\xaa" * 64
        for page_id in (0, 1, 3, 4, 5):
            assert backend.read(page_id) == bytes([page_id]) * 64

    def test_torn_bytes_stored_verbatim(self, backend):
        backend.allocate(0, b"\x01" * 64)
        torn = b"\x02" * 30 + b"\x01" * 34
        backend.write(0, torn)
        assert backend.read(0) == torn

    def test_close_is_idempotent(self, backend):
        backend.close()
        backend.close()


class TestDiskIntegration:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_disk_over_every_backend(self, name, tmp_path):
        disk = DiskManager(page_size=64, backend=make_backend(name, tmp_path))
        pid = disk.allocate_page(tag="postings")
        page = disk.read_page(pid)
        page.write_u32(0, 77)
        disk.write_page(page)
        assert disk.read_page(pid).read_u32(0) == 77
        assert disk.stats.reads == 2 and disk.stats.writes == 1
        assert disk.reads_by_tag == {"postings": 2}
        assert disk.backend.name == name
        assert name in repr(disk)
        disk.close()

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_checksum_detection_composes(self, name, tmp_path):
        disk = DiskManager(page_size=64, backend=make_backend(name, tmp_path))
        pid = disk.allocate_page()
        disk.tamper_page(pid, b"\xee" * 64)
        with pytest.raises(ChecksumError):
            disk.read_page(pid)
        assert not disk.verify_page(pid)
        assert disk.stats.reads == 0
        disk.close()

    def test_backend_scope_reaches_new_disks(self):
        with backend_scope("shm"):
            assert active_backend_spec() == BackendSpec("shm")
            disk = DiskManager(page_size=64)
            assert disk.backend.name == "shm"
            disk.close()
        assert DiskManager(page_size=64).backend.name == "simulated"

    def test_page_size_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="page size"):
            create_backend(SimulatedBackend(128), page_size=64)

    def test_deallocate_then_read_raises_everywhere(self, backend):
        disk = DiskManager(page_size=64, backend=backend)
        pid = disk.allocate_page()
        disk.deallocate_page(pid)
        with pytest.raises(PageError):
            disk.read_page(pid)
        with pytest.raises(PageError):
            disk.tag_of(pid)


class TestDifferential:
    """Identical measurement-mode results across every backend."""

    @pytest.fixture(scope="class")
    def relation(self):
        return random_relation(250, 12, seed=83)

    @pytest.fixture(scope="class")
    def workload(self, relation):
        return mixed_workload(len(relation.domain), 15, base_seed=19)

    def run_measurements(self, kind, builder, relation, workload, name):
        from repro.exec import ServingExecutor

        with backend_scope(name):
            index = builder(len(relation.domain))
            index.build(relation)
            assert index.disk.backend.name == name
            executor = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)
            under_test = IndexUnderTest(kind, index)
            rows = []
            for query in workload:
                served = executor.execute(query)
                m = measure_query(under_test, query, POOL_SIZE)
                rows.append(
                    (
                        [(x.tid, x.score) for x in served.result.matches],
                        served.reads,
                        dict(served.reads_by_tag),
                        m.reads,
                        dict(m.reads_by_tag),
                    )
                )
            return rows

    @pytest.mark.parametrize(
        "kind,builder",
        [("inverted", ProbabilisticInvertedIndex), ("pdr", PDRTree)],
    )
    def test_backends_agree_in_measure_mode(
        self, kind, builder, relation, workload
    ):
        baseline = self.run_measurements(
            kind, builder, relation, workload, "simulated"
        )
        for name in BACKEND_NAMES[1:]:
            rows = self.run_measurements(kind, builder, relation, workload, name)
            assert rows == baseline, (
                f"{name} diverged from simulated: answers, order, reads, "
                "and reads_by_tag must all be identical"
            )


class TestMmapDurability:
    def test_close_reopen_preserves_pages_and_crcs(self, tmp_path):
        path = tmp_path / "store.pages"
        disk = DiskManager(page_size=64, backend=MmapFileBackend(path, 64))
        pids = [disk.allocate_page(tag=f"t{i}") for i in range(5)]
        for pid in pids:
            page = disk.read_page(pid)
            page.write_u32(0, pid * 11)
            disk.write_page(page)
        checksums = {pid: disk.checksum_of(pid) for pid in pids}
        disk.close()

        reopened = DiskManager(page_size=64, backend=MmapFileBackend(path, 64))
        assert reopened.page_ids() == pids
        for pid in pids:
            assert reopened.verify_page(pid)
            assert reopened.checksum_of(pid) == checksums[pid]
            assert reopened.read_page(pid).read_u32(0) == pid * 11
            assert reopened.tag_of(pid) == f"t{pid - pids[0]}"
        # The id allocator resumes where it left off — no id reuse.
        assert reopened.allocate_page() == pids[-1] + 1
        reopened.close()

    def test_reopen_detects_at_rest_corruption(self, tmp_path):
        path = tmp_path / "store.pages"
        disk = DiskManager(page_size=64, backend=MmapFileBackend(path, 64))
        pid = disk.allocate_page()
        page = disk.read_page(pid)
        page.write_u32(0, 9)
        disk.write_page(page)
        disk.close()
        # Flip a byte in the page file behind the store's back.
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        reopened = DiskManager(page_size=64, backend=MmapFileBackend(path, 64))
        assert not reopened.verify_page(pid)
        with pytest.raises(ChecksumError):
            reopened.read_page(pid)
        reopened.close()

    def test_reopen_page_size_mismatch_rejected(self, tmp_path):
        from repro.core.exceptions import StorageError

        path = tmp_path / "store.pages"
        DiskManager(page_size=64, backend=MmapFileBackend(path, 64)).close()
        with pytest.raises(StorageError, match="page size"):
            MmapFileBackend(path, 128)

    def test_file_without_sidecar_is_a_fresh_store(self, tmp_path):
        path = tmp_path / "store.pages"
        path.write_bytes(b"\xab" * 256)  # crash before close: no sidecar
        backend = MmapFileBackend(path, 64)
        assert len(backend) == 0
        backend.close()


def _read_attached(state, page_id, queue):
    backend = SharedMemoryBackend.attach(state)
    try:
        queue.put(backend.read(page_id))
    finally:
        backend.close()


class TestSharedMemory:
    def test_attach_shares_pages_across_processes(self):
        backend = SharedMemoryBackend(page_size=64, pages_per_segment=4)
        disk = DiskManager(page_size=64, backend=backend)
        pid = disk.allocate_page()
        page = disk.read_page(pid)
        page.data[:5] = b"hello"
        disk.write_page(page)
        queue = multiprocessing.Queue()
        worker = multiprocessing.Process(
            target=_read_attached, args=(backend.attach_state(), pid, queue)
        )
        worker.start()
        data = queue.get(timeout=30)
        worker.join(timeout=30)
        assert data[:5] == b"hello"
        assert worker.exitcode == 0
        disk.close()

    def test_attached_handle_never_unlinks(self):
        owner = SharedMemoryBackend(page_size=64, pages_per_segment=4)
        owner.allocate(0, b"x" * 64)
        attached = SharedMemoryBackend.attach(owner.attach_state())
        assert attached.read(0) == b"x" * 64
        attached.close()  # detach only
        assert owner.read(0) == b"x" * 64  # segments still alive
        owner.close()
