"""WAL kill-point recovery: crash mid-append, replay over the image.

Extends the PR-2 crash harness to the log: an index image is saved, a
run of post-save mutations goes through the WAL, and then the log is
cut — at *every* record boundary (a crash between appends) and torn
mid-record (a crash during one) — before the image is reattached with
:meth:`attach_wal`.

Contract (``docs/mutability.md``): recovery applies exactly the valid
prefix of the log — the index must answer like the durable image plus
the first ``k`` mutations, for whatever ``k`` survived; a torn tail
must set ``recovered`` and never leak a partial record.  The sweep runs
on every registered storage backend.
"""

import pytest

from repro.core.queries import EqualityThresholdQuery, EqualityTopKQuery
from repro.datagen import uniform_dataset
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree
from repro.storage import BACKEND_NAMES, backend_scope
from repro.wal import WriteAheadLog

BASE_TUPLES = 90  # tuples in the durable image
TAIL_TUPLES = 24  # tuples only ever recorded in the WAL


@pytest.fixture(scope="module")
def relation():
    return uniform_dataset(num_tuples=BASE_TUPLES + TAIL_TUPLES, seed=61)


@pytest.fixture(scope="module")
def queries(relation):
    qs = []
    for tid in (0, 5, BASE_TUPLES + 3):
        uda = relation.uda_of(tid)
        qs.append(EqualityThresholdQuery(uda, 0.1))
        qs.append(EqualityTopKQuery(uda, 6))
    return qs


def mutation_run(relation):
    """Post-save mutations: tail inserts with interleaved churn."""
    ops = []
    for offset, tid in enumerate(range(BASE_TUPLES, BASE_TUPLES + TAIL_TUPLES)):
        ops.append(("insert", tid, relation.uda_of(tid)))
        if offset % 5 == 2:
            ops.append(("delete", tid, None))
            ops.append(("insert", tid, relation.uda_of(tid)))
        if offset % 7 == 3:
            ops.append(("delete", offset, None))  # churn a base tuple
    return ops


def build_fixture(cls, relation, tmp_path):
    """Durable image + a WAL holding ``mutation_run``; returns paths."""
    index = cls(len(relation.domain))
    base = type(relation)(relation.domain)
    for tid in range(BASE_TUPLES):
        base.append(relation.uda_of(tid))
    index.build(base)
    image_path = tmp_path / "index.reprodb"
    index.save(image_path)
    wal_path = tmp_path / "log.wal"
    wal = WriteAheadLog(wal_path)
    index.attach_wal(wal, replay=False)
    ops = mutation_run(relation)
    for op, tid, uda in ops:
        if op == "insert":
            index.insert(tid, uda)
        else:
            index.delete(tid)
    offsets = wal.record_offsets()
    wal.close()
    return image_path, wal_path, ops


def expected_answers(cls, relation, image_path, ops, prefix, queries, tmp_path):
    """Answers of (durable image + first ``prefix`` mutations), applied
    directly — no WAL — as the recovery oracle."""
    oracle = cls.load(image_path)
    for op, tid, uda in ops[:prefix]:
        if op == "insert":
            oracle.insert(tid, uda)
        else:
            oracle.delete(tid)
    return [
        {(m.tid, round(m.score, 9)) for m in oracle.execute(q).matches}
        for q in queries
    ]


def recovered_answers(cls, image_path, wal_path, queries):
    index = cls.load(image_path)
    wal = WriteAheadLog(wal_path)
    index.attach_wal(wal)
    answers = [
        {(m.tid, round(m.score, 9)) for m in index.execute(q).matches}
        for q in queries
    ]
    return index, wal, answers


@pytest.mark.parametrize("name", BACKEND_NAMES)
class TestWalKillPointsPerBackend:
    def test_cut_at_every_record_boundary(
        self, name, relation, queries, tmp_path
    ):
        image_path, wal_path, ops = build_fixture(
            ProbabilisticInvertedIndex, relation, tmp_path
        )
        wal_image = wal_path.read_bytes()
        wal = WriteAheadLog(wal_path)
        offsets = wal.record_offsets()
        wal.close()
        assert len(offsets) == len(ops) + 1
        with backend_scope(name):
            for prefix, kill_point in enumerate(offsets):
                wal_path.write_bytes(wal_image[:kill_point])
                index, log, answers = recovered_answers(
                    ProbabilisticInvertedIndex, image_path, wal_path, queries
                )
                assert not log.torn, "boundary cuts are clean, not torn"
                assert not index.recovered
                assert index.wal_lsn == prefix
                expected = expected_answers(
                    ProbabilisticInvertedIndex,
                    relation,
                    image_path,
                    ops,
                    prefix,
                    queries,
                    tmp_path,
                )
                assert answers == expected, (
                    f"backend {name}: prefix {prefix} diverged"
                )
                log.close()

    def test_tear_inside_every_record(
        self, name, relation, queries, tmp_path
    ):
        image_path, wal_path, ops = build_fixture(
            ProbabilisticInvertedIndex, relation, tmp_path
        )
        wal_image = wal_path.read_bytes()
        wal = WriteAheadLog(wal_path)
        offsets = wal.record_offsets()
        wal.close()
        with backend_scope(name):
            for prefix in range(len(ops)):
                # Cut strictly inside record ``prefix + 1``: the valid
                # prefix is records 1..prefix and the tail is torn.
                kill_point = (offsets[prefix] + offsets[prefix + 1]) // 2
                assert offsets[prefix] < kill_point < offsets[prefix + 1]
                wal_path.write_bytes(wal_image[:kill_point])
                index, log, answers = recovered_answers(
                    ProbabilisticInvertedIndex, image_path, wal_path, queries
                )
                assert log.torn
                assert index.recovered, "torn tail must flag recovery"
                assert index.wal_lsn == prefix
                expected = expected_answers(
                    ProbabilisticInvertedIndex,
                    relation,
                    image_path,
                    ops,
                    prefix,
                    queries,
                    tmp_path,
                )
                assert answers == expected, (
                    f"backend {name}: torn prefix {prefix} diverged"
                )
                log.close()


class TestWalKillPointsPDRTree:
    def test_boundary_and_torn_cuts(self, relation, queries, tmp_path):
        image_path, wal_path, ops = build_fixture(PDRTree, relation, tmp_path)
        wal_image = wal_path.read_bytes()
        wal = WriteAheadLog(wal_path)
        offsets = wal.record_offsets()
        wal.close()
        for prefix in range(len(ops) + 1):
            for torn in (False, True):
                if torn and prefix == len(ops):
                    continue  # nothing after the last record to tear
                if torn:
                    kill_point = (offsets[prefix] + offsets[prefix + 1]) // 2
                else:
                    kill_point = offsets[prefix]
                wal_path.write_bytes(wal_image[:kill_point])
                index, log, answers = recovered_answers(
                    PDRTree, image_path, wal_path, queries
                )
                assert log.torn == torn
                assert index.wal_lsn == prefix
                expected = expected_answers(
                    PDRTree, relation, image_path, ops, prefix, queries, tmp_path
                )
                assert answers == expected, f"PDR prefix {prefix} diverged"
                log.close()
