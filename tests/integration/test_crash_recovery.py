"""Kill-point crash-recovery harness.

Simulates a crash mid-flush at *every* page boundary of an index save:
the on-disk image is truncated after each whole page record (and, for
good measure, mid-record), then reattached.  The contract under test is
the recovery guarantee of ``docs/fault-model.md``:

* reattach either **recovers** (answers exactly match the naive
  executor) or **fails loudly** with ``RecoveryError``;
* it never returns wrong answers.

A second battery tears individual pages (correct length, corrupted
bytes — what a torn sector write leaves behind) instead of truncating.
"""

import struct

import pytest

from repro.core import UncertainRelation
from repro.core.exceptions import RecoveryError, ReproError
from repro.core.queries import EqualityThresholdQuery, EqualityTopKQuery
from repro.datagen import uniform_dataset
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree
from repro.storage.persistence import MAGIC

_U32 = struct.Struct("<I")


def page_record_offsets(image: bytes, page_size: int) -> list[int]:
    """Byte offsets of each page record in a v2 image (plus the end)."""
    assert image[: len(MAGIC)] == MAGIC
    cursor = len(MAGIC) + 4  # magic + page size
    (metadata_length,) = _U32.unpack_from(image, cursor)
    cursor += 4 + metadata_length
    (num_pages,) = _U32.unpack_from(image, cursor)
    cursor += 4
    record = 4 + 4 + page_size
    offsets = [cursor + i * record for i in range(num_pages + 1)]
    assert offsets[-1] == len(image)
    return offsets


def reference_answers(relation: UncertainRelation, queries):
    return [
        {(m.tid, round(m.score, 9)) for m in relation.execute(query)}
        for query in queries
    ]


def check_recovered_or_loud(loader, relation, queries, expected):
    """Attach via ``loader``; demand exact answers or a loud failure.

    Returns (recovered, failed_loudly) for aggregate assertions.
    """
    try:
        reopened = loader()
    except RecoveryError:
        return False, True
    answers = [
        {(m.tid, round(m.score, 9)) for m in reopened.execute(query)}
        for query in queries
    ]
    assert answers == expected, "recovered index disagrees with naive executor"
    return True, False


@pytest.fixture(scope="module")
def relation():
    # Large enough that the PDR-tree grows internal nodes (height 2) and
    # the inverted index spreads across multiple heap and posting pages.
    return uniform_dataset(num_tuples=400, seed=29)


@pytest.fixture(scope="module")
def queries(relation):
    qs = []
    for tid in (0, 7, 42):
        q = relation.uda_of(tid)
        qs.append(EqualityThresholdQuery(q, 0.15))
        qs.append(EqualityTopKQuery(q, 5))
    return qs


class TestKillPointsInvertedIndex:
    def test_crash_at_every_page_boundary(self, relation, queries, tmp_path):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        path = tmp_path / "index.reprodb"
        index.save(path)
        image = path.read_bytes()
        expected = reference_answers(relation, queries)
        offsets = page_record_offsets(image, index.disk.page_size)
        recovered = loud = 0
        for kill_point in offsets:
            torn = tmp_path / "torn.reprodb"
            torn.write_bytes(image[:kill_point])
            ok, failed = check_recovered_or_loud(
                lambda: ProbabilisticInvertedIndex.load(torn),
                relation,
                queries,
                expected,
            )
            recovered += ok
            loud += failed
        # The harness must have exercised both outcomes: early kill
        # points lose heap pages (loud), late ones only posting pages
        # (recovered); the final offset is the complete image.
        assert recovered >= 1 and loud >= 1
        assert recovered + loud == len(offsets)

    def test_crash_mid_record(self, relation, queries, tmp_path):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        path = tmp_path / "index.reprodb"
        index.save(path)
        image = path.read_bytes()
        expected = reference_answers(relation, queries)
        offsets = page_record_offsets(image, index.disk.page_size)
        for kill_point in offsets[1:]:
            torn = tmp_path / "torn.reprodb"
            torn.write_bytes(image[: kill_point - 17])  # mid-record
            check_recovered_or_loud(
                lambda: ProbabilisticInvertedIndex.load(torn),
                relation,
                queries,
                expected,
            )

    def test_torn_posting_page_recovers(self, relation, queries, tmp_path):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        path = tmp_path / "index.reprodb"
        index.save(path)
        image = bytearray(path.read_bytes())
        expected = reference_answers(relation, queries)
        heap_pages = set(index._heap.state()["page_ids"])
        offsets = page_record_offsets(bytes(image), index.disk.page_size)
        recovered_count = 0
        for start in offsets[:-1]:
            (page_id,) = _U32.unpack_from(image, start)
            if page_id in heap_pages:
                continue
            torn = bytearray(image)
            torn[start + 8 + 20] ^= 0xFF  # corrupt the payload
            torn_path = tmp_path / "torn.reprodb"
            torn_path.write_bytes(bytes(torn))
            reopened = ProbabilisticInvertedIndex.load(torn_path)
            assert reopened.recovered
            answers = [
                {(m.tid, round(m.score, 9)) for m in reopened.execute(query)}
                for query in queries
            ]
            assert answers == expected
            recovered_count += 1
        assert recovered_count >= 1

    def test_torn_heap_page_fails_loudly(self, relation, tmp_path):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        path = tmp_path / "index.reprodb"
        index.save(path)
        image = bytearray(path.read_bytes())
        heap_pages = set(index._heap.state()["page_ids"])
        offsets = page_record_offsets(bytes(image), index.disk.page_size)
        checked = 0
        for start in offsets[:-1]:
            (page_id,) = _U32.unpack_from(image, start)
            if page_id not in heap_pages:
                continue
            torn = bytearray(image)
            torn[start + 8 + 20] ^= 0xFF
            torn_path = tmp_path / "torn.reprodb"
            torn_path.write_bytes(bytes(torn))
            with pytest.raises(RecoveryError):
                ProbabilisticInvertedIndex.load(torn_path)
            checked += 1
        assert checked >= 1

    def test_recovery_disabled_fails_loudly(self, relation, tmp_path):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        path = tmp_path / "index.reprodb"
        index.save(path)
        image = path.read_bytes()
        torn = tmp_path / "torn.reprodb"
        torn.write_bytes(image[:-13])
        with pytest.raises(RecoveryError):
            ProbabilisticInvertedIndex.load(torn, recover=False)


class TestKillPointsPDRTree:
    def test_crash_at_every_page_boundary(self, relation, queries, tmp_path):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        path = tmp_path / "tree.reprodb"
        tree.save(path)
        image = path.read_bytes()
        expected = reference_answers(relation, queries)
        offsets = page_record_offsets(image, tree.disk.page_size)
        recovered = loud = 0
        for kill_point in offsets:
            torn = tmp_path / "torn.reprodb"
            torn.write_bytes(image[:kill_point])
            ok, failed = check_recovered_or_loud(
                lambda: PDRTree.load(torn), relation, queries, expected
            )
            recovered += ok
            loud += failed
        assert recovered >= 1  # at minimum, the complete image
        assert recovered + loud == len(offsets)

    def test_torn_internal_page_recovers(self, relation, queries, tmp_path):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        assert tree.height > 1, "dataset too small to grow internal nodes"
        path = tmp_path / "tree.reprodb"
        tree.save(path)
        image = bytearray(path.read_bytes())
        expected = reference_answers(relation, queries)
        leaf_pages = set(tree._leaf_of_tid.values())
        offsets = page_record_offsets(bytes(image), tree.disk.page_size)
        recovered_count = 0
        for start in offsets[:-1]:
            (page_id,) = _U32.unpack_from(image, start)
            if page_id in leaf_pages:
                continue
            torn = bytearray(image)
            torn[start + 8 + 20] ^= 0xFF
            torn_path = tmp_path / "torn.reprodb"
            torn_path.write_bytes(bytes(torn))
            reopened = PDRTree.load(torn_path)
            assert reopened.recovered
            answers = [
                {(m.tid, round(m.score, 9)) for m in reopened.execute(query)}
                for query in queries
            ]
            assert answers == expected
            recovered_count += 1
        assert recovered_count >= 1

    def test_torn_leaf_page_fails_loudly(self, relation, tmp_path):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        path = tmp_path / "tree.reprodb"
        tree.save(path)
        image = bytearray(path.read_bytes())
        leaf_pages = set(tree._leaf_of_tid.values())
        offsets = page_record_offsets(bytes(image), tree.disk.page_size)
        checked = 0
        for start in offsets[:-1]:
            (page_id,) = _U32.unpack_from(image, start)
            if page_id not in leaf_pages:
                continue
            torn = bytearray(image)
            torn[start + 8 + 20] ^= 0xFF
            torn_path = tmp_path / "torn.reprodb"
            torn_path.write_bytes(bytes(torn))
            with pytest.raises(RecoveryError):
                PDRTree.load(torn_path)
            checked += 1
            if checked >= 5:  # a sample of leaves is enough
                break
        assert checked >= 1

    def test_recovery_disabled_fails_loudly(self, relation, tmp_path):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        path = tmp_path / "tree.reprodb"
        tree.save(path)
        torn = tmp_path / "torn.reprodb"
        torn.write_bytes(path.read_bytes()[:-13])
        with pytest.raises(RecoveryError):
            PDRTree.load(torn, recover=False)

    def test_never_wrong_only_loud(self, relation, queries, tmp_path):
        """Sweep byte-level corruption across the image: every attach
        either matches the oracle or raises a repro error — never both
        silently wrong and silently fine."""
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        path = tmp_path / "tree.reprodb"
        tree.save(path)
        image = bytearray(path.read_bytes())
        expected = reference_answers(relation, queries)
        offsets = page_record_offsets(bytes(image), tree.disk.page_size)
        stride = max(1, len(offsets[:-1]) // 6)
        for start in offsets[:-1][::stride]:
            torn = bytearray(image)
            torn[start + 8 + 5] ^= 0x55
            torn_path = tmp_path / "torn.reprodb"
            torn_path.write_bytes(bytes(torn))
            try:
                reopened = PDRTree.load(torn_path)
            except ReproError:
                continue  # loud is acceptable
            answers = [
                {(m.tid, round(m.score, 9)) for m in reopened.execute(query)}
                for query in queries
            ]
            assert answers == expected
