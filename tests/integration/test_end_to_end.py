"""End-to-end integration: datasets -> both indexes -> identical answers."""

import numpy as np
import pytest

from repro.core import (
    EqualityThresholdQuery,
    EqualityTopKQuery,
    petj,
)
from repro.datagen import (
    build_workload,
    crm1_dataset,
    gen3_dataset,
    pairwise_dataset,
    uniform_dataset,
)
from repro.invindex import STRATEGIES, ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree, PDRTreeConfig
from repro.storage import BufferPool


def matches_of(result):
    return [(m.tid, m.score) for m in result]


DATASETS = {
    "uniform": lambda: uniform_dataset(num_tuples=500, seed=1),
    "pairwise": lambda: pairwise_dataset(num_tuples=500, seed=1),
    "gen3": lambda: gen3_dataset(num_tuples=500, domain_size=40, seed=1),
    "crm1": lambda: crm1_dataset(num_tuples=400, training_docs=400, seed=1),
}


@pytest.fixture(scope="module", params=sorted(DATASETS))
def everything(request):
    relation = DATASETS[request.param]()
    inverted = ProbabilisticInvertedIndex(len(relation.domain))
    inverted.build(relation)
    tree = PDRTree(len(relation.domain))
    tree.build(relation)
    workload = build_workload(
        relation, selectivities=(0.01, 0.1), queries_per_point=3, seed=2
    )
    return relation, inverted, tree, workload


class TestFullQueryMatrix:
    def test_threshold_queries_agree_everywhere(self, everything):
        relation, inverted, tree, workload = everything
        for queries in workload.values():
            for calibrated in queries:
                query = calibrated.threshold_query()
                expected = matches_of(relation.execute(query))
                tree.pool = BufferPool(tree.disk, 100)
                assert matches_of(tree.execute(query)) == expected
                for strategy in STRATEGIES:
                    inverted.pool = BufferPool(inverted.disk, 100)
                    got = matches_of(inverted.execute(query, strategy=strategy))
                    assert got == expected, strategy

    def test_topk_queries_agree_everywhere(self, everything):
        relation, inverted, tree, workload = everything
        for queries in workload.values():
            for calibrated in queries:
                query = calibrated.top_k_query()
                expected = matches_of(relation.execute(query))
                tree.pool = BufferPool(tree.disk, 100)
                assert matches_of(tree.execute(query)) == expected
                for strategy in STRATEGIES:
                    inverted.pool = BufferPool(inverted.disk, 100)
                    got = matches_of(inverted.execute(query, strategy=strategy))
                    assert got == expected, strategy


class TestCompressedTreeEndToEnd:
    def test_compressed_pdr_agrees(self):
        relation = gen3_dataset(num_tuples=400, domain_size=60, seed=3)
        config = PDRTreeConfig(fold_size=12, bits=4)
        tree = PDRTree(len(relation.domain), config=config)
        tree.build(relation)
        workload = build_workload(
            relation, selectivities=(0.05,), queries_per_point=4, seed=4
        )
        for calibrated in workload[0.05]:
            query = calibrated.threshold_query()
            assert matches_of(tree.execute(query)) == matches_of(
                relation.execute(query)
            )


class TestIndexedJoin:
    def test_join_through_both_indexes(self):
        left = uniform_dataset(num_tuples=40, seed=5)
        right = uniform_dataset(num_tuples=60, seed=6)
        inverted = ProbabilisticInvertedIndex(len(right.domain))
        inverted.build(right)
        tree = PDRTree(len(right.domain))
        tree.build(right)
        reference = petj(left, right, 0.25)
        via_inverted = petj(left, right, 0.25, right_index=inverted)
        via_tree = petj(left, right, 0.25, right_index=tree)
        key = lambda pairs: [(p.left_tid, p.right_tid, p.score) for p in pairs]
        assert key(via_inverted) == key(reference)
        assert key(via_tree) == key(reference)


class TestDynamicMaintenanceEndToEnd:
    def test_inserts_and_deletes_keep_answers_exact(self):
        relation = uniform_dataset(num_tuples=300, seed=7)
        inverted = ProbabilisticInvertedIndex(len(relation.domain))
        tree = PDRTree(len(relation.domain))
        # Build both incrementally (not bulk).
        for tid in relation.tids():
            inverted.insert(tid, relation.uda_of(tid))
            tree.insert(tid, relation.uda_of(tid))
        removed = set(range(0, 300, 11))
        for tid in removed:
            inverted.delete(tid)
            tree.delete(tid)
        q = relation.uda_of(1)
        query = EqualityThresholdQuery(q, 0.1)
        expected = {
            m.tid for m in relation.execute(query) if m.tid not in removed
        }
        assert inverted.execute(query).tid_set() == expected
        assert tree.execute(query).tid_set() == expected


class TestIOAccountingSanity:
    def test_structures_pay_different_io(self):
        relation = uniform_dataset(num_tuples=2000, seed=8)
        inverted = ProbabilisticInvertedIndex(len(relation.domain))
        inverted.build(relation)
        inverted.pool.flush_all()
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        tree.pool.flush_all()
        q = relation.uda_of(0)
        query = EqualityThresholdQuery(q, 0.4)
        inverted.pool = BufferPool(inverted.disk, 100)
        before = inverted.disk.stats.snapshot()
        inverted.execute(query)
        inv_reads = inverted.disk.stats.delta_since(before).reads
        tree.pool = BufferPool(tree.disk, 100)
        before = tree.disk.stats.snapshot()
        tree.execute(query)
        pdr_reads = tree.disk.stats.delta_since(before).reads
        # Dense uniform data: the PDR-tree reads fewer pages (Figure 5).
        assert pdr_reads < inv_reads
