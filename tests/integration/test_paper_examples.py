"""The paper's running examples, end to end (Table 1, Section 1-2)."""

import pytest

from repro.core import (
    CategoricalDomain,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    UncertainAttribute,
    UncertainRelation,
    petj,
)
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree


@pytest.fixture()
def table_1a():
    """Table 1(a): vehicle complaints with an uncertain Problem field."""
    problems = CategoricalDomain(
        ["Brake", "Tires", "Trans", "Suspension", "Exhaust"]
    )
    cars = UncertainRelation(problems, name="complaints")
    rows = [
        ("Explorer", {"Brake": 0.5, "Tires": 0.5}),
        ("Camry", {"Trans": 0.2, "Suspension": 0.8}),
        ("Civic", {"Exhaust": 0.4, "Brake": 0.6}),
        ("Caravan", {"Trans": 1.0}),
    ]
    for make, problem in rows:
        cars.append(
            UncertainAttribute.from_labels(problems, problem), payload=make
        )
    return problems, cars


@pytest.fixture()
def table_1b():
    """Table 1(b): personnel planning with an uncertain Department."""
    departments = CategoricalDomain(
        ["Shoes", "Sales", "Clothes", "Hardware", "HR"]
    )
    employees = UncertainRelation(departments, name="personnel")
    rows = [
        ("Jim", {"Shoes": 0.5, "Sales": 0.5}),
        ("Tom", {"Sales": 0.4, "Clothes": 0.6}),
        ("Lin", {"Hardware": 0.6, "Sales": 0.4}),
        ("Nancy", {"HR": 1.0}),
    ]
    for name, dept in rows:
        employees.append(
            UncertainAttribute.from_labels(departments, dept), payload=name
        )
    return departments, employees


class TestBrakeProblemQuery:
    """'Report all the tuples which are highly likely to have a brake
    problem (i.e., Problem = Brake)' — Section 2."""

    def test_highly_likely_brake_problems(self, table_1a):
        problems, cars = table_1a
        brake = UncertainAttribute.from_labels(problems, {"Brake": 1.0})
        result = cars.execute(EqualityThresholdQuery(brake, 0.5))
        makes = {cars.payload_of(m.tid) for m in result}
        assert makes == {"Explorer", "Civic"}

    def test_same_answer_through_both_indexes(self, table_1a):
        problems, cars = table_1a
        brake = UncertainAttribute.from_labels(problems, {"Brake": 1.0})
        query = EqualityThresholdQuery(brake, 0.5)
        expected = cars.execute(query).tid_set()
        inverted = ProbabilisticInvertedIndex(len(problems))
        inverted.build(cars)
        tree = PDRTree(len(problems))
        tree.build(cars)
        assert inverted.execute(query).tid_set() == expected
        assert tree.execute(query).tid_set() == expected

    def test_same_problem_pairs(self, table_1a):
        """'compute the probability of pairs of cars having the same
        problem' — Section 2."""
        problems, cars = table_1a
        pairs = petj(cars, cars, 0.01)
        scores = {
            (cars.payload_of(p.left_tid), cars.payload_of(p.right_tid)): p.score
            for p in pairs
        }
        # Explorer-Civic share Brake: 0.5 * 0.6 = 0.3.
        assert scores[("Explorer", "Civic")] == pytest.approx(0.3)
        # Camry-Caravan share Trans: 0.2 * 1.0 = 0.2.
        assert scores[("Camry", "Caravan")] == pytest.approx(0.2)


class TestDepartmentPlacement:
    """'finding employees which are highly likely to be placed in the
    Shoes or Clothes department' — Section 2."""

    def test_shoes_or_clothes(self, table_1b):
        departments, employees = table_1b
        target = UncertainAttribute.from_labels(
            departments, {"Shoes": 0.5, "Clothes": 0.5}
        )
        result = employees.execute(EqualityThresholdQuery(target, 0.25))
        names = {employees.payload_of(m.tid) for m in result}
        assert names == {"Jim", "Tom"}

    def test_same_department_join(self, table_1b):
        """'which pairs of employees have a given minimum probability of
        potentially working for the same department' — Definition 4."""
        departments, employees = table_1b
        pairs = petj(employees, employees, 0.15)
        names = {
            (employees.payload_of(p.left_tid), employees.payload_of(p.right_tid))
            for p in pairs
            if p.left_tid < p.right_tid
        }
        # Jim-Tom: 0.5 * 0.4 = 0.2; Jim-Lin: 0.5 * 0.4 = 0.2;
        # Tom-Lin: 0.4 * 0.4 = 0.16; all >= 0.15.
        assert names == {("Jim", "Tom"), ("Jim", "Lin"), ("Tom", "Lin")}

    def test_most_similar_employee_topk(self, table_1b):
        departments, employees = table_1b
        jim = employees.uda_of(0)
        result = employees.execute(EqualityTopKQuery(jim, 2))
        names = [employees.payload_of(m.tid) for m in result]
        assert names[0] == "Jim"  # Jim matches himself best
        assert names[1] in {"Tom", "Lin"}


class TestNurseTrackingScenario:
    """The introduction's RFID scenario: uncertain nurse locations."""

    def test_probable_room_occupancy(self):
        rooms = CategoricalDomain([f"Room{i}" for i in range(1, 7)])
        sightings = UncertainRelation(rooms, name="rfid")
        sightings.append(
            UncertainAttribute.from_labels(rooms, {"Room5": 0.7, "Room4": 0.3}),
            payload="Nurse 10",
        )
        sightings.append(
            UncertainAttribute.from_labels(rooms, {"Room5": 0.4, "Room6": 0.6}),
            payload="Nurse 11",
        )
        sightings.append(
            UncertainAttribute.from_labels(rooms, {"Room1": 1.0}),
            payload="Nurse 12",
        )
        room5 = UncertainAttribute.from_labels(rooms, {"Room5": 1.0})
        result = sightings.execute(EqualityThresholdQuery(room5, 0.5))
        assert {sightings.payload_of(m.tid) for m in result} == {"Nurse 10"}
