"""Static vs incremental differential suite (``docs/mutability.md``).

The contract: an index grown tuple-by-tuple through the WAL path —
including deletes, reinserts, and segment churn — must answer exactly
like a static bulk build of the same final tuple set.  "Exactly" means:

* identical matches, scores, and presentation (tie) order for the
  inverted index, under *all five* search strategies;
* identical answer sets for the PDR-tree (tree shape is
  insertion-order dependent, so order is not part of its contract);
* after :meth:`compact`, bit-identical measurement-mode posting reads —
  the compacted layout IS the static layout.

A hypothesis battery drives random insert/delete/reinsert interleavings
to hunt schedules the hand-written cases miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UncertainRelation
from repro.core.queries import (
    EqualityThresholdQuery,
    EqualityTopKQuery,
    SimilarityThresholdQuery,
)
from repro.datagen import uniform_dataset
from repro.invindex import ProbabilisticInvertedIndex
from repro.invindex.strategies import STRATEGIES
from repro.storage.stats import IOStatistics
from repro.pdrtree import PDRTree
from repro.storage.buffer import BufferPool
from repro.wal import WriteAheadLog

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

NUM_TUPLES = 160
SEGMENT_CAP = 32  # small, so interleavings seal several segments


@pytest.fixture(scope="module")
def relation():
    return uniform_dataset(num_tuples=NUM_TUPLES, seed=83)


@pytest.fixture(scope="module")
def queries(relation):
    """Equality queries — the inverted index's contract."""
    qs = []
    for tid in (0, 9, 55):
        uda = relation.uda_of(tid)
        qs.append(EqualityThresholdQuery(uda, 0.1))
        qs.append(EqualityTopKQuery(uda, 7))
    return qs


@pytest.fixture(scope="module")
def pdr_queries(queries, relation):
    """PDR-tree answers equality AND distribution-similarity (DSTQ)."""
    extra = [
        SimilarityThresholdQuery(relation.uda_of(tid), 1.6, divergence="l1")
        for tid in (0, 9, 55)
    ]
    return [*queries, *extra]


@pytest.fixture(scope="module")
def static_index(relation):
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    return index


@pytest.fixture(autouse=True)
def small_segments(monkeypatch):
    monkeypatch.setenv("REPRO_SEGMENT_TUPLES", str(SEGMENT_CAP))


def incremental_index(relation, tmp_path, schedule=None, compact=False):
    """Grow an index by replaying ``schedule`` (default: plain inserts).

    ``schedule`` is a list of ``("insert", tid)`` / ``("delete", tid)``
    ops; it must leave every tid of ``relation`` present at the end.
    """
    index = ProbabilisticInvertedIndex(len(relation.domain))
    wal = WriteAheadLog(tmp_path / "log.wal")
    index.attach_wal(wal)
    if schedule is None:
        schedule = [("insert", tid) for tid in relation.tids()]
    for op, tid in schedule:
        if op == "insert":
            index.insert(tid, relation.uda_of(tid))
        else:
            index.delete(tid)
    if compact:
        index.compact()
    return index


def ordered_answers(index, queries, strategy):
    return [
        [(m.tid, m.score) for m in index.execute(query, strategy=strategy).matches]
        for query in queries
    ]


def measured_reads(index, queries, strategy):
    """Posting/heap reads per query under the measurement protocol."""
    reads = []
    for query in queries:
        index.pool = BufferPool(index.disk, 100)
        index.disk.stats = IOStatistics()
        index.execute(query, strategy=strategy)
        reads.append(index.disk.stats.reads)
    return reads


def churn_schedule(relation, rng):
    """Inserts with interleaved delete/reinsert churn; all tids final."""
    schedule = []
    live = set()
    deleted = set()
    for tid in relation.tids():
        schedule.append(("insert", tid))
        live.add(tid)
        roll = rng.random()
        if roll < 0.2 and len(live) > 1:
            victim = int(rng.choice(sorted(live)))
            schedule.append(("delete", victim))
            live.discard(victim)
            deleted.add(victim)
        if roll > 0.85 and deleted:
            back = int(rng.choice(sorted(deleted)))
            schedule.append(("insert", back))
            live.add(back)
            deleted.discard(back)
    for tid in sorted(deleted):
        schedule.append(("insert", tid))
    return schedule


class TestInvertedIndexEquivalence:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_plain_inserts_match_static(
        self, relation, queries, static_index, strategy, tmp_path
    ):
        grown = incremental_index(relation, tmp_path)
        assert ordered_answers(grown, queries, strategy) == ordered_answers(
            static_index, queries, strategy
        )

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_churn_matches_static(
        self, relation, queries, static_index, strategy, tmp_path
    ):
        rng = np.random.default_rng(17)
        grown = incremental_index(
            relation, tmp_path, schedule=churn_schedule(relation, rng)
        )
        assert ordered_answers(grown, queries, strategy) == ordered_answers(
            static_index, queries, strategy
        )

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_post_compaction_matches_static(
        self, relation, queries, static_index, strategy, tmp_path
    ):
        rng = np.random.default_rng(29)
        grown = incremental_index(
            relation,
            tmp_path,
            schedule=churn_schedule(relation, rng),
            compact=True,
        )
        assert ordered_answers(grown, queries, strategy) == ordered_answers(
            static_index, queries, strategy
        )

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_post_compaction_reads_are_bit_identical(
        self, relation, queries, strategy, tmp_path
    ):
        """The compacted layout pays the same I/O as a static build."""
        static = ProbabilisticInvertedIndex(len(relation.domain))
        static.build(relation)
        rng = np.random.default_rng(41)
        grown = incremental_index(
            relation,
            tmp_path,
            schedule=churn_schedule(relation, rng),
            compact=True,
        )
        assert measured_reads(grown, queries, strategy) == measured_reads(
            static, queries, strategy
        )


class TestPDRTreeEquivalence:
    def answer_sets(self, tree, queries):
        return [
            {(m.tid, round(m.score, 12)) for m in tree.execute(query).matches}
            for query in queries
        ]

    def grow(self, relation, tmp_path, schedule):
        tree = PDRTree(len(relation.domain))
        wal = WriteAheadLog(tmp_path / "pdr.wal")
        tree.attach_wal(wal)
        for op, tid in schedule:
            if op == "insert":
                tree.insert(tid, relation.uda_of(tid))
            else:
                tree.delete(tid)
        return tree

    def test_churn_matches_static(self, relation, pdr_queries, tmp_path):
        static = PDRTree(len(relation.domain))
        static.build(relation)
        rng = np.random.default_rng(53)
        grown = self.grow(relation, tmp_path, churn_schedule(relation, rng))
        assert self.answer_sets(grown, pdr_queries) == self.answer_sets(
            static, pdr_queries
        )


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_random_interleavings_match_static(seed, tmp_path_factory):
    """Hypothesis-driven schedules across both index families."""
    relation = uniform_dataset(num_tuples=60, seed=977)
    rng = np.random.default_rng(seed)
    schedule = churn_schedule(relation, rng)
    uda = relation.uda_of(int(rng.integers(0, 60)))
    queries = [
        EqualityThresholdQuery(uda, 0.1),
        EqualityTopKQuery(uda, 5),
    ]
    pdr_queries = [*queries, SimilarityThresholdQuery(uda, 1.6, divergence="l1")]

    static_inv = ProbabilisticInvertedIndex(len(relation.domain))
    static_inv.build(relation)
    tmp = tmp_path_factory.mktemp(f"interleave-{seed}")
    grown = ProbabilisticInvertedIndex(len(relation.domain))
    grown.attach_wal(WriteAheadLog(tmp / "log.wal"))
    for op, tid in schedule:
        if op == "insert":
            grown.insert(tid, relation.uda_of(tid))
        else:
            grown.delete(tid)
    if seed % 2 == 0:
        grown.compact()
    for strategy in sorted(STRATEGIES):
        assert ordered_answers(grown, queries, strategy) == ordered_answers(
            static_inv, queries, strategy
        ), f"strategy {strategy} diverged for seed {seed}"

    static_pdr = PDRTree(len(relation.domain))
    static_pdr.build(relation)
    grown_pdr = PDRTree(len(relation.domain))
    grown_pdr.attach_wal(WriteAheadLog(tmp / "pdr.wal"))
    for op, tid in schedule:
        if op == "insert":
            grown_pdr.insert(tid, relation.uda_of(tid))
        else:
            grown_pdr.delete(tid)
    for query in pdr_queries:
        lhs = {(m.tid, round(m.score, 12)) for m in grown_pdr.execute(query).matches}
        rhs = {(m.tid, round(m.score, 12)) for m in static_pdr.execute(query).matches}
        assert lhs == rhs, f"PDR diverged for seed {seed}"
