"""Every example script runs to completion and reports agreement."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    sys.argv = [name]
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "All three executors agree: True" in out
    assert "Civic" in out


def test_personnel_join(capsys):
    out = run_example("personnel_join.py", capsys)
    assert "Index-accelerated join matches the nested loop: True" in out
    assert "Jim" in out and "Tom" in out


def test_nurse_tracking(capsys):
    out = run_example("nurse_tracking.py", capsys)
    assert "PDR-tree answers match the naive scan: True" in out


def test_crm_triage_small(capsys):
    # Patch the scale down so the smoke test stays fast.
    source = (EXAMPLES / "crm_triage.py").read_text()
    assert "NUM_TICKETS = 4_000" in source
    patched = source.replace("NUM_TICKETS = 4_000", "NUM_TICKETS = 600")
    namespace = {"__name__": "__main__", "__file__": str(EXAMPLES / "crm_triage.py")}
    exec(compile(patched, "crm_triage.py", "exec"), namespace)
    out = capsys.readouterr().out
    assert "page reads" in out


def test_ordered_domains(capsys):
    out = run_example("ordered_domains.py", capsys)
    assert "Both indexes agree with the naive scan: True" in out
