"""Differential suite: sharding is a protocol change, never a semantics change.

``shards=1`` must reproduce the single-node measurement protocol
*bit-for-bit* — answers, scores, tie order, total physical reads, and
the per-tag read breakdown — for PEQ, PETQ, windowed, and top-k
queries on both index families and all five inverted-index strategies.
For ``shards>1`` the merged answers must stay identical and, for
top-k, no shard may read more posting pages than the single-node run
(the distributed floor bounds every shard's scan by the global bound).
"""

import pytest

from repro.bench.harness import IndexUnderTest, measure_query
from repro.core import EqualityTopKQuery, SimilarityTopKQuery
from repro.core.exceptions import QueryError
from repro.invindex.strategies import STRATEGIES
from repro.shard import LocalTransport, ShardCoordinator, ShardedIndex

from tests.invindex.conftest import random_query
from tests.shard.conftest import POOL_SIZE, answer_key, mixed_workload

ALL_STRATEGIES = tuple(STRATEGIES)


def _coordinator(relation, num_shards, family, strategy=None, fanout=None):
    sharded = ShardedIndex.build(
        relation, num_shards, family=family, strategy=strategy
    )
    transport = LocalTransport(sharded, pool_size=POOL_SIZE)
    return ShardCoordinator(transport, fanout=fanout)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_one_shard_is_bit_identical_inverted(relation, inverted, strategy):
    under = IndexUnderTest("single", inverted, strategy=strategy)
    coordinator = _coordinator(relation, 1, "inverted", strategy=strategy)
    for query in mixed_workload(len(relation.domain)):
        measured = measure_query(under, query, POOL_SIZE)
        sharded = coordinator.execute(query)
        single = inverted.execute(query, strategy=strategy)
        assert answer_key(sharded.matches) == answer_key(single.matches)
        assert sharded.reads == measured.reads
        assert dict(sharded.reads_by_tag) == dict(measured.reads_by_tag)


def test_one_shard_is_bit_identical_pdr(relation, pdr):
    under = IndexUnderTest("single", pdr)
    coordinator = _coordinator(relation, 1, "pdr")
    for query in mixed_workload(len(relation.domain)):
        measured = measure_query(under, query, POOL_SIZE)
        sharded = coordinator.execute(query)
        single = pdr.execute(query)
        assert answer_key(sharded.matches) == answer_key(single.matches)
        assert sharded.reads == measured.reads
        assert dict(sharded.reads_by_tag) == dict(measured.reads_by_tag)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
@pytest.mark.parametrize("num_shards", (2, 3, 4))
def test_multi_shard_answers_identical_inverted(
    relation, inverted, strategy, num_shards
):
    coordinator = _coordinator(
        relation, num_shards, "inverted", strategy=strategy, fanout=1
    )
    for query in mixed_workload(len(relation.domain)):
        sharded = coordinator.execute(query)
        single = inverted.execute(query, strategy=strategy)
        assert answer_key(sharded.matches) == answer_key(single.matches)


@pytest.mark.parametrize("num_shards", (2, 4))
def test_multi_shard_answers_identical_pdr(relation, pdr, num_shards):
    coordinator = _coordinator(relation, num_shards, "pdr", fanout=1)
    for query in mixed_workload(len(relation.domain)):
        sharded = coordinator.execute(query)
        single = pdr.execute(query)
        assert answer_key(sharded.matches) == answer_key(single.matches)


@pytest.mark.parametrize("fanout", (1, 2, 4))
def test_fanout_never_changes_answers(relation, inverted, fanout):
    coordinator = _coordinator(
        relation, 4, "inverted", strategy="row_pruning", fanout=fanout
    )
    for i in range(8):
        query = EqualityTopKQuery(
            random_query(len(relation.domain), seed=700 + i), 1 + i * 2
        )
        sharded = coordinator.execute(query)
        single = inverted.execute(query, strategy="row_pruning")
        assert answer_key(sharded.matches) == answer_key(single.matches)


def test_no_shard_outreads_single_node_topk(relation, inverted):
    """The floor bounds each shard's posting scan by the global bound.

    The bound is exact in *entries*; at page granularity a shard may
    pay one extra page (its own B-tree root) per posting list the
    query touches, so the assertion allows exactly that slack.  At
    benchmark scale the slack vanishes (bench_abl_shard.py gates the
    strict form).
    """
    strategy = "row_pruning"
    under = IndexUnderTest("single", inverted, strategy=strategy)
    coordinator = _coordinator(
        relation, 4, "inverted", strategy=strategy, fanout=1
    )
    for i in range(8):
        query = EqualityTopKQuery(
            random_query(len(relation.domain), seed=800 + i), 1 + i * 3
        )
        single_postings = measure_query(
            under, query, POOL_SIZE
        ).reads_by_tag.get("postings", 0)
        sharded = coordinator.execute(query)
        for per_shard in sharded.per_shard:
            assert (
                per_shard["reads_by_tag"].get("postings", 0)
                <= single_postings + query.q.nnz
            )


def test_rounds_follow_fanout(relation):
    query = EqualityTopKQuery(random_query(12, seed=77), 5)
    assert _coordinator(
        relation, 4, "inverted", strategy="row_pruning", fanout=1
    ).execute(query).rounds == 4
    assert _coordinator(
        relation, 4, "inverted", strategy="row_pruning", fanout=4
    ).execute(query).rounds == 1


def test_similarity_topk_is_rejected(relation):
    coordinator = _coordinator(relation, 2, "pdr")
    with pytest.raises(QueryError):
        coordinator.execute(
            SimilarityTopKQuery(random_query(12, seed=5), 3)
        )


def test_execute_many_preserves_input_order(relation, inverted):
    strategy = "highest_prob_first"
    coordinator = ShardCoordinator(
        LocalTransport(
            ShardedIndex.build(relation, 3, strategy=strategy),
            pool_size=POOL_SIZE,
        ),
        fanout=1,
        domain_size=len(relation.domain),
    )
    queries = mixed_workload(len(relation.domain), base_seed=950, count=9)
    results = coordinator.execute_many(queries)
    assert len(results) == len(queries)
    for query, sharded in zip(queries, results):
        single = inverted.execute(query, strategy=strategy)
        assert answer_key(sharded.matches) == answer_key(single.matches)
