"""Shared fixtures for the scatter-gather sharding suite."""

import pytest

from repro.core import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    WindowedEqualityQuery,
)
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree

from tests.invindex.conftest import random_query, random_relation

POOL_SIZE = 100


@pytest.fixture(scope="package")
def relation():
    return random_relation(300, 12, seed=41)


@pytest.fixture(scope="package")
def inverted(relation):
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    return index


@pytest.fixture(scope="package")
def pdr(relation):
    tree = PDRTree(len(relation.domain))
    tree.build(relation)
    return tree


def mixed_workload(domain_size, base_seed=900, count=12):
    """PEQ, PETQ, windowed, and top-k queries over the shared relation."""
    queries = []
    for i in range(count):
        q = random_query(domain_size, seed=base_seed + i)
        kind = i % 4
        if kind == 0:
            queries.append(EqualityQuery(q))
        elif kind == 1:
            queries.append(EqualityThresholdQuery(q, 0.01 + (i % 5) * 0.04))
        elif kind == 2:
            queries.append(WindowedEqualityQuery(q, 0.05, 1 + i % 2))
        else:
            queries.append(EqualityTopKQuery(q, 1 + i % 9))
    return queries


def answer_key(matches):
    """Everything the exactness claim covers: tids, scores, order."""
    return [(m.tid, m.score) for m in matches]
