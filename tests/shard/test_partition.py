"""Hash partitioning: coverage, disjointness, and build fidelity."""

import pytest

from repro.core.exceptions import QueryError
from repro.invindex import ProbabilisticInvertedIndex
from repro.shard import ShardSlice, ShardedIndex, partition, shard_of


def test_shard_of_is_total_and_stable():
    assert [shard_of(t, 4) for t in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert shard_of(123, 1) == 0


def test_shard_of_rejects_bad_counts():
    with pytest.raises(QueryError):
        shard_of(0, 0)
    with pytest.raises(QueryError):
        partition(None, -1)


def test_partition_covers_disjointly(relation):
    slices = partition(relation, 3)
    seen = []
    for shard, slice_ in enumerate(slices):
        for tid in slice_.tids():
            assert shard_of(tid, 3) == shard
            seen.append(tid)
    assert sorted(seen) == sorted(relation.tids())


def test_slices_preserve_global_tids_and_udas(relation):
    for slice_ in partition(relation, 4):
        for tid in slice_.tids():
            original = relation.uda_of(tid)
            shipped = slice_.uda_of(tid)
            assert shipped.items.tolist() == original.items.tolist()
            assert shipped.probs.tolist() == original.probs.tolist()


def test_single_slice_matrix_matches_relation(relation):
    (slice_,) = partition(relation, 1)
    ours = slice_.to_sparse_matrix()
    theirs = relation.to_sparse_matrix()
    assert (ours != theirs).nnz == 0


def test_multi_slice_matrices_sum_to_relation(relation):
    total = sum(
        slice_.to_sparse_matrix() for slice_ in partition(relation, 3)
    )
    assert (total != relation.to_sparse_matrix()).nnz == 0


def test_single_shard_index_is_bit_identical(relation, inverted):
    sharded = ShardedIndex.build(relation, 1)
    ours = sharded.shards[0].index
    assert isinstance(ours, ProbabilisticInvertedIndex)
    for item in range(len(relation.domain)):
        ours_tids, ours_probs = ours.posting_list(item).read_all()
        theirs_tids, theirs_probs = inverted.posting_list(item).read_all()
        assert ours_tids.tolist() == theirs_tids.tolist()
        assert ours_probs.tolist() == theirs_probs.tolist()


def test_sharded_index_accounts_every_tuple(relation):
    for num_shards in (1, 2, 5):
        sharded = ShardedIndex.build(relation, num_shards)
        assert sharded.num_shards == num_shards
        assert sharded.num_tuples == len(relation)


def test_sharded_index_rejects_unknown_family(relation):
    with pytest.raises(QueryError):
        ShardedIndex.build(relation, 2, family="lsm")
    with pytest.raises(QueryError):
        ShardedIndex.build(relation, 2, family="pdr", strategy="row_pruning")


def test_slice_is_pickle_roundtrippable(relation):
    import pickle

    slice_ = partition(relation, 2)[1]
    clone = pickle.loads(pickle.dumps(slice_))
    assert isinstance(clone, ShardSlice)
    assert list(clone.tids()) == list(slice_.tids())
    assert (
        clone.to_sparse_matrix() != slice_.to_sparse_matrix()
    ).nnz == 0
