"""Bounded merge heap: exact top-k semantics under the Match sort key."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.results import Match
from repro.shard import BoundedMatchHeap

# Scores drawn from a tiny grid so ties (the interesting case) are
# common; tids unique as the sharding layer guarantees.
_matches = st.lists(
    st.sampled_from([0.1, 0.2, 0.3, 0.5, 0.5, 0.9]),
    min_size=0,
    max_size=40,
).map(
    lambda scores: [
        Match(tid=tid, score=score) for tid, score in enumerate(scores)
    ]
)


@given(matches=_matches, k=st.integers(min_value=1, max_value=12))
def test_heap_equals_global_sort(matches, k):
    heap = BoundedMatchHeap(k)
    for match in matches:
        heap.push(match)
    expected = sorted(matches, key=lambda m: m.sort_index)[:k]
    assert heap.sorted_matches() == expected


@given(matches=_matches, k=st.integers(min_value=1, max_value=12))
def test_kth_score_is_monotone_and_conservative(matches, k):
    heap = BoundedMatchHeap(k)
    floor = 0.0
    for match in matches:
        heap.push(match)
        current = heap.kth_score()
        assert current >= floor  # never decreases
        floor = current
    if len(matches) >= k:
        expected = sorted(matches, key=lambda m: m.sort_index)[k - 1]
        assert floor == expected.score
    else:
        # Under k matches the heap must not announce a floor: a floor
        # may legally suppress below-floor matches on later shards.
        assert floor == 0.0


def test_push_order_does_not_matter():
    matches = [Match(tid=t, score=s) for t, s in
               [(5, 0.4), (1, 0.4), (9, 0.9), (2, 0.1), (7, 0.4)]]
    forward = BoundedMatchHeap(3)
    backward = BoundedMatchHeap(3)
    for match in matches:
        forward.push(match)
    for match in reversed(matches):
        backward.push(match)
    assert forward.sorted_matches() == backward.sorted_matches()
    # Ties at 0.4 break by ascending tid: 9, then 1, then 5.
    assert [m.tid for m in forward.sorted_matches()] == [9, 1, 5]
