"""The shard.* trace family conforms to the published schema."""

from repro.core import EqualityThresholdQuery, EqualityTopKQuery
from repro.obs.schema import validate_records
from repro.obs.trace import MemorySink, Tracer, tracing
from repro.shard import (
    LocalTransport,
    ShardCoordinator,
    ShardProbe,
    ShardedIndex,
)

from tests.invindex.conftest import random_query
from tests.shard.conftest import POOL_SIZE


class SheddingTransport:
    """LocalTransport that sheds every first deadline probe once."""

    name = "shedding"
    remote = False

    def __init__(self, inner):
        self.inner = inner
        self.attempted = set()

    @property
    def num_shards(self):
        return self.inner.num_shards

    def probe_many(
        self,
        shard_ids,
        query,
        tau_floor=0.0,
        deadline_ms=None,
        sketch=None,
        div_ceiling=None,
    ):
        probes = []
        for shard in shard_ids:
            if deadline_ms is not None and shard not in self.attempted:
                self.attempted.add(shard)
                probes.append(
                    ShardProbe(shard=shard, matches=[], timed_out=True)
                )
            else:
                probes.append(
                    self.inner.probe(
                        shard,
                        query,
                        tau_floor,
                        sketch=sketch,
                        div_ceiling=div_ceiling,
                    )
                )
        return probes


def _traced(coordinator, query):
    sink = MemorySink()
    with tracing(Tracer(sink)):
        coordinator.execute(query)
    validate_records(sink.records)
    return [record["kind"] for record in sink.records]


def test_topk_rounds_emit_schema_valid_records(relation):
    sharded = ShardedIndex.build(relation, 3, strategy="row_pruning")
    coordinator = ShardCoordinator(
        LocalTransport(sharded, pool_size=POOL_SIZE), fanout=1
    )
    kinds = _traced(
        coordinator,
        EqualityTopKQuery(random_query(len(relation.domain), seed=11), 5),
    )
    assert kinds.count("shard.begin") == 1
    assert kinds.count("shard.round") == 3
    assert kinds.count("shard.probe") == 3
    assert kinds.count("shard.end") == 1
    # Probe-internal instrumentation is traced too, inline.
    assert "measure.begin" not in kinds  # probes are not measure_query runs
    assert kinds.index("shard.begin") < kinds.index("shard.end")


def test_shed_and_threshold_records_validate(relation):
    sharded = ShardedIndex.build(relation, 2, strategy="row_pruning")
    transport = SheddingTransport(
        LocalTransport(sharded, pool_size=POOL_SIZE)
    )
    coordinator = ShardCoordinator(transport, round_deadline_ms=25.0)
    kinds = _traced(
        coordinator,
        EqualityThresholdQuery(
            random_query(len(relation.domain), seed=12), 0.05
        ),
    )
    assert kinds.count("shard.shed") == 2
    assert kinds.count("shard.probe") == 2
    assert kinds.count("shard.round") == 2
