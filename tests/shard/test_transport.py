"""Process and serve transports, and the shed/requeue round protocol."""

import pytest

from repro.core import EqualityThresholdQuery, EqualityTopKQuery
from repro.core.exceptions import QueryError
from repro.obs.metrics import METRICS
from repro.shard import (
    LocalTransport,
    ProcessTransport,
    ServeTransport,
    ShardCluster,
    ShardCoordinator,
    ShardProbe,
    ShardedIndex,
)

from tests.invindex.conftest import random_query
from tests.shard.conftest import POOL_SIZE, answer_key, mixed_workload

STRATEGY = "highest_prob_first"


@pytest.fixture(scope="module")
def sharded(relation):
    return ShardedIndex.build(relation, 2, strategy=STRATEGY)


@pytest.fixture(scope="module")
def local_results(relation, sharded):
    coordinator = ShardCoordinator(
        LocalTransport(sharded, pool_size=POOL_SIZE), fanout=1
    )
    return [
        (answer_key(result.matches), result.reads)
        for result in map(
            coordinator.execute, mixed_workload(len(relation.domain))
        )
    ]


class FlakyTransport:
    """Wraps LocalTransport; sheds shard 1's first deadline probe."""

    name = "flaky"
    remote = False

    def __init__(self, inner):
        self.inner = inner
        self.attempted: set[int] = set()
        self.shed_count = 0

    @property
    def num_shards(self):
        return self.inner.num_shards

    def probe_many(
        self,
        shard_ids,
        query,
        tau_floor=0.0,
        deadline_ms=None,
        sketch=None,
        div_ceiling=None,
    ):
        probes = []
        for shard in shard_ids:
            first = shard not in self.attempted
            self.attempted.add(shard)
            if first and deadline_ms is not None and shard == 1:
                self.shed_count += 1
                probes.append(
                    ShardProbe(shard=shard, matches=[], timed_out=True)
                )
            else:
                probes.append(
                    self.inner.probe(
                        shard,
                        query,
                        tau_floor,
                        None,
                        sketch=sketch,
                        div_ceiling=div_ceiling,
                    )
                )
        return probes


def test_process_transport_matches_local(relation, sharded, local_results):
    with ProcessTransport.from_sharded_index(
        sharded, pool_size=POOL_SIZE
    ) as transport:
        coordinator = ShardCoordinator(transport, fanout=1)
        for query, (answers, reads) in zip(
            mixed_workload(len(relation.domain)), local_results
        ):
            result = coordinator.execute(query)
            assert answer_key(result.matches) == answers
            assert result.reads == reads


def test_process_transport_merges_worker_metrics(relation, sharded):
    with ProcessTransport.from_sharded_index(
        sharded, pool_size=POOL_SIZE
    ) as transport:
        coordinator = ShardCoordinator(transport, fanout=1)
        before = METRICS.snapshot()
        coordinator.execute(
            EqualityTopKQuery(random_query(len(relation.domain), seed=3), 5)
        )
        delta = METRICS.delta_since(before)
    # Probes ran in worker processes, yet their executor-level events
    # land in this process's registry via the probe's metrics delta.
    assert delta.get("shard.probe", 0) == 2
    assert any(
        kind.startswith(("strategy.", "query.")) for kind in delta
    ), delta


def test_serve_transport_matches_local(relation, sharded, local_results):
    with ShardCluster(sharded) as cluster:
        with ServeTransport(cluster.addresses) as transport:
            coordinator = ShardCoordinator(transport, fanout=1)
            for query, (answers, reads) in zip(
                mixed_workload(len(relation.domain)), local_results
            ):
                result = coordinator.execute(query)
                assert answer_key(result.matches) == answers
                assert result.reads == reads


def test_serve_transport_sheds_then_recovers(relation, sharded):
    """A sub-microsecond wire deadline sheds the first probes; the
    requeued retries run deadline-free, so the answer stays exact."""
    query = EqualityTopKQuery(random_query(len(relation.domain), seed=9), 7)
    single = ShardCoordinator(
        LocalTransport(sharded, pool_size=POOL_SIZE)
    ).execute(query)
    with ShardCluster(sharded) as cluster:
        with ServeTransport(cluster.addresses) as transport:
            coordinator = ShardCoordinator(
                transport, fanout=1, round_deadline_ms=1e-6
            )
            result = coordinator.execute(query)
    assert answer_key(result.matches) == answer_key(single.matches)
    assert result.timeouts >= 1


def test_shed_probes_are_requeued_with_raised_floor(relation, sharded):
    inner = LocalTransport(sharded, pool_size=POOL_SIZE)
    flaky = FlakyTransport(inner)
    coordinator = ShardCoordinator(
        flaky, fanout=2, round_deadline_ms=50.0
    )
    query = EqualityTopKQuery(random_query(len(relation.domain), seed=21), 6)
    single = ShardCoordinator(inner).execute(query)
    result = coordinator.execute(query)
    assert flaky.shed_count == 1
    assert result.timeouts == 1
    assert result.rounds == 2
    assert answer_key(result.matches) == answer_key(single.matches)


def test_shed_threshold_probe_still_merges_every_shard(relation, sharded):
    inner = LocalTransport(sharded, pool_size=POOL_SIZE)
    flaky = FlakyTransport(inner)
    coordinator = ShardCoordinator(flaky, round_deadline_ms=50.0)
    query = EqualityThresholdQuery(
        random_query(len(relation.domain), seed=22), 0.05
    )
    single = ShardCoordinator(inner).execute(query)
    result = coordinator.execute(query)
    assert result.timeouts == 1
    assert answer_key(result.matches) == answer_key(single.matches)


def test_coordinator_validates_parameters(sharded):
    transport = LocalTransport(sharded)
    with pytest.raises(QueryError):
        ShardCoordinator(transport, fanout=0)
    with pytest.raises(QueryError):
        ShardCoordinator(transport, round_deadline_ms=0.0)
    assert ShardCoordinator(transport, fanout=99).fanout == 2
