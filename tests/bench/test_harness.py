"""Tests for :mod:`repro.bench.harness` and reporting."""

import pytest

from repro.bench import (
    ExperimentResult,
    IndexUnderTest,
    Measurement,
    SeriesPoint,
    comparison_summary,
    format_result,
    measure_point,
    measure_query,
)
from repro.core import EqualityThresholdQuery, QueryError
from repro.datagen import build_workload, uniform_dataset
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree


@pytest.fixture(scope="module")
def relation():
    return uniform_dataset(num_tuples=400, seed=2)


@pytest.fixture(scope="module")
def inverted(relation):
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    return index


@pytest.fixture(scope="module")
def workload(relation):
    return build_workload(
        relation, selectivities=(0.05,), queries_per_point=3, seed=1
    )


class TestMeasureQuery:
    def test_reads_counted(self, relation, inverted):
        under_test = IndexUnderTest("Inv", inverted, "inv_index_search")
        q = relation.uda_of(0)
        measurement = measure_query(under_test, EqualityThresholdQuery(q, 0.2))
        assert measurement.reads > 0
        assert measurement.result_size >= 1  # the tuple itself qualifies

    def test_fresh_pool_makes_measurements_repeatable(self, relation, inverted):
        under_test = IndexUnderTest("Inv", inverted, "inv_index_search")
        q = relation.uda_of(0)
        query = EqualityThresholdQuery(q, 0.2)
        first = measure_query(under_test, query)
        second = measure_query(under_test, query)
        assert first.reads == second.reads

    def test_larger_pool_never_costs_more(self, relation, inverted):
        under_test = IndexUnderTest("Inv", inverted, "inv_index_search")
        q = relation.uda_of(0)
        query = EqualityThresholdQuery(q, 0.2)
        small = measure_query(under_test, query, pool_size=5)
        large = measure_query(under_test, query, pool_size=500)
        assert large.reads <= small.reads

    def test_pdr_takes_no_strategy(self, relation):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        under_test = IndexUnderTest("PDR", tree, strategy="highest_prob_first")
        q = relation.uda_of(0)
        with pytest.raises(QueryError):
            measure_query(under_test, EqualityThresholdQuery(q, 0.2))


class TestMeasurementHitRates:
    def test_zero_access_hit_rates_are_zero_not_an_error(self):
        """A query that touches no pages must report 0.0, not divide."""
        measurement = Measurement(reads=0, result_size=0)
        assert measurement.pool_hit_rate == 0.0
        assert measurement.decoded_hit_rate == 0.0

    def test_hit_rate_ratio(self):
        measurement = Measurement(
            reads=1, result_size=0,
            pool_hits=3, pool_misses=1,
            decoded_hits=1, decoded_misses=3,
        )
        assert measurement.pool_hit_rate == pytest.approx(0.75)
        assert measurement.decoded_hit_rate == pytest.approx(0.25)

    def test_counters_sourced_from_metrics_delta(self, relation, inverted):
        """Hit/miss fields come from the METRICS delta, not ad-hoc
        counters, so they agree with the metrics histogram and with the
        physical read count."""
        under_test = IndexUnderTest("Inv", inverted, "inv_index_search")
        q = relation.uda_of(0)
        m = measure_query(under_test, EqualityThresholdQuery(q, 0.2))
        assert m.pool_misses == m.metrics.get("pool.miss", 0)
        assert m.pool_hits == m.metrics.get("pool.hit", 0)
        assert m.pool_misses == m.reads
        assert m.stop_reason == "scan_complete"
        assert m.metrics.get("strategy.stop.scan_complete", 0) == 1


class TestMeasurePoint:
    def test_mean_over_queries(self, inverted, workload):
        under_test = IndexUnderTest("Inv", inverted, "highest_prob_first")
        point = measure_point(under_test, workload[0.05], "threshold", x=5.0)
        assert point.x == 5.0
        assert point.num_queries == 3
        assert point.mean_reads > 0

    def test_topk_kind(self, inverted, workload):
        under_test = IndexUnderTest("Inv", inverted, "highest_prob_first")
        point = measure_point(under_test, workload[0.05], "topk", x=5.0)
        assert point.mean_result_size > 0

    def test_invalid_kind(self, inverted, workload):
        under_test = IndexUnderTest("Inv", inverted, "highest_prob_first")
        with pytest.raises(QueryError):
            measure_point(under_test, workload[0.05], "median", x=1.0)


class TestResultAndReporting:
    @pytest.fixture()
    def result(self):
        result = ExperimentResult("Demo", "selectivity %")
        for x, a, b in [(0.1, 10.0, 20.0), (1.0, 15.0, 30.0)]:
            result.add_point("A-Thres", SeriesPoint(x, a, 3, 1.0))
            result.add_point("B-Thres", SeriesPoint(x, b, 3, 1.0))
        return result

    def test_series_values_sorted_by_x(self, result):
        assert result.series_values("A-Thres") == [10.0, 15.0]

    def test_xs_union(self, result):
        assert result.xs() == [0.1, 1.0]

    def test_format_contains_all_series(self, result):
        table = format_result(result)
        assert "A-Thres" in table and "B-Thres" in table
        assert "Demo" in table
        assert "10.0" in table

    def test_comparison_summary(self, result):
        summary = comparison_summary(result, "A-Thres", "B-Thres")
        assert "2.00x" in summary
