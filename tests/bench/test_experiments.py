"""Smoke tests for the experiment definitions at a micro scale."""

import pytest

from repro.bench import ExperimentScale, clear_caches, figure5, figure10
from repro.bench.experiments import _dataset, _inverted, _pdr
from repro.core import QueryError


@pytest.fixture(scope="module")
def micro_scale():
    return ExperimentScale(
        crm_tuples=300,
        synth_tuples=500,
        queries_per_point=2,
        selectivities=(0.01, 0.1),
        fig8_sizes=(200, 400),
        fig9_domains=(10, 25),
    )


class TestScalePresets:
    def test_presets_exist(self):
        assert ExperimentScale.quick().crm_tuples < ExperimentScale.default().crm_tuples
        assert ExperimentScale.default().crm_tuples < ExperimentScale.paper().crm_tuples

    def test_paper_scale_matches_paper(self):
        paper = ExperimentScale.paper()
        assert paper.crm_tuples == 100_000
        assert paper.synth_tuples == 10_000
        assert max(paper.fig9_domains) == 500

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "default")
        assert ExperimentScale.from_env() == ExperimentScale.default()
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(QueryError):
            ExperimentScale.from_env()

    def test_default_env_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert ExperimentScale.from_env() == ExperimentScale.quick()


class TestCaching:
    def test_dataset_cache_returns_same_object(self):
        key = ("uniform", 100, 0, 1)
        assert _dataset(*key) is _dataset(*key)

    def test_index_caches_keyed_by_config(self):
        key = ("uniform", 100, 0, 1)
        assert _pdr(key) is _pdr(key)
        assert _pdr(key) is not _pdr(key, split_strategy="top_down")
        assert _inverted(key) is _inverted(key)

    def test_clear_caches(self):
        key = ("uniform", 100, 0, 1)
        first = _dataset(*key)
        clear_caches()
        assert _dataset(*key) is not first


class TestExperimentsSmoke:
    def test_figure5_structure(self, micro_scale):
        result = figure5(micro_scale)
        assert len(result.series) == 8  # 2 datasets x 2 structures x 2 kinds
        for points in result.series.values():
            assert len(points) == len(micro_scale.selectivities)
            assert all(p.mean_reads >= 0 for p in points)

    def test_figure10_structure(self, micro_scale):
        result = figure10(micro_scale)
        assert set(result.series) == {
            "Uniform-TopDown-Thres",
            "Uniform-BottomUp-Thres",
        }


class TestNewAblations:
    def test_skew_and_join_structure(self, micro_scale):
        from repro.bench import ablation_join, ablation_skew

        skew = ablation_skew(micro_scale)
        assert set(skew.series) == {"Zipf-Inv-Thres", "Zipf-PDR-Thres"}
        assert len(skew.xs()) == 4

        join = ablation_join(micro_scale)
        assert set(join.series) == {"Join-Inv-Thres", "Join-PDR-Thres"}
        for points in join.series.values():
            assert all(p.mean_reads >= 0 for p in points)
