"""Tests for the ``python -m repro.bench`` CLI."""

import pytest

from repro.bench.__main__ import main


class TestListing:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "abl_buffer" in out

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "fig10" in capsys.readouterr().out


class TestRunning:
    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_runs_experiment_and_writes_table(self, capsys, tmp_path, monkeypatch):
        # Shrink the quick scale so the CLI test stays fast.
        from repro.bench import ExperimentScale
        from repro.bench import __main__ as cli

        micro = ExperimentScale(
            crm_tuples=200,
            synth_tuples=300,
            queries_per_point=2,
            selectivities=(0.05,),
            fig8_sizes=(100,),
            fig9_domains=(10,),
        )
        monkeypatch.setitem(cli._SCALES, "quick", lambda: micro)
        assert main(["fig10", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert (tmp_path / "fig10.txt").exists()
