"""Tests for :mod:`repro.bench.parallel` (the process-pool runner)."""

import os

import pytest

from repro.bench import ExperimentScale, resolve_jobs, result_to_dict, run_experiments
from repro.bench.parallel import JOBS_ENV
from repro.core import QueryError

MICRO = ExperimentScale(
    crm_tuples=200,
    synth_tuples=300,
    queries_per_point=2,
    selectivities=(0.05,),
    fig8_sizes=(100,),
    fig9_domains=(10,),
)

#: Two cheap experiments exercising both index families.
NAMES = ["fig10", "abl_buffer"]


class TestResolveJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5

    @pytest.mark.parametrize("raw", ["", "auto", "0"])
    def test_auto_means_cpu_count(self, monkeypatch, raw):
        monkeypatch.setenv(JOBS_ENV, raw)
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_unset_env_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_explicit_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(QueryError):
            resolve_jobs(None)

    def test_negative_raises(self):
        with pytest.raises(QueryError):
            resolve_jobs(-2)


class TestRunExperiments:
    def test_unknown_name_raises_before_running(self):
        with pytest.raises(QueryError, match="fig99"):
            list(run_experiments(["fig99"], MICRO, jobs=1))

    def test_sequential_vs_parallel_identical_io(self):
        """jobs=1 and jobs=2 must agree on every deterministic field —
        the whole point of the runner's design.

        Pinned to a zero-fault plan: whole-dict equality includes fault
        telemetry, which may legitimately differ between the inline
        cached path and fresh workers (the injector RNG advances with
        every disk op, and caching skips rebuild ops).  The fault-plan
        determinism of the *I/O fields* is covered by compare_io in CI.
        """
        from repro.storage import FaultPlan, fault_plan

        with fault_plan(FaultPlan()):
            sequential = list(run_experiments(NAMES, MICRO, jobs=1))
            parallel = list(run_experiments(NAMES, MICRO, jobs=2))
        # Submission-order merge: names come back in the order given.
        assert [name for name, _, _ in sequential] == NAMES
        assert [name for name, _, _ in parallel] == NAMES
        for (_, seq_result, _), (_, par_result, _) in zip(sequential, parallel):
            seq = result_to_dict(seq_result)
            par = result_to_dict(par_result)
            # Hit rates are deterministic too, so whole dicts must match.
            assert seq == par

    def test_trace_and_metrics_deterministic_across_jobs(self, tmp_path):
        """Same seeds, same workload: the JSONL trace must be
        byte-identical and the measurement-scoped counters equal whether
        experiments run inline or across worker processes."""
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.schema import validate_jsonl
        from repro.storage import FaultPlan, fault_plan

        trace_j1 = tmp_path / "trace_j1.jsonl"
        trace_j2 = tmp_path / "trace_j2.jsonl"
        metrics_j1 = MetricsRegistry()
        metrics_j2 = MetricsRegistry()
        with fault_plan(FaultPlan()):
            list(
                run_experiments(
                    NAMES, MICRO, jobs=1,
                    trace_path=trace_j1, metrics=metrics_j1,
                )
            )
            list(
                run_experiments(
                    NAMES, MICRO, jobs=2,
                    trace_path=trace_j2, metrics=metrics_j2,
                )
            )
        assert trace_j1.stat().st_size > 0
        assert trace_j1.read_bytes() == trace_j2.read_bytes()
        assert metrics_j1.snapshot() == metrics_j2.snapshot()
        assert metrics_j1.snapshot() != {}
        # The merged trace must also be schema-clean end to end.
        assert validate_jsonl(trace_j1) > 0

    def test_untraced_run_accepts_metrics_registry(self):
        """Counters flow back even with tracing off (no trace_path)."""
        from repro.obs.metrics import MetricsRegistry
        from repro.storage import FaultPlan, fault_plan

        metrics = MetricsRegistry()
        with fault_plan(FaultPlan()):
            list(
                run_experiments(
                    ["fig10"], MICRO, jobs=1, metrics=metrics
                )
            )
        assert metrics.get("pool.miss") > 0
        assert metrics.get("disk.read") == metrics.get("pool.miss")

    def test_elapsed_is_positive(self):
        [(name, result, elapsed)] = list(
            run_experiments(["fig10"], MICRO, jobs=1)
        )
        assert name == "fig10"
        assert elapsed > 0
        assert result.series