"""Golden I/O regression: rerun pinned figures against committed results.

The repo commits the quick-scale ``benchmarks/results/BENCH_*.json``
files; the paper's cost model fully determines their per-point read
counts, so a rerun at the same scale must reproduce them bit-for-bit.
This test reruns the two cheapest experiments (one per index family)
and diffs them against the committed goldens through the same
``compare_io`` machinery CI uses — an accidental change to the I/O
model fails here before it reaches a benchmark run.
"""

import importlib.util
import json
import shutil
import sys
from pathlib import Path

import pytest

from repro.bench import ExperimentScale, result_to_dict, run_experiments
from repro.storage import FaultPlan, fault_plan

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_DIR = REPO_ROOT / "benchmarks" / "results"

#: Cheap experiments covering both index families (PDR-tree, inverted
#: index) — the pair the CI determinism job smoke-runs — plus the join
#: ablation, which now routes through the block rank-join engine and
#: must keep reproducing its pre-engine golden at the default block
#: size (the engine delegates to the legacy per-probe join there).
PINNED = ("fig10", "abl_buffer", "abl_join")


def _load_compare_io():
    path = REPO_ROOT / "benchmarks" / "compare_io.py"
    spec = importlib.util.spec_from_file_location("bench_compare_io", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _golden_scale_is_quick() -> bool:
    summary_path = GOLDEN_DIR / "BENCH_summary.json"
    if not summary_path.exists():
        return False
    recorded = json.loads(summary_path.read_text()).get("scale", {})
    quick = ExperimentScale.quick()
    return recorded == {
        "crm_tuples": quick.crm_tuples,
        "synth_tuples": quick.synth_tuples,
        "queries_per_point": quick.queries_per_point,
    }


@pytest.mark.parametrize("name", PINNED)
def test_rerun_reproduces_committed_golden(tmp_path, name):
    golden_file = GOLDEN_DIR / f"BENCH_{name}.json"
    if not golden_file.exists():
        pytest.skip(f"no committed golden for {name}")
    if not _golden_scale_is_quick():
        pytest.skip("committed goldens were not produced at quick scale")

    with fault_plan(FaultPlan()):
        [(_, result, _)] = list(
            run_experiments([name], ExperimentScale.quick(), jobs=1)
        )

    fresh_dir = tmp_path / "fresh"
    pinned_dir = tmp_path / "golden"
    fresh_dir.mkdir()
    pinned_dir.mkdir()
    (fresh_dir / golden_file.name).write_text(
        json.dumps(result_to_dict(result), indent=2) + "\n"
    )
    # Only the rerun experiment goes into the comparison directory:
    # compare_io treats a file-set asymmetry as a divergence.
    shutil.copy(golden_file, pinned_dir / golden_file.name)

    compare_io = _load_compare_io()
    problems = compare_io.compare_dirs(pinned_dir, fresh_dir)
    assert problems == [], "\n".join(problems)


def test_compare_refuses_cross_mode_diff(tmp_path):
    """Serving-mode reads depend on arrival history; compare_io must
    refuse to diff them against measurement-protocol results."""
    compare_io = _load_compare_io()
    assert "mode" in compare_io.PROTOCOL_KEYS
    payload = {"series": {"s": [{f: 0 for f in
                                 compare_io.DETERMINISTIC_FIELDS}]}}
    dirs = {}
    for mode in ("measure", "serve"):
        d = tmp_path / mode
        d.mkdir()
        (d / "BENCH_summary.json").write_text(
            json.dumps({"kernel": "vectorized", "batch": 1, "mode": mode})
        )
        (d / "BENCH_point.json").write_text(json.dumps(payload))
        dirs[mode] = d
    problems = compare_io.compare_dirs(dirs["measure"], dirs["serve"])
    assert len(problems) == 1 and "mode" in problems[0]
    # Same mode on both sides compares normally (and here, cleanly).
    assert compare_io.compare_dirs(dirs["measure"], dirs["measure"]) == []


def test_compare_refuses_cross_backend_diff(tmp_path):
    """Goldens bind to the simulated backend; a diff against an mmap or
    shm run must be refused, not quietly blessed, even though the I/O
    counts happen to agree."""
    compare_io = _load_compare_io()
    assert "backend" in compare_io.PROTOCOL_KEYS
    payload = {"series": {"s": [{f: 0 for f in
                                 compare_io.DETERMINISTIC_FIELDS}]}}
    dirs = {}
    for backend in ("simulated", "mmap"):
        d = tmp_path / backend
        d.mkdir()
        (d / "BENCH_summary.json").write_text(
            json.dumps({"mode": "measure", "backend": backend})
        )
        (d / "BENCH_point.json").write_text(json.dumps(payload))
        dirs[backend] = d
    problems = compare_io.compare_dirs(dirs["simulated"], dirs["mmap"])
    assert len(problems) == 1 and "backend" in problems[0]
    assert compare_io.compare_dirs(dirs["mmap"], dirs["mmap"]) == []
    # A legacy dir with no backend key stays comparable to anything.
    legacy = tmp_path / "legacy"
    legacy.mkdir()
    (legacy / "BENCH_summary.json").write_text(json.dumps({"mode": "measure"}))
    (legacy / "BENCH_point.json").write_text(json.dumps(payload))
    assert compare_io.compare_dirs(legacy, dirs["mmap"]) == []


def test_compare_refuses_cross_shard_count_diff(tmp_path):
    """Per-shard pools and B-tree roots change the page economics; a
    diff between result dirs with different shard counts must be
    refused, while shards=1 dirs stay comparable with single-node runs
    (and with legacy dirs that predate the key)."""
    compare_io = _load_compare_io()
    assert "shards" in compare_io.PROTOCOL_KEYS
    assert "transport" in compare_io.PROTOCOL_KEYS
    payload = {"series": {"s": [{f: 0 for f in
                                 compare_io.DETERMINISTIC_FIELDS}]}}
    dirs = {}
    for shards in (1, 4):
        d = tmp_path / f"shards{shards}"
        d.mkdir()
        (d / "BENCH_summary.json").write_text(
            json.dumps(
                {"mode": "measure", "shards": shards, "transport": "local"}
            )
        )
        (d / "BENCH_point.json").write_text(json.dumps(payload))
        dirs[shards] = d
    problems = compare_io.compare_dirs(dirs[1], dirs[4])
    assert len(problems) == 1 and "shards" in problems[0]
    assert compare_io.compare_dirs(dirs[4], dirs[4]) == []
    # A single-node dir that predates the shard keys is comparable
    # with a shards=1 dir — the degenerate protocol is the same run.
    legacy = tmp_path / "legacy"
    legacy.mkdir()
    (legacy / "BENCH_summary.json").write_text(json.dumps({"mode": "measure"}))
    (legacy / "BENCH_point.json").write_text(json.dumps(payload))
    assert compare_io.compare_dirs(legacy, dirs[1]) == []
    # Transports are protocol too: serve-transport reads include no
    # tag breakdown, so a cross-transport diff is refused as well.
    serve_dir = tmp_path / "serve_transport"
    serve_dir.mkdir()
    (serve_dir / "BENCH_summary.json").write_text(
        json.dumps(
            {"mode": "measure", "shards": 4, "transport": "serve"}
        )
    )
    (serve_dir / "BENCH_point.json").write_text(json.dumps(payload))
    problems = compare_io.compare_dirs(dirs[4], serve_dir)
    assert len(problems) == 1 and "transport" in problems[0]


def test_compare_refuses_cross_sketch_diff(tmp_path):
    """Sketch pre-filtering changes which pages a similarity run reads
    (exact mode legally reads *fewer*); a diff across sketch modes must
    be refused, while legacy dirs that predate the key stay
    comparable."""
    compare_io = _load_compare_io()
    assert "sketch" in compare_io.PROTOCOL_KEYS
    payload = {"series": {"s": [{f: 0 for f in
                                 compare_io.DETERMINISTIC_FIELDS}]}}
    dirs = {}
    for sketch in ("off", "exact"):
        d = tmp_path / sketch
        d.mkdir()
        (d / "BENCH_summary.json").write_text(
            json.dumps({"mode": "measure", "sketch": sketch})
        )
        (d / "BENCH_point.json").write_text(json.dumps(payload))
        dirs[sketch] = d
    problems = compare_io.compare_dirs(dirs["off"], dirs["exact"])
    assert len(problems) == 1 and "sketch" in problems[0]
    assert compare_io.compare_dirs(dirs["exact"], dirs["exact"]) == []
    # Dirs from before the sketch era carry no key and compare fine.
    legacy = tmp_path / "legacy"
    legacy.mkdir()
    (legacy / "BENCH_summary.json").write_text(json.dumps({"mode": "measure"}))
    (legacy / "BENCH_point.json").write_text(json.dumps(payload))
    assert compare_io.compare_dirs(legacy, dirs["off"]) == []


@pytest.mark.parametrize("name", ["fig10"])
def test_golden_reproduces_under_mmap_backend(tmp_path, name):
    """The differential property at golden granularity: the same pinned
    experiment rerun on the mmap backend produces bit-identical I/O."""
    from repro.storage import backend_scope

    golden_file = GOLDEN_DIR / f"BENCH_{name}.json"
    if not golden_file.exists():
        pytest.skip(f"no committed golden for {name}")
    if not _golden_scale_is_quick():
        pytest.skip("committed goldens were not produced at quick scale")

    with fault_plan(FaultPlan()), backend_scope("mmap"):
        [(_, result, _)] = list(
            run_experiments([name], ExperimentScale.quick(), jobs=1)
        )

    fresh_dir = tmp_path / "fresh"
    pinned_dir = tmp_path / "golden"
    fresh_dir.mkdir()
    pinned_dir.mkdir()
    (fresh_dir / golden_file.name).write_text(
        json.dumps(result_to_dict(result), indent=2) + "\n"
    )
    shutil.copy(golden_file, pinned_dir / golden_file.name)
    # No BENCH_summary.json is written on either side, so the protocol
    # guard stays out of the way and the raw I/O numbers are compared.
    compare_io = _load_compare_io()
    problems = compare_io.compare_dirs(pinned_dir, fresh_dir)
    assert problems == [], "\n".join(problems)
