"""Serving-mode mutations over the wire (``docs/mutability.md``).

Three contracts beyond the basic round-trip:

* **Atomicity** — a mutation executes alone, never inside a query
  batch, so a concurrent reader sees the wholly-before or wholly-after
  answer set and nothing in between;
* **Cache invalidation** — the cross-request tuple-decode cache is
  stamped against ``index.mutations``; a delete is never served from a
  stale decoded tuple;
* **Compaction transparency** — compacting under live traffic changes
  the physical layout only: every in-flight and subsequent request
  answers identically.
"""

import asyncio

import pytest

from repro.core.queries import EqualityThresholdQuery, EqualityTopKQuery
from repro.core.uda import UncertainAttribute
from repro.exec.serving import ServingExecutor
from repro.serve import (
    Mutation,
    ProtocolError,
    QueryServer,
    ServeClient,
    ServeConfig,
    ServeError,
    mutation_from_wire,
    mutation_to_wire,
)
from repro.wal import WriteAheadLog

from tests.exec.test_batch import POOL_SIZE
from tests.invindex.conftest import random_relation
from repro.invindex import ProbabilisticInvertedIndex


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def relation():
    return random_relation(200, 12, seed=71)


@pytest.fixture
def index(relation, tmp_path):
    built = ProbabilisticInvertedIndex(len(relation.domain))
    built.build(relation)
    built.attach_wal(WriteAheadLog(tmp_path / "log.wal"))
    return built


def tid_set(payload):
    return {int(m[0]) for m in payload["matches"]}


class TestWireFormat:
    def test_round_trip_insert(self):
        uda = UncertainAttribute([2, 7], [0.75, 0.25])
        mutation = Mutation(op="insert", tid=9, uda=uda)
        decoded = mutation_from_wire(mutation_to_wire(mutation))
        assert decoded.op == "insert" and decoded.tid == 9
        assert decoded.uda.items.tolist() == [2, 7]

    def test_round_trip_delete_and_compact(self):
        for mutation in (Mutation(op="delete", tid=3), Mutation(op="compact")):
            decoded = mutation_from_wire(mutation_to_wire(mutation))
            assert decoded == mutation

    @pytest.mark.parametrize(
        "message",
        [
            {"mutate": "truncate"},
            {"mutate": "delete"},
            {"mutate": "delete", "tid": -1},
            {"mutate": "delete", "tid": True},
            {"mutate": "insert", "tid": 4},
            {"mutate": "insert", "tid": 4, "items": [1], "probs": [2.0]},
        ],
    )
    def test_malformed_mutations_are_loud(self, message):
        with pytest.raises(ProtocolError):
            mutation_from_wire(message)


class TestWireMutations:
    def test_insert_delete_compact_round_trip(self, index, relation):
        async def scenario():
            async with QueryServer(index, config=ServeConfig()) as server:
                async with ServeClient(*server.address) as client:
                    uda = relation.uda_of(0)
                    query = EqualityThresholdQuery(uda, 0.05)
                    new_tid = len(relation)
                    before = await client.query(query)

                    inserted = await client.insert(new_tid, uda)
                    assert inserted["op"] == "insert"
                    after = await client.query(query)
                    assert new_tid in tid_set(after)
                    assert new_tid not in tid_set(before)

                    deleted = await client.delete(new_tid)
                    assert deleted["op"] == "delete"
                    assert deleted["mutations"] > inserted["mutations"]
                    gone = await client.query(query)
                    assert tid_set(gone) == tid_set(before)

                    compacted = await client.compact()
                    assert compacted["op"] == "compact"
                    settled = await client.query(query)
                    assert settled["matches"] == before["matches"]

                    stats = await client.stats()
                    assert stats["counters"]["mutations"] == 3
        run(scenario())

    def test_mutation_errors_propagate(self, index):
        async def scenario():
            async with QueryServer(index, config=ServeConfig()) as server:
                async with ServeClient(*server.address) as client:
                    with pytest.raises(ServeError) as excinfo:
                        await client.delete(10**9)
                    assert excinfo.value.payload["status"] == "error"
                    # The connection survives a failed mutation.
                    pong = await client.ping()
                    assert pong["status"] == "ok"
        run(scenario())

    def test_readers_never_see_torn_insert(self, index, relation):
        """Concurrent queries see pre- or post-insert sets, never between.

        The inserted tuple matches the probe on two items; a torn write
        would surface it through one posting list but not the other,
        producing an answer set that is neither ``before`` nor
        ``after``.
        """
        probe_uda = UncertainAttribute([0, 1], [0.5, 0.5])
        query = EqualityThresholdQuery(probe_uda, 0.001)
        new_uda = UncertainAttribute([0, 1], [0.4, 0.6])
        new_tid = len(relation)

        async def reader(address, stop):
            observed = []
            async with ServeClient(*address) as client:
                while not stop.is_set():
                    observed.append(frozenset(tid_set(await client.query(query))))
            return observed

        async def scenario():
            config = ServeConfig(coalesce_ms=1.0, coalesce_max=8)
            async with QueryServer(index, config=config) as server:
                async with ServeClient(*server.address) as writer:
                    before = frozenset(tid_set(await writer.query(query)))
                    stop = asyncio.Event()
                    readers = [
                        asyncio.create_task(reader(server.address, stop))
                        for _ in range(3)
                    ]
                    await asyncio.sleep(0.02)
                    await writer.insert(new_tid, new_uda)
                    await asyncio.sleep(0.02)
                    await writer.delete(new_tid)
                    await asyncio.sleep(0.02)
                    stop.set()
                    observations = await asyncio.gather(*readers)
            after = before | {new_tid}
            for observed in observations:
                assert observed, "reader made no observations"
                for snapshot in observed:
                    assert snapshot in (before, after), (
                        f"torn answer set: {sorted(snapshot ^ before)} differs"
                    )
        run(scenario())

    def test_delete_never_served_from_stale_cache(self, index, relation):
        """The decode cache must invalidate on the mutations stamp."""
        async def scenario():
            async with QueryServer(index, config=ServeConfig()) as server:
                async with ServeClient(*server.address) as client:
                    uda = relation.uda_of(3)
                    query = EqualityTopKQuery(uda, 10)
                    warm = await client.query(query)  # populates the cache
                    victim = sorted(tid_set(warm))[0]
                    await client.delete(victim)
                    cooled = await client.query(query)
                    assert victim not in tid_set(cooled)
        run(scenario())

    def test_compaction_under_live_traffic_preserves_answers(
        self, index, relation
    ):
        """Interleave compactions with a query stream; every response
        must match the sequential measurement-mode baseline."""
        queries = [
            EqualityThresholdQuery(relation.uda_of(tid), 0.05)
            for tid in range(0, 40, 4)
        ]
        # Churn first so compaction has segments and tombstones to fold.
        for tid in range(len(relation), len(relation) + 30):
            index.insert(tid, relation.uda_of(tid % len(relation)))
        for tid in range(len(relation), len(relation) + 30, 3):
            index.delete(tid)
        measure = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)
        expected = [
            [[m.tid, m.score] for m in measure.execute(q).result.matches]
            for q in queries
        ]

        async def querier(address, queries):
            answers = []
            async with ServeClient(*address) as client:
                for query in queries:
                    answers.append((await client.query(query))["matches"])
            return answers

        async def compactor(address, rounds):
            async with ServeClient(*address) as client:
                for _ in range(rounds):
                    await client.compact()
                    await asyncio.sleep(0.005)

        async def scenario():
            config = ServeConfig(coalesce_ms=1.0, coalesce_max=8)
            async with QueryServer(index, config=config) as server:
                got, _ = await asyncio.gather(
                    querier(server.address, queries * 4),
                    compactor(server.address, 4),
                )
            assert got == expected * 4
        run(scenario())
