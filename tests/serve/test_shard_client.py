"""Per-request deadlines and tau floors on the pipelined client.

The shard coordinator is the first pipelined caller that mixes, in one
round trip, requests that must be shed quickly with requests that must
run — so the client's per-request ``deadline_ms`` list and ``tau_floors``
are regression-tested here against the shed-vs-hang failure mode: a
straggling shard must come back as a ``"timeout"`` answer, never as a
stalled pipeline.
"""

import asyncio

import pytest

from repro.core import EqualityTopKQuery
from repro.exec import ServingExecutor
from repro.invindex import ProbabilisticInvertedIndex
from repro.serve import QueryServer, ServeClient, ServeConfig
from repro.serve.protocol import ProtocolError, matches_to_wire

from tests.invindex.conftest import random_query, random_relation

POOL_SIZE = 100


@pytest.fixture(scope="module")
def index():
    relation = random_relation(250, 12, seed=93)
    built = ProbabilisticInvertedIndex(len(relation.domain))
    built.build(relation)
    return built


@pytest.fixture(scope="module")
def queries():
    return [
        EqualityTopKQuery(random_query(12, seed=400 + i), 3 + i) for i in range(4)
    ]


def run(coro):
    return asyncio.run(coro)


def test_pipeline_mixed_deadlines_shed_not_hang(index, queries):
    """An expired per-request deadline answers "timeout" in-line while
    its deadline-free neighbours execute — the pipeline never stalls."""

    async def scenario():
        config = ServeConfig(mode="measure", pool_size=POOL_SIZE,
                             coalesce_ms=10.0)
        async with QueryServer(index, config=config) as server:
            async with ServeClient(*server.address) as client:
                return await asyncio.wait_for(
                    client.pipeline(
                        queries, deadline_ms=[None, 0.0, None, 0.0]
                    ),
                    timeout=30.0,
                )

    payloads = run(scenario())
    assert [p["status"] for p in payloads] == [
        "ok", "timeout", "ok", "timeout"
    ]


def test_pipeline_deadline_list_must_align(index, queries):
    async def scenario():
        config = ServeConfig(mode="measure", pool_size=POOL_SIZE)
        async with QueryServer(index, config=config) as server:
            async with ServeClient(*server.address) as client:
                await client.pipeline(queries, deadline_ms=[None])

    with pytest.raises(ProtocolError, match="deadline_ms"):
        run(scenario())


def test_floored_topk_answers_match_unfloored_below_kth(index, queries):
    measure = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)

    async def scenario(query, floor):
        config = ServeConfig(mode="measure", pool_size=POOL_SIZE)
        async with QueryServer(index, config=config) as server:
            async with ServeClient(*server.address) as client:
                return await client.request(query, tau_floor=floor)

    for query in queries:
        expected = measure.execute(query)
        kth = expected.result.matches[-1].score
        payload = run(scenario(query, kth))
        assert payload["status"] == "ok"
        assert payload["matches"] == matches_to_wire(expected.result)


def test_floored_requests_never_coalesce(index, queries):
    """Floors are per-request state: a floored request must execute
    solo even when the window would otherwise batch it."""

    async def scenario():
        config = ServeConfig(mode="measure", pool_size=POOL_SIZE,
                             coalesce_ms=25.0, coalesce_max=8)
        async with QueryServer(index, config=config) as server:
            async with ServeClient(*server.address) as client:
                payloads = await client.pipeline(
                    queries, tau_floors=[0.001] * len(queries)
                )
            return payloads

    payloads = run(scenario())
    assert [p["status"] for p in payloads] == ["ok"] * len(queries)
    assert all(p["coalesced"] == 1 for p in payloads)
