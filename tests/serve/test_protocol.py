"""Tests for :mod:`repro.serve.protocol` (the JSON-lines wire format)."""

import numpy as np
import pytest

from repro.core import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    QueryError,
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
    UncertainAttribute,
    WindowedEqualityQuery,
)
from repro.core.results import Match, QueryResult
from repro.serve.protocol import (
    ProtocolError,
    decode_line,
    encode_line,
    matches_to_wire,
    parse_request,
    query_from_wire,
    query_to_wire,
)


def uda(*pairs):
    return UncertainAttribute.from_pairs(list(pairs))


EXAMPLES = [
    EqualityQuery(uda((2, 0.5), (9, 0.25))),
    EqualityThresholdQuery(uda((0, 0.125), (4, 0.5)), 0.1),
    EqualityTopKQuery(uda((1, 1.0)), 3),
    WindowedEqualityQuery(uda((3, 0.5), (5, 0.5)), 0.2, 1),
    SimilarityThresholdQuery(uda((2, 0.75)), 0.4, "l1"),
    SimilarityTopKQuery(uda((2, 0.25), (3, 0.75)), 2, "kl"),
]


@pytest.mark.parametrize("query", EXAMPLES, ids=lambda q: type(q).__name__)
def test_query_round_trips_bit_exactly(query):
    wire = query_to_wire(query)
    back = query_from_wire(wire)
    assert type(back) is type(query)
    assert np.array_equal(back.q.items, query.q.items)
    assert np.array_equal(back.q.probs, query.q.probs)
    for name in ("threshold", "k", "window", "divergence"):
        if hasattr(query, name):
            assert getattr(back, name) == getattr(query, name)


def test_round_trip_survives_json(tmp_path):
    """The full encode -> bytes -> decode path preserves the query."""
    query = EqualityThresholdQuery(uda((7, 1 / 3), (11, 1 / 7)), 0.05)
    line = encode_line({"id": 1, **query_to_wire(query)})
    back = parse_request(decode_line(line))
    assert np.array_equal(back.query.q.probs, query.q.probs)


def test_unknown_kind_rejected():
    with pytest.raises(ProtocolError, match="unknown query kind"):
        query_from_wire({"kind": "join", "items": [1], "probs": [0.5]})


def test_missing_field_rejected():
    with pytest.raises(ProtocolError, match="threshold"):
        query_from_wire({"kind": "petq", "items": [1], "probs": [0.5]})


def test_bad_distribution_rejected():
    with pytest.raises(ProtocolError, match="bad distribution"):
        query_from_wire(
            {"kind": "peq", "items": [1, "x"], "probs": [0.5, 0.5]}
        )


def test_descriptor_validation_propagates():
    # Structurally valid wire, semantically invalid query: the
    # descriptor's own QueryError surfaces (threshold out of range).
    with pytest.raises(QueryError):
        query_from_wire(
            {"kind": "petq", "items": [1], "probs": [0.5], "threshold": 2.0}
        )


def test_unsupported_query_type_rejected_on_encode():
    with pytest.raises(ProtocolError, match="unsupported query type"):
        query_to_wire(object())


def test_request_requires_id():
    with pytest.raises(ProtocolError, match="id"):
        parse_request(query_to_wire(EXAMPLES[0]))


def test_request_id_must_be_scalar():
    message = {"id": True, **query_to_wire(EXAMPLES[0])}
    with pytest.raises(ProtocolError, match="'id'"):
        parse_request(message)


def test_request_deadline_validated():
    message = {"id": 1, "deadline_ms": -5, **query_to_wire(EXAMPLES[0])}
    with pytest.raises(ProtocolError, match="deadline_ms"):
        parse_request(message)


def test_request_tau_floor_roundtrips_on_topk():
    message = {"id": 1, "tau_floor": 0.25, **query_to_wire(EXAMPLES[2])}
    request = parse_request(message)
    assert request.tau_floor == 0.25
    assert parse_request(
        {"id": 2, **query_to_wire(EXAMPLES[2])}
    ).tau_floor == 0.0


def test_request_tau_floor_must_be_non_negative():
    message = {"id": 1, "tau_floor": -0.1, **query_to_wire(EXAMPLES[2])}
    with pytest.raises(ProtocolError, match="tau_floor"):
        parse_request(message)


def test_request_tau_floor_rejected_off_topk():
    message = {"id": 1, "tau_floor": 0.25, **query_to_wire(EXAMPLES[1])}
    with pytest.raises(ProtocolError, match="tau_floor"):
        parse_request(message)


def test_request_tau_floor_rejected_on_mutation():
    message = {
        "id": 1,
        "tau_floor": 0.25,
        "mutate": "delete",
        "tid": 3,
    }
    with pytest.raises(ProtocolError, match="tau_floor"):
        parse_request(message)


def test_request_sketch_roundtrips_on_similarity():
    # simtq and simtopk both accept the override; absent means "defer
    # to the server's resolved REPRO_SKETCH mode".
    for example in (EXAMPLES[4], EXAMPLES[5]):
        wire = query_to_wire(example)
        for mode in ("off", "exact", "approx"):
            request = parse_request(
                decode_line(encode_line({"id": 1, "sketch": mode, **wire}))
            )
            assert request.sketch == mode
        assert parse_request({"id": 2, **wire}).sketch is None


def test_request_div_ceiling_roundtrips_on_simtopk():
    wire = query_to_wire(EXAMPLES[5])
    request = parse_request(
        decode_line(encode_line({"id": 1, "div_ceiling": 0.625, **wire}))
    )
    assert request.div_ceiling == 0.625
    assert parse_request({"id": 2, **wire}).div_ceiling is None
    # Zero is a legal ceiling ("nothing can beat the heap").
    assert parse_request(
        {"id": 3, "div_ceiling": 0, **wire}
    ).div_ceiling == 0.0


def test_request_sketch_value_validated():
    message = {"id": 1, "sketch": "sorta", **query_to_wire(EXAMPLES[4])}
    with pytest.raises(ProtocolError, match="'sketch'"):
        parse_request(message)


def test_request_sketch_rejected_off_similarity():
    # Equality kinds never take the sketch override, valid value or not.
    for example in (EXAMPLES[0], EXAMPLES[1], EXAMPLES[2], EXAMPLES[3]):
        message = {"id": 1, "sketch": "exact", **query_to_wire(example)}
        with pytest.raises(
            ProtocolError, match="only applies to similarity"
        ):
            parse_request(message)


def test_request_div_ceiling_rejected_off_simtopk():
    # Similarity thresholds and every equality kind refuse the ceiling.
    for example in (EXAMPLES[2], EXAMPLES[4]):
        message = {"id": 1, "div_ceiling": 0.5, **query_to_wire(example)}
        with pytest.raises(
            ProtocolError, match="only applies to simtopk"
        ):
            parse_request(message)


def test_request_div_ceiling_must_be_non_negative_number():
    wire = query_to_wire(EXAMPLES[5])
    for bad in (-0.5, True, "low"):
        message = {"id": 1, "div_ceiling": bad, **wire}
        with pytest.raises(ProtocolError, match="div_ceiling"):
            parse_request(message)


def test_request_sketch_fields_rejected_on_mutation():
    for extra in ({"sketch": "exact"}, {"div_ceiling": 0.5}):
        message = {"id": 1, "mutate": "compact", **extra}
        with pytest.raises(ProtocolError, match="not valid on a mutation"):
            parse_request(message)


def test_decode_line_rejects_non_json():
    with pytest.raises(ProtocolError, match="not valid JSON"):
        decode_line(b"{nope\n")


def test_decode_line_rejects_non_object():
    with pytest.raises(ProtocolError, match="not an object"):
        decode_line(b"[1, 2]\n")


def test_encode_line_is_deterministic():
    message = {"b": 1, "a": 2}
    assert encode_line(message) == b'{"a":2,"b":1}\n'


def test_matches_to_wire_preserves_presentation_order():
    result = QueryResult(
        matches=[Match(tid=5, score=0.25), Match(tid=2, score=0.75)]
    )
    assert matches_to_wire(result) == [[2, 0.75], [5, 0.25]]
