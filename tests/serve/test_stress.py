"""Concurrency stress tests for the query service (ISSUE 6, satellite 3).

Many asyncio clients fire a mixed PEQ/PETQ/top-k workload at one
server.  The contracts under load: every ``ok`` answer is identical to
sequential measurement-mode execution; the warm pool's pin counts are
balanced when the server quiesces; and admission control past the
in-flight cap sheds requests rather than corrupting any answer.
"""

import asyncio

import pytest

from repro.core import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    WindowedEqualityQuery,
)
from repro.exec import ServingExecutor
from repro.invindex import ProbabilisticInvertedIndex
from repro.serve import QueryServer, ServeClient, ServeConfig

from tests.exec.test_batch import POOL_SIZE
from tests.invindex.conftest import random_query, random_relation

NUM_CLIENTS = 6
QUERIES_PER_CLIENT = 8


@pytest.fixture(scope="module")
def relation():
    return random_relation(300, 14, seed=17)


@pytest.fixture(scope="module")
def index(relation):
    built = ProbabilisticInvertedIndex(len(relation.domain))
    built.build(relation)
    return built


@pytest.fixture(scope="module")
def workload(relation):
    """Mixed PEQ / PETQ / top-k / windowed queries, one slice per client."""
    queries = []
    for i in range(NUM_CLIENTS * QUERIES_PER_CLIENT):
        q = random_query(len(relation.domain), seed=100 + i)
        if i % 4 == 0:
            queries.append(EqualityQuery(q))
        elif i % 4 == 1:
            queries.append(EqualityThresholdQuery(q, 0.05))
        elif i % 4 == 2:
            queries.append(EqualityTopKQuery(q, 1 + i % 5))
        else:
            queries.append(WindowedEqualityQuery(q, 0.05, 1))
    return queries


@pytest.fixture(scope="module")
def expected(index, workload):
    """Sequential measurement-mode answers: the identity baseline."""
    measure = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)
    return [
        [[m.tid, m.score] for m in measure.execute(q).result.matches]
        for q in workload
    ]


def slices(workload):
    return [
        workload[c * QUERIES_PER_CLIENT:(c + 1) * QUERIES_PER_CLIENT]
        for c in range(NUM_CLIENTS)
    ]


def test_concurrent_clients_match_sequential_measurement(
    index, workload, expected
):
    async def one_client(address, queries):
        async with ServeClient(*address) as client:
            return await client.pipeline(queries)

    async def scenario():
        config = ServeConfig(coalesce_ms=2.0, coalesce_max=16)
        async with QueryServer(index, config=config) as server:
            results = await asyncio.gather(
                *(one_client(server.address, s) for s in slices(workload))
            )
            await server.drain()
            # Pin balance at quiesce: no page survives with a pin, and
            # every buffer-pool invariant holds.
            server.executor.check_quiesced()
            counters = dict(server.counters)
        return results, counters

    results, counters = asyncio.run(scenario())
    flat = [payload for client in results for payload in client]
    assert [p["status"] for p in flat] == ["ok"] * len(workload)
    for client_idx, payloads in enumerate(results):
        base = client_idx * QUERIES_PER_CLIENT
        for offset, payload in enumerate(payloads):
            assert payload["matches"] == expected[base + offset], (
                f"client {client_idx} query {offset} diverged"
            )
    assert counters["ok"] == len(workload)
    assert counters["shed"] == counters["timeout"] == counters["error"] == 0
    # Concurrent pipelined submission exercised coalescing.
    assert counters["batches"] < len(workload)


def test_overload_sheds_but_never_corrupts(index, workload, expected):
    async def one_client(address, queries):
        async with ServeClient(*address) as client:
            return await client.pipeline(queries)

    async def scenario():
        config = ServeConfig(
            max_inflight=4, queue_limit=4, coalesce_ms=5.0, coalesce_max=4
        )
        async with QueryServer(index, config=config) as server:
            results = await asyncio.gather(
                *(one_client(server.address, s) for s in slices(workload))
            )
            await server.drain()
            server.executor.check_quiesced()
            counters = dict(server.counters)
        return results, counters

    results, counters = asyncio.run(scenario())
    flat = [payload for client in results for payload in client]
    statuses = {p["status"] for p in flat}
    assert statuses <= {"ok", "shed", "timeout"}
    # Overload was real: the cap turned some requests away...
    assert counters["shed"] > 0
    assert {p.get("reason") for p in flat if p["status"] == "shed"} <= {
        "inflight", "queue"
    }
    # ...yet every served answer is still byte-identical to sequential
    # measurement-mode execution.
    served_ok = 0
    for client_idx, payloads in enumerate(results):
        base = client_idx * QUERIES_PER_CLIENT
        for offset, payload in enumerate(payloads):
            if payload["status"] == "ok":
                served_ok += 1
                assert payload["matches"] == expected[base + offset]
    assert served_ok == counters["ok"] > 0
    assert (
        counters["ok"] + counters["shed"] + counters["timeout"]
        == len(workload)
    )
