"""Tests for :mod:`repro.serve.server` (admission, deadlines, coalescing).

No pytest-asyncio in the toolchain, so each test drives its own event
loop with ``asyncio.run``.  The server binds port 0 (ephemeral) on
loopback.
"""

import asyncio
import json

import pytest

from repro.exec import ServingExecutor
from repro.invindex import ProbabilisticInvertedIndex
from repro.obs.schema import validate_records
from repro.obs.trace import MemorySink, Tracer, tracing
from repro.serve import QueryServer, ServeClient, ServeConfig, ServeError
from repro.serve.protocol import decode_line, encode_line, query_to_wire

from tests.exec.test_batch import POOL_SIZE, mixed_workload
from tests.invindex.conftest import random_relation


@pytest.fixture(scope="module")
def relation():
    return random_relation(250, 12, seed=91)


@pytest.fixture(scope="module")
def index(relation):
    built = ProbabilisticInvertedIndex(len(relation.domain))
    built.build(relation)
    return built


@pytest.fixture(scope="module")
def workload(relation):
    return mixed_workload(len(relation.domain), 16, base_seed=5)


@pytest.fixture(scope="module")
def expected(index, workload):
    measure = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)
    return [
        [[m.tid, m.score] for m in measure.execute(q).result.matches]
        for q in workload
    ]


def run(coro):
    return asyncio.run(coro)


def test_single_query_roundtrip(index, workload, expected):
    async def scenario():
        async with QueryServer(index, config=ServeConfig()) as server:
            async with ServeClient(*server.address) as client:
                return await client.query(workload[0])

    payload = run(scenario())
    assert payload["status"] == "ok"
    assert payload["mode"] == "serve"
    assert payload["matches"] == expected[0]


def test_pipeline_answers_align_and_match_measure(index, workload, expected):
    async def scenario():
        config = ServeConfig(coalesce_ms=1.0, coalesce_max=8)
        async with QueryServer(index, config=config) as server:
            async with ServeClient(*server.address) as client:
                payloads = await client.pipeline(workload)
            await server.drain()
            server.executor.check_quiesced()
            return payloads

    payloads = run(scenario())
    assert [p["status"] for p in payloads] == ["ok"] * len(workload)
    assert [p["matches"] for p in payloads] == expected
    # The pipelined submission actually coalesced.
    assert max(p["coalesced"] for p in payloads) > 1


def test_control_ops(index, workload):
    async def scenario():
        async with QueryServer(index, config=ServeConfig()) as server:
            async with ServeClient(*server.address) as client:
                pong = await client.ping()
                await client.query(workload[0])
                stats = await client.stats()
                reset = await client.reset_window()
                return pong, stats, reset

    pong, stats, reset = run(scenario())
    assert pong["op"] == "pong" and pong["status"] == "ok"
    assert stats["mode"] == "serve"
    assert stats["counters"]["ok"] == 1
    assert 0.0 <= stats["hit_ratio"] <= 1.0
    assert reset["status"] == "ok"


def test_malformed_and_unknown_requests_answer_error(index):
    async def scenario():
        async with QueryServer(index, config=ServeConfig()) as server:
            reader, writer = await asyncio.open_connection(*server.address)
            writer.write(b"{not json\n")
            writer.write(encode_line({"id": 9, "kind": "nope"}))
            writer.write(encode_line({"op": "explode", "id": 10}))
            await writer.drain()
            lines = [await reader.readline() for _ in range(3)]
            writer.close()
            await writer.wait_closed()
            return [json.loads(line) for line in lines]

    bad_json, bad_kind, bad_op = run(scenario())
    assert bad_json["status"] == "error"
    assert bad_kind["status"] == "error" and bad_kind["id"] == 9
    assert "unknown query kind" in bad_kind["error"]
    assert bad_op["status"] == "error" and "unknown op" in bad_op["error"]


def test_inflight_cap_sheds(index, workload):
    async def scenario():
        # One in-flight slot and a long coalesce window: everything
        # after the first request is shed while the first waits.
        config = ServeConfig(
            max_inflight=1, queue_limit=8, coalesce_ms=50.0
        )
        async with QueryServer(index, config=config) as server:
            async with ServeClient(*server.address) as client:
                return await client.pipeline(workload[:5])

    payloads = run(scenario())
    statuses = [p["status"] for p in payloads]
    assert statuses[0] == "ok"
    assert statuses[1:] == ["shed"] * 4
    assert {p["reason"] for p in payloads[1:]} == {"inflight"}


def test_queue_bound_sheds(index, workload):
    async def scenario():
        config = ServeConfig(
            max_inflight=64, queue_limit=1, coalesce_ms=50.0
        )
        async with QueryServer(index, config=config) as server:
            async with ServeClient(*server.address) as client:
                return await client.pipeline(workload[:4])

    payloads = run(scenario())
    statuses = [p["status"] for p in payloads]
    assert statuses[0] == "ok"
    assert statuses[1:] == ["shed"] * 3
    assert {p["reason"] for p in payloads[1:]} == {"queue"}


def test_expired_deadline_times_out_without_executing(index, workload):
    async def scenario():
        config = ServeConfig(coalesce_ms=20.0)
        async with QueryServer(index, config=config) as server:
            before = server.counters["batches"]
            async with ServeClient(*server.address) as client:
                payload = await client.request(
                    workload[0], deadline_ms=0.0
                )
            return payload, server.counters["batches"] - before

    payload, batches = run(scenario())
    assert payload["status"] == "timeout"
    assert batches == 0


def test_client_query_raises_on_non_ok(index, workload):
    async def scenario():
        config = ServeConfig(coalesce_ms=20.0)
        async with QueryServer(index, config=config) as server:
            async with ServeClient(*server.address) as client:
                await client.query(workload[0], deadline_ms=0.0)

    with pytest.raises(ServeError, match="timeout"):
        run(scenario())


def test_serve_traces_validate_against_schema(index, workload):
    sink = MemorySink()

    async def scenario():
        config = ServeConfig(
            max_inflight=2, queue_limit=1, coalesce_ms=5.0
        )
        async with QueryServer(index, config=config) as server:
            async with ServeClient(*server.address) as client:
                await client.pipeline(workload[:6])
            await server.drain()

    with tracing(Tracer(sink)):
        run(scenario())
    records = [json.loads(line) for line in sink.jsonl_lines()]
    validate_records(records)
    kinds = {record["kind"] for record in records}
    assert "serve.request" in kinds
    assert "serve.batch" in kinds
    assert "serve.shed" in kinds
    # Every response wrote exactly one serve.request record.
    assert sink.count("serve.request") == 6


def test_measure_mode_over_the_wire(index, workload, expected):
    """The same wire protocol can run the paper's measurement protocol."""

    async def scenario():
        config = ServeConfig(
            mode="measure", pool_size=POOL_SIZE, coalesce_ms=0.0
        )
        async with QueryServer(index, config=config) as server:
            async with ServeClient(*server.address) as client:
                return await client.pipeline(workload[:4])

    payloads = run(scenario())
    assert [p["mode"] for p in payloads] == ["measure"] * 4
    assert [p["matches"] for p in payloads] == expected[:4]


def test_stop_sheds_queued_requests(index, workload):
    async def scenario():
        config = ServeConfig(coalesce_ms=200.0)
        server = QueryServer(index, config=config)
        await server.start()
        client = ServeClient(*server.address)
        await client.connect()
        # Queue a request, then stop before the coalesce window closes:
        # the response must still arrive (shed or ok, never silence).
        message = {"id": 1, **query_to_wire(workload[0])}
        await client._send(encode_line(message))
        await asyncio.sleep(0.01)
        stop = asyncio.create_task(server.stop())
        payload = await asyncio.wait_for(client._read_payload(), timeout=5.0)
        await stop
        await client.close()
        return payload

    payload = run(scenario())
    assert payload["status"] in ("ok", "shed")
    if payload["status"] == "shed":
        assert payload["reason"] == "shutdown"
