"""Tests for :mod:`repro.serve.config` (``REPRO_SERVE_*`` knobs)."""

import pytest

from repro.core import ConfigError
from repro.serve.config import (
    COALESCE_MAX_ENV,
    COALESCE_MS_ENV,
    DEADLINE_MS_ENV,
    INFLIGHT_ENV,
    MODE_ENV,
    POOL_ENV,
    QUEUE_ENV,
    ServeConfig,
)


def test_defaults_are_valid():
    config = ServeConfig()
    assert config.mode == "serve"
    assert config.pool_size >= config.coalesce_max


def test_from_env_reads_every_knob():
    config = ServeConfig.from_env(
        environ={
            MODE_ENV: "measure",
            POOL_ENV: "512",
            INFLIGHT_ENV: "8",
            QUEUE_ENV: "16",
            COALESCE_MS_ENV: "0.5",
            COALESCE_MAX_ENV: "4",
            DEADLINE_MS_ENV: "250",
        }
    )
    assert config.mode == "measure"
    assert config.pool_size == 512
    assert config.max_inflight == 8
    assert config.queue_limit == 16
    assert config.coalesce_ms == 0.5
    assert config.coalesce_max == 4
    assert config.deadline_ms == 250.0


def test_deadline_off_words():
    for word in ("off", "none", "OFF"):
        config = ServeConfig.from_env(environ={DEADLINE_MS_ENV: word})
        assert config.deadline_ms is None


def test_overrides_beat_environment():
    config = ServeConfig.from_env(
        environ={POOL_ENV: "512"}, pool_size=64
    )
    assert config.pool_size == 64


@pytest.mark.parametrize(
    "env,value",
    [
        (POOL_ENV, "zero"),
        (POOL_ENV, "0"),
        (INFLIGHT_ENV, "-1"),
        (QUEUE_ENV, "1.5"),
        (COALESCE_MS_ENV, "-2"),
        (COALESCE_MS_ENV, "nan"),
        (COALESCE_MAX_ENV, "lots"),
        (DEADLINE_MS_ENV, "-10"),
    ],
)
def test_bad_env_values_name_the_knob(env, value):
    with pytest.raises(ConfigError, match=env):
        ServeConfig.from_env(environ={env: value})


def test_bad_env_values_are_value_errors():
    with pytest.raises(ValueError):
        ServeConfig.from_env(environ={POOL_ENV: "many"})


def test_mode_validated():
    with pytest.raises(ConfigError, match=MODE_ENV):
        ServeConfig(mode="burst")
    with pytest.raises(ConfigError, match=MODE_ENV):
        ServeConfig.from_env(environ={MODE_ENV: "Turbo"})


def test_constructor_validates_programmatic_values():
    with pytest.raises(ConfigError, match=INFLIGHT_ENV):
        ServeConfig(max_inflight=0)
    with pytest.raises(ConfigError, match=COALESCE_MAX_ENV):
        ServeConfig(coalesce_max=0)


def test_with_overrides_revalidates():
    config = ServeConfig()
    assert config.with_overrides(coalesce_ms=0.0).coalesce_ms == 0.0
    with pytest.raises(ConfigError, match=QUEUE_ENV):
        config.with_overrides(queue_limit=0)
