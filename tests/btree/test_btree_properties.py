"""Property-based tests: B+-tree against a dict model."""

import struct

from hypothesis import given
from hypothesis import strategies as st

from repro.btree import BPlusTree
from repro.storage import BufferPool, DiskManager


def key_of(value: int) -> bytes:
    return struct.pack(">Q", value)


@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, 60)),
        max_size=120,
    )
)
def test_random_operations_match_dict_model(operations):
    disk = DiskManager(page_size=128)  # tiny pages force frequent splits
    tree = BPlusTree(BufferPool(disk, capacity=64), key_size=8, value_size=4)
    model: dict[int, bytes] = {}
    for op, value in operations:
        key = key_of(value)
        payload = struct.pack("<I", value)
        if op == "insert":
            if value in model:
                continue
            tree.insert(key, payload)
            model[value] = payload
        else:
            if value not in model:
                continue
            tree.delete(key)
            del model[value]
    assert len(tree) == len(model)
    expected = [(key_of(v), model[v]) for v in sorted(model)]
    assert list(tree.items()) == expected
    for value in sorted(model):
        assert tree.search(key_of(value)) == model[value]
    assert tree.search(key_of(61)) is None


@given(st.sets(st.integers(0, 10_000), max_size=300))
def test_bulk_load_equals_incremental_build(values):
    ordered = sorted(values)
    records = [(key_of(v), struct.pack("<I", v)) for v in ordered]

    bulk = BPlusTree(
        BufferPool(DiskManager(page_size=128), 64), key_size=8, value_size=4
    )
    bulk.bulk_load(records)

    incremental = BPlusTree(
        BufferPool(DiskManager(page_size=128), 64), key_size=8, value_size=4
    )
    for key, payload in records:
        incremental.insert(key, payload)

    assert list(bulk.items()) == list(incremental.items())
