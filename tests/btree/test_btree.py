"""Tests for :mod:`repro.btree`."""

import struct

import pytest

from repro.core import DuplicateKeyError, KeyNotFoundError, TreeError
from repro.btree import BPlusTree
from repro.storage import BufferPool, DiskManager


def key_of(value: int) -> bytes:
    return struct.pack(">Q", value)


def make_tree(page_size=256, key_size=8, value_size=4, capacity=64):
    disk = DiskManager(page_size=page_size)
    pool = BufferPool(disk, capacity=capacity)
    return BPlusTree(pool, key_size=key_size, value_size=value_size)


class TestConstruction:
    def test_empty_tree(self):
        tree = make_tree()
        assert len(tree) == 0
        assert tree.height == 1
        assert list(tree.items()) == []

    def test_capacities_computed_from_page_size(self):
        tree = make_tree(page_size=256)
        assert tree.leaf_capacity == (256 - 8) // 12
        assert tree.internal_capacity == (256 - 8) // 12

    def test_records_too_large_rejected(self):
        with pytest.raises(TreeError):
            make_tree(page_size=64, key_size=40, value_size=40)

    def test_invalid_key_size(self):
        with pytest.raises(TreeError):
            make_tree(key_size=0)


class TestInsertSearch:
    def test_single_record(self):
        tree = make_tree()
        tree.insert(key_of(5), b"ABCD")
        assert tree.search(key_of(5)) == b"ABCD"
        assert tree.search(key_of(6)) is None

    def test_duplicate_rejected(self):
        tree = make_tree()
        tree.insert(key_of(5), b"AAAA")
        with pytest.raises(DuplicateKeyError):
            tree.insert(key_of(5), b"BBBB")

    def test_wrong_key_size(self):
        tree = make_tree()
        with pytest.raises(TreeError):
            tree.insert(b"short", b"AAAA")

    def test_wrong_value_size(self):
        tree = make_tree()
        with pytest.raises(TreeError):
            tree.insert(key_of(1), b"too long")

    def test_many_inserts_cause_splits(self):
        tree = make_tree(page_size=256)
        values = list(range(500))
        import random

        random.Random(3).shuffle(values)
        for v in values:
            tree.insert(key_of(v), struct.pack("<I", v))
        assert tree.height > 1
        assert len(tree) == 500
        for v in (0, 123, 499):
            assert tree.search(key_of(v)) == struct.pack("<I", v)

    def test_ascending_insert_order(self):
        tree = make_tree(page_size=256)
        for v in range(300):
            tree.insert(key_of(v), struct.pack("<I", v))
        got = [struct.unpack(">Q", k)[0] for k, _ in tree.items()]
        assert got == list(range(300))

    def test_descending_insert_order(self):
        tree = make_tree(page_size=256)
        for v in reversed(range(300)):
            tree.insert(key_of(v), struct.pack("<I", v))
        got = [struct.unpack(">Q", k)[0] for k, _ in tree.items()]
        assert got == list(range(300))


class TestDelete:
    def test_delete_restores_absence(self):
        tree = make_tree()
        tree.insert(key_of(1), b"AAAA")
        tree.delete(key_of(1))
        assert tree.search(key_of(1)) is None
        assert len(tree) == 0

    def test_delete_missing_key(self):
        tree = make_tree()
        with pytest.raises(KeyNotFoundError):
            tree.delete(key_of(1))

    def test_interleaved_insert_delete(self):
        tree = make_tree(page_size=256)
        for v in range(200):
            tree.insert(key_of(v), struct.pack("<I", v))
        for v in range(0, 200, 2):
            tree.delete(key_of(v))
        got = [struct.unpack(">Q", k)[0] for k, _ in tree.items()]
        assert got == list(range(1, 200, 2))

    def test_reinsert_after_delete(self):
        tree = make_tree()
        tree.insert(key_of(7), b"AAAA")
        tree.delete(key_of(7))
        tree.insert(key_of(7), b"BBBB")
        assert tree.search(key_of(7)) == b"BBBB"


class TestScans:
    def test_items_from_midpoint(self):
        tree = make_tree(page_size=256)
        for v in range(100):
            tree.insert(key_of(v * 2), struct.pack("<I", v))
        got = [struct.unpack(">Q", k)[0] for k, _ in tree.items_from(key_of(90))]
        assert got == list(range(90, 200, 2))

    def test_items_from_between_keys(self):
        tree = make_tree(page_size=256)
        for v in range(100):
            tree.insert(key_of(v * 2), struct.pack("<I", v))
        got = [struct.unpack(">Q", k)[0] for k, _ in tree.items_from(key_of(91))]
        assert got[0] == 92

    def test_iter_leaf_runs_cover_everything(self):
        tree = make_tree(page_size=256)
        for v in range(250):
            tree.insert(key_of(v), struct.pack("<I", v))
        total = sum(len(run) // 12 for run in tree.iter_leaf_runs())
        assert total == 250


class TestBulkLoad:
    def test_bulk_load_round_trip(self):
        tree = make_tree(page_size=256)
        records = [(key_of(v), struct.pack("<I", v)) for v in range(400)]
        tree.bulk_load(iter(records))
        assert len(tree) == 400
        got = [struct.unpack(">Q", k)[0] for k, _ in tree.items()]
        assert got == list(range(400))
        assert tree.search(key_of(250)) == struct.pack("<I", 250)

    def test_bulk_load_builds_internal_levels(self):
        tree = make_tree(page_size=256)
        tree.bulk_load((key_of(v), struct.pack("<I", v)) for v in range(2000))
        assert tree.height >= 2

    def test_bulk_load_empty(self):
        tree = make_tree()
        tree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_bulk_load_requires_sorted(self):
        tree = make_tree()
        with pytest.raises(TreeError):
            tree.bulk_load([(key_of(2), b"AAAA"), (key_of(1), b"BBBB")])

    def test_bulk_load_rejects_duplicates(self):
        tree = make_tree()
        with pytest.raises(TreeError):
            tree.bulk_load([(key_of(1), b"AAAA"), (key_of(1), b"BBBB")])

    def test_bulk_load_requires_empty_tree(self):
        tree = make_tree()
        tree.insert(key_of(1), b"AAAA")
        with pytest.raises(TreeError):
            tree.bulk_load([(key_of(2), b"BBBB")])

    def test_bulk_load_fill_factor(self):
        dense = make_tree(page_size=256)
        dense.bulk_load((key_of(v), struct.pack("<I", v)) for v in range(400))
        sparse = make_tree(page_size=256)
        sparse.bulk_load(
            ((key_of(v), struct.pack("<I", v)) for v in range(400)),
            fill_factor=0.5,
        )
        assert sparse.pool.disk.num_pages > dense.pool.disk.num_pages

    def test_inserts_after_bulk_load(self):
        tree = make_tree(page_size=256)
        tree.bulk_load((key_of(v * 2), struct.pack("<I", v)) for v in range(200))
        tree.insert(key_of(41), struct.pack("<I", 999))
        got = [struct.unpack(">Q", k)[0] for k, _ in tree.items()]
        assert got == sorted(got)
        assert tree.search(key_of(41)) == struct.pack("<I", 999)


class TestIOAccounting:
    def test_search_costs_height_reads_on_cold_pool(self):
        disk = DiskManager(page_size=256)
        pool = BufferPool(disk, capacity=64)
        tree = BPlusTree(pool, key_size=8, value_size=4)
        for v in range(1000):
            tree.insert(key_of(v), struct.pack("<I", v))
        pool.flush_all()
        tree.pool = BufferPool(disk, capacity=64)
        before = disk.stats.snapshot()
        tree.search(key_of(567))
        assert disk.stats.delta_since(before).reads == tree.height
