"""Tests for :mod:`repro.datagen.crm`."""

import numpy as np
import pytest

from repro.core import QueryError
from repro.datagen import crm1_dataset, crm2_dataset


@pytest.fixture(scope="module")
def crm1():
    return crm1_dataset(num_tuples=800, training_docs=600, seed=1)


@pytest.fixture(scope="module")
def crm2():
    return crm2_dataset(num_tuples=800, seed=1)


class TestCRM1:
    def test_shape(self, crm1):
        assert len(crm1) == 800
        assert len(crm1.domain) == 50

    def test_unit_mass(self, crm1):
        for tid in range(0, 800, 97):
            assert crm1.uda_of(tid).total_mass == pytest.approx(1.0, abs=1e-4)

    def test_sparse(self, crm1):
        mean_nnz = np.mean([crm1.uda_of(t).nnz for t in crm1.tids()])
        assert mean_nnz < 25  # clearly below the 50-category ceiling

    def test_truncation_respected(self, crm1):
        for tid in range(0, 800, 131):
            probs = crm1.uda_of(tid).probs
            assert (probs >= 0.009).all()  # truncate=0.01 before renorm

    def test_insufficient_training_docs(self):
        with pytest.raises(QueryError):
            crm1_dataset(num_tuples=10, training_docs=10)


class TestCRM2:
    def test_shape(self, crm2):
        assert len(crm2) == 800
        assert len(crm2.domain) == 50

    def test_dense(self, crm2):
        mean_nnz = np.mean([crm2.uda_of(t).nnz for t in crm2.tids()])
        assert mean_nnz > 30

    def test_has_contrast(self, crm2):
        # Memberships must not be uniform: the mode clearly exceeds 1/50.
        modes = [crm2.uda_of(t).mode()[1] for t in crm2.tids()]
        assert np.mean(modes) > 0.05

    def test_unit_mass(self, crm2):
        for tid in range(0, 800, 97):
            assert crm2.uda_of(tid).total_mass == pytest.approx(1.0, abs=1e-4)


class TestContrastBetweenDatasets:
    def test_crm1_sparser_than_crm2(self, crm1, crm2):
        nnz1 = np.mean([crm1.uda_of(t).nnz for t in crm1.tids()])
        nnz2 = np.mean([crm2.uda_of(t).nnz for t in crm2.tids()])
        assert nnz1 < nnz2 / 2  # the paper's sparse-vs-dense contrast

    def test_deterministic_by_seed(self):
        a = crm1_dataset(num_tuples=60, training_docs=200, seed=9)
        b = crm1_dataset(num_tuples=60, training_docs=200, seed=9)
        assert all(a.uda_of(t) == b.uda_of(t) for t in a.tids())
