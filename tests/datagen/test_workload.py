"""Tests for :mod:`repro.datagen.workload`."""

import numpy as np
import pytest

from repro.core import EqualityThresholdQuery, QueryError, UncertainAttribute
from repro.datagen import (
    build_workload,
    calibrate_threshold,
    sample_query_udas,
    uniform_dataset,
)


@pytest.fixture(scope="module")
def relation():
    return uniform_dataset(num_tuples=1000, seed=3)


class TestSampling:
    def test_queries_come_from_relation(self, relation):
        queries = sample_query_udas(relation, 20, seed=1)
        tuples = {relation.uda_of(t) for t in relation.tids()}
        assert all(q in tuples for q in queries)

    def test_deterministic(self, relation):
        assert sample_query_udas(relation, 5, seed=2) == sample_query_udas(
            relation, 5, seed=2
        )

    def test_empty_relation_rejected(self):
        empty = uniform_dataset(num_tuples=1)
        empty._udas.clear()  # simulate emptiness
        with pytest.raises(QueryError):
            sample_query_udas(empty, 1)


class TestCalibration:
    def test_threshold_hits_target_selectivity(self, relation):
        q = relation.uda_of(0)
        for selectivity in (0.01, 0.1):
            threshold, k = calibrate_threshold(relation, q, selectivity)
            result = relation.execute(EqualityThresholdQuery(q, threshold))
            achieved = len(result) / len(relation)
            # Inclusive threshold: at least the target, and close to it.
            assert achieved >= selectivity - 1e-9
            assert achieved <= selectivity * 2 + 0.01
            assert k == max(1, round(selectivity * len(relation)))

    def test_invalid_selectivity(self, relation):
        q = relation.uda_of(0)
        with pytest.raises(QueryError):
            calibrate_threshold(relation, q, 0.0)
        with pytest.raises(QueryError):
            calibrate_threshold(relation, q, 1.5)

    def test_unreachable_selectivity(self, relation):
        # A query disjoint from every tuple has no positive probabilities.
        q = UncertainAttribute.from_pairs([(4, 1.0)])
        lonely = uniform_dataset(num_tuples=5, seed=0)
        for tid in lonely.tids():
            pass
        disjoint = UncertainAttribute.from_pairs([(0, 1.0)])
        relation_small = uniform_dataset(num_tuples=3, seed=1)
        # Build a tiny relation whose tuples miss item 0 entirely.
        from repro.core import CategoricalDomain, UncertainRelation

        domain = CategoricalDomain.of_size(5)
        empty_overlap = UncertainRelation(domain)
        empty_overlap.append(UncertainAttribute.from_pairs([(1, 1.0)]))
        with pytest.raises(QueryError):
            calibrate_threshold(empty_overlap, disjoint, 1.0)


class TestWorkload:
    def test_structure(self, relation):
        workload = build_workload(
            relation, selectivities=(0.01, 0.1), queries_per_point=4, seed=2
        )
        assert set(workload) == {0.01, 0.1}
        for selectivity, queries in workload.items():
            assert len(queries) == 4
            for calibrated in queries:
                assert calibrated.selectivity == selectivity
                assert calibrated.threshold > 0
                assert calibrated.k >= 1

    def test_query_forms(self, relation):
        workload = build_workload(
            relation, selectivities=(0.05,), queries_per_point=1, seed=2
        )
        calibrated = workload[0.05][0]
        assert calibrated.threshold_query().threshold == calibrated.threshold
        assert calibrated.top_k_query().k == calibrated.k

    def test_deterministic(self, relation):
        a = build_workload(relation, selectivities=(0.05,), queries_per_point=3, seed=4)
        b = build_workload(relation, selectivities=(0.05,), queries_per_point=3, seed=4)
        assert [c.threshold for c in a[0.05]] == [c.threshold for c in b[0.05]]
