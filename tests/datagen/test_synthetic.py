"""Tests for :mod:`repro.datagen.synthetic`."""

import numpy as np
import pytest

from repro.core import QueryError
from repro.datagen import (
    expected_group_size,
    gen3_dataset,
    pairwise_dataset,
    uniform_dataset,
)


class TestUniform:
    def test_shape(self):
        relation = uniform_dataset(num_tuples=200)
        assert len(relation) == 200
        assert len(relation.domain) == 5

    def test_every_tuple_is_dense(self):
        relation = uniform_dataset(num_tuples=50)
        for tid in relation.tids():
            assert relation.uda_of(tid).nnz == 5

    def test_unit_mass(self):
        relation = uniform_dataset(num_tuples=50)
        for tid in relation.tids():
            assert relation.uda_of(tid).total_mass == pytest.approx(1.0, abs=1e-5)

    def test_deterministic_by_seed(self):
        a = uniform_dataset(num_tuples=20, seed=5)
        b = uniform_dataset(num_tuples=20, seed=5)
        assert all(a.uda_of(t) == b.uda_of(t) for t in a.tids())

    def test_different_seeds_differ(self):
        a = uniform_dataset(num_tuples=20, seed=5)
        b = uniform_dataset(num_tuples=20, seed=6)
        assert any(a.uda_of(t) != b.uda_of(t) for t in a.tids())


class TestPairwise:
    def test_two_nonzero_items(self):
        relation = pairwise_dataset(num_tuples=100)
        for tid in relation.tids():
            assert relation.uda_of(tid).nnz == 2

    def test_roughly_equal_probabilities(self):
        relation = pairwise_dataset(num_tuples=100, jitter=0.1)
        for tid in relation.tids():
            probs = relation.uda_of(tid).probs
            assert abs(probs[0] - probs[1]) <= 0.1 + 1e-6

    def test_at_most_five_combinations(self):
        relation = pairwise_dataset(num_tuples=300)
        combos = {
            tuple(relation.uda_of(tid).items.tolist())
            for tid in relation.tids()
        }
        assert len(combos) <= 5

    def test_too_many_combinations_rejected(self):
        with pytest.raises(QueryError):
            pairwise_dataset(domain_size=3, num_combinations=5)


class TestGen3:
    def test_shape(self):
        relation = gen3_dataset(num_tuples=100, domain_size=50)
        assert len(relation.domain) == 50
        assert len(relation) == 100

    def test_items_within_domain(self):
        relation = gen3_dataset(num_tuples=100, domain_size=30)
        for tid in relation.tids():
            assert relation.uda_of(tid).items.max() < 30

    def test_group_structure_limits_distinct_supports(self):
        relation = gen3_dataset(
            num_tuples=400, domain_size=100, num_groups=10
        )
        supports = {
            tuple(relation.uda_of(tid).items.tolist())
            for tid in relation.tids()
        }
        assert len(supports) <= 10

    def test_expected_group_size_anchors(self):
        # "from 3 (in domain size 10) to 10 (in domain size 500)".
        assert expected_group_size(10) == 3
        assert expected_group_size(500) == 10
        assert expected_group_size(5) == 3
        assert expected_group_size(1000) == 10

    def test_expected_group_size_monotone(self):
        sizes = [expected_group_size(d) for d in (10, 50, 100, 250, 500)]
        assert sizes == sorted(sizes)

    def test_deterministic_by_seed(self):
        a = gen3_dataset(num_tuples=30, domain_size=40, seed=2)
        b = gen3_dataset(num_tuples=30, domain_size=40, seed=2)
        assert all(a.uda_of(t) == b.uda_of(t) for t in a.tids())


class TestZipf:
    def test_shape_and_nnz(self):
        from repro.datagen.synthetic import zipf_dataset

        relation = zipf_dataset(num_tuples=200, domain_size=30, nnz=4)
        assert len(relation) == 200
        for tid in relation.tids():
            assert relation.uda_of(tid).nnz == 4

    def test_skew_concentrates_popular_items(self):
        from repro.datagen.synthetic import zipf_dataset

        flat = zipf_dataset(num_tuples=400, domain_size=30, skew=1.05, seed=1)
        steep = zipf_dataset(num_tuples=400, domain_size=30, skew=3.0, seed=1)

        def usage_of_top_item(relation):
            counts = {}
            for tid in relation.tids():
                for item in relation.uda_of(tid).items.tolist():
                    counts[item] = counts.get(item, 0) + 1
            return max(counts.values())

        assert usage_of_top_item(steep) > usage_of_top_item(flat)

    def test_validation(self):
        from repro.core import QueryError
        from repro.datagen.synthetic import zipf_dataset

        with pytest.raises(QueryError):
            zipf_dataset(skew=1.0)
        with pytest.raises(QueryError):
            zipf_dataset(domain_size=3, nnz=5)
