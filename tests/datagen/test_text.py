"""Tests for :mod:`repro.datagen.text`."""

import numpy as np
import pytest

from repro.core import QueryError
from repro.datagen import generate_corpus


class TestCorpusShape:
    def test_dimensions(self):
        corpus = generate_corpus(num_docs=100, num_topics=8, vocab_size=60)
        assert corpus.counts.shape == (100, 60)
        assert corpus.topics.shape == (8, 60)
        assert corpus.topic_weights.shape == (100, 8)
        assert corpus.num_docs == 100
        assert corpus.vocab_size == 60
        assert corpus.num_topics == 8

    def test_document_lengths(self):
        corpus = generate_corpus(num_docs=50, doc_length=40, num_topics=5, vocab_size=30)
        lengths = np.asarray(corpus.counts.sum(axis=1)).ravel()
        assert (lengths == 40).all()

    def test_labels_are_dominant_topics(self):
        corpus = generate_corpus(num_docs=50, num_topics=5, vocab_size=30)
        assert (corpus.labels == corpus.topic_weights.argmax(axis=1)).all()

    def test_topic_rows_are_distributions(self):
        corpus = generate_corpus(num_docs=10, num_topics=5, vocab_size=30)
        assert corpus.topics.sum(axis=1) == pytest.approx(np.ones(5))

    def test_deterministic_by_seed(self):
        a = generate_corpus(num_docs=20, num_topics=4, vocab_size=25, seed=3)
        b = generate_corpus(num_docs=20, num_topics=4, vocab_size=25, seed=3)
        assert (a.counts != b.counts).nnz == 0

    def test_chunking_does_not_change_output(self):
        a = generate_corpus(num_docs=30, num_topics=4, vocab_size=25, seed=3, chunk_size=7)
        b = generate_corpus(num_docs=30, num_topics=4, vocab_size=25, seed=3, chunk_size=1000)
        assert (a.counts != b.counts).nnz == 0


class TestValidation:
    def test_no_documents_rejected(self):
        with pytest.raises(QueryError):
            generate_corpus(num_docs=0)

    def test_single_topic_rejected(self):
        with pytest.raises(QueryError):
            generate_corpus(num_docs=5, num_topics=1)
