"""Tests for :mod:`repro.datagen.classifier`."""

import numpy as np
import pytest
from scipy import sparse

from repro.core import QueryError
from repro.datagen import MultinomialNaiveBayes, generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(
        num_docs=600, num_topics=5, vocab_size=80, doc_length=50, seed=4
    )


class TestFit:
    def test_unfitted_predict_raises(self, corpus):
        with pytest.raises(QueryError):
            MultinomialNaiveBayes().predict_proba(corpus.counts)

    def test_label_count_mismatch(self, corpus):
        with pytest.raises(QueryError):
            MultinomialNaiveBayes().fit(corpus.counts, corpus.labels[:-1])

    def test_invalid_smoothing(self):
        with pytest.raises(QueryError):
            MultinomialNaiveBayes(smoothing=0.0)

    def test_num_classes(self, corpus):
        classifier = MultinomialNaiveBayes().fit(corpus.counts, corpus.labels)
        assert classifier.num_classes == 5
        assert classifier.is_fitted


class TestPredictions:
    @pytest.fixture(scope="class")
    def classifier(self, corpus):
        return MultinomialNaiveBayes().fit(
            corpus.counts[:400], corpus.labels[:400]
        )

    def test_posteriors_are_distributions(self, classifier, corpus):
        posteriors = classifier.predict_proba(corpus.counts[400:])
        assert posteriors.shape == (200, 5)
        assert (posteriors >= 0).all()
        assert posteriors.sum(axis=1) == pytest.approx(np.ones(200))

    def test_learns_separable_topics(self, classifier, corpus):
        predicted = classifier.predict(corpus.counts[400:])
        accuracy = (predicted == corpus.labels[400:]).mean()
        assert accuracy > 0.8  # topical corpora are easy for NB

    def test_handles_empty_document(self, classifier):
        empty = sparse.csr_matrix((1, 80))
        posterior = classifier.predict_proba(empty)
        # With no evidence the posterior equals the prior.
        assert posterior.sum() == pytest.approx(1.0)

    def test_unseen_class_gets_floor_prior(self):
        counts = sparse.csr_matrix(np.eye(4, 10))
        labels = np.array([0, 1, 2, 2])  # class 3 never appears
        classifier = MultinomialNaiveBayes().fit(counts, labels)
        assert classifier.num_classes == 3
