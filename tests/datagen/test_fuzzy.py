"""Tests for :mod:`repro.datagen.fuzzy`."""

import numpy as np
import pytest

from repro.core import QueryError
from repro.datagen import fuzzy_c_means


@pytest.fixture()
def blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    return np.vstack([c + rng.standard_normal((60, 2)) for c in centers])


class TestEuclidean:
    def test_finds_separated_blobs(self, blobs):
        result = fuzzy_c_means(blobs, 3, seed=1)
        assert result.memberships.shape == (180, 3)
        # Clear blobs give crisp memberships.
        assert result.memberships.max(axis=1).mean() > 0.9

    def test_memberships_are_distributions(self, blobs):
        result = fuzzy_c_means(blobs, 3, seed=1)
        assert (result.memberships >= 0).all()
        assert result.memberships.sum(axis=1) == pytest.approx(np.ones(180))

    def test_larger_fuzzifier_flattens(self, blobs):
        crisp = fuzzy_c_means(blobs, 3, fuzzifier=1.2, seed=1)
        flat = fuzzy_c_means(blobs, 3, fuzzifier=4.0, seed=1)
        assert (
            flat.memberships.max(axis=1).mean()
            < crisp.memberships.max(axis=1).mean()
        )

    def test_deterministic_by_seed(self, blobs):
        a = fuzzy_c_means(blobs, 3, seed=7)
        b = fuzzy_c_means(blobs, 3, seed=7)
        assert np.array_equal(a.memberships, b.memberships)


class TestCosine:
    def test_spherical_clusters(self):
        rng = np.random.default_rng(2)
        directions = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        data = np.vstack(
            [d + 0.05 * rng.standard_normal((40, 3)) for d in directions]
        )
        result = fuzzy_c_means(
            data, 3, fuzzifier=1.5, metric="cosine", init="farthest", seed=3
        )
        assert result.memberships.max(axis=1).mean() > 0.8

    def test_centroids_unit_norm(self):
        rng = np.random.default_rng(4)
        data = rng.uniform(0.1, 1.0, size=(50, 4))
        result = fuzzy_c_means(data, 3, metric="cosine", seed=5)
        assert np.linalg.norm(result.centroids, axis=1) == pytest.approx(
            np.ones(3)
        )


class TestFarthestInit:
    def test_seeds_spread_better_than_sample(self, blobs):
        farthest = fuzzy_c_means(blobs, 3, init="farthest", seed=6)
        assert farthest.memberships.max(axis=1).mean() > 0.9


class TestValidation:
    def test_bad_dimensionality(self):
        with pytest.raises(QueryError):
            fuzzy_c_means(np.zeros(5), 2)

    def test_too_many_clusters(self):
        with pytest.raises(QueryError):
            fuzzy_c_means(np.zeros((3, 2)), 5)

    def test_bad_fuzzifier(self, blobs):
        with pytest.raises(QueryError):
            fuzzy_c_means(blobs, 3, fuzzifier=1.0)

    def test_bad_metric(self, blobs):
        with pytest.raises(QueryError):
            fuzzy_c_means(blobs, 3, metric="hamming")

    def test_bad_init(self, blobs):
        with pytest.raises(QueryError):
            fuzzy_c_means(blobs, 3, init="zeros")
