"""Shared test configuration: the hypothesis profile."""

from hypothesis import settings

settings.register_profile("repro", max_examples=60, deadline=None)
settings.load_profile("repro")
