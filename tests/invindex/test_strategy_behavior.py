"""Behavioral tests: the strategies' *pruning* actually prunes.

Agreement tests prove correctness; these prove the algorithms do what
Section 3.1 claims — stop early, skip lists, skip list tails — by
inspecting work counters on crafted datasets.
"""

import numpy as np
import pytest

from repro.core import (
    CategoricalDomain,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    UncertainAttribute,
    UncertainRelation,
)
from repro.invindex import ProbabilisticInvertedIndex
from repro.storage import BufferPool


@pytest.fixture(scope="module")
def skewed_index():
    """400 tuples over 10 items; item 0's list is long with a sharp head.

    Small pages (512 B, ~42 postings per leaf) make the strategies'
    leaf-granularity consumption observable: early stopping shows up as
    unread leaves.
    """
    from repro.storage import DiskManager

    rng = np.random.default_rng(23)
    domain = CategoricalDomain.of_size(10)
    relation = UncertainRelation(domain)
    for i in range(400):
        if i < 8:
            # Sharp heads: nearly certain about item 0.
            relation.append(
                UncertainAttribute.from_pairs([(0, 0.95), (1, 0.05)])
            )
        else:
            # Long tail: item 0 present with small probability.
            rest = rng.dirichlet(np.ones(3)) * 0.9
            items = rng.choice(np.arange(1, 10), size=3, replace=False)
            pairs = [(0, 0.1)] + list(zip(items.tolist(), rest.tolist()))
            relation.append(UncertainAttribute.from_pairs(pairs))
    index = ProbabilisticInvertedIndex(10, disk=DiskManager(page_size=512))
    index.build(relation)
    return relation, index


def run(index, query, strategy):
    index.pool = BufferPool(index.disk, 100)
    return index.execute(query, strategy=strategy)


class TestEarlyStopping:
    def test_hpf_stops_before_exhausting_lists(self, skewed_index):
        relation, index = skewed_index
        q = UncertainAttribute.from_pairs([(0, 1.0)])
        total_postings = 400  # item 0 occurs in every tuple
        result = run(index, EqualityThresholdQuery(q, 0.9), "highest_prob_first")
        # Lemma 1 stops the scan once heads drop below 0.9.
        assert result.stats.entries_scanned < total_postings / 4
        assert len(result) == 8

    def test_brute_force_scans_everything(self, skewed_index):
        relation, index = skewed_index
        q = UncertainAttribute.from_pairs([(0, 1.0)])
        result = run(index, EqualityThresholdQuery(q, 0.9), "inv_index_search")
        assert result.stats.entries_scanned == 400

    def test_column_pruning_skips_list_tails(self, skewed_index):
        relation, index = skewed_index
        q = UncertainAttribute.from_pairs([(0, 1.0)])
        result = run(index, EqualityThresholdQuery(q, 0.9), "column_pruning")
        # Only the >= 0.9 prefix of item 0's list is materialized, padded
        # to page granularity.
        assert result.stats.entries_scanned < 400

    def test_row_pruning_skips_low_weight_lists(self, skewed_index):
        relation, index = skewed_index
        # Item 5's query weight is far below the threshold: its list
        # cannot create new qualifying tuples and must not be read.
        q = UncertainAttribute.from_pairs([(0, 0.95), (5, 0.05)])
        result = run(index, EqualityThresholdQuery(q, 0.8), "row_pruning")
        assert result.stats.nodes_visited == 1  # only item 0's list

    def test_hpf_topk_stops_early_for_small_k(self, skewed_index):
        relation, index = skewed_index
        q = UncertainAttribute.from_pairs([(0, 1.0)])
        small = run(index, EqualityTopKQuery(q, 2), "highest_prob_first")
        large = run(index, EqualityTopKQuery(q, 200), "highest_prob_first")
        assert small.stats.entries_scanned < large.stats.entries_scanned
        assert small.stats.random_accesses < large.stats.random_accesses

    def test_nra_discards_with_fewer_random_accesses_than_hpf(self, skewed_index):
        relation, index = skewed_index
        q = UncertainAttribute.from_pairs([(0, 0.5), (1, 0.5)])
        hpf = run(index, EqualityThresholdQuery(q, 0.5), "highest_prob_first")
        nra = run(index, EqualityThresholdQuery(q, 0.5), "no_random_access")
        # NRA defers verification: it must not random-access more tuples
        # than HPF verifies eagerly.
        assert nra.stats.random_accesses <= hpf.stats.random_accesses


class TestLemma1Boundary:
    def test_stopping_rule_keeps_boundary_tuples(self):
        """A tuple sitting exactly at the stopping bound must be found."""
        domain = CategoricalDomain.of_size(4)
        relation = UncertainRelation(domain)
        # All tuples have identical probability 0.5 on item 0: the bound
        # equals the threshold for a long run of postings.
        for _ in range(50):
            relation.append(
                UncertainAttribute.from_pairs([(0, 0.5), (1, 0.5)])
            )
        index = ProbabilisticInvertedIndex(4)
        index.build(relation)
        q = UncertainAttribute.from_pairs([(0, 1.0)])
        result = run(index, EqualityThresholdQuery(q, 0.5), "highest_prob_first")
        assert len(result) == 50  # nothing dropped at the boundary
