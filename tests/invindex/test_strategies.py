"""Every search strategy returns exactly the naive executor's answer."""

import pytest

from repro.core import (
    EqualityThresholdQuery,
    EqualityTopKQuery,
    QueryError,
    UncertainAttribute,
)
from repro.invindex import (
    STRATEGIES,
    NoRandomAccess,
    ProbabilisticInvertedIndex,
    get_strategy,
)
from repro.storage import BufferPool

from tests.invindex.conftest import random_query, random_relation

ALL_STRATEGIES = sorted(STRATEGIES)


def matches_of(result):
    return [(m.tid, m.score) for m in result]


class TestRegistry:
    def test_all_five_strategies_registered(self):
        assert ALL_STRATEGIES == [
            "column_pruning",
            "highest_prob_first",
            "inv_index_search",
            "no_random_access",
            "row_pruning",
        ]

    def test_lookup_case_insensitive(self):
        assert get_strategy("Highest_Prob_First").name == "highest_prob_first"

    def test_unknown_strategy(self):
        with pytest.raises(QueryError):
            get_strategy("linear_scan")

    def test_nra_parameter_validation(self):
        with pytest.raises(QueryError):
            NoRandomAccess(fallback=0)
        with pytest.raises(QueryError):
            NoRandomAccess(resolve_every=0)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestThresholdAgreement:
    @pytest.mark.parametrize("tau", [0.01, 0.1, 0.3, 0.7, 0.99])
    def test_matches_naive(self, relation, index, strategy, tau):
        for seed in range(5):
            q = random_query(len(relation.domain), seed=seed * 31)
            query = EqualityThresholdQuery(q, tau)
            expected = matches_of(relation.execute(query))
            index.pool = BufferPool(index.disk, capacity=100)
            got = matches_of(index.execute(query, strategy=strategy))
            assert got == expected, f"{strategy} tau={tau} seed={seed}"

    def test_threshold_exactly_at_a_score(self, relation, index, strategy):
        # Use an existing tuple's self-equality probability as the
        # threshold: the boundary tuple must be included (>=).
        q = relation.uda_of(7)
        boundary = q.equality_probability(relation.uda_of(7))
        query = EqualityThresholdQuery(q, boundary)
        expected = matches_of(relation.execute(query))
        index.pool = BufferPool(index.disk, capacity=100)
        got = matches_of(index.execute(query, strategy=strategy))
        assert got == expected
        assert 7 in {tid for tid, _ in got}


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestTopKAgreement:
    @pytest.mark.parametrize("k", [1, 3, 10, 50, 1000])
    def test_matches_naive(self, relation, index, strategy, k):
        for seed in range(4):
            q = random_query(len(relation.domain), seed=seed * 17 + 2)
            query = EqualityTopKQuery(q, k)
            expected = matches_of(relation.execute(query))
            index.pool = BufferPool(index.disk, capacity=100)
            got = matches_of(index.execute(query, strategy=strategy))
            assert got == expected, f"{strategy} k={k} seed={seed}"

    def test_k_larger_than_matches(self, relation, index, strategy):
        q = UncertainAttribute.from_pairs([(0, 1.0)])
        query = EqualityTopKQuery(q, len(relation) * 2)
        expected = matches_of(relation.execute(query))
        index.pool = BufferPool(index.disk, capacity=100)
        got = matches_of(index.execute(query, strategy=strategy))
        assert got == expected


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestEdgeCases:
    def test_query_with_unindexed_items(self, relation, index, strategy):
        # Domain items beyond the relation's occurring set have no lists.
        q = UncertainAttribute.from_pairs([(14, 0.5), (0, 0.5)])
        query = EqualityThresholdQuery(q, 0.05)
        expected = matches_of(relation.execute(query))
        index.pool = BufferPool(index.disk, capacity=100)
        got = matches_of(index.execute(query, strategy=strategy))
        assert got == expected

    def test_impossible_threshold_returns_empty(self, relation, index, strategy):
        q = random_query(len(relation.domain), seed=3)
        query = EqualityThresholdQuery(q, 1.0)
        index.pool = BufferPool(index.disk, capacity=100)
        got = index.execute(query, strategy=strategy)
        assert matches_of(got) == matches_of(relation.execute(query))


class TestStats:
    def test_hpf_counts_random_accesses(self, relation, index):
        q = random_query(len(relation.domain), seed=8)
        index.pool = BufferPool(index.disk, capacity=100)
        result = index.execute(
            EqualityThresholdQuery(q, 0.2), strategy="highest_prob_first"
        )
        assert result.stats.random_accesses >= len(result)

    def test_brute_force_needs_no_random_access(self, relation, index):
        q = random_query(len(relation.domain), seed=8)
        index.pool = BufferPool(index.disk, capacity=100)
        result = index.execute(
            EqualityThresholdQuery(q, 0.2), strategy="inv_index_search"
        )
        assert result.stats.random_accesses == 0

    def test_entries_scanned_populated(self, relation, index):
        q = random_query(len(relation.domain), seed=8)
        index.pool = BufferPool(index.disk, capacity=100)
        result = index.execute(
            EqualityThresholdQuery(q, 0.2), strategy="row_pruning"
        )
        assert result.stats.entries_scanned > 0
