"""Shared fixtures for inverted-index tests."""

import numpy as np
import pytest

from repro.core import CategoricalDomain, UncertainAttribute, UncertainRelation
from repro.invindex import ProbabilisticInvertedIndex


def random_relation(num_tuples, domain_size, seed, max_nnz=5):
    rng = np.random.default_rng(seed)
    domain = CategoricalDomain.of_size(domain_size)
    relation = UncertainRelation(domain)
    for _ in range(num_tuples):
        nnz = int(rng.integers(1, max_nnz + 1))
        items = rng.choice(domain_size, size=nnz, replace=False)
        probs = rng.dirichlet(np.ones(nnz))
        relation.append(
            UncertainAttribute.from_pairs(
                list(zip(items.tolist(), probs.tolist()))
            )
        )
    return relation


def random_query(domain_size, seed, max_nnz=4):
    rng = np.random.default_rng(seed)
    nnz = int(rng.integers(1, max_nnz + 1))
    items = rng.choice(domain_size, size=nnz, replace=False)
    probs = rng.dirichlet(np.ones(nnz))
    return UncertainAttribute.from_pairs(
        list(zip(items.tolist(), probs.tolist()))
    )


@pytest.fixture(scope="module")
def relation():
    return random_relation(300, 15, seed=5)


@pytest.fixture(scope="module")
def index(relation):
    built = ProbabilisticInvertedIndex(len(relation.domain))
    built.build(relation)
    return built
