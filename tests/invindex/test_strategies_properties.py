"""Property-based agreement: all strategies == naive, on random inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CategoricalDomain,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    UncertainAttribute,
    UncertainRelation,
)
from repro.invindex import STRATEGIES, ProbabilisticInvertedIndex
from repro.storage import BufferPool

from tests.core.test_uda_properties import udas


@st.composite
def relations(draw, max_tuples=40, domain=8):
    count = draw(st.integers(1, max_tuples))
    seeds = draw(
        st.lists(st.integers(0, 2**16), min_size=count, max_size=count)
    )
    relation = UncertainRelation(CategoricalDomain.of_size(domain))
    for seed in seeds:
        rng = np.random.default_rng(seed)
        nnz = int(rng.integers(1, domain))
        items = rng.choice(domain, size=nnz, replace=False)
        probs = rng.dirichlet(np.ones(nnz))
        relation.append(
            UncertainAttribute.from_pairs(
                list(zip(items.tolist(), probs.tolist()))
            )
        )
    return relation


@settings(max_examples=25, deadline=None)
@given(
    relation=relations(),
    q=udas(max_domain=8),
    tau=st.floats(0.001, 1.0),
)
def test_all_strategies_match_naive_threshold(relation, q, tau):
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    query = EqualityThresholdQuery(q, tau)
    expected = [(m.tid, m.score) for m in relation.execute(query)]
    for name in STRATEGIES:
        index.pool = BufferPool(index.disk, capacity=100)
        got = [(m.tid, m.score) for m in index.execute(query, strategy=name)]
        assert got == expected, name


@settings(max_examples=25, deadline=None)
@given(
    relation=relations(),
    q=udas(max_domain=8),
    k=st.integers(1, 50),
)
def test_all_strategies_match_naive_top_k(relation, q, k):
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    query = EqualityTopKQuery(q, k)
    expected = [(m.tid, m.score) for m in relation.execute(query)]
    for name in STRATEGIES:
        index.pool = BufferPool(index.disk, capacity=100)
        got = [(m.tid, m.score) for m in index.execute(query, strategy=name)]
        assert got == expected, name
