"""Adversarial agreement: all five strategies == naive on nasty inputs.

The generic property tests draw well-behaved relations (dirichlet masses
summing to 1, no duplicates).  This battery deliberately generates the
inputs the pruning arguments are most fragile against:

* **mass-deficient UDAs** — total mass well below 1 on both the data and
  the query side (the paper allows missing mass; bounds relying on
  "masses sum to one" would over-prune);
* **duplicate tuples** — exact score ties at top-k boundaries, where an
  unstable cut drops the wrong tid;
* **single-posting lists** — items appearing in exactly one tuple, the
  degenerate cursor case (exhausted after one run);
* **windowed queries whose expanded QueryVector has mass > 1** — weights
  are no longer a probability distribution, so any bound assuming
  ``sum w <= 1`` is simply wrong.

Agreement is exact: identical (tid, score) sequences, including order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CategoricalDomain,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    UncertainAttribute,
    UncertainRelation,
    WindowedEqualityQuery,
)
from repro.invindex import STRATEGIES, ProbabilisticInvertedIndex
from repro.storage import BufferPool

DOMAIN = 8


def _random_uda(rng: np.random.Generator, kind: str) -> UncertainAttribute:
    if kind == "point":
        return UncertainAttribute.point(int(rng.integers(DOMAIN)))
    if kind == "lonely":
        # Single item, deficient mass: a one-entry posting list whose
        # probability is far from 1.
        return UncertainAttribute.from_pairs(
            [(int(rng.integers(DOMAIN)), float(rng.uniform(0.05, 0.6)))]
        )
    nnz = int(rng.integers(2, DOMAIN))
    items = rng.choice(DOMAIN, size=nnz, replace=False)
    probs = rng.dirichlet(np.ones(nnz))
    if kind == "deficient":
        probs = probs * rng.uniform(0.2, 0.9)
    return UncertainAttribute.from_pairs(
        list(zip(items.tolist(), probs.tolist()))
    )


@st.composite
def adversarial_relations(draw, max_tuples=30):
    seed = draw(st.integers(0, 2**16))
    count = draw(st.integers(2, max_tuples))
    rng = np.random.default_rng(seed)
    relation = UncertainRelation(CategoricalDomain.of_size(DOMAIN))
    udas: list[UncertainAttribute] = []
    for _ in range(count):
        kind = rng.choice(["point", "lonely", "deficient", "full", "dup"])
        if kind == "dup" and udas:
            # Exact duplicate of an earlier tuple: guaranteed score tie.
            uda = udas[int(rng.integers(len(udas)))]
        else:
            uda = _random_uda(rng, str(kind))
        udas.append(uda)
        relation.append(uda)
    return relation


@st.composite
def adversarial_queries(draw):
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    kind = rng.choice(["point", "lonely", "deficient", "full"])
    return _random_uda(rng, str(kind))


def _assert_agreement(relation, index, query):
    expected = [(m.tid, m.score) for m in relation.execute(query)]
    for name in STRATEGIES:
        index.pool = BufferPool(index.disk, capacity=100)
        got = [(m.tid, m.score) for m in index.execute(query, strategy=name)]
        assert got == expected, name


@settings(max_examples=40, deadline=None)
@given(
    relation=adversarial_relations(),
    q=adversarial_queries(),
    tau=st.floats(0.001, 1.0),
)
def test_threshold_agreement_on_adversarial_inputs(relation, q, tau):
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    _assert_agreement(relation, index, EqualityThresholdQuery(q, tau))


@settings(max_examples=40, deadline=None)
@given(
    relation=adversarial_relations(),
    q=adversarial_queries(),
    k=st.integers(1, 32),
)
def test_top_k_agreement_with_boundary_ties(relation, q, k):
    # Duplicate tuples make exact ties likely; ``k`` frequently lands on
    # a tie boundary, where an unstable cut would drop the wrong tid.
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    _assert_agreement(relation, index, EqualityTopKQuery(q, k))


@settings(max_examples=40, deadline=None)
@given(
    relation=adversarial_relations(),
    seed=st.integers(0, 2**16),
    tau=st.floats(0.001, 1.0),
    window=st.integers(1, 4),
)
def test_windowed_agreement_with_supra_unit_mass(relation, seed, tau, window):
    # Adjacent query items + a window make the expanded weight vector's
    # mass exceed 1 — the regime where distribution-shaped bounds break.
    rng = np.random.default_rng(seed)
    anchor = int(rng.integers(DOMAIN - 1))
    q = UncertainAttribute.from_pairs([(anchor, 0.5), (anchor + 1, 0.5)])
    query = WindowedEqualityQuery(q, tau, window)
    assert query.expanded(DOMAIN).total_mass > 1.0
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    _assert_agreement(relation, index, query)
