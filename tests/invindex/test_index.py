"""Tests for :mod:`repro.invindex.index`."""

import numpy as np
import pytest

from repro.core import (
    EqualityQuery,
    EqualityThresholdQuery,
    KeyNotFoundError,
    QueryError,
    SimilarityThresholdQuery,
    UncertainAttribute,
)
from repro.invindex import ProbabilisticInvertedIndex
from repro.storage import BufferPool, DiskManager

from tests.invindex.conftest import random_relation


class TestBuild:
    def test_build_counts_tuples(self, relation, index):
        assert index.num_tuples == len(relation)

    def test_posting_lists_only_for_occurring_items(self):
        relation = random_relation(50, 30, seed=9, max_nnz=2)
        occurring = set()
        for tid in relation.tids():
            occurring.update(relation.uda_of(tid).items.tolist())
        index = ProbabilisticInvertedIndex(30)
        index.build(relation)
        for item in range(30):
            posting_list = index.posting_list(item)
            if item in occurring:
                assert posting_list is not None and len(posting_list) > 0
            else:
                assert posting_list is None

    def test_double_build_rejected(self, relation):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        with pytest.raises(QueryError):
            index.build(relation)

    def test_domain_size_mismatch(self, relation):
        index = ProbabilisticInvertedIndex(len(relation.domain) + 5)
        with pytest.raises(QueryError):
            index.build(relation)

    def test_invalid_domain_size(self):
        with pytest.raises(QueryError):
            ProbabilisticInvertedIndex(0)


class TestDynamicMaintenance:
    def test_insert_then_query(self):
        index = ProbabilisticInvertedIndex(10)
        index.insert(0, UncertainAttribute.from_pairs([(1, 0.6), (2, 0.4)]))
        index.insert(1, UncertainAttribute.from_pairs([(1, 1.0)]))
        q = UncertainAttribute.from_pairs([(1, 1.0)])
        result = index.execute(EqualityThresholdQuery(q, 0.5))
        assert result.tid_set() == {0, 1}

    def test_duplicate_tid_rejected(self):
        index = ProbabilisticInvertedIndex(10)
        index.insert(0, UncertainAttribute.point(1))
        with pytest.raises(QueryError):
            index.insert(0, UncertainAttribute.point(2))

    def test_delete_removes_from_all_lists(self):
        index = ProbabilisticInvertedIndex(10)
        index.insert(0, UncertainAttribute.from_pairs([(1, 0.5), (2, 0.5)]))
        index.insert(1, UncertainAttribute.from_pairs([(1, 1.0)]))
        index.delete(0)
        q = UncertainAttribute.from_pairs([(2, 1.0)])
        assert index.execute(EqualityThresholdQuery(q, 0.01)).tid_set() == set()
        q = UncertainAttribute.from_pairs([(1, 1.0)])
        assert index.execute(EqualityThresholdQuery(q, 0.5)).tid_set() == {1}

    def test_delete_unknown_tid(self):
        index = ProbabilisticInvertedIndex(10)
        with pytest.raises(KeyNotFoundError):
            index.delete(7)

    def test_fetch_uda_round_trip(self, relation, index):
        for tid in (0, 17, len(relation) - 1):
            assert index.fetch_uda(tid) == relation.uda_of(tid)

    def test_fetch_unknown_tid(self, index):
        with pytest.raises(KeyNotFoundError):
            index.fetch_uda(10_000)


class TestPoolManagement:
    def test_pool_swap_propagates(self, relation):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        fresh = BufferPool(index.disk, capacity=10)
        index.pool = fresh
        assert index.pool is fresh
        # Queries still work through the bounded pool.
        q = relation.uda_of(0)
        result = index.execute(EqualityThresholdQuery(q, 0.5))
        assert len(result) >= 1

    def test_pool_must_share_disk(self, index):
        with pytest.raises(QueryError):
            index.pool = BufferPool(DiskManager(), capacity=10)


class TestExecuteDispatch:
    def test_peq_returns_probabilities(self, relation, index):
        q = relation.uda_of(3)
        result = index.execute(EqualityQuery(q))
        naive = relation.execute(EqualityQuery(q))
        assert result.tid_set() == naive.tid_set()

    def test_unknown_strategy(self, index, relation):
        q = relation.uda_of(0)
        with pytest.raises(QueryError):
            index.execute(EqualityThresholdQuery(q, 0.5), strategy="magic")

    def test_similarity_query_answered_by_scan(self, index, relation):
        # Historically refused outright; the similarity scan engine
        # (repro.sketch.search) now answers it, sketch or no sketch.
        q = relation.uda_of(0)
        result = index.execute(SimilarityThresholdQuery(q, 0.5))
        naive = relation.execute(SimilarityThresholdQuery(q, 0.5))
        assert [(m.tid, m.score) for m in result.matches] == [
            (m.tid, m.score) for m in naive.matches
        ]


class TestIOAccounting:
    def test_queries_cost_io_on_cold_pool(self, relation):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        index.pool.flush_all()
        index.pool = BufferPool(index.disk, capacity=100)
        before = index.disk.stats.snapshot()
        q = relation.uda_of(0)
        index.execute(EqualityThresholdQuery(q, 0.3))
        assert index.disk.stats.delta_since(before).reads > 0

    def test_column_pruning_scans_fewer_entries_than_brute(self, relation):
        index = ProbabilisticInvertedIndex(len(relation.domain))
        index.build(relation)
        q = relation.uda_of(0)
        index.pool = BufferPool(index.disk, capacity=100)
        brute = index.execute(
            EqualityThresholdQuery(q, 0.99), strategy="inv_index_search"
        )
        index.pool = BufferPool(index.disk, capacity=100)
        pruned = index.execute(
            EqualityThresholdQuery(q, 0.99), strategy="column_pruning"
        )
        # At a 0.99 threshold column pruning touches only list heads
        # (far fewer postings); its page count may still exceed brute
        # force's at tiny scale because of candidate random accesses.
        assert pruned.stats.entries_scanned <= brute.stats.entries_scanned
        assert pruned.tid_set() == brute.tid_set()
