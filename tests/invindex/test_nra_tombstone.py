"""Regression test: NRA must never re-admit a discarded candidate.

``NoRandomAccess.threshold`` deletes a tid from its bookkeeping once the
tid's upper bound proves it can never qualify.  Before the ``discarded``
tombstone set existed, such a tid reappearing in a not-yet-consumed list
during discovery was re-admitted with a fresh mask and a *reset* partial
score — and then random-accessed in the final verification pass despite
being provably disqualified.

With honest descending cursors the discard pass also ends discovery (the
discard bound implies the discovery bound), which masks the hazard; the
stub cursors below present the adversarial schedule directly — a stale
high head on an exhausted list — so the re-admission window is actually
exercised.  The algorithm must stay safe under any head sequence: bounds
are pruning hints, never correctness carriers.
"""

import numpy as np

from repro.core.uda import UncertainAttribute
from repro.invindex.strategies import NoRandomAccess


class AdversarialCursor:
    """Scripted cursor: fixed runs plus an explicit head_prob sequence."""

    def __init__(self, runs, heads):
        self._runs = [
            (np.asarray(tids, dtype=np.int64), np.asarray(probs))
            for tids, probs in runs
        ]
        self._heads = heads  # heads[i] = head_prob() after i pops
        self._pops = 0

    @property
    def exhausted(self):
        return self._pops >= len(self._runs)

    def head_prob(self):
        return self._heads[self._pops]

    def pop_run(self):
        run = self._runs[self._pops]
        self._pops += 1
        return run


class StubPostingList:
    def __init__(self, runs, heads):
        self._runs = runs
        self._heads = heads

    def cursor(self):
        return AdversarialCursor(self._runs, self._heads)


class StubIndex:
    """Just enough index surface for NoRandomAccess.threshold."""

    def __init__(self, lists, udas):
        self._lists = lists
        self._udas = udas
        self.verified_tids = []

    def posting_list(self, item):
        return self._lists.get(item)

    def fetch_uda_arrays(self, tid):
        self.verified_tids.append(tid)
        items, probs = self._udas[tid]
        return (
            np.asarray(items, dtype=np.int64),
            np.asarray(probs, dtype=np.float64),
        )


def make_stub():
    # Trace (tau=0.6, q = {0: 0.5, 1: 0.5}, resolve_every=1, fallback=1):
    #   pop0  list0 -> tid 7 @ 0.2           partial[7] = 0.10
    #   pass: heads (1.0, 0.95) keep discovery alive (bound 0.975) while
    #         7's upper bound 0.10 + 0.475 = 0.575 < tau  -> DISCARDED
    #   pop1  list1 -> tid 9 @ 0.95
    #   pop2  list1 -> tid 7 @ 0.55          <- the re-admission window
    #   pop3  list1 -> tid 2 @ 0.5
    # Without the tombstone, pop2 re-admits 7 (discovery is still on) and
    # the verification pass random-accesses it.
    list0 = StubPostingList(
        runs=[([7], [0.2])],
        heads=[1.0, 1.0],  # stays high after exhaustion (stale bound)
    )
    list1 = StubPostingList(
        runs=[([9], [0.95]), ([7], [0.55]), ([2], [0.5])],
        heads=[0.95, 0.55, 0.5, 0.0],
    )
    udas = {
        7: ([0, 1], [0.2, 0.55]),
        9: ([1], [0.95]),
        2: ([1], [0.5]),
    }
    return StubIndex({0: list0, 1: list1}, udas)


def test_discarded_tid_never_random_accessed():
    index = make_stub()
    q = UncertainAttribute.from_pairs([(0, 0.5), (1, 0.5)])
    strategy = NoRandomAccess(fallback=1, resolve_every=1)
    result = strategy.threshold(index, q, 0.6)
    # tid 7 was proven unable to reach tau; the tombstone must keep it
    # out of the verification pass entirely.
    assert 7 not in index.verified_tids
    assert result.stats.random_accesses == len(set(index.verified_tids))
    # And of course it is not (and never could be) in the answer.
    assert 7 not in result.tid_set()


def test_survivors_still_verified():
    index = make_stub()
    q = UncertainAttribute.from_pairs([(0, 0.5), (1, 0.5)])
    result = NoRandomAccess(fallback=1, resolve_every=1).threshold(
        index, q, 0.6
    )
    # The never-discarded candidates (9 and 2) each got their random
    # access; neither reaches tau = 0.6, so the answer is empty.
    assert set(index.verified_tids) == {9, 2}
    assert result.tid_set() == set()
