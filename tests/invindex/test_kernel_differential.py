"""Differential suite: scalar vs vectorized kernels are bit-identical.

``REPRO_KERNEL=scalar`` keeps the seed per-posting loops alive exactly
so this suite can execute every strategy twice — once per kernel mode —
over hypothesis-generated workloads and assert the two modes agree on
*everything* the I/O model defines: the answer set, the scores (exact
float equality), the stop reason, the work counters, and the counted
physical page reads under the paper's fresh-100-frame-pool regime.

One test repeats the comparison with fault injection enabled: the fault
draw depends only on the operation sequence, so bit-identical execution
must also see (and recover from) the identical fault sequence.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    EqualityThresholdQuery,
    EqualityTopKQuery,
    UncertainAttribute,
    WindowedEqualityQuery,
)
from repro.core import kernels
from repro.invindex import STRATEGIES, ProbabilisticInvertedIndex
from repro.storage import BufferPool
from repro.storage.faults import FaultPlan, fault_plan

from tests.invindex.conftest import random_relation

POOL_SIZE = 100

#: Stats fields the two kernel modes must agree on exactly.
STAT_FIELDS = (
    "candidates_examined",
    "entries_scanned",
    "nodes_visited",
    "random_accesses",
    "stop_reason",
)


@pytest.fixture(scope="module")
def dataset():
    relation = random_relation(250, 12, seed=41)
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    return relation, index


def _query_uda(domain_size, seed, max_nnz=4):
    rng = np.random.default_rng(seed)
    nnz = int(rng.integers(1, max_nnz + 1))
    items = rng.choice(domain_size, size=nnz, replace=False)
    probs = rng.dirichlet(np.ones(nnz))
    return UncertainAttribute.from_pairs(
        list(zip(items.tolist(), probs.tolist()))
    )


def _run(index, make_query, strategy, mode):
    """Execute under ``mode`` with a fresh measured pool; full snapshot.

    The query object is built *inside* the mode scope: scoring caches a
    dense table on the query under the vectorized mode, and sharing one
    object across modes would let the scalar run reuse it.
    """
    with kernels.kernel_override(mode):
        query = make_query()
        index.pool = BufferPool(index.disk, POOL_SIZE)
        before = index.disk.stats.snapshot()
        result = index.execute(query, strategy=strategy)
        reads = index.disk.stats.delta_since(before).reads
    stats = {field: getattr(result.stats, field) for field in STAT_FIELDS}
    return [(m.tid, m.score) for m in result], stats, reads


def _assert_modes_agree(index, make_query, strategy):
    matches_v, stats_v, reads_v = _run(
        index, make_query, strategy, "vectorized"
    )
    matches_s, stats_s, reads_s = _run(index, make_query, strategy, "scalar")
    assert matches_v == matches_s, f"{strategy}: answers diverge"
    assert stats_v == stats_s, f"{strategy}: stats diverge"
    assert reads_v == reads_s, f"{strategy}: counted page reads diverge"


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
class TestDifferential:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(0, 10_000),
        tau=st.floats(0.005, 0.6),
    )
    def test_threshold(self, dataset, strategy, seed, tau):
        relation, index = dataset
        _assert_modes_agree(
            index,
            lambda: EqualityThresholdQuery(
                _query_uda(len(relation.domain), seed), tau
            ),
            strategy,
        )

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(1, 40),
    )
    def test_top_k(self, dataset, strategy, seed, k):
        relation, index = dataset
        _assert_modes_agree(
            index,
            lambda: EqualityTopKQuery(
                _query_uda(len(relation.domain), seed), k
            ),
            strategy,
        )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(0, 10_000),
        window=st.integers(1, 3),
        tau=st.floats(0.01, 0.4),
    )
    def test_windowed(self, dataset, strategy, seed, window, tau):
        relation, index = dataset
        _assert_modes_agree(
            index,
            lambda: WindowedEqualityQuery(
                _query_uda(len(relation.domain), seed), tau, window
            ),
            strategy,
        )


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_differential_under_fault_injection(dataset, strategy):
    """Identical behavior must hold with the fault layer recovering reads."""
    relation, index = dataset
    plan = FaultPlan(seed=97, read_error_rate=0.02, bit_rot_rate=0.01)
    with fault_plan(plan):
        for seed, tau in ((5, 0.05), (17, 0.2)):
            _assert_modes_agree(
                index,
                lambda: EqualityThresholdQuery(
                    _query_uda(len(relation.domain), seed), tau
                ),
                strategy,
            )
        for seed, k in ((7, 3), (23, 25)):
            _assert_modes_agree(
                index,
                lambda: EqualityTopKQuery(
                    _query_uda(len(relation.domain), seed), k
                ),
                strategy,
            )
