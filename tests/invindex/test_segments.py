"""Unit tests for LSM posting segments and the k-way segmented merge."""

import numpy as np
import pytest

from repro.core import UncertainAttribute
from repro.core.exceptions import BufferPoolError
from repro.invindex import PostingSegment, SegmentedPostingList
from repro.invindex.postings import PostingList
from repro.invindex.segments import packed_posting_keys
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


@pytest.fixture
def pool():
    return BufferPool(DiskManager(), 64)


def build_list(pool, tids, probs):
    posting = PostingList(pool)
    order = np.argsort(packed_posting_keys(np.asarray(tids), np.asarray(probs)))
    posting.bulk_build(
        np.asarray(tids, dtype=np.int64)[order],
        np.asarray(probs, dtype=np.float64)[order],
    )
    return posting


class TestPackedKeys:
    def test_orders_by_descending_prob_then_tid(self):
        tids = np.array([5, 1, 9, 2])
        probs = np.array([0.25, 0.75, 0.25, 0.5])
        order = np.argsort(packed_posting_keys(tids, probs))
        assert tids[order].tolist() == [1, 2, 5, 9]

    def test_equal_probs_break_ties_by_tid(self):
        tids = np.array([30, 10, 20])
        probs = np.array([0.4, 0.4, 0.4])
        order = np.argsort(packed_posting_keys(tids, probs))
        assert tids[order].tolist() == [10, 20, 30]

    def test_keys_unique_when_tids_unique(self):
        rng = np.random.default_rng(3)
        tids = np.arange(500)
        probs = rng.choice([0.1, 0.2, 0.3], size=500)  # heavy prob ties
        keys = packed_posting_keys(tids, probs)
        assert len(np.unique(keys)) == len(keys)


class TestPostingSegment:
    def test_insert_routes_every_item(self, pool):
        segment = PostingSegment(pool)
        uda = UncertainAttribute([2, 5], [0.7, 0.3])
        segment.insert(11, uda)
        assert segment.tids == {11}
        tids, probs = segment.lists[2].read_all()
        assert tids.tolist() == [11]
        assert probs[0] == pytest.approx(uda.probs[0])

    def test_remove_undoes_insert(self, pool):
        segment = PostingSegment(pool)
        uda = UncertainAttribute([2, 5], [0.7, 0.3])
        segment.insert(11, uda)
        segment.remove(11, uda)
        assert segment.tids == set()
        assert all(len(lst) == 0 for lst in segment.lists.values())

    def test_state_round_trips(self, pool):
        segment = PostingSegment(pool)
        segment.insert(4, UncertainAttribute([1, 3], [0.6, 0.4]))
        segment.insert(9, UncertainAttribute([3], [1.0]))
        segment.sealed = True
        reattached = PostingSegment.attach(pool, segment.state())
        assert reattached.sealed
        assert reattached.tids == {4, 9}
        for item in (1, 3):
            a = segment.lists[item].read_all()
            b = reattached.lists[item].read_all()
            np.testing.assert_array_equal(a[0], b[0])
            np.testing.assert_array_equal(a[1], b[1])


class TestSegmentedMerge:
    def rand_parts(self, pool, seed, num_parts=3, per_part=40):
        """Disjoint-tid posting parts with adversarial prob ties."""
        rng = np.random.default_rng(seed)
        parts, all_tids, all_probs = [], [], []
        next_tid = 0
        for _ in range(num_parts):
            n = int(rng.integers(1, per_part))
            tids = np.arange(next_tid, next_tid + n)
            rng.shuffle(tids)
            next_tid += n
            probs = rng.choice([0.125, 0.25, 0.5, 0.75], size=n)
            parts.append(build_list(pool, tids, probs))
            all_tids.append(tids)
            all_probs.append(probs)
        return parts, np.concatenate(all_tids), np.concatenate(all_probs)

    def test_merge_matches_single_tree(self, pool):
        for seed in range(6):
            parts, tids, probs = self.rand_parts(pool, seed)
            merged = SegmentedPostingList(parts)
            single = build_list(pool, tids, probs)
            m_tids, m_probs = merged.read_all()
            s_tids, s_probs = single.read_all()
            np.testing.assert_array_equal(m_tids, s_tids)
            np.testing.assert_array_equal(m_probs, s_probs)
            assert len(merged) == len(single)

    def test_iter_leaf_arrays_is_globally_sorted(self, pool):
        parts, _, _ = self.rand_parts(pool, seed=42, num_parts=4)
        merged = SegmentedPostingList(parts)
        keys = []
        for tids, probs in merged.iter_leaf_arrays():
            keys.append(packed_posting_keys(tids, probs))
        keys = np.concatenate(keys)
        assert np.all(keys[:-1] < keys[1:])

    def test_read_prefix_matches_single_tree(self, pool):
        parts, tids, probs = self.rand_parts(pool, seed=7)
        merged = SegmentedPostingList(parts)
        single = build_list(pool, tids, probs)
        for min_prob in (0.2, 0.5, 0.9):
            m = merged.read_prefix(min_prob)
            s = single.read_prefix(min_prob)
            np.testing.assert_array_equal(m[0], s[0])
            np.testing.assert_array_equal(m[1], s[1])

    def test_cursor_pops_in_merge_order(self, pool):
        parts, tids, probs = self.rand_parts(pool, seed=13)
        merged = SegmentedPostingList(parts)
        single = build_list(pool, tids, probs)
        a, b = merged.cursor(), single.cursor()
        while True:
            x, y = a.peek(), b.peek()
            assert (x is None) == (y is None)
            if x is None:
                break
            assert a.pop() == b.pop()

    def test_requires_two_parts(self, pool):
        single = build_list(pool, [1], [0.5])
        with pytest.raises(ValueError):
            SegmentedPostingList([single])


class TestDiscardPage:
    def test_discard_removes_frame_without_writeback(self, pool):
        page = pool.new_page()
        page_id = page.page_id
        page.data[:4] = b"\xde\xad\xbe\xef"
        pool.mark_dirty(page_id)
        pool.discard_page(page_id)
        # The dirty frame was dropped, never flushed.
        assert page_id not in pool._frames

    def test_discard_pinned_page_refuses(self, pool):
        page = pool.new_page(pin=True)
        with pytest.raises(BufferPoolError):
            pool.discard_page(page.page_id)
        pool.unpin_page(page.page_id)

    def test_discard_absent_page_is_noop(self, pool):
        pool.discard_page(123456)

    def test_pool_survives_discard_churn(self, pool):
        ids = []
        for _ in range(20):
            ids.append(pool.new_page().page_id)
        for page_id in ids[::2]:
            pool.discard_page(page_id)
        # Clock state stays coherent: remaining pages still fetchable.
        for page_id in ids[1::2]:
            pool.fetch_page(page_id)
