"""The decoded cache must never change what a query reads or returns.

Every inverted-index strategy is executed twice over the same on-disk
image — once through a pool with the decoded cache disabled, once with
it enabled — and the result set, the scores, the total simulated reads,
and the per-tag read breakdown must match exactly.  A second round runs
after inserts (which bump page versions) to cover invalidation.
"""

import pytest

from repro.core import EqualityThresholdQuery, EqualityTopKQuery
from repro.invindex import STRATEGIES, ProbabilisticInvertedIndex
from repro.storage import BufferPool

from tests.invindex.conftest import random_query, random_relation

ALL_STRATEGIES = sorted(STRATEGIES)


def run_measured(index, query, strategy, decoded_capacity):
    """Execute through a fresh pool; return (matches, reads, reads_by_tag)."""
    index.pool = BufferPool(
        index.disk, capacity=100, decoded_capacity=decoded_capacity
    )
    stats_before = index.disk.stats.snapshot()
    tags_before = index.disk.snapshot_tags()
    result = index.execute(query, strategy=strategy)
    reads = index.disk.stats.delta_since(stats_before).reads
    tags_after = index.disk.snapshot_tags()
    by_tag = {
        tag: tags_after[tag] - tags_before.get(tag, 0)
        for tag in tags_after
        if tags_after[tag] != tags_before.get(tag, 0)
    }
    return [(m.tid, m.score) for m in result], reads, by_tag


def assert_equivalent(index, query, strategy):
    matches_off, reads_off, tags_off = run_measured(index, query, strategy, 0)
    matches_on, reads_on, tags_on = run_measured(index, query, strategy, 400)
    assert matches_on == matches_off, strategy
    assert reads_on == reads_off, strategy
    assert tags_on == tags_off, strategy


@pytest.fixture(scope="module")
def relation():
    return random_relation(300, 15, seed=5)


@pytest.fixture(scope="module")
def index(relation):
    built = ProbabilisticInvertedIndex(len(relation.domain))
    built.build(relation)
    return built


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestFreshIndex:
    def test_threshold_query(self, relation, index, strategy):
        for seed in range(4):
            q = random_query(len(relation.domain), seed=seed * 17)
            assert_equivalent(
                index, EqualityThresholdQuery(q, 0.1), strategy
            )

    def test_top_k_query(self, relation, index, strategy):
        q = random_query(len(relation.domain), seed=99)
        assert_equivalent(index, EqualityTopKQuery(q, 10), strategy)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_after_inserts(relation, strategy):
    """Inserts bump page versions; cached decodings must not go stale."""
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    extra = random_relation(40, 15, seed=77)
    for tid in range(len(relation), len(relation) + len(extra)):
        index.insert(tid, extra.uda_of(tid - len(relation)))
    for seed in range(3):
        q = random_query(len(relation.domain), seed=seed * 13 + 1)
        assert_equivalent(index, EqualityThresholdQuery(q, 0.05), strategy)