"""Tests for :mod:`repro.invindex.postings`."""

import numpy as np
import pytest

from repro.core import KeyNotFoundError
from repro.invindex import PostingList
from repro.storage import BufferPool, DiskManager


@pytest.fixture()
def posting_list():
    disk = DiskManager(page_size=256)
    return PostingList(BufferPool(disk, capacity=32))


class TestUpdates:
    def test_insert_and_read_all(self, posting_list):
        posting_list.insert(1, 0.5)
        posting_list.insert(2, 0.9)
        posting_list.insert(3, 0.1)
        tids, probs = posting_list.read_all()
        assert tids.tolist() == [2, 1, 3]  # descending probability
        assert probs.tolist() == pytest.approx([0.9, 0.5, 0.1])

    def test_equal_probabilities_ordered_by_tid(self, posting_list):
        posting_list.insert(9, 0.5)
        posting_list.insert(4, 0.5)
        tids, _ = posting_list.read_all()
        assert tids.tolist() == [4, 9]

    def test_delete(self, posting_list):
        posting_list.insert(1, 0.5)
        posting_list.insert(2, 0.75)
        posting_list.delete(1, 0.5)
        tids, _ = posting_list.read_all()
        assert tids.tolist() == [2]
        assert len(posting_list) == 1

    def test_delete_missing(self, posting_list):
        with pytest.raises(KeyNotFoundError):
            posting_list.delete(1, 0.5)

    def test_bulk_build_unsorted_input(self, posting_list):
        tids = np.array([5, 1, 9, 3])
        probs = np.array([0.2, 0.9, 0.4, 0.9])
        posting_list.bulk_build(tids, probs)
        got_tids, got_probs = posting_list.read_all()
        assert got_tids.tolist() == [1, 3, 9, 5]
        assert got_probs.tolist() == pytest.approx([0.9, 0.9, 0.4, 0.2])


class TestCursor:
    def test_cursor_descends(self, posting_list):
        for tid, prob in enumerate([0.9, 0.7, 0.5, 0.3, 0.1]):
            posting_list.insert(tid, prob)
        cursor = posting_list.cursor()
        seen = []
        while not cursor.exhausted:
            seen.append(cursor.pop())
        assert [p for _, p in seen] == pytest.approx([0.9, 0.7, 0.5, 0.3, 0.1])

    def test_head_prob(self, posting_list):
        posting_list.insert(0, 0.75)
        cursor = posting_list.cursor()
        assert cursor.head_prob() == pytest.approx(0.75)
        cursor.pop()
        assert cursor.head_prob() == 0.0
        assert cursor.exhausted

    def test_peek_does_not_advance(self, posting_list):
        posting_list.insert(0, 0.5)
        cursor = posting_list.cursor()
        assert cursor.peek() == cursor.peek()

    def test_pop_exhausted_raises(self, posting_list):
        cursor = posting_list.cursor()
        with pytest.raises(StopIteration):
            cursor.pop()

    def test_cursor_spans_leaves(self, posting_list):
        # 256-byte pages hold ~20 postings; insert enough for many leaves.
        rng = np.random.default_rng(0)
        probs = rng.uniform(0.01, 1.0, size=150)
        posting_list.bulk_build(np.arange(150), probs)
        cursor = posting_list.cursor()
        seen = []
        while not cursor.exhausted:
            seen.append(cursor.pop()[1])
        assert len(seen) == 150
        assert seen == sorted(seen, reverse=True)


class TestPrefixRead:
    @pytest.fixture()
    def filled(self, posting_list):
        rng = np.random.default_rng(1)
        probs = rng.uniform(0.0001, 1.0, size=200)
        posting_list.bulk_build(np.arange(200), probs)
        return posting_list, probs

    def test_prefix_matches_filter(self, filled):
        posting_list, probs = filled
        f32 = probs.astype(np.float32).astype(np.float64)
        for cutoff in (0.9, 0.5, 0.1):
            tids, got = posting_list.read_prefix(cutoff)
            assert (got >= cutoff).all()
            assert len(got) == int((f32 >= cutoff).sum())

    def test_prefix_reads_fewer_pages_than_full(self, filled):
        posting_list, _ = filled
        disk = posting_list.pool.disk
        posting_list.pool = BufferPool(disk, capacity=32)
        before = disk.stats.snapshot()
        posting_list.read_prefix(0.95)
        prefix_reads = disk.stats.delta_since(before).reads
        posting_list.pool = BufferPool(disk, capacity=32)
        before = disk.stats.snapshot()
        posting_list.read_all()
        full_reads = disk.stats.delta_since(before).reads
        assert prefix_reads < full_reads

    def test_negative_cutoff_reads_everything(self, filled):
        posting_list, _ = filled
        tids, _ = posting_list.read_prefix(-1.0)
        assert len(tids) == 200


class TestPopRun:
    def test_pop_run_consumes_current_leaf(self, posting_list):
        rng = np.random.default_rng(2)
        probs = rng.uniform(0.01, 1.0, size=100)
        posting_list.bulk_build(np.arange(100), probs)
        cursor = posting_list.cursor()
        total = 0
        runs = 0
        previous_tail = 2.0
        while not cursor.exhausted:
            tids, got = cursor.pop_run()
            assert len(tids) == len(got) > 0
            # Runs are internally descending and never overlap upward.
            assert (got[:-1] >= got[1:] - 1e-12).all()
            assert got[0] <= previous_tail + 1e-12
            previous_tail = got[-1]
            total += len(tids)
            runs += 1
        assert total == 100
        assert runs > 1  # 256-byte pages split 100 postings across leaves

    def test_pop_run_after_partial_pops(self, posting_list):
        for tid, prob in enumerate([0.9, 0.7, 0.5]):
            posting_list.insert(tid, prob)
        cursor = posting_list.cursor()
        cursor.pop()
        tids, probs = cursor.pop_run()
        assert tids.tolist() == [1, 2]
        assert cursor.exhausted

    def test_pop_run_exhausted_raises(self, posting_list):
        cursor = posting_list.cursor()
        with pytest.raises(StopIteration):
            cursor.pop_run()


class TestQuantizationTies:
    def test_bulk_build_with_probs_that_quantize_equal(self):
        """Distinct float32 probabilities can share a quantized key
        prefix; within the tie, tids must ascend (regression test)."""
        import struct

        disk = DiskManager(page_size=256)
        posting_list = PostingList(BufferPool(disk, capacity=32))
        base = np.float32(1e-3)
        p1 = float(base)
        p2 = float(np.nextafter(base, np.float32(1.0)))  # distinct f32
        assert p1 != p2
        # Descending tid order with ascending probs stresses the sort.
        tids = np.array([9, 3])
        probs = np.array([p2, p1])
        posting_list.bulk_build(tids, probs)
        got_tids, got_probs = posting_list.read_all()
        assert set(got_tids.tolist()) == {3, 9}
        assert len(posting_list) == 2

    def test_many_near_equal_probs(self):
        disk = DiskManager(page_size=256)
        posting_list = PostingList(BufferPool(disk, capacity=32))
        rng = np.random.default_rng(3)
        # A cloud of probabilities within a few float32 ulps of 1e-3.
        base = np.float32(1e-3)
        values = [float(base)] * 0
        current = base
        for _ in range(40):
            values.append(float(current))
            current = np.nextafter(current, np.float32(1.0))
        tids = rng.permutation(40)
        posting_list.bulk_build(tids, np.array(values)[tids])
        got_tids, _ = posting_list.read_all()
        assert sorted(got_tids.tolist()) == list(range(40))
