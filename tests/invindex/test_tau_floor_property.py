"""Property: the distributed top-k floor is work-monotone and answer-safe.

For every search strategy, elevating a top-k execution's ``tau_floor``
anywhere up to the query's true k-th score must (a) never change the
returned matches — tids, scores, order — because ties at the floor are
kept and only strictly-below-floor tuples may be suppressed, and (b)
never *increase* posting-page reads, because the effective threshold
``max(tau_k, tau_floor)`` only tightens.  This is the contract the
shard coordinator's round protocol rests on (docs/sharding.md): floors
it pushes are global heap k-th scores, which never exceed the final
k-th score.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EqualityTopKQuery
from repro.invindex.strategies import STRATEGIES
from repro.shard import measured_probe

from tests.invindex.conftest import random_query

POOL_SIZE = 100


def _run(index, strategy, query, floor):
    result, _, breakdown, _ = measured_probe(
        index, strategy, query, floor, POOL_SIZE
    )
    answers = [(m.tid, m.score) for m in result.matches]
    return answers, breakdown.get("postings", 0)


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=40),
    fractions=st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    ),
)
def test_floor_is_answer_safe_and_work_monotone(
    index, strategy, seed, k, fractions
):
    query = EqualityTopKQuery(random_query(15, seed=seed), k)
    baseline, baseline_postings = _run(index, strategy, query, 0.0)
    # Valid floors never exceed the true k-th score (the coordinator's
    # heap guarantees this); below k results the only valid floor is 0.
    kth = baseline[-1][1] if len(baseline) == k else 0.0
    low, high = sorted(fractions)
    floors = sorted({low * kth, high * kth, kth})
    previous_postings = baseline_postings
    for floor in floors:
        answers, postings = _run(index, strategy, query, floor)
        assert answers == baseline, (
            f"{strategy}: floor {floor} changed the answer"
        )
        assert postings <= previous_postings, (
            f"{strategy}: raising the floor to {floor} raised posting "
            f"reads {previous_postings} -> {postings}"
        )
        previous_postings = postings
