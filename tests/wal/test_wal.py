"""Unit tests for the write-ahead log: format, torn tails, replay."""

import struct
import zlib

import numpy as np
import pytest

from repro.core.exceptions import WalError
from repro.core.uda import UncertainAttribute
from repro.wal import MAGIC, OP_DELETE, OP_INSERT, WalRecord, WriteAheadLog

_HEADER = struct.Struct("<QBI")


def make_wal(path, records=3):
    """Write ``records`` alternating insert/delete records; return the log."""
    wal = WriteAheadLog(path)
    for i in range(records):
        if i % 2 == 0:
            wal.append_insert(i, [i, i + 1], [0.6, 0.4])
        else:
            wal.append_delete(i - 1)
    return wal


class TestFormat:
    def test_fresh_log_writes_magic(self, tmp_path):
        path = tmp_path / "log.wal"
        WriteAheadLog(path).close()
        assert path.read_bytes() == MAGIC

    def test_lsns_start_at_one_and_are_dense(self, tmp_path):
        wal = make_wal(tmp_path / "log.wal", records=5)
        assert [r.lsn for r in wal.replay()] == [1, 2, 3, 4, 5]
        assert wal.last_lsn == 5

    def test_insert_round_trips_distribution(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal")
        uda = UncertainAttribute([3, 9, 14], [0.5, 0.3, 0.2])
        wal.append_insert(41, uda.items, uda.probs)
        (record,) = wal.replay()
        assert record.op == OP_INSERT
        assert record.tid == 41
        np.testing.assert_array_equal(record.items, uda.items)
        # float32-quantized probs survive the f64 payload bit-exactly.
        np.testing.assert_array_equal(
            record.probs.astype(np.float32), uda.probs.astype(np.float32)
        )

    def test_delete_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal")
        wal.append_delete(7)
        (record,) = wal.replay()
        assert record == WalRecord(lsn=1, op=OP_DELETE, tid=7)
        assert record.items is None and record.probs is None

    def test_replay_after_lsn_skips_prefix(self, tmp_path):
        wal = make_wal(tmp_path / "log.wal", records=4)
        assert [r.lsn for r in wal.replay(after_lsn=2)] == [3, 4]
        assert wal.replay(after_lsn=99) == []

    def test_record_offsets_bracket_every_record(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = make_wal(path, records=3)
        offsets = wal.record_offsets()
        assert offsets[0] == len(MAGIC)
        assert offsets[-1] == path.stat().st_size
        assert len(offsets) == 4  # magic + one end per record
        assert offsets == sorted(offsets)


class TestReopen:
    def test_reopen_resumes_lsn_sequence(self, tmp_path):
        path = tmp_path / "log.wal"
        make_wal(path, records=3).close()
        wal = WriteAheadLog(path)
        assert wal.last_lsn == 3
        assert not wal.torn
        assert wal.append_delete(0) == 4

    def test_reset_truncates_but_preserves_lsn(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = make_wal(path, records=3)
        wal.reset()
        assert path.read_bytes() == MAGIC
        assert wal.replay() == []
        # Post-checkpoint records must not reuse absorbed LSNs.
        assert wal.append_delete(0) == 4

    def test_bad_magic_is_loud(self, tmp_path):
        path = tmp_path / "log.wal"
        path.write_bytes(b"NOTAWALFILE\n")
        with pytest.raises(WalError):
            WriteAheadLog(path)


class TestTornTail:
    def test_truncated_record_marks_torn_and_keeps_prefix(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = make_wal(path, records=3)
        offsets = wal.record_offsets()
        wal.close()
        # Tear mid-way through the last record.
        path.write_bytes(path.read_bytes()[: offsets[-1] - 2])
        reopened = WriteAheadLog(path)
        assert reopened.torn
        assert [r.lsn for r in reopened.replay()] == [1, 2]
        # The file was truncated back to the valid prefix.
        assert path.stat().st_size == offsets[-2]

    def test_corrupt_crc_ends_valid_prefix(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = make_wal(path, records=3)
        offsets = wal.record_offsets()
        wal.close()
        image = bytearray(path.read_bytes())
        image[offsets[-1] - 1] ^= 0xFF  # flip a CRC byte of record 3
        path.write_bytes(bytes(image))
        reopened = WriteAheadLog(path)
        assert reopened.torn
        assert reopened.last_lsn == 2

    def test_garbage_length_field_cannot_explode_scan(self, tmp_path):
        path = tmp_path / "log.wal"
        make_wal(path, records=1).close()
        with path.open("ab") as handle:
            handle.write(_HEADER.pack(2, OP_INSERT, 0xFFFFFFFF))
        reopened = WriteAheadLog(path)
        assert reopened.torn
        assert reopened.last_lsn == 1

    def test_appends_after_tear_continue_cleanly(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = make_wal(path, records=2)
        offsets = wal.record_offsets()
        wal.close()
        path.write_bytes(path.read_bytes()[: offsets[-1] - 1])
        reopened = WriteAheadLog(path)
        assert reopened.torn
        assert reopened.append_delete(0) == 2
        assert [r.lsn for r in reopened.replay()] == [1, 2]
