"""Tests for :mod:`repro.pdrtree.node` (on-page layouts)."""

import numpy as np
import pytest

from repro.core import PageError, SerializationError
from repro.pdrtree import BoundaryCodec, BoundaryVector
from repro.pdrtree.node import (
    PDR_INTERNAL,
    PDR_LEAF,
    ChildEntry,
    LeafEntry,
    decode_internal,
    decode_leaf,
    encode_internal,
    encode_leaf,
    node_kind,
)
from repro.storage import Page


@pytest.fixture()
def codec():
    return BoundaryCodec(16)


def leaf_entry(tid, pairs):
    items = np.array([i for i, _ in pairs], dtype=np.int64)
    probs = np.array([p for _, p in pairs])
    return LeafEntry(tid=tid, items=items, probs=probs)


def child_entry(child_id, pairs):
    items = np.array([i for i, _ in pairs], dtype=np.int64)
    values = np.array([v for _, v in pairs])
    return ChildEntry(child_id=child_id, boundary=BoundaryVector(items, values))


class TestLeafLayout:
    def test_round_trip(self, codec):
        page = Page(0, size=512)
        entries = [
            leaf_entry(7, [(0, 0.5), (3, 0.5)]),
            leaf_entry(9, [(1, 1.0)]),
            leaf_entry(11, [(0, 0.25), (1, 0.25), (2, 0.5)]),
        ]
        encode_leaf(page, codec, entries)
        assert node_kind(page) == PDR_LEAF
        decoded = decode_leaf(page)
        assert [e.tid for e in decoded] == [7, 9, 11]
        for original, got in zip(entries, decoded):
            assert got.items.tolist() == original.items.tolist()
            assert got.probs.tolist() == pytest.approx(original.probs.tolist())

    def test_empty_leaf(self, codec):
        page = Page(0, size=128)
        encode_leaf(page, codec, [])
        assert decode_leaf(page) == []

    def test_overflow_rejected(self, codec):
        page = Page(0, size=64)
        entries = [leaf_entry(i, [(0, 0.5), (1, 0.5)]) for i in range(10)]
        with pytest.raises(SerializationError):
            encode_leaf(page, codec, entries)

    def test_decode_wrong_kind(self, codec):
        page = Page(0, size=128)
        encode_internal(page, codec, [child_entry(1, [(0, 1.0)])])
        with pytest.raises(PageError):
            decode_leaf(page)

    def test_encoded_size(self):
        entry = leaf_entry(1, [(0, 0.5), (1, 0.5)])
        assert entry.encoded_size == 6 + 2 * 8


class TestInternalLayout:
    def test_round_trip(self, codec):
        page = Page(0, size=512)
        entries = [
            child_entry(100, [(0, 0.5), (4, 0.9)]),
            child_entry(200, [(1, 1.0)]),
        ]
        encode_internal(page, codec, entries)
        assert node_kind(page) == PDR_INTERNAL
        decoded = decode_internal(page, codec)
        assert [e.child_id for e in decoded] == [100, 200]
        assert decoded[0].boundary.items.tolist() == [0, 4]

    def test_compressed_round_trip(self):
        codec = BoundaryCodec(16, bits=2)
        page = Page(0, size=512)
        entries = [child_entry(5, [(0, 0.62), (3, 0.4)])]
        encode_internal(page, codec, entries)
        decoded = decode_internal(page, codec)
        # Values come back as their quantized over-estimates.
        assert decoded[0].boundary.values.tolist() == pytest.approx([0.75, 0.5])

    def test_codec_tag_mismatch_detected(self):
        raw = BoundaryCodec(16)
        packed = BoundaryCodec(16, bits=4)
        page = Page(0, size=512)
        encode_internal(page, raw, [child_entry(1, [(0, 1.0)])])
        with pytest.raises(PageError):
            decode_internal(page, packed)

    def test_overflow_rejected(self, codec):
        page = Page(0, size=64)
        entries = [
            child_entry(i, [(j, 0.5) for j in range(8)]) for i in range(4)
        ]
        with pytest.raises(SerializationError):
            encode_internal(page, codec, entries)

    def test_decode_wrong_kind(self, codec):
        page = Page(0, size=128)
        encode_leaf(page, codec, [leaf_entry(1, [(0, 1.0)])])
        with pytest.raises(PageError):
            decode_internal(page, codec)
