"""Tests for :mod:`repro.pdrtree.mbr`."""

import numpy as np
import pytest

from repro.core import QueryError
from repro.pdrtree import BoundaryVector
from repro.pdrtree.mbr import densify, pairwise_distances, rows_to_rows_distance


def sparse(pairs):
    items = np.array([i for i, _ in pairs], dtype=np.int64)
    values = np.array([v for _, v in pairs])
    return items, values


class TestBoundaryVector:
    def test_over_takes_pointwise_max(self):
        boundary = BoundaryVector.over(
            [sparse([(0, 0.5), (1, 0.2)]), sparse([(1, 0.9), (3, 0.1)])]
        )
        assert boundary.items.tolist() == [0, 1, 3]
        assert boundary.values.tolist() == pytest.approx([0.5, 0.9, 0.1])

    def test_empty(self):
        boundary = BoundaryVector.empty()
        assert len(boundary) == 0
        assert boundary.area == 0.0

    def test_area_is_l1_measure(self):
        boundary = BoundaryVector(*sparse([(0, 0.5), (2, 0.75)]))
        assert boundary.area == pytest.approx(1.25)

    def test_area_increase(self):
        boundary = BoundaryVector(*sparse([(0, 0.5), (1, 0.5)]))
        items, values = sparse([(1, 0.7), (2, 0.3)])
        # item 1 grows by 0.2, item 2 is new at 0.3.
        assert boundary.area_increase(items, values) == pytest.approx(0.5)

    def test_area_increase_zero_when_dominated(self):
        boundary = BoundaryVector(*sparse([(0, 0.5), (1, 0.5)]))
        items, values = sparse([(0, 0.4)])
        assert boundary.area_increase(items, values) == 0.0
        assert boundary.dominates(items, values)

    def test_expanded(self):
        boundary = BoundaryVector(*sparse([(0, 0.5)]))
        grown = boundary.expanded(*sparse([(1, 0.25)]))
        assert grown.items.tolist() == [0, 1]
        # Original unchanged.
        assert boundary.items.tolist() == [0]

    def test_dot_is_lemma2_bound(self):
        boundary = BoundaryVector(*sparse([(0, 0.8), (1, 0.6)]))
        q_items, q_values = sparse([(0, 0.5), (1, 0.5)])
        assert boundary.dot(q_items, q_values) == pytest.approx(0.7)

    def test_dot_disjoint_is_zero(self):
        boundary = BoundaryVector(*sparse([(0, 0.8)]))
        q_items, q_values = sparse([(5, 1.0)])
        assert boundary.dot(q_items, q_values) == 0.0

    def test_dot_dominates_member_equality(self):
        rng = np.random.default_rng(0)
        members = []
        for _ in range(10):
            items = np.sort(rng.choice(12, size=4, replace=False))
            values = rng.dirichlet(np.ones(4))
            members.append((items, values))
        boundary = BoundaryVector.over(members)
        q_items = np.sort(rng.choice(12, size=3, replace=False))
        q_values = rng.dirichlet(np.ones(3))
        bound = boundary.dot(q_items, q_values)
        for items, values in members:
            dense_member = np.zeros(12)
            dense_member[items] = values
            dense_q = np.zeros(12)
            dense_q[q_items] = q_values
            assert bound >= float(dense_member @ dense_q) - 1e-12

    def test_distance_to_measures(self):
        boundary = BoundaryVector(*sparse([(0, 0.5), (1, 0.5)]))
        items, values = sparse([(0, 0.5), (1, 0.5)])
        assert boundary.distance_to(items, values, "l1") == 0.0
        assert boundary.distance_to(items, values, "l2") == 0.0
        assert boundary.distance_to(items, values, "kl") == pytest.approx(
            0.0, abs=1e-9
        )

    def test_distance_unknown_divergence(self):
        boundary = BoundaryVector(*sparse([(0, 1.0)]))
        with pytest.raises(QueryError):
            boundary.distance_to(*sparse([(0, 1.0)]), "cosine")

    def test_kl_distance_normalizes_boundary(self):
        # A saturated boundary must not look "closer" just for being big.
        small = BoundaryVector(*sparse([(0, 0.5), (1, 0.5)]))
        saturated = BoundaryVector(*sparse([(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)]))
        items, values = sparse([(0, 0.5), (1, 0.5)])
        assert small.distance_to(items, values, "kl") < saturated.distance_to(
            items, values, "kl"
        )


class TestDenseHelpers:
    def test_densify(self):
        matrix, union = densify(
            [sparse([(2, 0.5), (7, 0.5)]), sparse([(2, 1.0)])]
        )
        assert union.tolist() == [2, 7]
        assert matrix.tolist() == [[0.5, 0.5], [1.0, 0.0]]

    def test_densify_empty(self):
        matrix, union = densify([])
        assert matrix.shape == (0, 0)

    @pytest.mark.parametrize("divergence", ["l1", "l2", "kl"])
    def test_pairwise_zero_diagonal(self, divergence):
        rng = np.random.default_rng(1)
        matrix = rng.dirichlet(np.ones(5), size=6)
        distances = pairwise_distances(matrix, divergence)
        assert np.allclose(np.diag(distances), 0.0, atol=1e-9)

    @pytest.mark.parametrize("divergence", ["l1", "l2", "kl"])
    def test_pairwise_symmetric(self, divergence):
        rng = np.random.default_rng(2)
        matrix = rng.dirichlet(np.ones(5), size=6)
        distances = pairwise_distances(matrix, divergence)
        assert np.allclose(distances, distances.T, atol=1e-9)

    def test_rows_to_rows_matches_pairwise_for_l1(self):
        rng = np.random.default_rng(3)
        matrix = rng.dirichlet(np.ones(4), size=5)
        assert np.allclose(
            rows_to_rows_distance(matrix, matrix, "l1"),
            pairwise_distances(matrix, "l1"),
        )

    def test_unknown_divergence(self):
        with pytest.raises(QueryError):
            pairwise_distances(np.zeros((2, 2)), "js")
        with pytest.raises(QueryError):
            rows_to_rows_distance(np.zeros((2, 2)), np.zeros((2, 2)), "js")
