"""Tests for :mod:`repro.pdrtree.insert_policy`."""

import numpy as np
import pytest

from repro.core import QueryError
from repro.pdrtree import BoundaryVector, choose_child
from repro.pdrtree.node import ChildEntry


def entry(child_id, pairs):
    items = np.array([i for i, _ in pairs], dtype=np.int64)
    values = np.array([v for _, v in pairs])
    return ChildEntry(child_id=child_id, boundary=BoundaryVector(items, values))


def vector(pairs):
    items = np.array([i for i, _ in pairs], dtype=np.int64)
    values = np.array([v for _, v in pairs])
    return items, values


@pytest.fixture()
def entries():
    return [
        entry(0, [(0, 0.9), (1, 0.9)]),   # big boundary around items 0-1
        entry(1, [(4, 0.6), (5, 0.6)]),   # boundary around items 4-5
        entry(2, [(8, 0.2)]),             # small boundary on item 8
    ]


class TestMinArea:
    def test_prefers_zero_increase(self, entries):
        items, values = vector([(0, 0.5), (1, 0.5)])  # fits inside child 0
        assert choose_child(entries, items, values, "min_area", "kl") == 0

    def test_prefers_smallest_growth(self, entries):
        items, values = vector([(8, 0.3)])  # grows child 2 by 0.1 only
        assert choose_child(entries, items, values, "min_area", "kl") == 2

    def test_tie_broken_by_smaller_area(self):
        both_fit = [
            entry(0, [(0, 0.9), (1, 0.9), (2, 0.9)]),
            entry(1, [(0, 0.6), (1, 0.6)]),
        ]
        items, values = vector([(0, 0.5), (1, 0.5)])
        assert choose_child(both_fit, items, values, "min_area", "kl") == 1


class TestMostSimilar:
    def test_prefers_matching_shape(self, entries):
        items, values = vector([(4, 0.5), (5, 0.5)])
        for divergence in ("l1", "l2", "kl"):
            assert (
                choose_child(entries, items, values, "most_similar", divergence)
                == 1
            )

    def test_kl_not_fooled_by_saturated_boundary(self):
        saturated = entry(0, [(i, 1.0) for i in range(10)])
        matching = entry(1, [(3, 0.7), (4, 0.5)])
        items, values = vector([(3, 0.6), (4, 0.4)])
        assert (
            choose_child([saturated, matching], items, values, "most_similar", "kl")
            == 1
        )


class TestHybrid:
    def test_area_increase_is_primary(self, entries):
        items, values = vector([(0, 0.5), (1, 0.5)])
        assert choose_child(entries, items, values, "hybrid", "kl") == 0

    def test_similarity_breaks_area_ties(self):
        both_fit = [
            entry(0, [(0, 0.9), (1, 0.9)]),      # flat profile
            entry(1, [(0, 0.9), (1, 0.35)]),     # skewed like the vector
        ]
        items, values = vector([(0, 0.9), (1, 0.1)])
        assert choose_child(both_fit, items, values, "hybrid", "kl") == 1


class TestErrors:
    def test_empty_entries(self):
        items, values = vector([(0, 1.0)])
        with pytest.raises(QueryError):
            choose_child([], items, values, "min_area", "kl")

    def test_unknown_policy(self, entries):
        items, values = vector([(0, 1.0)])
        with pytest.raises(QueryError):
            choose_child(entries, items, values, "random", "kl")
