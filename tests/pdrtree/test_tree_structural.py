"""Structural stress tests: deep trees, internal splits, insert retries.

Small pages and wide domains force the paths that ordinary workloads
rarely hit: internal-node splits, boundary-growth overflow (the
split-and-retry loop in ``insert``), and byte-budget rebalancing of
variable-width records.
"""

import numpy as np
import pytest

from repro.core import EqualityThresholdQuery, EqualityTopKQuery, UncertainAttribute
from repro.pdrtree import PDRTree, PDRTreeConfig
from repro.pdrtree.node import PDR_INTERNAL, node_kind
from repro.storage import BufferPool, DiskManager


def random_relation_wide(num_tuples, domain_size, seed, nnz_range=(1, 6)):
    from repro.core import CategoricalDomain, UncertainRelation

    rng = np.random.default_rng(seed)
    relation = UncertainRelation(CategoricalDomain.of_size(domain_size))
    for _ in range(num_tuples):
        nnz = int(rng.integers(*nnz_range))
        items = rng.choice(domain_size, size=nnz, replace=False)
        probs = rng.dirichlet(np.ones(nnz))
        relation.append(
            UncertainAttribute.from_pairs(
                list(zip(items.tolist(), probs.tolist()))
            )
        )
    return relation


class TestDeepTrees:
    @pytest.mark.parametrize("split", ["top_down", "bottom_up"])
    def test_small_pages_build_deep_and_stay_exact(self, split):
        relation = random_relation_wide(400, 30, seed=3)
        tree = PDRTree(
            30,
            disk=DiskManager(page_size=512),
            config=PDRTreeConfig(split_strategy=split),
        )
        tree.build(relation)
        assert tree.height >= 3  # tiny pages force a deep tree
        for seed in range(4):
            rng = np.random.default_rng(seed + 50)
            items = rng.choice(30, size=3, replace=False)
            probs = rng.dirichlet(np.ones(3))
            q = UncertainAttribute.from_pairs(
                list(zip(items.tolist(), probs.tolist()))
            )
            for tau in (0.03, 0.3):
                query = EqualityThresholdQuery(q, tau)
                expected = [(m.tid, m.score) for m in relation.execute(query)]
                got = [(m.tid, m.score) for m in tree.execute(query)]
                assert got == expected
            query = EqualityTopKQuery(q, 11)
            assert [(m.tid, m.score) for m in tree.execute(query)] == [
                (m.tid, m.score) for m in relation.execute(query)
            ]

    def test_wide_domain_forces_internal_splits(self):
        # Raw boundaries over a wide domain make internal entries fat;
        # internal nodes overflow quickly and must split repeatedly.
        relation = random_relation_wide(300, 120, seed=5, nnz_range=(3, 9))
        tree = PDRTree(120, disk=DiskManager(page_size=4096))
        tree.build(relation)
        internal_pages = 0
        stack = [tree.root_page_id]
        while stack:
            page = tree.pool.fetch_page(stack.pop())
            if node_kind(page) == PDR_INTERNAL:
                internal_pages += 1
                stack.extend(
                    entry.child_id for entry in tree._get_internal(page.page_id)
                )
        assert internal_pages >= 3
        q = relation.uda_of(0)
        query = EqualityThresholdQuery(q, 0.05)
        assert tree.execute(query).tid_set() == relation.execute(query).tid_set()

    def test_variable_width_records_rebalance(self):
        # Mix tiny and fat UDAs so count-balanced splits overflow bytes.
        from repro.core import CategoricalDomain, UncertainRelation

        rng = np.random.default_rng(9)
        relation = UncertainRelation(CategoricalDomain.of_size(40))
        for i in range(200):
            if i % 3 == 0:
                nnz = 20  # fat record
            else:
                nnz = 1
            items = rng.choice(40, size=nnz, replace=False)
            probs = rng.dirichlet(np.ones(nnz))
            relation.append(
                UncertainAttribute.from_pairs(
                    list(zip(items.tolist(), probs.tolist()))
                )
            )
        tree = PDRTree(40, disk=DiskManager(page_size=1024))
        tree.build(relation)
        q = relation.uda_of(3)
        query = EqualityThresholdQuery(q, 0.02)
        assert tree.execute(query).tid_set() == relation.execute(query).tid_set()

    def test_infeasible_geometry_raises_actionable_error(self):
        # Two raw 120-item boundaries cannot share a 1 KB page: the tree
        # must say so and point at compression, not corrupt itself.
        from repro.core import RecordTooLargeError

        relation = random_relation_wide(300, 120, seed=5, nnz_range=(3, 9))
        tree = PDRTree(120, disk=DiskManager(page_size=1024))
        with pytest.raises(RecordTooLargeError, match="compression"):
            tree.build(relation)

    def test_compression_rescues_infeasible_geometry(self):
        # The same workload builds fine once boundaries are folded.
        relation = random_relation_wide(300, 120, seed=5, nnz_range=(3, 9))
        tree = PDRTree(
            120,
            disk=DiskManager(page_size=1024),
            config=PDRTreeConfig(fold_size=16, bits=2),
        )
        tree.build(relation)
        q = relation.uda_of(0)
        query = EqualityThresholdQuery(q, 0.05)
        assert tree.execute(query).tid_set() == relation.execute(query).tid_set()

    def test_interleaved_inserts_deletes_deep_tree(self):
        relation = random_relation_wide(300, 25, seed=11)
        tree = PDRTree(25, disk=DiskManager(page_size=512))
        removed = set()
        for tid in relation.tids():
            tree.insert(tid, relation.uda_of(tid))
            if tid % 10 == 9:
                victim = tid - 5
                tree.delete(victim)
                removed.add(victim)
        q = relation.uda_of(2)
        query = EqualityThresholdQuery(q, 0.05)
        expected = {
            m.tid for m in relation.execute(query) if m.tid not in removed
        }
        assert tree.execute(query).tid_set() == expected

    def test_compressed_deep_tree(self):
        relation = random_relation_wide(300, 100, seed=13, nnz_range=(3, 8))
        tree = PDRTree(
            100,
            disk=DiskManager(page_size=1024),
            config=PDRTreeConfig(fold_size=16, bits=2),
        )
        tree.build(relation)
        q = relation.uda_of(7)
        for tau in (0.02, 0.2):
            query = EqualityThresholdQuery(q, tau)
            assert tree.execute(query).tid_set() == relation.execute(query).tid_set()

    def test_pool_bounded_queries_on_deep_tree(self):
        relation = random_relation_wide(400, 30, seed=17)
        tree = PDRTree(30, disk=DiskManager(page_size=512))
        tree.build(relation)
        tree.pool = BufferPool(tree.disk, capacity=4)  # brutal pool
        q = relation.uda_of(1)
        query = EqualityThresholdQuery(q, 0.05)
        assert tree.execute(query).tid_set() == relation.execute(query).tid_set()
