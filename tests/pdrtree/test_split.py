"""Tests for :mod:`repro.pdrtree.split`."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import QueryError
from repro.pdrtree import MAX_FRACTION, split_objects


def sparse(pairs):
    items = np.array([i for i, _ in pairs], dtype=np.int64)
    values = np.array([v for _, v in pairs])
    return items, values


def two_blob_objects(count_a=6, count_b=6):
    """Two obvious clusters: mass on item 0/1 vs mass on item 8/9."""
    objects = []
    for i in range(count_a):
        objects.append(sparse([(0, 0.6 + 0.01 * i), (1, 0.4 - 0.01 * i)]))
    for i in range(count_b):
        objects.append(sparse([(8, 0.5 + 0.01 * i), (9, 0.5 - 0.01 * i)]))
    return objects


@pytest.mark.parametrize("strategy", ["top_down", "bottom_up"])
@pytest.mark.parametrize("divergence", ["l1", "l2", "kl"])
class TestBothStrategies:
    def test_partition_is_complete_and_disjoint(self, strategy, divergence):
        objects = two_blob_objects()
        group_a, group_b = split_objects(objects, strategy, divergence)
        assert sorted(group_a + group_b) == list(range(len(objects)))
        assert not set(group_a) & set(group_b)
        assert group_a and group_b

    def test_separates_obvious_clusters(self, strategy, divergence):
        objects = two_blob_objects()
        group_a, group_b = split_objects(objects, strategy, divergence)
        blobs = [set(range(6)), set(range(6, 12))]
        assert {frozenset(group_a), frozenset(group_b)} == {
            frozenset(blobs[0]),
            frozenset(blobs[1]),
        }

    def test_occupancy_cap(self, strategy, divergence):
        # One outlier plus a tight blob: neither side may take > 3/4.
        objects = [sparse([(9, 1.0)])] + [
            sparse([(0, 0.5), (1, 0.5)]) for _ in range(15)
        ]
        group_a, group_b = split_objects(objects, strategy, divergence)
        cap = int(MAX_FRACTION * len(objects))
        assert len(group_a) <= cap
        assert len(group_b) <= cap

    def test_two_objects(self, strategy, divergence):
        objects = [sparse([(0, 1.0)]), sparse([(1, 1.0)])]
        group_a, group_b = split_objects(objects, strategy, divergence)
        assert len(group_a) == len(group_b) == 1


class TestEdgeCases:
    def test_single_object_rejected(self):
        with pytest.raises(QueryError):
            split_objects([sparse([(0, 1.0)])], "top_down", "l1")

    def test_unknown_strategy(self):
        objects = [sparse([(0, 1.0)]), sparse([(1, 1.0)])]
        with pytest.raises(QueryError):
            split_objects(objects, "sideways", "l1")

    def test_identical_objects_fall_back_to_halves(self):
        objects = [sparse([(0, 0.5), (1, 0.5)]) for _ in range(8)]
        group_a, group_b = split_objects(objects, "top_down", "l1")
        assert sorted(group_a + group_b) == list(range(8))
        assert group_a and group_b


@given(
    count=st.integers(2, 24),
    strategy=st.sampled_from(["top_down", "bottom_up"]),
    divergence=st.sampled_from(["l1", "l2", "kl"]),
    seed=st.integers(0, 1000),
)
def test_split_invariants_on_random_objects(count, strategy, divergence, seed):
    rng = np.random.default_rng(seed)
    objects = []
    for _ in range(count):
        nnz = int(rng.integers(1, 5))
        items = np.sort(rng.choice(10, size=nnz, replace=False))
        values = rng.dirichlet(np.ones(nnz))
        objects.append((items.astype(np.int64), values))
    group_a, group_b = split_objects(objects, strategy, divergence)
    assert sorted(group_a + group_b) == list(range(count))
    assert group_a and group_b
    cap = max(1, min(count - 1, int(MAX_FRACTION * count)))
    assert len(group_a) <= cap
    assert len(group_b) <= cap
