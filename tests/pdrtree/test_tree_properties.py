"""Property-based agreement: PDR-tree == naive executor."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EqualityThresholdQuery, EqualityTopKQuery
from repro.pdrtree import PDRTree, PDRTreeConfig

from tests.core.test_uda_properties import udas
from tests.invindex.test_strategies_properties import relations

CONFIGS = [
    PDRTreeConfig(),
    PDRTreeConfig(split_strategy="top_down", divergence="l1"),
    PDRTreeConfig(fold_size=4, bits=2),
]


@settings(max_examples=20, deadline=None)
@given(
    relation=relations(max_tuples=30),
    q=udas(max_domain=8),
    tau=st.floats(0.001, 1.0),
    config_index=st.integers(0, len(CONFIGS) - 1),
)
def test_pdr_threshold_matches_naive(relation, q, tau, config_index):
    tree = PDRTree(len(relation.domain), config=CONFIGS[config_index])
    tree.build(relation)
    query = EqualityThresholdQuery(q, tau)
    expected = [(m.tid, m.score) for m in relation.execute(query)]
    got = [(m.tid, m.score) for m in tree.execute(query)]
    assert got == expected


@settings(max_examples=20, deadline=None)
@given(
    relation=relations(max_tuples=30),
    q=udas(max_domain=8),
    k=st.integers(1, 40),
    config_index=st.integers(0, len(CONFIGS) - 1),
)
def test_pdr_top_k_matches_naive(relation, q, k, config_index):
    tree = PDRTree(len(relation.domain), config=CONFIGS[config_index])
    tree.build(relation)
    query = EqualityTopKQuery(q, k)
    expected = [(m.tid, m.score) for m in relation.execute(query)]
    got = [(m.tid, m.score) for m in tree.execute(query)]
    assert got == expected
