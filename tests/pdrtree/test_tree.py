"""Tests for :mod:`repro.pdrtree.tree`."""

import numpy as np
import pytest

from repro.core import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    KeyNotFoundError,
    QueryError,
    RecordTooLargeError,
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
    UncertainAttribute,
)
from repro.pdrtree import PDRTree, PDRTreeConfig
from repro.storage import BufferPool, DiskManager

from tests.invindex.conftest import random_query, random_relation


@pytest.fixture(scope="module")
def relation():
    return random_relation(300, 15, seed=21)


@pytest.fixture(scope="module")
def tree(relation):
    built = PDRTree(len(relation.domain))
    built.build(relation)
    return built


def matches_of(result):
    return [(m.tid, m.score) for m in result]


class TestConfig:
    def test_defaults_are_paper_winners(self):
        config = PDRTreeConfig()
        assert config.split_strategy == "bottom_up"
        assert config.divergence == "kl"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"insert_policy": "nope"},
            {"split_strategy": "nope"},
            {"divergence": "cosine"},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(QueryError):
            PDRTreeConfig(**kwargs)


class TestBuild:
    def test_counts(self, relation, tree):
        assert tree.num_tuples == len(relation)
        assert tree.height >= 2  # 300 tuples do not fit one page

    def test_double_build_rejected(self, relation, tree):
        with pytest.raises(QueryError):
            tree.build(relation)

    def test_duplicate_tid_rejected(self):
        tree = PDRTree(10)
        tree.insert(0, UncertainAttribute.point(1))
        with pytest.raises(QueryError):
            tree.insert(0, UncertainAttribute.point(1))

    def test_record_too_large(self):
        tree = PDRTree(10, disk=DiskManager(page_size=64))
        huge = UncertainAttribute.from_pairs([(i, 0.1) for i in range(10)])
        with pytest.raises(RecordTooLargeError):
            tree.insert(0, huge)

    def test_domain_mismatch(self, relation):
        tree = PDRTree(len(relation.domain) + 1)
        with pytest.raises(QueryError):
            tree.build(relation)


class TestThresholdAgreement:
    @pytest.mark.parametrize("tau", [0.01, 0.1, 0.3, 0.7, 0.99])
    def test_matches_naive(self, relation, tree, tau):
        for seed in range(5):
            q = random_query(len(relation.domain), seed=seed * 13)
            query = EqualityThresholdQuery(q, tau)
            expected = matches_of(relation.execute(query))
            tree.pool = BufferPool(tree.disk, capacity=100)
            assert matches_of(tree.execute(query)) == expected

    def test_boundary_threshold(self, relation, tree):
        q = relation.uda_of(11)
        boundary = q.equality_probability(relation.uda_of(11))
        query = EqualityThresholdQuery(q, boundary)
        expected = matches_of(relation.execute(query))
        tree.pool = BufferPool(tree.disk, capacity=100)
        got = matches_of(tree.execute(query))
        assert got == expected
        assert 11 in {tid for tid, _ in got}

    def test_peq(self, relation, tree):
        q = relation.uda_of(5)
        expected = relation.execute(EqualityQuery(q)).tid_set()
        tree.pool = BufferPool(tree.disk, capacity=100)
        assert tree.execute(EqualityQuery(q)).tid_set() == expected


class TestTopKAgreement:
    @pytest.mark.parametrize("k", [1, 3, 10, 50, 1000])
    def test_matches_naive(self, relation, tree, k):
        for seed in range(4):
            q = random_query(len(relation.domain), seed=seed * 19 + 1)
            query = EqualityTopKQuery(q, k)
            expected = matches_of(relation.execute(query))
            tree.pool = BufferPool(tree.disk, capacity=100)
            assert matches_of(tree.execute(query)) == expected


class TestSimilarityAgreement:
    @pytest.mark.parametrize("divergence", ["l1", "l2", "kl"])
    @pytest.mark.parametrize("threshold", [0.1, 0.5, 1.2])
    def test_dstq_matches_naive(self, relation, tree, divergence, threshold):
        q = relation.uda_of(2)
        query = SimilarityThresholdQuery(q, threshold, divergence)
        expected = relation.execute(query).tid_set()
        tree.pool = BufferPool(tree.disk, capacity=100)
        assert tree.execute(query).tid_set() == expected

    @pytest.mark.parametrize("divergence", ["l1", "l2", "kl"])
    def test_ds_top_k_matches_naive(self, relation, tree, divergence):
        q = relation.uda_of(9)
        query = SimilarityTopKQuery(q, 7, divergence)
        expected = matches_of(relation.execute(query))
        tree.pool = BufferPool(tree.disk, capacity=100)
        assert matches_of(tree.execute(query)) == expected


class TestConfigurationsAgree:
    @pytest.mark.parametrize(
        "config",
        [
            PDRTreeConfig(split_strategy="top_down"),
            PDRTreeConfig(divergence="l1", insert_policy="min_area"),
            PDRTreeConfig(divergence="l2", insert_policy="most_similar"),
            PDRTreeConfig(fold_size=6),
            PDRTreeConfig(bits=2),
            PDRTreeConfig(fold_size=5, bits=4, split_strategy="top_down"),
        ],
        ids=lambda c: f"{c.split_strategy}-{c.divergence}-{c.insert_policy}-f{c.fold_size}-b{c.bits}",
    )
    def test_every_config_returns_naive_answers(self, relation, config):
        tree = PDRTree(len(relation.domain), config=config)
        tree.build(relation)
        for seed in range(3):
            q = random_query(len(relation.domain), seed=seed + 40)
            for tau in (0.05, 0.4):
                query = EqualityThresholdQuery(q, tau)
                assert matches_of(tree.execute(query)) == matches_of(
                    relation.execute(query)
                )
            query = EqualityTopKQuery(q, 9)
            assert matches_of(tree.execute(query)) == matches_of(
                relation.execute(query)
            )


class TestDelete:
    def test_delete_removes_from_answers(self, relation):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        victim = 42
        tree.delete(victim)
        q = relation.uda_of(victim)
        result = tree.execute(EqualityThresholdQuery(q, 0.001))
        assert victim not in result.tid_set()
        assert tree.num_tuples == len(relation) - 1

    def test_delete_unknown(self, relation):
        tree = PDRTree(len(relation.domain))
        with pytest.raises(KeyNotFoundError):
            tree.delete(0)

    def test_remaining_answers_still_exact(self, relation):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        removed = set(range(0, 300, 7))
        for tid in removed:
            tree.delete(tid)
        q = random_query(len(relation.domain), seed=99)
        query = EqualityThresholdQuery(q, 0.05)
        expected = {
            m.tid for m in relation.execute(query) if m.tid not in removed
        }
        assert tree.execute(query).tid_set() == expected


class TestPoolManagement:
    def test_pool_must_share_disk(self, tree):
        with pytest.raises(QueryError):
            tree.pool = BufferPool(DiskManager(), capacity=10)

    def test_queries_cost_io_on_cold_pool(self, relation):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        tree.pool.flush_all()
        tree.pool = BufferPool(tree.disk, capacity=100)
        before = tree.disk.stats.snapshot()
        q = relation.uda_of(0)
        tree.execute(EqualityThresholdQuery(q, 0.2))
        assert tree.disk.stats.delta_since(before).reads > 0

    def test_selective_query_reads_fewer_pages_than_sweep(self, relation):
        tree = PDRTree(len(relation.domain))
        tree.build(relation)
        tree.pool.flush_all()
        q = relation.uda_of(0)
        tree.pool = BufferPool(tree.disk, capacity=200)
        before = tree.disk.stats.snapshot()
        tree.execute(EqualityThresholdQuery(q, 0.9))
        selective = tree.disk.stats.delta_since(before).reads
        tree.pool = BufferPool(tree.disk, capacity=200)
        before = tree.disk.stats.snapshot()
        tree.execute(EqualityThresholdQuery(q, 0.0001))
        sweep = tree.disk.stats.delta_since(before).reads
        assert selective < sweep

    def test_unsupported_query_type(self, tree):
        with pytest.raises(QueryError):
            tree.execute("select *")  # type: ignore[arg-type]
