"""Tests for :mod:`repro.pdrtree.compression`."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import QueryError
from repro.pdrtree import BoundaryCodec


class TestValidation:
    def test_fold_must_shrink_domain(self):
        with pytest.raises(QueryError):
            BoundaryCodec(10, fold_size=10)
        with pytest.raises(QueryError):
            BoundaryCodec(10, fold_size=0)

    def test_bits_whitelist(self):
        with pytest.raises(QueryError):
            BoundaryCodec(10, bits=3)
        for bits in (2, 4, 8):
            assert BoundaryCodec(10, bits=bits).bits == bits

    def test_tags_distinguish_configurations(self):
        tags = {
            BoundaryCodec(10).tag,
            BoundaryCodec(10, fold_size=4).tag,
            BoundaryCodec(10, bits=2).tag,
            BoundaryCodec(10, bits=4).tag,
            BoundaryCodec(10, bits=8).tag,
            BoundaryCodec(10, fold_size=4, bits=2).tag,
        }
        assert len(tags) == 6

    def test_describe(self):
        assert BoundaryCodec(10).describe() == "raw"
        assert "fold=4" in BoundaryCodec(10, fold_size=4).describe()
        assert "bits=2" in BoundaryCodec(10, bits=2).describe()


class TestProjection:
    def test_identity_without_fold(self):
        codec = BoundaryCodec(10)
        items = np.array([1, 5])
        values = np.array([0.3, 0.7])
        got_items, got_values = codec.project(items, values)
        assert got_items.tolist() == [1, 5]
        assert got_values.tolist() == pytest.approx([0.3, 0.7])

    def test_fold_takes_class_maximum(self):
        codec = BoundaryCodec(10, fold_size=3)
        # items 1 and 4 both fold to class 1; 5 folds to class 2.
        items = np.array([1, 4, 5])
        values = np.array([0.2, 0.6, 0.1])
        classes, maxima = codec.project(items, values)
        assert classes.tolist() == [1, 2]
        assert maxima.tolist() == pytest.approx([0.6, 0.1])

    def test_query_folds_by_sum(self):
        codec = BoundaryCodec(10, fold_size=3)
        items = np.array([1, 4, 5])
        probs = np.array([0.2, 0.6, 0.1])
        classes, sums = codec.fold_query(items, probs)
        assert classes.tolist() == [1, 2]
        assert sums.tolist() == pytest.approx([0.8, 0.1])

    def test_fold_item(self):
        codec = BoundaryCodec(10, fold_size=3)
        assert codec.fold_item(7) == 1
        assert BoundaryCodec(10).fold_item(7) == 7


class TestQuantization:
    def test_paper_example(self):
        # "a value of 0.62 will be mapped to 0.75" with 2 bits.
        codec = BoundaryCodec(10, bits=2)
        assert codec.quantize_up(np.array([0.62])).tolist() == [0.75]

    def test_exact_levels_preserved(self):
        codec = BoundaryCodec(10, bits=2)
        values = np.array([0.25, 0.5, 0.75, 1.0])
        assert codec.quantize_up(values).tolist() == values.tolist()

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_never_underestimates(self, bits):
        codec = BoundaryCodec(10, bits=bits)
        values = np.linspace(0.001, 1.0, 777)
        quantized = codec.quantize_up(values)
        assert (quantized >= values - 1e-12).all()
        assert (quantized <= 1.0).all()

    def test_unquantized_float32_rounds_up(self):
        codec = BoundaryCodec(10)
        # Values straddling float32 grid points must round toward +inf.
        values = np.array([0.1, 1 / 3, 0.7, 1e-7])
        narrowed = codec.quantize_up(values)
        assert (narrowed >= values).all()


class TestEncodeDecode:
    @pytest.mark.parametrize(
        "fold_size,bits",
        [(None, None), (None, 2), (None, 4), (None, 8), (4, None), (4, 2)],
    )
    def test_round_trip_is_quantization(self, fold_size, bits):
        codec = BoundaryCodec(16, fold_size=fold_size, bits=bits)
        rng = np.random.default_rng(0)
        size = codec.space_size
        items = np.sort(rng.choice(size, size=min(5, size), replace=False))
        values = rng.uniform(0.01, 1.0, size=len(items))
        encoded = codec.encode(items, values)
        assert len(encoded) == codec.encoded_size(len(items))
        got_items, got_values, end = codec.decode(encoded)
        assert end == len(encoded)
        assert got_items.tolist() == items.tolist()
        assert got_values.tolist() == pytest.approx(
            codec.quantize_up(values).tolist()
        )

    def test_encode_decode_idempotent(self):
        # decode(encode(x)) re-encoded must be byte-identical: boundary
        # updates must not drift.
        codec = BoundaryCodec(16, bits=4)
        items = np.array([0, 3, 9])
        values = np.array([0.111, 0.5, 0.987])
        first = codec.encode(items, values)
        got_items, got_values, _ = codec.decode(first)
        second = codec.encode(got_items, got_values)
        assert first == second

    def test_compression_shrinks_encoding(self):
        raw = BoundaryCodec(100)
        packed = BoundaryCodec(100, bits=2)
        assert packed.encoded_size(50) < raw.encoded_size(50)

    def test_empty_boundary(self):
        codec = BoundaryCodec(10)
        encoded = codec.encode(np.empty(0, dtype=np.int64), np.empty(0))
        items, values, _ = codec.decode(encoded)
        assert len(items) == 0
        assert len(values) == 0


@given(
    values=st.lists(st.floats(1e-6, 1.0, allow_nan=False), min_size=1, max_size=30),
    bits=st.sampled_from([None, 2, 4, 8]),
)
def test_overestimation_invariant_property(values, bits):
    """The core soundness property: stored bounds never undershoot."""
    codec = BoundaryCodec(64, bits=bits)
    items = np.arange(len(values))
    array = np.array(values)
    encoded = codec.encode(items, array)
    _, decoded, _ = codec.decode(encoded)
    assert (decoded >= array - 1e-12).all()
