"""PDR-tree answers and simulated reads are identical cache on/off.

Mirrors ``tests/invindex/test_cache_equivalence.py``: the decoded-node
cache is a pure memoization layer, so result sets, scores, total reads,
and the per-tag read breakdown may not move when it is switched on —
including after inserts that bump page versions and split nodes.
"""

import pytest

from repro.core import EqualityThresholdQuery, EqualityTopKQuery
from repro.pdrtree import PDRTree, PDRTreeConfig
from repro.storage import BufferPool

from tests.invindex.conftest import random_query, random_relation


def run_measured(tree, query, decoded_capacity):
    tree.pool = BufferPool(
        tree.disk, capacity=100, decoded_capacity=decoded_capacity
    )
    stats_before = tree.disk.stats.snapshot()
    tags_before = tree.disk.snapshot_tags()
    result = tree.execute(query)
    reads = tree.disk.stats.delta_since(stats_before).reads
    tags_after = tree.disk.snapshot_tags()
    by_tag = {
        tag: tags_after[tag] - tags_before.get(tag, 0)
        for tag in tags_after
        if tags_after[tag] != tags_before.get(tag, 0)
    }
    return [(m.tid, m.score) for m in result], reads, by_tag


def assert_equivalent(tree, query):
    matches_off, reads_off, tags_off = run_measured(tree, query, 0)
    matches_on, reads_on, tags_on = run_measured(tree, query, 400)
    assert matches_on == matches_off
    assert reads_on == reads_off
    assert tags_on == tags_off


@pytest.fixture(scope="module")
def relation():
    return random_relation(300, 15, seed=21)


@pytest.fixture(scope="module")
def tree(relation):
    built = PDRTree(len(relation.domain))
    built.build(relation)
    return built


class TestFreshTree:
    @pytest.mark.parametrize("tau", [0.05, 0.2, 0.6])
    def test_threshold_query(self, relation, tree, tau):
        for seed in range(4):
            q = random_query(len(relation.domain), seed=seed * 19)
            assert_equivalent(tree, EqualityThresholdQuery(q, tau))

    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_top_k_query(self, relation, tree, k):
        q = random_query(len(relation.domain), seed=123)
        assert_equivalent(tree, EqualityTopKQuery(q, k))


@pytest.mark.parametrize(
    "fold_size,bits",
    [(None, 4), (4, None), (4, 2)],
    ids=["bits4", "fold4", "fold4+bits2"],
)
def test_lossy_codecs(relation, fold_size, bits):
    """Discretizing codecs round boundaries on encode; readers must see
    the on-page values whether or not the decode was cached, or pruning
    (and hence reads) would depend on the cache setting."""
    config = PDRTreeConfig(fold_size=fold_size, bits=bits)
    tree = PDRTree(len(relation.domain), config=config)
    tree.build(relation)
    for seed in range(3):
        q = random_query(len(relation.domain), seed=seed * 7)
        assert_equivalent(tree, EqualityThresholdQuery(q, 0.1))
        assert_equivalent(tree, EqualityTopKQuery(q, 10))


@pytest.mark.parametrize(
    "fold_size,bits",
    [(None, None), (4, 2)],
    ids=["lossless", "fold4+bits2"],
)
def test_build_produces_identical_disk_image(relation, fold_size, bits):
    """The decoded cache must not steer build-time decisions either: a
    build with the cache on and a build with it off must write byte-for-
    byte identical trees (same splits, same boundaries)."""
    from repro.storage import DiskManager

    config = PDRTreeConfig(fold_size=fold_size, bits=bits)
    images = []
    for decoded_capacity in (16384, 0):
        disk = DiskManager()
        pool = BufferPool(disk, 4096, decoded_capacity=decoded_capacity)
        tree = PDRTree(len(relation.domain), disk=disk, pool=pool, config=config)
        tree.build(relation)
        extra = random_relation(30, 15, seed=9)
        for tid in range(len(relation), len(relation) + len(extra)):
            tree.insert(tid, extra.uda_of(tid - len(relation)))
        pool.flush_all()
        images.append(
            [bytes(disk.read_page(pid).data) for pid in range(disk.num_pages)]
        )
    assert images[0] == images[1]


def test_after_inserts(relation):
    tree = PDRTree(len(relation.domain))
    tree.build(relation)
    extra = random_relation(60, 15, seed=42)
    for tid in range(len(relation), len(relation) + len(extra)):
        tree.insert(tid, extra.uda_of(tid - len(relation)))
    for seed in range(3):
        q = random_query(len(relation.domain), seed=seed * 11 + 3)
        assert_equivalent(tree, EqualityThresholdQuery(q, 0.05))
        assert_equivalent(tree, EqualityTopKQuery(q, 10))