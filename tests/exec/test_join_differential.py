"""Differential suite: block joins are answer-identical to per-probe joins.

Hypothesis draws thresholds / k values; each join runs as a nested loop
(naive inner), as an index-nested-loop (legacy per-probe), and through
:class:`repro.exec.BlockJoinExecutor` at block sizes 1, 4, and 7.  Every
configuration must reproduce the same pair list — left tid, right tid,
bit-exact score, and order, ties included.  DSTJ is exercised under all
three divergences; one test repeats the comparison with fault injection
enabled and asserts the engine's pin hygiene survives the retry paths.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import joins
from repro.exec import BlockJoinExecutor
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree
from repro.storage import BufferPool
from repro.storage.faults import FaultPlan, fault_plan

from tests.invindex.conftest import random_relation

POOL_SIZE = 100
BLOCK_SIZES = (1, 4, 7)


@pytest.fixture(scope="module")
def dataset():
    right = random_relation(160, 12, seed=83)
    outer = random_relation(36, 12, seed=19)
    index = ProbabilisticInvertedIndex(len(right.domain))
    index.build(right)
    tree = PDRTree(len(right.domain))
    tree.build(right)
    return outer, right, index, tree


def _snap(result):
    return [(p.left_tid, p.right_tid, p.score) for p in result]


def _fresh(executor_index):
    if executor_index is not None:
        executor_index.pool = BufferPool(executor_index.disk, POOL_SIZE)


def _legacy(kind, outer, right, right_index, **kw):
    _fresh(right_index)
    if kind == "petj":
        return joins.petj(outer, right, kw["threshold"], right_index=right_index)
    if kind == "pej_top_k":
        return joins.pej_top_k(outer, right, kw["k"], right_index=right_index)
    return joins.dstj(
        outer,
        right,
        kw["threshold"],
        divergence=kw.get("divergence", "l1"),
        right_index=right_index,
    )


def _blocked(kind, outer, right, right_index, block, **kw):
    _fresh(right_index)
    engine = BlockJoinExecutor(right, right_index, block_size=block)
    if kind == "petj":
        return engine.petj(outer, kw["threshold"])
    if kind == "pej_top_k":
        return engine.pej_top_k(outer, kw["k"])
    return engine.dstj(outer, kw["threshold"], kw.get("divergence", "l1"))


def _assert_all_protocols_agree(kind, outer, right, inners, **kw):
    """Nested loop, per-probe indexed, and every block size agree."""
    baseline = _snap(_legacy(kind, outer, right, None, **kw))
    for inner in inners:
        legacy = _snap(_legacy(kind, outer, right, inner, **kw))
        assert legacy == baseline, f"{kind}: legacy indexed diverges"
        for block in BLOCK_SIZES:
            got = _snap(_blocked(kind, outer, right, inner, block, **kw))
            assert got == baseline, f"{kind}: block={block} diverges"
    for block in BLOCK_SIZES:
        got = _snap(_blocked(kind, outer, right, None, block, **kw))
        assert got == baseline, f"{kind}: naive block={block} diverges"


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(threshold=st.floats(0.05, 0.9))
def test_petj_agreement(dataset, threshold):
    outer, right, index, _ = dataset
    _assert_all_protocols_agree(
        "petj", outer, right, [index], threshold=threshold
    )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(k=st.integers(1, 15))
def test_pej_top_k_agreement(dataset, k):
    outer, right, index, _ = dataset
    _assert_all_protocols_agree("pej_top_k", outer, right, [index], k=k)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    threshold=st.floats(0.0, 1.5),
    divergence=st.sampled_from(["l1", "l2", "kl"]),
)
def test_dstj_agreement(dataset, threshold, divergence):
    outer, right, _, tree = dataset
    # The inverted index rejects similarity probes, so the indexed inner
    # for DSTJ is the PDR-tree.
    _assert_all_protocols_agree(
        "dstj", outer, right, [tree], threshold=threshold, divergence=divergence
    )


def test_agreement_under_faults(dataset):
    """Protocol agreement survives recovered read errors, and the engine's
    pinned prefetch pages are always released even on retry paths."""
    outer, right, index, tree = dataset
    plan = FaultPlan(seed=29, read_error_rate=0.03, bit_rot_rate=0.01)
    with fault_plan(plan):
        _assert_all_protocols_agree(
            "petj", outer, right, [index], threshold=0.2
        )
        _assert_all_protocols_agree("pej_top_k", outer, right, [index], k=6)
        _assert_all_protocols_agree(
            "dstj", outer, right, [tree], threshold=0.7, divergence="l1"
        )
        assert index.pool.pinned_page_ids() == []
        assert tree.pool.pinned_page_ids() == []


def _build_inverted(relation):
    """Module-level so ProcessPoolExecutor workers can pickle it."""
    built = ProbabilisticInvertedIndex(len(relation.domain))
    built.build(relation)
    return built


def test_parallel_join_matches_sequential(dataset):
    """Chunked multi-process execution returns the sequential answer."""
    from repro.exec import parallel_join

    outer, right, index, _ = dataset
    for kind, kw in (
        ("petj", {"threshold": 0.2}),
        ("pej_top_k", {"k": 6}),
        ("dstj", {"threshold": 0.7, "divergence": "l2"}),
    ):
        builder = None if kind == "dstj" else _build_inverted
        expected = _snap(
            _legacy(kind, outer, right, None if kind == "dstj" else index, **kw)
        )
        got = parallel_join(
            kind,
            outer,
            right,
            build_index=builder,
            jobs=3,
            block_size=4,
            pool_size=POOL_SIZE,
            **kw,
        )
        assert _snap(got) == expected, f"parallel {kind} diverges"
