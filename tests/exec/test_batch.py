"""Tests for :mod:`repro.exec.batch` (the batched multi-query executor).

Covers the configuration surface (``REPRO_BATCH`` parsing and the
``batch_override`` scope), workload planning (``touched_items``), the
exactness contract against the per-query loop, the batch-size-1 I/O
identity, pin hygiene on every exit path — normal completion, a
mid-batch exception, and fault-injection retries — and the schema
validity of the ``batch.*`` trace records.
"""

import pytest

from repro.core import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    QueryError,
    SimilarityThresholdQuery,
    UncertainAttribute,
    WindowedEqualityQuery,
)
from repro.exec import BATCH_ENV, BatchExecutor, batch_override, resolve_batch
from repro.exec.batch import touched_items
from repro.invindex import ProbabilisticInvertedIndex
from repro.obs.schema import validate_records
from repro.obs.trace import MemorySink, Tracer, tracing
from repro.pdrtree import PDRTree
from repro.storage import BufferPool
from repro.storage.faults import FaultPlan, fault_plan

from tests.invindex.conftest import random_query, random_relation

POOL_SIZE = 100


@pytest.fixture(scope="module")
def relation():
    return random_relation(300, 14, seed=61)


@pytest.fixture(scope="module")
def index(relation):
    built = ProbabilisticInvertedIndex(len(relation.domain))
    built.build(relation)
    return built


@pytest.fixture(scope="module")
def tree(relation):
    built = PDRTree(len(relation.domain))
    built.build(relation)
    return built


def mixed_workload(domain_size, count, base_seed=0):
    """Alternating threshold / top-k / windowed equality queries."""
    queries = []
    for i in range(count):
        q = random_query(domain_size, seed=base_seed + i)
        if i % 3 == 0:
            queries.append(EqualityThresholdQuery(q, 0.05))
        elif i % 3 == 1:
            queries.append(EqualityTopKQuery(q, 1 + i % 7))
        else:
            queries.append(WindowedEqualityQuery(q, 0.05, 1 + i % 2))
    return queries


def per_query_protocol(index, queries, strategy=None):
    """The paper's baseline: a fresh measured pool per query."""
    results = []
    for query in queries:
        index.pool = BufferPool(index.disk, POOL_SIZE)
        if strategy is not None:
            results.append(index.execute(query, strategy=strategy))
        else:
            results.append(index.execute(query))
    return results


def answer_sets(results):
    return [[(m.tid, m.score) for m in result] for result in results]


class TestResolveBatch:
    @pytest.mark.parametrize("raw", ["", "off", "default", "  OFF  "])
    def test_unset_spellings_mean_one(self, monkeypatch, raw):
        monkeypatch.setenv(BATCH_ENV, raw)
        assert resolve_batch() == 1

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "16")
        assert resolve_batch() == 16

    @pytest.mark.parametrize("raw", ["sixteen", "0", "-3", "2.5"])
    def test_invalid_env_raises(self, monkeypatch, raw):
        monkeypatch.setenv(BATCH_ENV, raw)
        with pytest.raises(QueryError):
            resolve_batch()

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "16")
        assert resolve_batch(4) == 4

    def test_explicit_arg_validated(self):
        with pytest.raises(QueryError):
            resolve_batch(0)

    def test_override_beats_env_and_restores(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "16")
        with batch_override(8):
            assert resolve_batch() == 8
        assert resolve_batch() == 16

    def test_override_validated(self):
        with pytest.raises(QueryError):
            with batch_override(0):
                pass


class TestTouchedItems:
    def test_equality_family_uses_query_support(self):
        q = UncertainAttribute.from_pairs([(2, 0.5), (7, 0.5)])
        assert touched_items(EqualityQuery(q)) == [2, 7]
        assert touched_items(EqualityThresholdQuery(q, 0.1)) == [2, 7]
        assert touched_items(EqualityTopKQuery(q, 3)) == [2, 7]
        assert touched_items(SimilarityThresholdQuery(q, 0.5)) == [2, 7]

    def test_windowed_expands_with_domain_clamp(self):
        q = UncertainAttribute.from_pairs([(0, 1.0)])
        query = WindowedEqualityQuery(q, 0.1, 2)
        # Window [-2, 2] clamps at the domain edges.
        assert touched_items(query, 4) == [0, 1, 2]
        assert touched_items(query, 2) == [0, 1]

    def test_unsupported_query_raises(self):
        with pytest.raises(QueryError):
            touched_items(object())


class TestExactness:
    @pytest.mark.parametrize("batch_size", [1, 3, 7, 32])
    def test_inverted_index_matches_per_query(
        self, relation, index, batch_size
    ):
        queries = mixed_workload(len(relation.domain), 20, base_seed=100)
        expected = answer_sets(
            per_query_protocol(index, queries, "highest_prob_first")
        )
        executor = BatchExecutor(
            index,
            strategy="highest_prob_first",
            pool_size=POOL_SIZE,
            batch_size=batch_size,
        )
        assert answer_sets(executor.run(queries)) == expected

    @pytest.mark.parametrize("strategy", ["row_pruning", "no_random_access"])
    def test_other_strategies_match_per_query(self, relation, index, strategy):
        queries = mixed_workload(len(relation.domain), 12, base_seed=300)
        expected = answer_sets(per_query_protocol(index, queries, strategy))
        executor = BatchExecutor(
            index, strategy=strategy, pool_size=POOL_SIZE, batch_size=4
        )
        assert answer_sets(executor.run(queries)) == expected

    def test_pdrtree_dstq_batching(self, relation, tree):
        queries = []
        for i in range(9):
            q = random_query(len(relation.domain), seed=500 + i)
            if i % 2:
                queries.append(SimilarityThresholdQuery(q, 2.5, "l1"))
            else:
                queries.append(EqualityThresholdQuery(q, 0.05))
        expected = answer_sets(per_query_protocol(tree, queries))
        executor = BatchExecutor(tree, pool_size=POOL_SIZE, batch_size=3)
        assert answer_sets(executor.run(queries)) == expected

    def test_results_align_with_input_order(self, relation, index):
        # The planner reorders execution within a batch; results must not.
        queries = mixed_workload(len(relation.domain), 10, base_seed=700)
        expected = answer_sets(
            per_query_protocol(index, queries, "highest_prob_first")
        )
        executor = BatchExecutor(
            index,
            strategy="highest_prob_first",
            pool_size=POOL_SIZE,
            batch_size=10,
        )
        got = answer_sets(executor.run(queries))
        assert got == expected  # position i answers query i, always


class TestIOAccounting:
    def test_batch_one_reads_identical_to_per_query(self, relation, index):
        queries = mixed_workload(len(relation.domain), 15, base_seed=900)
        before = index.disk.stats.snapshot()
        per_query_protocol(index, queries, "highest_prob_first")
        baseline = index.disk.stats.delta_since(before).reads

        executor = BatchExecutor(
            index,
            strategy="highest_prob_first",
            pool_size=POOL_SIZE,
            batch_size=1,
        )
        before = index.disk.stats.snapshot()
        executor.run(queries)
        assert index.disk.stats.delta_since(before).reads == baseline

    @pytest.mark.parametrize("batch_size", [4, 15])
    def test_batching_never_reads_more(self, relation, index, batch_size):
        queries = mixed_workload(len(relation.domain), 15, base_seed=900)
        before = index.disk.stats.snapshot()
        per_query_protocol(index, queries, "highest_prob_first")
        baseline = index.disk.stats.delta_since(before).reads

        executor = BatchExecutor(
            index,
            strategy="highest_prob_first",
            pool_size=POOL_SIZE,
            batch_size=batch_size,
        )
        before = index.disk.stats.snapshot()
        executor.run(queries)
        assert index.disk.stats.delta_since(before).reads <= baseline


class TestPinHygiene:
    def test_pins_released_after_run(self, relation, index):
        queries = mixed_workload(len(relation.domain), 12, base_seed=1100)
        executor = BatchExecutor(
            index,
            strategy="highest_prob_first",
            pool_size=POOL_SIZE,
            batch_size=6,
        )
        executor.run(queries)
        assert index.pool.pinned_page_ids() == []

    def test_pins_released_on_mid_batch_exception(self, relation, index):
        # A sketch-mode similarity query against a sketch-less index
        # makes the inverted index raise *after* the shared-list
        # prefetch has pinned pages; the finally block must still
        # release every pin.
        from repro.sketch import sketch_override

        shared = random_query(len(relation.domain), seed=1300)
        queries = [
            EqualityThresholdQuery(shared, 0.05),
            SimilarityThresholdQuery(shared, 0.5),
            EqualityThresholdQuery(shared, 0.1),
        ]
        executor = BatchExecutor(
            index,
            strategy="highest_prob_first",
            pool_size=POOL_SIZE,
            batch_size=3,
        )
        with sketch_override("exact"), pytest.raises(QueryError):
            executor.run(queries)
        assert index.pool.pinned_page_ids() == []

    def test_pins_released_under_fault_retries(self, relation, index):
        queries = mixed_workload(len(relation.domain), 12, base_seed=1500)
        executor = BatchExecutor(
            index,
            strategy="highest_prob_first",
            pool_size=POOL_SIZE,
            batch_size=4,
        )
        plan = FaultPlan(seed=11, read_error_rate=0.05, bit_rot_rate=0.02)
        with fault_plan(plan):
            executor.run(queries)
        assert index.pool.pinned_page_ids() == []


class TestTraceRecords:
    def test_batch_records_validate_and_order(self, relation, index):
        queries = mixed_workload(len(relation.domain), 8, base_seed=1700)
        executor = BatchExecutor(
            index,
            strategy="highest_prob_first",
            pool_size=POOL_SIZE,
            batch_size=4,
        )
        sink = MemorySink()
        with tracing(Tracer(sink)):
            executor.run(queries)
        validate_records(sink.records)

        begins = sink.of_kind("batch.begin")
        ends = sink.of_kind("batch.end")
        assert len(begins) == len(ends) == 2  # 8 queries / batch of 4
        assert all(r["size"] == 4 for r in begins)
        assert all(r["structure"] == "inv-index" for r in begins)
        assert all(r["strategy"] == "highest_prob_first" for r in begins)

        per_batch = sink.of_kind("batch.query")
        assert len(per_batch) == 8
        # Every in-batch position is announced exactly once per batch.
        assert sorted(r["position"] for r in per_batch) == sorted([0, 1, 2, 3] * 2)

        for record in sink.of_kind("batch.shared_page"):
            assert record["queries"] >= 2

    def test_pdrtree_structure_label(self, relation, tree):
        queries = [
            EqualityThresholdQuery(
                random_query(len(relation.domain), seed=1900 + i), 0.05
            )
            for i in range(4)
        ]
        executor = BatchExecutor(tree, pool_size=POOL_SIZE, batch_size=2)
        sink = MemorySink()
        with tracing(Tracer(sink)):
            executor.run(queries)
        validate_records(sink.records)
        begins = sink.of_kind("batch.begin")
        assert begins and all(r["structure"] == "pdr-tree" for r in begins)
        assert all("strategy" not in r for r in begins)


class TestConstruction:
    def test_strategy_rejected_for_pdrtree(self, tree):
        with pytest.raises(QueryError):
            BatchExecutor(tree, strategy="highest_prob_first")

    def test_negative_pin_reserve_rejected(self, index):
        with pytest.raises(QueryError):
            BatchExecutor(index, pin_reserve=-1)

    def test_batch_size_from_env(self, index, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "9")
        assert BatchExecutor(index).batch_size == 9
