"""Unit tests for the block rank-join engine (`repro.exec.join`)."""

import pytest

from repro.core import QueryError, joins
from repro.exec import (
    JOIN_BLOCK_ENV,
    BlockJoinExecutor,
    block_join,
    join_block_override,
    resolve_join_block,
)
from repro.invindex import ProbabilisticInvertedIndex
from repro.obs.trace import MemorySink, Tracer, tracing
from repro.storage import BufferPool

from tests.invindex.conftest import random_relation

POOL_SIZE = 100


@pytest.fixture(scope="module")
def dataset():
    right = random_relation(150, 10, seed=7)
    outer = random_relation(32, 10, seed=41)
    index = ProbabilisticInvertedIndex(len(right.domain))
    index.build(right)
    return outer, right, index


def _snap(result):
    return [(p.left_tid, p.right_tid, p.score) for p in result]


class TestResolveJoinBlock:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(JOIN_BLOCK_ENV, raising=False)
        assert resolve_join_block() == 1

    @pytest.mark.parametrize("raw", ["", "off", "default", " OFF "])
    def test_unset_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(JOIN_BLOCK_ENV, raw)
        assert resolve_join_block() == 1

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv(JOIN_BLOCK_ENV, "16")
        assert resolve_join_block() == 16

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOIN_BLOCK_ENV, "16")
        assert resolve_join_block(4) == 4

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOIN_BLOCK_ENV, "16")
        with join_block_override(8):
            assert resolve_join_block() == 8
        assert resolve_join_block() == 16

    @pytest.mark.parametrize("raw", ["0", "-3", "2.5", "many"])
    def test_bad_env_values(self, monkeypatch, raw):
        monkeypatch.setenv(JOIN_BLOCK_ENV, raw)
        with pytest.raises(QueryError):
            resolve_join_block()

    def test_bad_arguments(self):
        with pytest.raises(QueryError):
            resolve_join_block(0)
        with pytest.raises(QueryError):
            with join_block_override(0):
                pass


class TestConstruction:
    def test_strategy_requires_inverted_inner(self, dataset):
        outer, right, index = dataset
        BlockJoinExecutor(right, index, strategy="row_pruning")
        with pytest.raises(QueryError):
            BlockJoinExecutor(right, strategy="row_pruning")

    def test_invalid_pool_and_reserve(self, dataset):
        _, right, _ = dataset
        with pytest.raises(QueryError):
            BlockJoinExecutor(right, pool_size=0)
        with pytest.raises(QueryError):
            BlockJoinExecutor(right, pin_reserve=-1)

    def test_threshold_and_k_validation(self, dataset):
        outer, right, _ = dataset
        engine = BlockJoinExecutor(right, block_size=4)
        with pytest.raises(QueryError):
            engine.petj(outer, 0.0)
        with pytest.raises(QueryError):
            engine.pej_top_k(outer, 0)
        with pytest.raises(QueryError):
            engine.dstj(outer, -0.5)
        with pytest.raises(QueryError):
            block_join("cross", outer, right, threshold=0.5)

    def test_adaptive_defaults_track_block_size(self, dataset):
        _, right, _ = dataset
        assert BlockJoinExecutor(right, block_size=1).adaptive_tau is False
        assert BlockJoinExecutor(right, block_size=4).adaptive_tau is True
        assert (
            BlockJoinExecutor(right, block_size=4, adaptive_tau=False).adaptive_tau
            is False
        )


class TestProtocolIdentity:
    def _legacy(self, kind, outer, right, index, **kw):
        index.pool = BufferPool(index.disk, POOL_SIZE)
        before = index.disk.stats.snapshot()
        if kind == "petj":
            result = joins.petj(outer, right, kw["threshold"], right_index=index)
        else:
            result = joins.pej_top_k(outer, right, kw["k"], right_index=index)
        return result, index.disk.stats.delta_since(before).reads

    def _engine(self, kind, outer, right, index, block, **kw):
        index.pool = BufferPool(index.disk, POOL_SIZE)
        engine = BlockJoinExecutor(right, index, block_size=block)
        before = index.disk.stats.snapshot()
        if kind == "petj":
            result = engine.petj(outer, kw["threshold"])
        else:
            result = engine.pej_top_k(outer, kw["k"])
        return result, index.disk.stats.delta_since(before).reads

    def test_block_one_reproduces_per_probe_reads_exactly(self, dataset):
        outer, right, index = dataset
        for kind, kw in (("petj", {"threshold": 0.25}), ("pej_top_k", {"k": 5})):
            legacy, legacy_reads = self._legacy(kind, outer, right, index, **kw)
            engine, engine_reads = self._engine(
                kind, outer, right, index, 1, **kw
            )
            assert _snap(engine) == _snap(legacy)
            assert engine.stats == legacy.stats
            assert engine.num_probes == legacy.num_probes
            assert engine_reads == legacy_reads

    def test_blocks_never_read_more_pages(self, dataset):
        outer, right, index = dataset
        for kind, kw in (("petj", {"threshold": 0.25}), ("pej_top_k", {"k": 5})):
            _, baseline_reads = self._legacy(kind, outer, right, index, **kw)
            for block in (4, 8, 32):
                result, reads = self._engine(
                    kind, outer, right, index, block, **kw
                )
                assert reads <= baseline_reads, (kind, block)

    def test_pool_size_none_uses_installed_pool(self, dataset):
        """pool_size=None probes whatever pool the caller installed —
        the legacy join protocol — so a warm pool is *not* reset."""
        outer, right, index = dataset
        index.pool = BufferPool(index.disk, POOL_SIZE)
        engine = BlockJoinExecutor(right, index, block_size=4)
        engine.petj(outer, 0.3)
        warm = index.pool
        engine.petj(outer, 0.3)
        assert index.pool is warm

    def test_pool_size_installs_fresh_pool_per_block(self, dataset):
        outer, right, index = dataset
        index.pool = BufferPool(index.disk, POOL_SIZE)
        original = index.pool
        engine = BlockJoinExecutor(
            right, index, block_size=4, pool_size=POOL_SIZE
        )
        engine.petj(outer, 0.3)
        assert index.pool is not original


class TestAdaptiveTau:
    def test_tau_raised_records_emitted(self, dataset):
        outer, right, index = dataset
        index.pool = BufferPool(index.disk, POOL_SIZE)
        engine = BlockJoinExecutor(right, index, block_size=8)
        sink = MemorySink()
        with tracing(Tracer(sink)):
            engine.pej_top_k(outer, 4)
        raised = sink.of_kind("join.tau_raised")
        assert raised, "adaptive top-k emitted no raised-bound records"
        # Floors are k-th pair scores: positive, and never decreasing.
        taus = [record["tau"] for record in raised]
        assert all(tau > 0.0 for tau in taus)
        assert taus == sorted(taus)
        # The elevated floor reaches the probes as their stopping bound.
        begins = sink.of_kind("strategy.begin")
        assert any(record.get("tau_floor", 0.0) > 0.0 for record in begins)

    def test_adaptive_never_changes_answers(self, dataset):
        outer, right, index = dataset
        for k in (1, 3, 9):
            index.pool = BufferPool(index.disk, POOL_SIZE)
            fixed = BlockJoinExecutor(
                right, index, block_size=8, adaptive_tau=False
            ).pej_top_k(outer, k)
            index.pool = BufferPool(index.disk, POOL_SIZE)
            adaptive = BlockJoinExecutor(
                right, index, block_size=8, adaptive_tau=True
            ).pej_top_k(outer, k)
            assert _snap(adaptive) == _snap(fixed)

    def test_adaptive_never_reads_more_posting_pages(self, dataset):
        outer, right, index = dataset

        def posting_reads(adaptive):
            index.pool = BufferPool(index.disk, POOL_SIZE)
            engine = BlockJoinExecutor(
                right,
                index,
                block_size=8,
                pool_size=POOL_SIZE,
                adaptive_tau=adaptive,
            )
            before = dict(index.disk.snapshot_tags())
            engine.pej_top_k(outer, 4)
            after = index.disk.snapshot_tags()
            return after.get("postings", 0) - before.get("postings", 0)

        assert posting_reads(True) <= posting_reads(False)


class TestBlockTracing:
    def test_blocks_are_bracketed(self, dataset):
        outer, right, index = dataset
        index.pool = BufferPool(index.disk, POOL_SIZE)
        engine = BlockJoinExecutor(right, index, block_size=10)
        sink = MemorySink()
        with tracing(Tracer(sink)):
            engine.petj(outer, 0.3)
        begins = sink.of_kind("join.block_begin")
        ends = sink.of_kind("join.block_end")
        expected_blocks = -(-len(outer) // 10)
        assert len(begins) == len(ends) == expected_blocks
        assert [record["block"] for record in begins] == list(
            range(expected_blocks)
        )
        assert all(record["mode"] == "shared-scan" for record in begins[:-1])
        sizes = [record["size"] for record in begins]
        assert sum(sizes) == len(outer)
