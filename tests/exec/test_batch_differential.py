"""Differential suite: batched execution is answer-identical to per-query.

Hypothesis generates mixed workloads; each runs once under the paper's
per-query protocol (fresh pool per query) and once per batch size.  Every
batch size must reproduce the per-query answer sets, scores (exact float
equality), and stop reasons; batch size 1 must additionally reproduce the
counted physical page reads *exactly*, because it degenerates to the
per-query protocol by construction.  One test repeats the comparison with
fault injection enabled.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    EqualityThresholdQuery,
    EqualityTopKQuery,
    WindowedEqualityQuery,
)
from repro.exec import BatchExecutor
from repro.invindex import ProbabilisticInvertedIndex
from repro.storage import BufferPool
from repro.storage.faults import FaultPlan, fault_plan

from tests.invindex.conftest import random_query, random_relation

POOL_SIZE = 100
BATCH_SIZES = (1, 3, 7)
STRATEGY = "highest_prob_first"


@pytest.fixture(scope="module")
def dataset():
    relation = random_relation(250, 12, seed=83)
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    return relation, index


def _workload(domain_size, base_seed, count):
    queries = []
    for i in range(count):
        q = random_query(domain_size, seed=base_seed + i)
        if i % 3 == 0:
            queries.append(EqualityThresholdQuery(q, 0.01 + (i % 5) * 0.04))
        elif i % 3 == 1:
            queries.append(EqualityTopKQuery(q, 1 + i % 9))
        else:
            queries.append(WindowedEqualityQuery(q, 0.05, 1 + i % 2))
    return queries


def _snapshot(results):
    """Everything the protocols must agree on, per query."""
    return [
        ([(m.tid, m.score) for m in result], result.stats.stop_reason)
        for result in results
    ]


def _per_query(index, queries):
    results = []
    before = index.disk.stats.snapshot()
    for query in queries:
        index.pool = BufferPool(index.disk, POOL_SIZE)
        results.append(index.execute(query, strategy=STRATEGY))
    reads = index.disk.stats.delta_since(before).reads
    return _snapshot(results), reads


def _batched(index, queries, batch_size):
    executor = BatchExecutor(
        index,
        strategy=STRATEGY,
        pool_size=POOL_SIZE,
        batch_size=batch_size,
    )
    before = index.disk.stats.snapshot()
    results = executor.run(queries)
    reads = index.disk.stats.delta_since(before).reads
    return _snapshot(results), reads


def _assert_protocols_agree(index, queries):
    baseline, baseline_reads = _per_query(index, queries)
    for batch_size in BATCH_SIZES:
        batched, batched_reads = _batched(index, queries, batch_size)
        assert batched == baseline, f"batch={batch_size}: answers diverge"
        if batch_size == 1:
            assert batched_reads == baseline_reads, (
                "batch size 1 must match per-query page reads exactly: "
                f"{batched_reads} != {baseline_reads}"
            )
        else:
            assert batched_reads <= baseline_reads, (
                f"batch={batch_size} read more pages than per-query"
            )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    base_seed=st.integers(0, 10_000),
    count=st.integers(2, 14),
)
def test_batched_matches_per_query(dataset, base_seed, count):
    relation, index = dataset
    queries = _workload(len(relation.domain), base_seed, count)
    _assert_protocols_agree(index, queries)


def test_batched_matches_per_query_under_faults(dataset):
    """The agreement must survive the fault layer's recovered read errors."""
    relation, index = dataset
    plan = FaultPlan(seed=29, read_error_rate=0.03, bit_rot_rate=0.01)
    with fault_plan(plan):
        for base_seed in (3, 71):
            queries = _workload(len(relation.domain), base_seed, 10)
            _assert_protocols_agree(index, queries)
