"""Tests for :mod:`repro.exec.serving` (the measure/serve protocol split).

The load-bearing contracts: serve-mode answers are byte-identical to
measurement-mode answers; warm per-request posting reads never exceed
the cold (fresh-pool) reads for the same query; measure mode reproduces
:func:`repro.bench.harness.measure_query` exactly; coalesced batches
demultiplex in input order; and the warm pool quiesces clean (no
leaked pins) after any workload.
"""

from contextlib import contextmanager

import pytest

from repro.bench.harness import IndexUnderTest, measure_query
from repro.core import QueryError
from repro.exec import DEFAULT_SERVE_POOL_SIZE, MODES, ServingExecutor
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree

from tests.exec.test_batch import POOL_SIZE, mixed_workload
from tests.invindex.conftest import random_relation


@pytest.fixture(scope="module")
def relation():
    return random_relation(300, 14, seed=61)


@pytest.fixture(scope="module")
def index(relation):
    built = ProbabilisticInvertedIndex(len(relation.domain))
    built.build(relation)
    return built


@pytest.fixture(scope="module")
def tree(relation):
    built = PDRTree(len(relation.domain))
    built.build(relation)
    return built


def answers(served):
    return [[(m.tid, m.score) for m in s.result.matches] for s in served]


def test_mode_is_validated(index):
    with pytest.raises(QueryError, match="mode"):
        ServingExecutor(index, mode="burst")
    assert MODES == ("measure", "serve")


def test_pool_size_is_validated(index):
    with pytest.raises(QueryError, match="pool_size"):
        ServingExecutor(index, pool_size=0)


def test_measure_mode_has_no_shared_pool(index):
    executor = ServingExecutor(index, mode="measure")
    assert executor.pool is None
    assert executor.pool_size == POOL_SIZE


def test_serve_mode_defaults_to_large_pool(index):
    executor = ServingExecutor(index, mode="serve")
    assert executor.pool is not None
    assert executor.pool.capacity == DEFAULT_SERVE_POOL_SIZE
    assert index.pool is executor.pool


def test_measure_mode_matches_harness(index, relation):
    """Measure mode is the paper protocol: identical reads and answers."""
    queries = mixed_workload(len(relation.domain), 12, base_seed=7)
    under_test = IndexUnderTest("inverted", index)
    executor = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)
    for query in queries:
        baseline = measure_query(under_test, query, POOL_SIZE)
        served = executor.execute(query)
        assert served.mode == "measure"
        assert served.reads == baseline.reads
        assert served.reads_by_tag == baseline.reads_by_tag
        assert len(served) == baseline.result_size


def test_serve_answers_identical_to_measure(index, relation):
    queries = mixed_workload(len(relation.domain), 20, base_seed=3)
    measure = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)
    expected = answers([measure.execute(q) for q in queries])
    serve = ServingExecutor(index, mode="serve")
    got = answers([serve.execute(q) for q in queries])
    assert got == expected
    serve.check_quiesced()


def test_warm_posting_reads_never_exceed_cold(index, relation):
    """The per-request read bound the benchmark asserts, in miniature."""
    queries = mixed_workload(len(relation.domain), 20, base_seed=11)
    measure = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)
    cold = [measure.execute(q).reads for q in queries]
    serve = ServingExecutor(index, mode="serve")
    warm = [serve.execute(q).reads for q in queries]
    for position, (w, c) in enumerate(zip(warm, cold)):
        assert w <= c, f"query {position}: warm {w} > cold {c}"
    # A repeat pass over the same workload is fully resident.
    rewarm = [serve.execute(q).reads for q in queries]
    assert sum(rewarm) == 0
    assert serve.hit_ratio() > 0.5


def test_coalesced_batch_matches_per_query(index, relation):
    queries = mixed_workload(len(relation.domain), 15, base_seed=23)
    measure = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)
    expected = answers([measure.execute(q) for q in queries])
    serve = ServingExecutor(index, mode="serve")
    served = serve.execute_batch(queries)
    assert answers(served) == expected
    assert [s.coalesced for s in served] == [len(queries)] * len(queries)
    total_attributed = sum(s.reads for s in served)
    cold_total = sum(measure.execute(q).reads for q in queries)
    assert total_attributed <= cold_total
    serve.check_quiesced()


def test_measure_mode_batch_degenerates_to_per_query(index, relation):
    queries = mixed_workload(len(relation.domain), 6, base_seed=29)
    measure = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)
    served = measure.execute_batch(queries)
    assert [s.coalesced for s in served] == [1] * len(queries)
    assert [s.mode for s in served] == ["measure"] * len(queries)


def test_measure_mode_reads_are_repeatable(index, relation):
    """A fresh pool per query means repeats cost exactly the same."""
    queries = mixed_workload(len(relation.domain), 6, base_seed=31)
    executor = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)
    first = [executor.execute(q).reads for q in queries]
    second = [executor.execute(q).reads for q in queries]
    assert first == second


def test_serve_reattaches_pool_after_foreign_swap(index, relation):
    """A measurement harness borrowing the index cannot break serving."""
    queries = mixed_workload(len(relation.domain), 4, base_seed=37)
    serve = ServingExecutor(index, mode="serve")
    for q in queries:
        serve.execute(q)
    warm_reads = serve.execute(queries[0]).reads
    assert warm_reads == 0
    # Borrow the index for a measurement (installs a fresh pool)...
    measure_query(IndexUnderTest("inverted", index), queries[0], POOL_SIZE)
    assert index.pool is not serve.pool
    # ...and serving re-attaches its warm pool on the next request.
    assert serve.execute(queries[0]).reads == 0
    assert index.pool is serve.pool


def test_reset_window_preserves_warmth(index, relation):
    queries = mixed_workload(len(relation.domain), 8, base_seed=41)
    serve = ServingExecutor(index, mode="serve")
    for q in queries:
        serve.execute(q)
    serve.reset_window()
    assert serve.pool.hits == 0 and serve.pool.misses == 0
    # Warmth survived the counter reset: repeats are still free.
    assert all(serve.execute(q).reads == 0 for q in queries)
    assert serve.hit_ratio() == 1.0


def test_tuple_cache_invalidated_by_mutation(relation):
    """An insert between requests never serves stale decoded tuples."""
    import numpy as np

    from repro.core import EqualityThresholdQuery, UncertainAttribute

    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    query = EqualityThresholdQuery(
        UncertainAttribute(np.array([0, 1]), np.array([0.5, 0.5])), 0.01
    )
    serve = ServingExecutor(index, mode="serve")
    before = serve.execute(query)
    assert serve.tuple_cache, "verification should have populated the cache"
    new_tid = max(relation.tids()) + 1
    index.insert(
        new_tid,
        UncertainAttribute(np.array([0, 1]), np.array([0.5, 0.5])),
    )
    after = serve.execute(query)
    fresh = ServingExecutor(index, mode="measure", pool_size=POOL_SIZE)
    expected = fresh.execute(query)
    assert answers([after]) == answers([expected])
    assert new_tid in after.result.tid_set()
    assert new_tid not in before.result.tid_set()


class _StamplessIndex:
    """A shared-scan index with no ``mutations`` stamp.

    Minimal surface for :class:`ServingExecutor`: a disk, a pool, a
    ``shared_scan`` memo scope, and an ``execute`` that decodes its one
    "tuple" through the memo — so a stale memo is directly observable as
    a stale answer.
    """

    def __init__(self):
        from repro.storage import BufferPool, DiskManager

        self.disk = DiskManager()
        self.pool = BufferPool(self.disk, 4)
        self.value = 1.0
        self._memo = None

    @contextmanager
    def shared_scan(self, memo):
        self._memo = memo
        try:
            yield
        finally:
            self._memo = None

    def execute(self, query):
        from repro.core.results import Match, QueryResult

        memo = self._memo if self._memo is not None else {}
        if "score" not in memo:
            memo["score"] = self.value
        return QueryResult([Match(tid=0, score=memo["score"])])


def test_stampless_index_bypasses_cross_request_cache():
    """Regression: no mutation stamp means no cross-request tuple cache.

    Before the fix, ``getattr(index, "mutations", None)`` stamped such an
    index with the constant ``None``; the staleness check then passed
    vacuously forever and the first request's decodes were served to
    every later request, however stale.
    """
    stampless = _StamplessIndex()
    serve = ServingExecutor(stampless, mode="serve")
    # No stamp to validate against -> no cross-request cache at all.
    assert serve.tuple_cache is None
    first = serve.execute(None)
    assert [m.score for m in first.result.matches] == [1.0]
    stampless.value = 2.0  # mutate without any stamp to announce it
    second = serve.execute(None)
    assert [m.score for m in second.result.matches] == [2.0]


def test_stampless_index_still_gets_per_request_memo():
    """Within one coalesced request a stamp-less index still memoizes."""
    stampless = _StamplessIndex()
    serve = ServingExecutor(stampless, mode="serve")
    with serve._decode_scope():
        stampless.execute(None)
        memo = stampless._memo
        assert memo == {"score": 1.0}
    with serve._decode_scope():
        assert stampless._memo == {}  # fresh memo, not the last request's


def test_measurement_unaffected_by_live_serving_executor(index, relation):
    """A serve executor's caches never leak into a measurement run."""
    queries = mixed_workload(len(relation.domain), 4, base_seed=53)
    under_test = IndexUnderTest("inverted", index)
    baseline = [measure_query(under_test, q, POOL_SIZE) for q in queries]
    serve = ServingExecutor(index, mode="serve")
    for q in queries:
        serve.execute(q)
    # The serving executor is alive and warm; measurement still pays
    # full freight because the tuple cache detaches between requests.
    assert index._tuple_memo is None
    again = [measure_query(under_test, q, POOL_SIZE) for q in queries]
    assert [m.reads for m in again] == [m.reads for m in baseline]
    assert [m.reads_by_tag for m in again] == [
        m.reads_by_tag for m in baseline
    ]


def test_pdr_tree_serves_warm(tree, relation):
    queries = mixed_workload(len(relation.domain), 10, base_seed=43)
    measure = ServingExecutor(tree, mode="measure", pool_size=POOL_SIZE)
    expected = answers([measure.execute(q) for q in queries])
    cold = [measure.execute(q).reads for q in queries]
    serve = ServingExecutor(tree, mode="serve")
    served = [serve.execute(q) for q in queries]
    assert answers(served) == expected
    assert all(s.reads <= c for s, c in zip(served, cold))
    serve.check_quiesced()


def test_strategy_pairing_validated_up_front(tree):
    with pytest.raises(QueryError):
        ServingExecutor(tree, strategy="highest_prob_first")


class TestGenerationalTupleCache:
    """Generation-segmented eviction (the epoch-clear regression)."""

    def make(self, capacity=8):
        from repro.exec import GenerationalTupleCache

        return GenerationalTupleCache(capacity)

    def test_capacity_is_validated(self):
        with pytest.raises(QueryError):
            self.make(capacity=1)

    def test_dict_surface(self):
        cache = self.make()
        cache["a"] = 1
        assert cache.get("a") == 1
        assert cache.get("zzz", "fallback") == "fallback"
        assert "a" in cache and len(cache) == 1
        cache.clear()
        assert "a" not in cache and len(cache) == 0

    def test_residency_stays_bounded(self):
        cache = self.make(capacity=8)
        for i in range(1000):
            cache[i] = i
        assert len(cache) <= 8

    def test_hot_entry_survives_epoch_boundaries(self):
        """The regression: a key touched every generation is never evicted."""
        cache = self.make(capacity=8)
        cache["hot"] = "payload"
        for i in range(100):  # 25x the capacity: many rotations
            cache[i] = i
            assert cache.get("hot") == "payload", f"evicted after {i} inserts"

    def test_untouched_entries_age_out(self):
        cache = self.make(capacity=8)
        cache["cold"] = 1
        for i in range(8):  # two full generations without a touch
            cache[i] = i
        assert cache.get("cold") is None


def test_warm_hit_rate_survives_epoch_boundary(relation):
    """Regression: crossing the cache's entry cap used to clear it whole,

    so the request after the boundary re-decoded every hot tuple.  With
    generational eviction the hot working set stays resident across the
    boundary."""
    import numpy as np

    from repro.core import EqualityThresholdQuery, UncertainAttribute

    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    hot_query = EqualityThresholdQuery(
        UncertainAttribute(np.array([0, 1]), np.array([0.5, 0.5])), 0.01
    )
    serve = ServingExecutor(index, mode="serve", tuple_cache_entries=16)
    serve.execute(hot_query)
    hot_tids = {
        tid for tid in serve.tuple_cache._current  # the hot working set
    }
    assert hot_tids, "hot query should have decoded tuples into the cache"
    # Drive enough distinct cold queries to cross the cap repeatedly
    # while re-touching the hot query each round.
    for seed in range(12):
        for q in mixed_workload(len(relation.domain), 3, base_seed=100 + seed):
            serve.execute(q)
        serve.execute(hot_query)
        resident = sum(1 for tid in hot_tids if tid in serve.tuple_cache)
        assert resident == len(hot_tids), (
            f"hot set partially evicted after round {seed}: "
            f"{resident}/{len(hot_tids)} resident"
        )
