"""The public API surface: exports exist, are documented, and cohere."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.storage",
    "repro.btree",
    "repro.invindex",
    "repro.pdrtree",
    "repro.datagen",
    "repro.bench",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports_and_is_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version():
    assert repro.__version__


@pytest.mark.parametrize(
    "symbol",
    [
        "CategoricalDomain",
        "UncertainAttribute",
        "UncertainRelation",
        "EqualityThresholdQuery",
        "EqualityTopKQuery",
        "petj",
        "pej_top_k",
        "dstj",
    ],
)
def test_headline_symbols_at_top_level(symbol):
    assert hasattr(repro, symbol)


def test_public_classes_are_documented():
    from repro.invindex import ProbabilisticInvertedIndex
    from repro.pdrtree import PDRTree

    for cls in (
        repro.UncertainAttribute,
        repro.UncertainRelation,
        ProbabilisticInvertedIndex,
        PDRTree,
    ):
        assert cls.__doc__
        public_methods = [
            attr
            for attr in vars(cls).values()
            if callable(attr) and not attr.__name__.startswith("_")
        ]
        for method in public_methods:
            assert method.__doc__, f"{cls.__name__}.{method.__name__} undocumented"
