"""Windowed equality queries: descriptor, expansion, and all executors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CategoricalDomain,
    QueryError,
    QueryVector,
    UncertainAttribute,
    UncertainRelation,
    WindowedEqualityQuery,
)
from repro.invindex import STRATEGIES, ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree

from tests.core.test_uda_properties import udas
from tests.invindex.test_strategies_properties import relations


class TestQueryVector:
    def test_mass_may_exceed_one(self):
        vector = QueryVector(np.array([0, 1, 2]), np.array([0.9, 0.9, 0.9]))
        assert vector.total_mass == pytest.approx(2.7)

    def test_validation(self):
        with pytest.raises(Exception):
            QueryVector(np.array([1, 0]), np.array([0.5, 0.5]))
        with pytest.raises(Exception):
            QueryVector(np.array([0]), np.array([0.0]))

    def test_scoring_matches_uda_scoring(self):
        u = UncertainAttribute.from_pairs([(0, 0.5), (2, 0.5)])
        vector = QueryVector(u.items, u.probs)
        v = UncertainAttribute.from_pairs([(0, 0.3), (2, 0.7)])
        assert vector.equality_probability(v) == u.equality_probability(v)

    def test_pairs_by_probability(self):
        vector = QueryVector(np.array([0, 1]), np.array([0.2, 1.5]))
        assert vector.pairs_by_probability()[0] == (1, 1.5)


class TestDescriptor:
    def test_validation(self):
        q = UncertainAttribute.point(3)
        with pytest.raises(QueryError):
            WindowedEqualityQuery(q, 0.0, 1)
        with pytest.raises(QueryError):
            WindowedEqualityQuery(q, 0.5, -1)
        with pytest.raises(QueryError):
            WindowedEqualityQuery(UncertainAttribute.from_pairs([]), 0.5, 1)

    def test_expansion_window_zero_is_identity(self):
        q = UncertainAttribute.from_pairs([(2, 0.4), (5, 0.6)])
        expanded = WindowedEqualityQuery(q, 0.5, 0).expanded()
        assert expanded.items.tolist() == [2, 5]
        assert expanded.probs.tolist() == pytest.approx([0.4, 0.6])

    def test_expansion_overlapping_windows_sum(self):
        q = UncertainAttribute.from_pairs([(2, 0.5), (3, 0.5)])
        expanded = WindowedEqualityQuery(q, 0.5, 1).expanded()
        # Item 2 and 3 both cover items 2 and 3; weights sum to 1 there.
        weights = dict(expanded.pairs())
        assert weights[2] == pytest.approx(1.0)
        assert weights[3] == pytest.approx(1.0)
        assert weights[1] == pytest.approx(0.5)
        assert weights[4] == pytest.approx(0.5)

    def test_expansion_clips_below_zero(self):
        q = UncertainAttribute.point(0)
        expanded = WindowedEqualityQuery(q, 0.5, 2).expanded()
        assert expanded.items.min() == 0

    def test_expansion_clamps_at_high_edge(self):
        # A window reaching past the last domain item must not emit
        # weights for phantom items beyond the domain.
        q = UncertainAttribute.point(9)
        expanded = WindowedEqualityQuery(q, 0.5, 3).expanded(domain_size=10)
        assert expanded.items.max() == 9
        assert expanded.items.min() == 6
        assert dict(expanded.pairs()) == pytest.approx(
            {6: 1.0, 7: 1.0, 8: 1.0, 9: 1.0}
        )

    def test_expansion_clamps_both_edges(self):
        # Window covers the whole (small) domain from both sides.
        q = UncertainAttribute.from_pairs([(0, 0.25), (3, 0.75)])
        expanded = WindowedEqualityQuery(q, 0.5, 10).expanded(domain_size=4)
        assert expanded.items.tolist() == [0, 1, 2, 3]
        assert expanded.probs.tolist() == pytest.approx([1.0] * 4)

    def test_expansion_unclamped_without_domain_size(self):
        # Backwards-compatible: no domain size means no high-side clamp.
        q = UncertainAttribute.point(9)
        expanded = WindowedEqualityQuery(q, 0.5, 3).expanded()
        assert expanded.items.max() == 12

    def test_query_item_outside_domain_rejected(self):
        q = UncertainAttribute.point(10)
        with pytest.raises(QueryError, match="outside domain"):
            WindowedEqualityQuery(q, 0.5, 1).expanded(domain_size=10)


class TestExecutors:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(17)
        domain = CategoricalDomain.of_size(15)
        relation = UncertainRelation(domain)
        for _ in range(250):
            nnz = int(rng.integers(1, 5))
            items = rng.choice(15, size=nnz, replace=False)
            probs = rng.dirichlet(np.ones(nnz))
            relation.append(
                UncertainAttribute.from_pairs(
                    list(zip(items.tolist(), probs.tolist()))
                )
            )
        inverted = ProbabilisticInvertedIndex(15)
        inverted.build(relation)
        tree = PDRTree(15)
        tree.build(relation)
        return relation, inverted, tree

    @pytest.mark.parametrize("window", [0, 1, 4])
    @pytest.mark.parametrize("threshold", [0.1, 0.5])
    def test_all_executors_agree(self, setup, window, threshold):
        relation, inverted, tree = setup
        q = relation.uda_of(7)
        query = WindowedEqualityQuery(q, threshold, window)
        expected = [(m.tid, m.score) for m in relation.execute(query)]
        assert [(m.tid, m.score) for m in tree.execute(query)] == expected
        for strategy in STRATEGIES:
            got = [
                (m.tid, m.score)
                for m in inverted.execute(query, strategy=strategy)
            ]
            assert got == expected, strategy

    @pytest.mark.parametrize("edge_item", [0, 14])
    def test_all_executors_agree_at_domain_edges(self, setup, edge_item):
        # The window spills past a domain edge (item 0 on the low side,
        # item 14 on the high side of the 15-item domain); every executor
        # must clamp identically rather than crash or score phantoms.
        relation, inverted, tree = setup
        q = UncertainAttribute.from_pairs([(edge_item, 1.0)])
        query = WindowedEqualityQuery(q, 0.1, 4)
        expected = [(m.tid, m.score) for m in relation.execute(query)]
        assert expected, "edge query should match something"
        assert [(m.tid, m.score) for m in tree.execute(query)] == expected
        for strategy in STRATEGIES:
            got = [
                (m.tid, m.score)
                for m in inverted.execute(query, strategy=strategy)
            ]
            assert got == expected, strategy

    def test_wider_window_never_shrinks_answers(self, setup):
        relation, _, _ = setup
        q = relation.uda_of(3)
        previous: set[int] = set()
        for window in (0, 1, 2, 4):
            result = relation.execute(WindowedEqualityQuery(q, 0.2, window))
            assert previous <= result.tid_set()
            previous = result.tid_set()


@settings(max_examples=20, deadline=None)
@given(
    relation=relations(max_tuples=25),
    q=udas(max_domain=8),
    threshold=st.floats(0.01, 1.0),
    window=st.integers(0, 4),
)
def test_windowed_property_agreement(relation, q, threshold, window):
    query = WindowedEqualityQuery(q, threshold, window)
    expected = [(m.tid, m.score) for m in relation.execute(query)]
    inverted = ProbabilisticInvertedIndex(len(relation.domain))
    inverted.build(relation)
    tree = PDRTree(len(relation.domain))
    tree.build(relation)
    assert [(m.tid, m.score) for m in tree.execute(query)] == expected
    for strategy in ("highest_prob_first", "column_pruning", "no_random_access"):
        got = [
            (m.tid, m.score) for m in inverted.execute(query, strategy=strategy)
        ]
        assert got == expected, strategy
