"""Tests for :mod:`repro.core.domain`."""

import pytest

from repro.core import CategoricalDomain, DomainError


class TestConstruction:
    def test_from_labels(self):
        domain = CategoricalDomain(["Brake", "Tires", "Trans"])
        assert len(domain) == 3
        assert domain.labels == ("Brake", "Tires", "Trans")

    def test_from_iterator(self):
        domain = CategoricalDomain(str(i) for i in range(4))
        assert len(domain) == 4

    def test_of_size(self):
        domain = CategoricalDomain.of_size(10)
        assert len(domain) == 10
        assert domain.label_of(0) == "d0"
        assert domain.label_of(9) == "d9"

    def test_of_size_custom_prefix(self):
        domain = CategoricalDomain.of_size(3, prefix="Category")
        assert domain.labels == ("Category0", "Category1", "Category2")

    def test_empty_domain_rejected(self):
        with pytest.raises(DomainError):
            CategoricalDomain([])

    def test_of_size_zero_rejected(self):
        with pytest.raises(DomainError):
            CategoricalDomain.of_size(0)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(DomainError):
            CategoricalDomain(["a", "b", "a"])


class TestLookups:
    @pytest.fixture()
    def domain(self):
        return CategoricalDomain(["Shoes", "Sales", "Clothes", "HR"])

    def test_index_of(self, domain):
        assert domain.index_of("Shoes") == 0
        assert domain.index_of("HR") == 3

    def test_index_of_unknown(self, domain):
        with pytest.raises(DomainError, match="Hardware"):
            domain.index_of("Hardware")

    def test_label_of(self, domain):
        assert domain.label_of(1) == "Sales"

    def test_label_of_out_of_range(self, domain):
        with pytest.raises(DomainError):
            domain.label_of(4)
        with pytest.raises(DomainError):
            domain.label_of(-1)

    def test_contains(self, domain):
        assert "Sales" in domain
        assert "Hardware" not in domain

    def test_iteration_order(self, domain):
        assert list(domain) == ["Shoes", "Sales", "Clothes", "HR"]

    def test_round_trip(self, domain):
        for label in domain:
            assert domain.label_of(domain.index_of(label)) == label


class TestEquality:
    def test_equal_domains(self):
        assert CategoricalDomain(["a", "b"]) == CategoricalDomain(["a", "b"])

    def test_order_matters(self):
        assert CategoricalDomain(["a", "b"]) != CategoricalDomain(["b", "a"])

    def test_hashable(self):
        domains = {CategoricalDomain(["a"]), CategoricalDomain(["a"])}
        assert len(domains) == 1

    def test_not_equal_to_other_types(self):
        assert CategoricalDomain(["a"]) != ["a"]


class TestRepr:
    def test_small_domain_shows_all(self):
        assert "Brake" in repr(CategoricalDomain(["Brake", "Tires"]))

    def test_large_domain_abbreviated(self):
        text = repr(CategoricalDomain.of_size(100))
        assert "100 values" in text
