"""The exception hierarchy: one base, meaningful layering."""

import pytest

from repro.core import exceptions as exc


ALL_ERRORS = [
    exc.DomainError,
    exc.InvalidDistributionError,
    exc.QueryError,
    exc.StorageError,
    exc.PageError,
    exc.BufferPoolError,
    exc.SerializationError,
    exc.RecordTooLargeError,
    exc.IndexError_,
    exc.TreeError,
    exc.DuplicateKeyError,
    exc.KeyNotFoundError,
]


@pytest.mark.parametrize("error", ALL_ERRORS)
def test_everything_derives_from_repro_error(error):
    assert issubclass(error, exc.ReproError)


def test_storage_layer_grouping():
    for error in (exc.PageError, exc.BufferPoolError, exc.SerializationError):
        assert issubclass(error, exc.StorageError)
    assert issubclass(exc.RecordTooLargeError, exc.SerializationError)


def test_index_layer_grouping():
    assert issubclass(exc.TreeError, exc.IndexError_)
    assert issubclass(exc.DuplicateKeyError, exc.TreeError)
    assert issubclass(exc.KeyNotFoundError, exc.TreeError)


def test_catching_the_base_catches_library_failures():
    from repro.core import CategoricalDomain

    with pytest.raises(exc.ReproError):
        CategoricalDomain([])


def test_library_errors_are_not_builtin_aliases():
    # IndexError_ deliberately avoids shadowing the builtin.
    assert exc.IndexError_ is not IndexError
    assert not issubclass(exc.IndexError_, IndexError)
