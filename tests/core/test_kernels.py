"""Unit tests for :mod:`repro.core.kernels` (vectorized posting kernels).

The kernels promise *bit-identity* with the scalar bookkeeping they
replace; each test here checks one kernel against a straightforward
scalar reference implementation.  The whole-strategy equivalence lives
in ``tests/invindex/test_kernel_differential.py``.
"""

import math

import numpy as np
import pytest

from repro.core import QueryError, UncertainAttribute
from repro.core import kernels
from repro.core.uda import QueryVector, sparse_dot_fsum


class TestKernelMode:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        assert kernels.kernel_mode() == "vectorized"
        assert kernels.vectorized()

    @pytest.mark.parametrize("raw", ["", "default", "on", "vectorized"])
    def test_vectorized_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(kernels.KERNEL_ENV, raw)
        assert kernels.kernel_mode() == "vectorized"

    def test_scalar_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "scalar")
        assert kernels.kernel_mode() == "scalar"
        assert not kernels.vectorized()

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "simd")
        with pytest.raises(QueryError):
            kernels.kernel_mode()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "scalar")
        with kernels.kernel_override("vectorized"):
            assert kernels.vectorized()
        assert not kernels.vectorized()

    def test_override_validates(self):
        with pytest.raises(QueryError):
            with kernels.kernel_override("simd"):
                pass


def _scalar_exact_scores(tid_runs, weighted_runs):
    """Reference: per-tid fsum over the concatenated contribution runs."""
    products = {}
    for tids, weighted in zip(tid_runs, weighted_runs):
        for tid, value in zip(tids.tolist(), weighted.tolist()):
            products.setdefault(tid, []).append(value)
    tids = sorted(products)
    return (
        np.array(tids, dtype=np.int64),
        np.array([math.fsum(products[tid]) for tid in tids]),
    )


class TestExactScores:
    def test_matches_per_tid_fsum(self):
        rng = np.random.default_rng(11)
        tid_runs, weighted_runs = [], []
        for _ in range(7):
            n = int(rng.integers(1, 40))
            tid_runs.append(rng.integers(0, 25, size=n).astype(np.int64))
            weighted_runs.append(rng.random(n))
        got_tids, got_scores = kernels.exact_scores(tid_runs, weighted_runs)
        ref_tids, ref_scores = _scalar_exact_scores(tid_runs, weighted_runs)
        assert np.array_equal(got_tids, ref_tids)
        # fsum is correctly rounded, so equality must be exact.
        assert got_scores.tolist() == ref_scores.tolist()

    def test_single_occurrence_fast_path(self):
        tids = [np.array([3, 1], dtype=np.int64)]
        weighted = [np.array([0.25, 0.5])]
        got_tids, got_scores = kernels.exact_scores(tids, weighted)
        assert got_tids.tolist() == [1, 3]
        assert got_scores.tolist() == [0.5, 0.25]


class TestSeenFilter:
    def test_first_encounter_order_preserved(self):
        admit = kernels.SeenFilter()
        first = admit.admit(np.array([5, 3, 5, 9], dtype=np.int64))
        assert first.tolist() == [5, 3, 9]  # in-run dup dropped, order kept
        second = admit.admit(np.array([9, 2, 3, 7], dtype=np.int64))
        assert second.tolist() == [2, 7]

    def test_matches_scalar_set_loop(self):
        rng = np.random.default_rng(3)
        admit = kernels.SeenFilter()
        seen = set()
        for _ in range(25):
            run = rng.integers(0, 50, size=int(rng.integers(1, 30)))
            expected = []
            for tid in run.tolist():
                if tid not in seen:
                    seen.add(tid)
                    expected.append(tid)
            assert admit.admit(run.astype(np.int64)).tolist() == expected


class TestMaskedLacks:
    def test_matches_per_candidate_fsum(self):
        rng = np.random.default_rng(7)
        terms = rng.random(5).tolist()
        masks = rng.integers(0, 2**5, size=40).astype(np.int64)
        got = kernels.masked_lacks(masks, terms)
        for mask, lack in zip(masks.tolist(), got.tolist()):
            expected = math.fsum(
                term for j, term in enumerate(terms) if not mask >> j & 1
            )
            assert lack == expected


class TestSelection:
    def test_kth_largest_matches_sorted(self):
        rng = np.random.default_rng(13)
        values = rng.random(50)
        for k in (1, 3, 50):
            assert kernels.kth_largest(values, k) == sorted(
                values.tolist(), reverse=True
            )[k - 1]

    def test_top_k_matches_ordering_and_ties(self):
        tids = np.array([9, 2, 7, 4], dtype=np.int64)
        scores = np.array([0.5, 0.5, 0.9, 0.1])
        pick = kernels.top_k_matches(tids, scores, 3)
        # score desc, tid asc on the 0.5 tie.
        assert tids[pick].tolist() == [7, 2, 9]

    def test_top_k_matches_k_past_length(self):
        tids = np.array([1, 0], dtype=np.int64)
        scores = np.array([0.2, 0.8])
        pick = kernels.top_k_matches(tids, scores, 10)
        assert tids[pick].tolist() == [0, 1]


class TestCandidatePool:
    def test_update_run_accumulates_and_dedups(self):
        pool = kernels.CandidatePool()
        pool.update_run(
            np.array([4, 1, 4], dtype=np.int64),
            np.array([0.5, 0.25, 0.125]),
            0,
            1.0,
            admit=True,
        )
        assert pool.size == 2
        assert pool.live_tids() == [4, 1]  # insertion order
        # Second list: only already-known tids update when admit=False.
        pool.update_run(
            np.array([1, 9], dtype=np.int64),
            np.array([0.5, 0.5]),
            1,
            1.0,
            admit=False,
        )
        assert pool.live_tids() == [4, 1]

    def test_dead_candidates_never_readmitted(self):
        pool = kernels.CandidatePool()
        pool.update_run(
            np.array([4], dtype=np.int64), np.array([0.5]), 0, 1.0, admit=True
        )
        pool.alive[0] = False
        pool.update_run(
            np.array([4], dtype=np.int64), np.array([0.5]), 1, 1.0, admit=True
        )
        assert pool.live_tids() == []
        assert pool.size == 0


class TestDenseScorer:
    """The cached dense scorer must be bit-identical to sparse_dot_fsum."""

    def _random_sparse(self, rng, domain):
        nnz = int(rng.integers(1, domain + 1))
        items = np.sort(rng.choice(domain, size=nnz, replace=False))
        return items.astype(np.int64), rng.random(nnz)

    def test_uda_scoring_bit_identical(self):
        rng = np.random.default_rng(23)
        for _ in range(50):
            q_items, q_probs = self._random_sparse(rng, 12)
            q = UncertainAttribute(q_items, q_probs / (q_probs.sum() + 1.0))
            # Tuple support may extend past the query's largest item.
            t_items, t_probs = self._random_sparse(rng, 20)
            expected = sparse_dot_fsum(q.items, q.probs, t_items, t_probs)
            with kernels.kernel_override("vectorized"):
                assert q.equality_with_arrays(t_items, t_probs) == expected

    def test_query_vector_scoring_bit_identical(self):
        rng = np.random.default_rng(29)
        for _ in range(50):
            q_items, q_weights = self._random_sparse(rng, 10)
            weights = QueryVector(q_items, q_weights * 2.0)  # mass > 1 ok
            t_items, t_probs = self._random_sparse(rng, 16)
            expected = sparse_dot_fsum(
                weights.items, weights.probs, t_items, t_probs
            )
            with kernels.kernel_override("vectorized"):
                assert weights.equality_with_arrays(t_items, t_probs) == expected

    def test_scalar_mode_uses_sparse_path(self):
        q = UncertainAttribute.from_pairs([(1, 0.5), (3, 0.5)])
        with kernels.kernel_override("scalar"):
            score = q.equality_with_arrays(
                np.array([1], dtype=np.int64), np.array([1.0])
            )
        assert score == 0.5
        assert q._scorer is None  # scalar mode built no dense table

    def test_empty_query_scores_zero(self):
        q = UncertainAttribute.from_pairs([])
        with kernels.kernel_override("vectorized"):
            assert q.equality_with_arrays(
                np.array([1], dtype=np.int64), np.array([1.0])
            ) == 0.0
