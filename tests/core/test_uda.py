"""Tests for :mod:`repro.core.uda`."""

import numpy as np
import pytest

from repro.core import (
    CategoricalDomain,
    DomainError,
    InvalidDistributionError,
    UncertainAttribute,
)


class TestConstruction:
    def test_from_pairs(self):
        uda = UncertainAttribute.from_pairs([(2, 0.4), (0, 0.6)])
        assert uda.items.tolist() == [0, 2]
        assert uda.probs.tolist() == pytest.approx([0.6, 0.4])

    def test_from_mapping(self):
        uda = UncertainAttribute.from_pairs({1: 0.5, 3: 0.5})
        assert uda.items.tolist() == [1, 3]

    def test_zero_probability_pairs_dropped(self):
        uda = UncertainAttribute.from_pairs([(0, 0.5), (1, 0.0), (2, 0.5)])
        assert uda.items.tolist() == [0, 2]

    def test_from_labels_matches_table1(self):
        problems = CategoricalDomain(["Brake", "Tires", "Trans", "Exhaust"])
        explorer = UncertainAttribute.from_labels(
            problems, {"Brake": 0.5, "Tires": 0.5}
        )
        assert explorer.probability_of(problems.index_of("Brake")) == pytest.approx(0.5)
        assert explorer.probability_of(problems.index_of("Trans")) == 0.0

    def test_from_dense(self):
        uda = UncertainAttribute.from_dense(np.array([0.0, 0.3, 0.0, 0.7]))
        assert uda.items.tolist() == [1, 3]

    def test_point(self):
        uda = UncertainAttribute.point(5)
        assert uda.nnz == 1
        assert uda.probability_of(5) == 1.0
        assert uda.total_mass == 1.0

    def test_empty_distribution_allowed(self):
        uda = UncertainAttribute.from_pairs([])
        assert uda.nnz == 0
        assert uda.total_mass == 0.0

    def test_partial_mass_allowed(self):
        # Footnote 2: "the sum can be < 1 in the case of missing values".
        uda = UncertainAttribute.from_pairs([(0, 0.3), (1, 0.2)])
        assert uda.total_mass == pytest.approx(0.5)


class TestValidation:
    def test_duplicate_items_rejected(self):
        with pytest.raises(InvalidDistributionError):
            UncertainAttribute.from_pairs([(1, 0.5), (1, 0.5)])

    def test_unsorted_items_rejected_in_raw_constructor(self):
        with pytest.raises(InvalidDistributionError):
            UncertainAttribute(np.array([2, 0]), np.array([0.5, 0.5]))

    def test_negative_probability_rejected(self):
        with pytest.raises(InvalidDistributionError):
            UncertainAttribute(np.array([0]), np.array([-0.1]))

    def test_probability_above_one_rejected(self):
        with pytest.raises(InvalidDistributionError):
            UncertainAttribute(np.array([0]), np.array([1.5]))

    def test_mass_above_one_rejected(self):
        with pytest.raises(InvalidDistributionError):
            UncertainAttribute.from_pairs([(0, 0.7), (1, 0.7)])

    def test_negative_item_rejected(self):
        with pytest.raises(InvalidDistributionError):
            UncertainAttribute(np.array([-1]), np.array([0.5]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidDistributionError):
            UncertainAttribute(np.array([0, 1]), np.array([1.0]))

    def test_float32_quantization_at_construction(self):
        value = 0.1  # not representable in float32
        uda = UncertainAttribute.from_pairs([(0, value)])
        assert uda.probs[0] == float(np.float32(value))


class TestEqualityProbability:
    def test_paper_identical_uniform_example(self):
        # Section 2: u = v = (0.2, 0.2, 0.2, 0.2, 0.2) gives Pr(u=v) = 0.2.
        uniform = UncertainAttribute.from_pairs(
            [(i, 0.2) for i in range(5)]
        )
        assert uniform.equality_probability(uniform) == pytest.approx(0.2)

    def test_paper_dissimilar_but_more_equal_example(self):
        # u = (0.6, 0.4, 0, 0, 0), v = (0.4, 0.6, 0, 0, 0): Pr = 0.48,
        # higher than the identical-uniform pair above.
        u = UncertainAttribute.from_pairs([(0, 0.6), (1, 0.4)])
        v = UncertainAttribute.from_pairs([(0, 0.4), (1, 0.6)])
        assert u.equality_probability(v) == pytest.approx(0.48)

    def test_disjoint_supports(self):
        u = UncertainAttribute.from_pairs([(0, 1.0)])
        v = UncertainAttribute.from_pairs([(1, 1.0)])
        assert u.equality_probability(v) == 0.0

    def test_symmetry(self):
        u = UncertainAttribute.from_pairs([(0, 0.3), (2, 0.7)])
        v = UncertainAttribute.from_pairs([(0, 0.5), (1, 0.25), (2, 0.25)])
        assert u.equality_probability(v) == v.equality_probability(u)

    def test_empty_operand(self):
        u = UncertainAttribute.from_pairs([])
        v = UncertainAttribute.from_pairs([(0, 1.0)])
        assert u.equality_probability(v) == 0.0

    def test_against_dense_dot_product(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            left = rng.dirichlet(np.ones(8))
            right = rng.dirichlet(np.ones(8))
            u = UncertainAttribute.from_dense(left)
            v = UncertainAttribute.from_dense(right)
            expected = float(np.dot(u.to_dense(8), v.to_dense(8)))
            assert u.equality_probability(v) == pytest.approx(expected)

    def test_equality_with_arrays_matches(self):
        u = UncertainAttribute.from_pairs([(0, 0.6), (1, 0.4)])
        v = UncertainAttribute.from_pairs([(0, 0.4), (1, 0.6)])
        assert u.equality_with_arrays(v.items, v.probs) == u.equality_probability(v)


class TestAccessors:
    @pytest.fixture()
    def uda(self):
        return UncertainAttribute.from_pairs([(1, 0.25), (4, 0.5), (7, 0.25)])

    def test_nnz(self, uda):
        assert uda.nnz == 3
        assert len(uda) == 3

    def test_probability_of_absent_item(self, uda):
        assert uda.probability_of(2) == 0.0
        assert uda.probability_of(100) == 0.0

    def test_support(self, uda):
        assert uda.support().tolist() == [1, 4, 7]

    def test_support_is_a_copy(self, uda):
        support = uda.support()
        support[0] = 99
        assert uda.items[0] == 1

    def test_pairs_ascending(self, uda):
        items = [item for item, _ in uda.pairs()]
        assert items == sorted(items)

    def test_pairs_by_probability(self, uda):
        pairs = uda.pairs_by_probability()
        assert pairs[0] == (4, 0.5)
        probs = [p for _, p in pairs]
        assert probs == sorted(probs, reverse=True)

    def test_pairs_by_probability_tie_break_by_item(self):
        uda = UncertainAttribute.from_pairs([(3, 0.5), (1, 0.5)])
        assert [item for item, _ in uda.pairs_by_probability()] == [1, 3]

    def test_mode(self, uda):
        assert uda.mode() == (4, 0.5)

    def test_mode_of_empty_raises(self):
        with pytest.raises(InvalidDistributionError):
            UncertainAttribute.from_pairs([]).mode()

    def test_to_dense(self, uda):
        dense = uda.to_dense(10)
        assert dense.shape == (10,)
        assert dense[4] == 0.5
        assert dense.sum() == pytest.approx(1.0)

    def test_to_dense_domain_too_small(self, uda):
        with pytest.raises(DomainError):
            uda.to_dense(5)

    def test_to_dict(self, uda):
        assert uda.to_dict() == {1: 0.25, 4: 0.5, 7: 0.25}

    def test_entropy_of_point_is_zero(self):
        assert UncertainAttribute.point(3).entropy() == pytest.approx(0.0)

    def test_entropy_of_uniform(self):
        uniform = UncertainAttribute.from_pairs([(i, 0.25) for i in range(4)])
        assert uniform.entropy() == pytest.approx(np.log(4))


class TestTransforms:
    def test_normalized(self):
        uda = UncertainAttribute.from_pairs([(0, 0.25), (1, 0.25)])
        normalized = uda.normalized()
        assert normalized.total_mass == pytest.approx(1.0)
        assert normalized.probability_of(0) == pytest.approx(0.5)

    def test_normalize_empty_raises(self):
        with pytest.raises(InvalidDistributionError):
            UncertainAttribute.from_pairs([]).normalized()

    def test_sample_respects_support(self):
        rng = np.random.default_rng(0)
        uda = UncertainAttribute.from_pairs([(2, 0.5), (5, 0.5)])
        draws = {uda.sample(rng) for _ in range(50)}
        assert draws <= {2, 5}
        assert len(draws) == 2

    def test_sample_requires_full_mass(self):
        rng = np.random.default_rng(0)
        partial = UncertainAttribute.from_pairs([(0, 0.5)])
        with pytest.raises(InvalidDistributionError):
            partial.sample(rng)


class TestEqualityAndHashing:
    def test_equal_udas(self):
        a = UncertainAttribute.from_pairs([(0, 0.5), (1, 0.5)])
        b = UncertainAttribute.from_pairs([(1, 0.5), (0, 0.5)])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_probabilities(self):
        a = UncertainAttribute.from_pairs([(0, 0.5), (1, 0.5)])
        b = UncertainAttribute.from_pairs([(0, 0.4), (1, 0.6)])
        assert a != b

    def test_immutable_arrays(self):
        uda = UncertainAttribute.from_pairs([(0, 1.0)])
        with pytest.raises(ValueError):
            uda.probs[0] = 0.5
