"""Tests for :mod:`repro.core.joins`."""

import numpy as np
import pytest

from repro.core import (
    CategoricalDomain,
    QueryError,
    UncertainAttribute,
    UncertainRelation,
    dstj,
    pej_top_k,
    petj,
)
from repro.core.joins import BoundedPairHeap, JoinPair
from repro.invindex import ProbabilisticInvertedIndex
from repro.pdrtree import PDRTree


@pytest.fixture()
def departments():
    return CategoricalDomain(["Shoes", "Sales", "Clothes", "Hardware", "HR"])


@pytest.fixture()
def employees(departments):
    """The paper's Table 1(b) personnel relation."""
    relation = UncertainRelation(departments, name="personnel")
    relation.append(
        UncertainAttribute.from_labels(departments, {"Shoes": 0.5, "Sales": 0.5}),
        payload="Jim",
    )
    relation.append(
        UncertainAttribute.from_labels(departments, {"Sales": 0.4, "Clothes": 0.6}),
        payload="Tom",
    )
    relation.append(
        UncertainAttribute.from_labels(
            departments, {"Hardware": 0.6, "Sales": 0.4}
        ),
        payload="Lin",
    )
    relation.append(
        UncertainAttribute.from_labels(departments, {"HR": 1.0}),
        payload="Nancy",
    )
    return relation


def brute_force_pairs(left, right, threshold):
    pairs = set()
    for l in left.tids():
        for r in right.tids():
            p = left.uda_of(l).equality_probability(right.uda_of(r))
            if p >= threshold:
                pairs.add((l, r))
    return pairs


class TestPETJ:
    def test_self_join_same_department(self, employees):
        # Which pairs of employees might work in the same department?
        pairs = petj(employees, employees, 0.15)
        pair_set = {(p.left_tid, p.right_tid) for p in pairs}
        assert pair_set == brute_force_pairs(employees, employees, 0.15)

    def test_jim_tom_probability(self, employees):
        pairs = petj(employees, employees, 0.15)
        scores = {(p.left_tid, p.right_tid): p.score for p in pairs}
        # Pr(Jim = Tom) = 0.5 * 0.4 (both in Sales) = 0.2.
        assert scores[(0, 1)] == pytest.approx(0.2)

    def test_nancy_joins_only_herself(self, employees):
        pairs = petj(employees, employees, 0.5)
        nancy = [(p.left_tid, p.right_tid) for p in pairs if 3 in (p.left_tid, p.right_tid)]
        assert nancy == [(3, 3)]

    def test_sorted_by_descending_score(self, employees):
        pairs = petj(employees, employees, 0.1)
        scores = [p.score for p in pairs]
        assert scores == sorted(scores, reverse=True)

    def test_with_inverted_index(self, employees, departments):
        index = ProbabilisticInvertedIndex(len(departments))
        index.build(employees)
        with_index = petj(employees, employees, 0.15, right_index=index)
        without = petj(employees, employees, 0.15)
        assert [(p.left_tid, p.right_tid, p.score) for p in with_index] == [
            (p.left_tid, p.right_tid, p.score) for p in without
        ]

    def test_with_pdr_tree(self, employees, departments):
        tree = PDRTree(len(departments))
        tree.build(employees)
        with_index = petj(employees, employees, 0.15, right_index=tree)
        without = petj(employees, employees, 0.15)
        assert [(p.left_tid, p.right_tid) for p in with_index] == [
            (p.left_tid, p.right_tid) for p in without
        ]

    def test_invalid_threshold(self, employees):
        with pytest.raises(QueryError):
            petj(employees, employees, 0.0)
        with pytest.raises(QueryError):
            petj(employees, employees, 1.5)

    def test_zero_threshold_rejected_by_design(self, employees):
        """PETJ's threshold domain is (0, 1]: τ = 0 would make every pair
        with any common item qualify, so it is rejected — by contrast,
        DSTJ legally accepts a zero divergence threshold."""
        with pytest.raises(QueryError):
            petj(employees, employees, 0.0)
        assert len(dstj(employees, employees, 0.0, "l1")) > 0

    def test_exact_threshold_hit_is_kept(self, employees):
        # Pr(Jim = Tom) is exactly 0.5 * 0.4 = 0.2; the comparison is >=.
        score = employees.uda_of(0).equality_probability(employees.uda_of(1))
        pairs = petj(employees, employees, score)
        assert (0, 1) in {(p.left_tid, p.right_tid) for p in pairs}

    def test_threshold_just_above_max_score_is_empty(self, employees, departments):
        # Outer side without Nancy (whose self-pair scores exactly 1.0),
        # so the best pair score is strictly below 1 and a threshold just
        # above it is still a legal (0, 1] value.
        outer = UncertainRelation(departments)
        for tid in (0, 1, 2):
            outer.append(employees.uda_of(tid))
        top = pej_top_k(outer, employees, 1)[0].score
        assert top < 1.0
        assert len(petj(outer, employees, top + 1e-9)) == 0
        assert len(petj(outer, employees, top)) > 0


class TestPEJTopK:
    def test_top_pairs(self, employees):
        pairs = pej_top_k(employees, employees, 3)
        assert len(pairs) == 3
        # Nancy-Nancy scores 1.0 and must be first.
        assert (pairs[0].left_tid, pairs[0].right_tid) == (3, 3)

    def test_matches_exhaustive_ranking(self, employees):
        pairs = pej_top_k(employees, employees, 5)
        exhaustive = []
        for l in employees.tids():
            for r in employees.tids():
                score = employees.uda_of(l).equality_probability(
                    employees.uda_of(r)
                )
                if score > 0:
                    exhaustive.append((-score, l, r))
        exhaustive.sort()
        expected = [(l, r) for _, l, r in exhaustive[:5]]
        assert [(p.left_tid, p.right_tid) for p in pairs] == expected

    def test_invalid_k(self, employees):
        with pytest.raises(QueryError):
            pej_top_k(employees, employees, 0)

    def test_heap_preserves_tie_order(self, departments):
        """The bounded heap must reproduce the full-sort output exactly,
        including the (left_tid, right_tid) tiebreak among equal scores."""
        relation = UncertainRelation(departments)
        # Four identical tuples: every cross pair scores exactly the same,
        # so the top-k cut lands inside a run of ties.
        for _ in range(4):
            relation.append(
                UncertainAttribute.from_labels(
                    departments, {"Shoes": 0.5, "Sales": 0.5}
                )
            )
        for k in (1, 3, 5, 7, 16):
            pairs = pej_top_k(relation, relation, k)
            exhaustive = sorted(
                JoinPair(
                    left_tid=l,
                    right_tid=r,
                    score=relation.uda_of(l).equality_probability(
                        relation.uda_of(r)
                    ),
                )
                for l in relation.tids()
                for r in relation.tids()
            )
            expected = [
                (p.left_tid, p.right_tid, p.score) for p in exhaustive[:k]
            ]
            assert [
                (p.left_tid, p.right_tid, p.score) for p in pairs
            ] == expected


class TestBoundedPairHeap:
    def test_matches_sorted_truncation_on_random_streams(self):
        rng = np.random.default_rng(5)
        # Coarse scores force plenty of exact ties.
        stream = [
            JoinPair(
                left_tid=int(rng.integers(0, 6)),
                right_tid=i,
                score=round(float(rng.random()), 1),
            )
            for i in range(200)
        ]
        for k in (1, 2, 7, 50, 200, 300):
            heap = BoundedPairHeap(k)
            for pair in stream:
                heap.push(pair)
            assert heap.sorted_pairs() == sorted(stream)[:k]

    def test_kth_score_is_zero_until_full(self):
        heap = BoundedPairHeap(3)
        heap.push(JoinPair(left_tid=0, right_tid=0, score=0.9))
        heap.push(JoinPair(left_tid=0, right_tid=1, score=0.8))
        assert heap.kth_score() == 0.0
        heap.push(JoinPair(left_tid=0, right_tid=2, score=0.7))
        assert heap.kth_score() == 0.7
        heap.push(JoinPair(left_tid=1, right_tid=0, score=0.95))
        assert heap.kth_score() == 0.8

    def test_invalid_k(self):
        with pytest.raises(QueryError):
            BoundedPairHeap(0)


class TestDSTJ:
    def test_zero_threshold_self_pairs(self, employees):
        pairs = dstj(employees, employees, 0.0, "l1")
        pair_set = {(p.left_tid, p.right_tid) for p in pairs}
        assert pair_set == {(t, t) for t in employees.tids()}

    def test_negated_divergence_scores(self, employees):
        pairs = dstj(employees, employees, 0.5, "l1")
        for pair in pairs:
            assert pair.score <= 0.0

    def test_invalid_threshold(self, employees):
        with pytest.raises(QueryError):
            dstj(employees, employees, -0.1)


class TestRandomizedAgreement:
    def test_index_join_equals_nested_loop(self, departments):
        rng = np.random.default_rng(11)
        left = UncertainRelation(departments)
        right = UncertainRelation(departments)
        for relation, count in ((left, 30), (right, 40)):
            for _ in range(count):
                nnz = int(rng.integers(1, 4))
                items = rng.choice(len(departments), size=nnz, replace=False)
                probs = rng.dirichlet(np.ones(nnz))
                relation.append(
                    UncertainAttribute.from_pairs(
                        list(zip(items.tolist(), probs.tolist()))
                    )
                )
        index = ProbabilisticInvertedIndex(len(departments))
        index.build(right)
        for threshold in (0.05, 0.2, 0.6):
            indexed = petj(left, right, threshold, right_index=index)
            nested = petj(left, right, threshold)
            assert [(p.left_tid, p.right_tid, p.score) for p in indexed] == [
                (p.left_tid, p.right_tid, p.score) for p in nested
            ]


class TestJoinResultStats:
    def test_num_probes_counts_outer_tuples(self, employees):
        join = petj(employees, employees, 0.2)
        assert join.num_probes == len(employees)

    def test_indexed_join_reports_inner_work(self, employees, departments):
        index = ProbabilisticInvertedIndex(len(departments))
        index.build(employees)
        join = petj(employees, employees, 0.2, right_index=index)
        # Four probes against a real index must have scanned postings.
        assert join.num_probes == 4
        assert join.stats.entries_scanned > 0
        assert join.stats.nodes_visited > 0

    def test_stats_are_merged_per_probe_sums(self, employees, departments):
        index = ProbabilisticInvertedIndex(len(departments))
        index.build(employees)
        from repro.core import EqualityThresholdQuery, QueryStats

        expected = QueryStats()
        for tid in employees.tids():
            probe = EqualityThresholdQuery(employees.uda_of(tid), 0.2)
            expected.merge(index.execute(probe).stats)
        join = petj(employees, employees, 0.2, right_index=index)
        assert join.stats == expected

    def test_result_is_a_sequence_of_pairs(self, employees):
        join = petj(employees, employees, 0.2)
        assert len(join) == len(join.pairs)
        assert list(join) == join.pairs
        assert join[0] == join.pairs[0]

    def test_top_k_and_dstj_also_carry_stats(self, employees, departments):
        index = ProbabilisticInvertedIndex(len(departments))
        index.build(employees)
        top = pej_top_k(employees, employees, 3, right_index=index)
        assert top.num_probes == 4
        assert top.stats.entries_scanned > 0
        sim = dstj(employees, employees, 1.5)
        assert sim.num_probes == 4
