"""Property-based tests for the UDA model (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import UncertainAttribute


@st.composite
def udas(draw, max_domain=12, allow_empty=False):
    """Random valid UDAs over a small domain."""
    domain = draw(st.integers(2, max_domain))
    min_size = 0 if allow_empty else 1
    size = draw(st.integers(min_size, domain))
    items = draw(
        st.lists(
            st.integers(0, domain - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    if not items:
        return UncertainAttribute.from_pairs([])
    weights = draw(
        st.lists(
            st.floats(0.01, 1.0, allow_nan=False),
            min_size=len(items),
            max_size=len(items),
        )
    )
    total = sum(weights)
    mass = draw(st.floats(0.3, 1.0))
    pairs = [
        (item, weight / total * mass)
        for item, weight in zip(items, weights)
    ]
    return UncertainAttribute.from_pairs(pairs)


@given(udas(), udas())
def test_equality_probability_is_symmetric(u, v):
    assert u.equality_probability(v) == v.equality_probability(u)


@given(udas(), udas())
def test_equality_probability_within_bounds(u, v):
    probability = u.equality_probability(v)
    assert 0.0 <= probability <= 1.0 + 1e-9


@given(udas())
def test_self_equality_bounded_by_max_probability(u):
    # Pr(u = u) = sum p_i^2 <= max p_i * sum p_i <= max p_i.
    assert u.equality_probability(u) <= float(u.probs.max()) + 1e-12


@given(udas(), udas())
def test_equality_matches_dense_dot(u, v):
    size = int(max(u.items.max(initial=0), v.items.max(initial=0))) + 1
    expected = float(np.dot(u.to_dense(size), v.to_dense(size)))
    assert u.equality_probability(v) == pytest.approx(expected, abs=1e-12)


@given(udas())
def test_dense_round_trip(u):
    size = int(u.items.max(initial=0)) + 1
    again = UncertainAttribute.from_dense(u.to_dense(size))
    assert again == u


@given(udas())
def test_pairs_by_probability_is_sorted(u):
    pairs = u.pairs_by_probability()
    probs = [p for _, p in pairs]
    assert probs == sorted(probs, reverse=True)
    assert sorted(item for item, _ in pairs) == u.items.tolist()


@given(udas())
def test_mass_is_sum_of_pairs(u):
    assert u.total_mass == pytest.approx(
        math.fsum(p for _, p in u.pairs()), abs=1e-12
    )


@given(udas())
def test_normalized_has_unit_mass(u):
    assert u.normalized().total_mass == pytest.approx(1.0, abs=1e-6)


@given(udas())
def test_float32_quantization_is_idempotent(u):
    # Re-constructing from the stored probabilities must be lossless:
    # this is the invariant the on-page layout relies on.
    again = UncertainAttribute(u.items.copy(), u.probs.copy())
    assert again == u


@given(udas(), udas())
def test_equality_with_arrays_equals_equality_probability(u, v):
    assert u.equality_with_arrays(v.items, v.probs) == u.equality_probability(v)
