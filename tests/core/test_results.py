"""Tests for :mod:`repro.core.results`."""

from repro.core import Match, QueryResult, QueryStats


class TestMatch:
    def test_ordering_by_descending_score(self):
        low = Match(tid=1, score=0.2)
        high = Match(tid=2, score=0.8)
        assert high < low

    def test_tie_broken_by_ascending_tid(self):
        a = Match(tid=5, score=0.5)
        b = Match(tid=3, score=0.5)
        assert b < a

    def test_equality(self):
        assert Match(tid=1, score=0.5) == Match(tid=1, score=0.5)


class TestQueryResult:
    def test_matches_sorted_on_construction(self):
        result = QueryResult(
            [Match(tid=1, score=0.1), Match(tid=2, score=0.9)]
        )
        assert result.tids() == [2, 1]

    def test_tid_set(self):
        result = QueryResult([Match(tid=4, score=0.5), Match(tid=2, score=0.5)])
        assert result.tid_set() == {2, 4}

    def test_len_and_iter(self):
        result = QueryResult([Match(tid=1, score=0.5)])
        assert len(result) == 1
        assert [m.tid for m in result] == [1]

    def test_empty(self):
        result = QueryResult([])
        assert len(result) == 0
        assert result.tids() == []


class TestQueryStats:
    def test_defaults_zero(self):
        stats = QueryStats()
        assert stats.candidates_examined == 0
        assert stats.random_accesses == 0

    def test_merge_accumulates(self):
        a = QueryStats(candidates_examined=3, entries_scanned=10)
        b = QueryStats(candidates_examined=2, nodes_visited=4)
        a.merge(b)
        assert a.candidates_examined == 5
        assert a.entries_scanned == 10
        assert a.nodes_visited == 4
