"""Property-based tests for divergence measures."""

import pytest
from hypothesis import given

from repro.core import kl_divergence, l1_divergence, l2_divergence

from tests.core.test_uda_properties import udas


@given(udas(), udas())
def test_l1_non_negative_and_symmetric(u, v):
    assert l1_divergence(u, v) >= 0.0
    assert l1_divergence(u, v) == l1_divergence(v, u)


@given(udas(), udas())
def test_l2_non_negative_and_symmetric(u, v):
    assert l2_divergence(u, v) >= 0.0
    assert l2_divergence(u, v) == pytest.approx(l2_divergence(v, u))


@given(udas())
def test_l1_identity(u):
    assert l1_divergence(u, u) == 0.0


@given(udas())
def test_l2_identity(u):
    assert l2_divergence(u, u) == 0.0


@given(udas(), udas(), udas())
def test_l1_triangle_inequality(u, v, w):
    assert l1_divergence(u, w) <= (
        l1_divergence(u, v) + l1_divergence(v, w) + 1e-9
    )


@given(udas(), udas(), udas())
def test_l2_triangle_inequality(u, v, w):
    assert l2_divergence(u, w) <= (
        l2_divergence(u, v) + l2_divergence(v, w) + 1e-9
    )


@given(udas(), udas())
def test_l2_bounded_by_l1(u, v):
    assert l2_divergence(u, v) <= l1_divergence(u, v) + 1e-9


@given(udas())
def test_kl_self_divergence_is_zero(u):
    assert kl_divergence(u, u) == pytest.approx(0.0, abs=1e-9)


@given(udas(), udas())
def test_kl_non_negative_for_normalized_inputs(u, v):
    # Gibbs' inequality holds for proper distributions; normalize first.
    u = u.normalized()
    v = v.normalized()
    # The epsilon floor can only *increase* KL (it shrinks v where v=0),
    # so the Gibbs lower bound of 0 holds up to float error.  The
    # tolerance must absorb float32 re-quantization: the UncertainAttribute
    # constructor rounds normalized() output back to float32, leaving the
    # masses ~1e-7 away from 1, which lets true KL dip to about -1e-7 per
    # term even though sparse_kl itself is exact.
    assert kl_divergence(u, v) >= -2e-6
