"""Tests for :mod:`repro.core.queries`."""

import pytest

from repro.core import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    QueryError,
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
    UncertainAttribute,
    l1_divergence,
)


@pytest.fixture()
def q():
    return UncertainAttribute.from_pairs([(0, 0.5), (1, 0.5)])


class TestEqualityQueries:
    def test_peq_construction(self, q):
        assert EqualityQuery(q).q is q

    def test_peq_rejects_empty_distribution(self):
        with pytest.raises(QueryError):
            EqualityQuery(UncertainAttribute.from_pairs([]))

    def test_petq_construction(self, q):
        query = EqualityThresholdQuery(q, 0.25)
        assert query.threshold == 0.25

    @pytest.mark.parametrize("threshold", [0.0, -0.5, 1.5])
    def test_petq_invalid_thresholds(self, q, threshold):
        with pytest.raises(QueryError):
            EqualityThresholdQuery(q, threshold)

    def test_petq_threshold_of_one_allowed(self, q):
        assert EqualityThresholdQuery(q, 1.0).threshold == 1.0

    def test_topk_construction(self, q):
        assert EqualityTopKQuery(q, 10).k == 10

    @pytest.mark.parametrize("k", [0, -3])
    def test_topk_invalid_k(self, q, k):
        with pytest.raises(QueryError):
            EqualityTopKQuery(q, k)


class TestSimilarityQueries:
    def test_dstq_distance_uses_named_divergence(self, q):
        other = UncertainAttribute.from_pairs([(0, 1.0)])
        query = SimilarityThresholdQuery(q, 0.5, "l1")
        assert query.distance(other) == l1_divergence(q, other)

    def test_dstq_default_divergence_is_l1(self, q):
        assert SimilarityThresholdQuery(q, 0.5).divergence == "l1"

    def test_dstq_zero_threshold_allowed(self, q):
        assert SimilarityThresholdQuery(q, 0.0).threshold == 0.0

    def test_dstq_negative_threshold_rejected(self, q):
        with pytest.raises(QueryError):
            SimilarityThresholdQuery(q, -0.1)

    def test_dstq_unknown_divergence(self, q):
        with pytest.raises(QueryError):
            SimilarityThresholdQuery(q, 0.5, "hamming")

    def test_ds_topk_construction(self, q):
        query = SimilarityTopKQuery(q, 3, "kl")
        assert query.k == 3
        assert query.divergence == "kl"

    def test_ds_topk_invalid_k(self, q):
        with pytest.raises(QueryError):
            SimilarityTopKQuery(q, 0)

    def test_ds_topk_rejects_empty_distribution(self):
        with pytest.raises(QueryError):
            SimilarityTopKQuery(UncertainAttribute.from_pairs([]), 5)
