"""Tests for :mod:`repro.core.relation` (the naive reference executor)."""

import numpy as np
import pytest

from repro.core import (
    CategoricalDomain,
    DomainError,
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    QueryError,
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
    UncertainAttribute,
    UncertainRelation,
)


@pytest.fixture()
def problems():
    return CategoricalDomain(["Brake", "Tires", "Trans", "Suspension", "Exhaust"])


@pytest.fixture()
def cars(problems):
    """The paper's Table 1(a) complaint relation."""
    relation = UncertainRelation(problems, name="cars")
    relation.append(
        UncertainAttribute.from_labels(problems, {"Brake": 0.5, "Tires": 0.5}),
        payload="Explorer",
    )
    relation.append(
        UncertainAttribute.from_labels(
            problems, {"Trans": 0.2, "Suspension": 0.8}
        ),
        payload="Camry",
    )
    relation.append(
        UncertainAttribute.from_labels(problems, {"Exhaust": 0.4, "Brake": 0.6}),
        payload="Civic",
    )
    relation.append(
        UncertainAttribute.from_labels(problems, {"Trans": 1.0}),
        payload="Caravan",
    )
    return relation


class TestConstruction:
    def test_append_returns_dense_tids(self, cars):
        assert list(cars.tids()) == [0, 1, 2, 3]

    def test_payloads(self, cars):
        assert cars.payload_of(0) == "Explorer"
        assert cars.payload_of(3) == "Caravan"

    def test_uda_of(self, cars, problems):
        assert cars.uda_of(3).probability_of(problems.index_of("Trans")) == 1.0

    def test_out_of_domain_item_rejected(self, problems):
        relation = UncertainRelation(problems)
        with pytest.raises(DomainError):
            relation.append(UncertainAttribute.from_pairs([(9, 1.0)]))

    def test_from_udas(self, problems):
        udas = [UncertainAttribute.point(i) for i in range(3)]
        relation = UncertainRelation.from_udas(problems, udas)
        assert len(relation) == 3

    def test_iteration(self, cars):
        assert len(list(cars)) == 4


class TestSparseMatrix:
    def test_shape(self, cars, problems):
        matrix = cars.to_sparse_matrix()
        assert matrix.shape == (4, len(problems))

    def test_vectorized_probabilities_match_canonical(self, cars):
        q = UncertainAttribute.from_pairs([(0, 0.7), (2, 0.3)])
        fast = cars.equality_probabilities(q)
        slow = [q.equality_probability(cars.uda_of(t)) for t in cars.tids()]
        assert fast == pytest.approx(slow)

    def test_matrix_invalidated_by_append(self, cars, problems):
        cars.to_sparse_matrix()
        cars.append(UncertainAttribute.point(0))
        assert cars.to_sparse_matrix().shape[0] == 5


class TestEqualityExecutors:
    def test_peq_returns_all_overlapping(self, cars, problems):
        brake = UncertainAttribute.from_labels(problems, {"Brake": 1.0})
        result = cars.execute(EqualityQuery(brake))
        assert result.tid_set() == {0, 2}

    def test_peq_scores(self, cars, problems):
        brake = UncertainAttribute.from_labels(problems, {"Brake": 1.0})
        result = cars.execute(EqualityQuery(brake))
        scores = {m.tid: m.score for m in result}
        assert scores[0] == pytest.approx(0.5)
        assert scores[2] == pytest.approx(0.6)

    def test_petq_threshold_filters(self, cars, problems):
        brake = UncertainAttribute.from_labels(problems, {"Brake": 1.0})
        result = cars.execute(EqualityThresholdQuery(brake, 0.55))
        assert result.tid_set() == {2}

    def test_petq_inclusive_threshold(self, cars, problems):
        brake = UncertainAttribute.from_labels(problems, {"Brake": 1.0})
        result = cars.execute(EqualityThresholdQuery(brake, 0.5))
        assert result.tid_set() == {0, 2}

    def test_top_k_ordering(self, cars, problems):
        trans = UncertainAttribute.from_labels(problems, {"Trans": 1.0})
        result = cars.execute(EqualityTopKQuery(trans, 2))
        assert result.tids() == [3, 1]

    def test_top_k_excludes_zero_scores(self, cars, problems):
        trans = UncertainAttribute.from_labels(problems, {"Trans": 1.0})
        result = cars.execute(EqualityTopKQuery(trans, 10))
        assert result.tid_set() == {1, 3}

    def test_top_k_tie_break_by_tid(self, problems):
        relation = UncertainRelation(problems)
        for _ in range(3):
            relation.append(
                UncertainAttribute.from_labels(problems, {"Brake": 1.0})
            )
        brake = UncertainAttribute.from_labels(problems, {"Brake": 1.0})
        result = relation.execute(EqualityTopKQuery(brake, 2))
        assert result.tids() == [0, 1]


class TestSimilarityExecutors:
    def test_dstq(self, cars):
        q = cars.uda_of(0)
        result = cars.execute(SimilarityThresholdQuery(q, 0.0, "l1"))
        assert result.tid_set() == {0}

    def test_dstq_wide_threshold_returns_all(self, cars):
        q = cars.uda_of(0)
        result = cars.execute(SimilarityThresholdQuery(q, 2.1, "l1"))
        assert result.tid_set() == {0, 1, 2, 3}

    def test_ds_top_k_self_first(self, cars):
        q = cars.uda_of(1)
        result = cars.execute(SimilarityTopKQuery(q, 1, "l2"))
        assert result.tids() == [1]

    def test_unsupported_query_type(self, cars):
        with pytest.raises(QueryError):
            cars.execute("not a query")  # type: ignore[arg-type]


class TestStats:
    def test_naive_examines_every_tuple(self, cars, problems):
        brake = UncertainAttribute.from_labels(problems, {"Brake": 1.0})
        result = cars.execute(EqualityThresholdQuery(brake, 0.5))
        assert result.stats.candidates_examined == len(cars)
