"""The shared ``REPRO_*`` knob parser, and the four knobs routed through it.

Satellite of the serving-mode PR: a malformed ``REPRO_BATCH`` /
``REPRO_JOIN_BLOCK`` / ``REPRO_JOBS`` / ``REPRO_DECODED_CACHE`` must
raise a clear :class:`ValueError` *naming the variable*, never a bare
``int()`` traceback — operators set these in service unit files where a
nameless traceback is useless.
"""

import pytest

from repro.bench.parallel import JOBS_ENV, resolve_jobs
from repro.core import ConfigError, QueryError
from repro.core.config import (
    parse_choice_knob,
    parse_float_knob,
    parse_int_knob,
    read_env_choice,
    read_env_float,
    read_env_int,
)
from repro.exec import BATCH_ENV, JOIN_BLOCK_ENV, resolve_batch, resolve_join_block
from repro.storage import BACKEND_ENV, BACKEND_PATH_ENV
from repro.storage.buffer import DECODED_CACHE_ENV, BufferPool
from repro.storage.disk import DiskManager


class TestParseIntKnob:
    def test_parses_and_strips(self):
        assert parse_int_knob(" 12 ", "X") == 12

    def test_accepts_int_argument(self):
        assert parse_int_knob(3, "X", minimum=1) == 3

    @pytest.mark.parametrize("raw", ["three", "2.5", "", "0x10"])
    def test_non_integer_names_the_knob(self, raw):
        with pytest.raises(ConfigError, match="MY_KNOB"):
            parse_int_knob(raw, "MY_KNOB")

    def test_below_minimum_names_the_knob(self):
        with pytest.raises(ConfigError, match="MY_KNOB must be >= 1"):
            parse_int_knob(0, "MY_KNOB", minimum=1)

    def test_bool_rejected(self):
        with pytest.raises(ConfigError, match="MY_KNOB"):
            parse_int_knob(True, "MY_KNOB")

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            parse_int_knob("junk", "MY_KNOB")


class TestParseFloatKnob:
    def test_parses(self):
        assert parse_float_knob("2.5", "X") == 2.5

    @pytest.mark.parametrize("raw", ["soon", "", "nan"])
    def test_bad_values_name_the_knob(self, raw):
        with pytest.raises(ConfigError, match="MY_KNOB"):
            parse_float_knob(raw, "MY_KNOB")

    def test_below_minimum(self):
        with pytest.raises(ConfigError, match="MY_KNOB must be >= 0"):
            parse_float_knob(-1.0, "MY_KNOB", minimum=0.0)


class TestParseChoiceKnob:
    def test_normalizes_case_and_whitespace(self):
        assert parse_choice_knob(" MMap ", "X", choices=("mmap",)) == "mmap"

    def test_unknown_names_the_knob_and_lists_choices(self):
        with pytest.raises(ConfigError, match="MY_KNOB must be one of a, b"):
            parse_choice_knob("c", "MY_KNOB", choices=("a", "b"))

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            parse_choice_knob("c", "MY_KNOB", choices=("a",))


class TestReadEnv:
    def test_unset_returns_none(self):
        assert read_env_int("NO_SUCH_KNOB", environ={}) is None

    def test_special_words_and_case(self):
        env = {"K": " OFF "}
        assert read_env_int("K", special={"off": 0}, environ=env) == 0

    def test_special_none_means_unset(self):
        env = {"K": "default"}
        assert read_env_int("K", special={"default": None}, environ=env) is None

    def test_plain_value(self):
        assert read_env_int("K", minimum=1, environ={"K": "7"}) == 7

    def test_float_reader(self):
        assert read_env_float("K", environ={"K": "1.5"}) == 1.5

    def test_choice_reader(self):
        env = {"K": " Shm "}
        assert read_env_choice("K", choices=("mmap", "shm"), environ=env) == "shm"
        assert read_env_choice("K", choices=("mmap",), environ={}) is None
        with pytest.raises(ConfigError, match="K must be one of"):
            read_env_choice("K", choices=("mmap",), environ={"K": "disk"})


class TestBackendKnobs:
    """The ``REPRO_BACKEND`` / ``REPRO_BACKEND_PATH`` pair (storage PR)."""

    def test_default_is_simulated(self):
        from repro.storage import BackendSpec, spec_from_env

        assert spec_from_env(environ={}) == BackendSpec("simulated")
        assert spec_from_env(environ={BACKEND_ENV: "default"}) == BackendSpec(
            "simulated"
        )

    @pytest.mark.parametrize("raw", ["disk", "ram", "1", "mmap file"])
    def test_bad_backend_names_the_variable(self, raw):
        from repro.storage import spec_from_env

        with pytest.raises(ConfigError, match=BACKEND_ENV):
            spec_from_env(environ={BACKEND_ENV: raw})

    def test_backend_names_are_case_insensitive(self):
        from repro.storage import spec_from_env

        spec = spec_from_env(environ={BACKEND_ENV: " MMap "})
        assert spec.name == "mmap"

    def test_path_with_non_mmap_backend_is_an_error(self):
        from repro.storage import spec_from_env

        for name in ("simulated", "shm"):
            with pytest.raises(ConfigError, match=BACKEND_PATH_ENV):
                spec_from_env(
                    environ={BACKEND_ENV: name, BACKEND_PATH_ENV: "/tmp/x"}
                )
        # ...including when the backend is merely defaulted, not set.
        with pytest.raises(ConfigError, match=BACKEND_PATH_ENV):
            spec_from_env(environ={BACKEND_PATH_ENV: "/tmp/x"})

    def test_path_must_be_a_directory(self, tmp_path):
        from repro.storage import spec_from_env

        file_path = tmp_path / "not-a-dir"
        file_path.write_text("x")
        with pytest.raises(ConfigError, match="directory"):
            spec_from_env(
                environ={
                    BACKEND_ENV: "mmap",
                    BACKEND_PATH_ENV: str(file_path),
                }
            )

    def test_mmap_path_accepted(self, tmp_path):
        from repro.storage import BackendSpec, spec_from_env

        spec = spec_from_env(
            environ={BACKEND_ENV: "mmap", BACKEND_PATH_ENV: str(tmp_path)}
        )
        assert spec == BackendSpec("mmap", directory=str(tmp_path))

    def test_bad_spec_name_rejected_programmatically(self):
        from repro.storage import BackendSpec

        with pytest.raises(ConfigError):
            BackendSpec("turbodisk")

    def test_env_reaches_new_disks(self, monkeypatch, tmp_path):
        monkeypatch.setenv(BACKEND_ENV, "mmap")
        monkeypatch.setenv(BACKEND_PATH_ENV, str(tmp_path))
        disk = DiskManager(page_size=64)
        assert disk.backend.name == "mmap"
        assert disk.backend.path.parent == tmp_path
        disk.close()

    def test_bad_env_surfaces_at_disk_construction(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "turbodisk")
        with pytest.raises(ConfigError, match=BACKEND_ENV):
            DiskManager(page_size=64)
        assert read_env_float("K", environ={}) is None


class TestBatchKnob:
    @pytest.mark.parametrize("raw", ["sixteen", "2.5", "-3", "0"])
    def test_bad_env_names_variable(self, monkeypatch, raw):
        monkeypatch.setenv(BATCH_ENV, raw)
        with pytest.raises(ConfigError, match=BATCH_ENV):
            resolve_batch()

    def test_still_a_query_error(self, monkeypatch):
        # Backward compatibility: callers catching QueryError keep working.
        monkeypatch.setenv(BATCH_ENV, "junk")
        with pytest.raises(QueryError):
            resolve_batch()


class TestJoinBlockKnob:
    @pytest.mark.parametrize("raw", ["wide", "1.5", "-1", "0"])
    def test_bad_env_names_variable(self, monkeypatch, raw):
        monkeypatch.setenv(JOIN_BLOCK_ENV, raw)
        with pytest.raises(ConfigError, match=JOIN_BLOCK_ENV):
            resolve_join_block()


class TestJobsKnob:
    @pytest.mark.parametrize("raw", ["many", "3.5", "-2"])
    def test_bad_env_names_variable(self, monkeypatch, raw):
        monkeypatch.setenv(JOBS_ENV, raw)
        with pytest.raises(ConfigError, match=JOBS_ENV):
            resolve_jobs()

    def test_auto_and_zero_mean_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setenv(JOBS_ENV, "auto")
        assert resolve_jobs() == (os.cpu_count() or 1)
        monkeypatch.setenv(JOBS_ENV, "0")
        assert resolve_jobs() == (os.cpu_count() or 1)


class TestDecodedCacheKnob:
    @pytest.mark.parametrize("raw", ["big", "1.5", "-4"])
    def test_bad_env_names_variable(self, monkeypatch, raw):
        monkeypatch.setenv(DECODED_CACHE_ENV, raw)
        disk = DiskManager(page_size=64)
        with pytest.raises(ConfigError, match=DECODED_CACHE_ENV):
            BufferPool(disk, capacity=4)

    @pytest.mark.parametrize("raw", ["off", "false", "no", "disabled"])
    def test_disabling_words(self, monkeypatch, raw):
        monkeypatch.setenv(DECODED_CACHE_ENV, raw)
        disk = DiskManager(page_size=64)
        assert not BufferPool(disk, capacity=4).decoded.enabled
