"""Tests for :mod:`repro.core.divergence`."""

import numpy as np
import pytest

from repro.core import (
    DIVERGENCES,
    QueryError,
    UncertainAttribute,
    get_divergence,
    kl_divergence,
    l1_divergence,
    l2_divergence,
    symmetric_kl,
)
from repro.core.divergence import sparse_kl, sparse_l1, sparse_l2


@pytest.fixture()
def u():
    return UncertainAttribute.from_pairs([(0, 0.6), (1, 0.4)])


@pytest.fixture()
def v():
    return UncertainAttribute.from_pairs([(0, 0.4), (1, 0.6)])


class TestL1:
    def test_known_value(self, u, v):
        assert l1_divergence(u, v) == pytest.approx(0.4)

    def test_identity(self, u):
        assert l1_divergence(u, u) == 0.0

    def test_symmetry(self, u, v):
        assert l1_divergence(u, v) == l1_divergence(v, u)

    def test_disjoint_supports(self):
        a = UncertainAttribute.from_pairs([(0, 1.0)])
        b = UncertainAttribute.from_pairs([(1, 1.0)])
        assert l1_divergence(a, b) == pytest.approx(2.0)

    def test_maximum_is_two(self):
        # L1 between distributions is at most 2 (total variation x2).
        a = UncertainAttribute.from_pairs([(i, 0.25) for i in range(4)])
        b = UncertainAttribute.from_pairs([(i + 4, 0.25) for i in range(4)])
        assert l1_divergence(a, b) == pytest.approx(2.0)


class TestL2:
    def test_known_value(self, u, v):
        assert l2_divergence(u, v) == pytest.approx(np.sqrt(0.08))

    def test_identity(self, u):
        assert l2_divergence(u, u) == 0.0

    def test_symmetry(self, u, v):
        assert l2_divergence(u, v) == l2_divergence(v, u)

    def test_at_most_l1(self, u, v):
        assert l2_divergence(u, v) <= l1_divergence(u, v) + 1e-12


class TestKL:
    def test_identity(self, u):
        assert kl_divergence(u, u) == pytest.approx(0.0, abs=1e-12)

    def test_known_value(self, u, v):
        expected = 0.6 * np.log(0.6 / 0.4) + 0.4 * np.log(0.4 / 0.6)
        assert kl_divergence(u, v) == pytest.approx(expected, rel=1e-6)

    def test_asymmetric(self):
        a = UncertainAttribute.from_pairs([(0, 0.9), (1, 0.1)])
        b = UncertainAttribute.from_pairs([(0, 0.5), (1, 0.5)])
        assert kl_divergence(a, b) != pytest.approx(kl_divergence(b, a))

    def test_missing_support_is_finite(self):
        # The epsilon floor keeps KL finite when v misses u's items.
        a = UncertainAttribute.from_pairs([(0, 1.0)])
        b = UncertainAttribute.from_pairs([(1, 1.0)])
        value = kl_divergence(a, b)
        assert np.isfinite(value)
        assert value > 10  # log(1/epsilon) scale: clearly "far"

    def test_symmetric_kl(self, u, v):
        assert symmetric_kl(u, v) == pytest.approx(
            0.5 * (kl_divergence(u, v) + kl_divergence(v, u))
        )
        assert symmetric_kl(u, v) == symmetric_kl(v, u)


class TestSparseHelpers:
    def test_sparse_l1_empty_vectors(self):
        empty = np.empty(0, dtype=np.int64)
        none = np.empty(0)
        assert sparse_l1(empty, none, empty, none) == 0.0

    def test_sparse_l2_one_sided(self):
        empty = np.empty(0, dtype=np.int64)
        none = np.empty(0)
        items = np.array([0, 1])
        values = np.array([0.3, 0.4])
        assert sparse_l2(items, values, empty, none) == pytest.approx(0.5)

    def test_sparse_kl_empty_left_is_zero(self):
        empty = np.empty(0, dtype=np.int64)
        none = np.empty(0)
        assert sparse_kl(empty, none, np.array([0]), np.array([1.0])) == 0.0


class TestRegistry:
    def test_contains_all_measures(self):
        assert set(DIVERGENCES) >= {"l1", "l2", "kl", "symmetric_kl"}

    def test_lookup_case_insensitive(self):
        assert get_divergence("KL") is kl_divergence
        assert get_divergence("l1") is l1_divergence

    def test_unknown_name(self):
        with pytest.raises(QueryError, match="unknown divergence"):
            get_divergence("manhattan")
