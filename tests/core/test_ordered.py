"""Tests for :mod:`repro.core.ordered` (ordered-domain operators)."""

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CategoricalDomain, QueryError, UncertainAttribute, UncertainRelation
from repro.core.ordered import (
    expected_rank_difference,
    greater_than_probability,
    less_than_probability,
    windowed_equality_query,
    within_window_probability,
)

from tests.core.test_uda_properties import udas


def exhaustive_greater(u, v):
    return sum(
        up * vp
        for (ui, up), (vi, vp) in itertools.product(u.pairs(), v.pairs())
        if ui > vi
    )


def exhaustive_window(u, v, c):
    return sum(
        up * vp
        for (ui, up), (vi, vp) in itertools.product(u.pairs(), v.pairs())
        if abs(ui - vi) <= c
    )


class TestGreaterThan:
    def test_certain_values(self):
        three = UncertainAttribute.point(3)
        five = UncertainAttribute.point(5)
        assert greater_than_probability(five, three) == 1.0
        assert greater_than_probability(three, five) == 0.0
        assert greater_than_probability(three, three) == 0.0

    def test_known_value(self):
        u = UncertainAttribute.from_pairs([(1, 0.5), (3, 0.5)])
        v = UncertainAttribute.from_pairs([(2, 0.5), (4, 0.5)])
        # u>v only via (3,2): 0.5*0.5.
        assert greater_than_probability(u, v) == pytest.approx(0.25)

    def test_less_than_is_mirror(self):
        u = UncertainAttribute.from_pairs([(1, 0.5), (3, 0.5)])
        v = UncertainAttribute.from_pairs([(2, 0.5), (4, 0.5)])
        assert less_than_probability(u, v) == greater_than_probability(v, u)

    def test_empty_operand(self):
        empty = UncertainAttribute.from_pairs([])
        point = UncertainAttribute.point(1)
        assert greater_than_probability(empty, point) == 0.0


class TestWindow:
    def test_window_zero_is_equality(self):
        u = UncertainAttribute.from_pairs([(0, 0.6), (1, 0.4)])
        v = UncertainAttribute.from_pairs([(0, 0.4), (1, 0.6)])
        assert within_window_probability(u, v, 0) == pytest.approx(
            u.equality_probability(v)
        )

    def test_known_window(self):
        u = UncertainAttribute.point(3)
        v = UncertainAttribute.from_pairs([(1, 0.25), (2, 0.25), (4, 0.5)])
        assert within_window_probability(u, v, 1) == pytest.approx(0.75)

    def test_negative_window_rejected(self):
        u = UncertainAttribute.point(0)
        with pytest.raises(QueryError):
            within_window_probability(u, u, -1)

    def test_wide_window_reaches_total_mass(self):
        u = UncertainAttribute.from_pairs([(0, 0.5), (5, 0.5)])
        v = UncertainAttribute.from_pairs([(2, 1.0)])
        assert within_window_probability(u, v, 10) == pytest.approx(1.0)


class TestAgainstExhaustive:
    @given(udas(), udas())
    def test_greater_matches_exhaustive(self, u, v):
        assert greater_than_probability(u, v) == pytest.approx(
            exhaustive_greater(u, v), abs=1e-12
        )

    @given(udas(), udas(), st.integers(0, 5))
    def test_window_matches_exhaustive(self, u, v, c):
        assert within_window_probability(u, v, c) == pytest.approx(
            exhaustive_window(u, v, c), abs=1e-12
        )

    @given(udas(), udas())
    def test_trichotomy(self, u, v):
        u = u.normalized()
        v = v.normalized()
        total = (
            greater_than_probability(u, v)
            + less_than_probability(u, v)
            + u.equality_probability(v)
        )
        assert total == pytest.approx(1.0, abs=1e-6)


class TestWindowedQuery:
    @pytest.fixture()
    def relation(self):
        domain = CategoricalDomain.of_size(10)
        relation = UncertainRelation(domain)
        relation.append(UncertainAttribute.point(2))
        relation.append(UncertainAttribute.point(4))
        relation.append(UncertainAttribute.from_pairs([(3, 0.5), (8, 0.5)]))
        return relation

    def test_window_widens_answers(self, relation):
        q = UncertainAttribute.point(3)
        exact = windowed_equality_query(relation, q, 0.4, 0)
        relaxed = windowed_equality_query(relation, q, 0.4, 1)
        assert exact.tid_set() == {2}
        assert relaxed.tid_set() == {0, 1, 2}

    def test_threshold_validation(self, relation):
        q = UncertainAttribute.point(3)
        with pytest.raises(QueryError):
            windowed_equality_query(relation, q, 0.0, 1)


class TestExpectedRank:
    def test_sign(self):
        low = UncertainAttribute.from_pairs([(0, 0.5), (1, 0.5)])
        high = UncertainAttribute.from_pairs([(8, 0.5), (9, 0.5)])
        assert expected_rank_difference(high, low) > 0
        assert expected_rank_difference(low, high) < 0

    def test_empty_rejected(self):
        empty = UncertainAttribute.from_pairs([])
        with pytest.raises(QueryError):
            expected_rank_difference(empty, empty)
