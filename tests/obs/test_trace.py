"""Tests for tracing primitives, the record schema, and the reporter."""

import json

import pytest

from repro.obs import trace as trace_mod
from repro.obs.report import iter_jsonl, main as report_main, summarize
from repro.obs.schema import (
    SCHEMA,
    TraceSchemaError,
    validate_jsonl,
    validate_record,
    validate_records,
)
from repro.obs.trace import (
    MemorySink,
    Tracer,
    encode_record,
    resolve_trace_path,
    tracing,
    tracing_to_path,
)


class TestEncodeRecord:
    def test_keys_sorted_and_compact(self):
        line = encode_record({"kind": "pool.hit", "seq": 1, "page_id": 3})
        assert line == '{"kind":"pool.hit","page_id":3,"seq":1}'

    def test_equal_records_encode_to_equal_bytes(self):
        a = encode_record({"seq": 1, "kind": "disk.write", "page_id": 2})
        b = encode_record({"page_id": 2, "kind": "disk.write", "seq": 1})
        assert a == b

    def test_nan_is_rejected(self):
        with pytest.raises(ValueError):
            encode_record({"seq": 1, "kind": "strategy.stop", "bound": float("nan")})


class TestTracerAndSinks:
    def test_seq_starts_at_one_and_is_monotonic(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.event("pool.hit", page_id=1)
        tracer.event("pool.miss", page_id=2)
        assert [r["seq"] for r in sink.records] == [1, 2]

    def test_memory_sink_helpers(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.event("pool.hit", page_id=1)
        tracer.event("pool.hit", page_id=2)
        tracer.event("disk.read", page_id=2, tag="postings")
        assert len(sink) == 3
        assert sink.count("pool.hit") == 2
        assert sink.kinds() == {"pool.hit": 2, "disk.read": 1}
        assert [r["page_id"] for r in sink.of_kind("pool.hit")] == [1, 2]
        assert sink.jsonl_lines() == [encode_record(r) for r in sink.records]

    def test_tracing_installs_and_restores(self):
        assert trace_mod.ACTIVE is None
        tracer = Tracer(MemorySink())
        with tracing(tracer) as installed:
            assert installed is tracer
            assert trace_mod.ACTIVE is tracer
            inner = Tracer(MemorySink())
            with tracing(inner):
                assert trace_mod.ACTIVE is inner
            assert trace_mod.ACTIVE is tracer
        assert trace_mod.ACTIVE is None

    def test_tracing_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing(Tracer(MemorySink())):
                raise RuntimeError("boom")
        assert trace_mod.ACTIVE is None

    def test_tracing_to_path_writes_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing_to_path(path) as tracer:
            tracer.event("pool.miss", page_id=7)
            tracer.event("disk.read", page_id=7, tag="tuples")
        assert validate_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {
            "seq": 1,
            "kind": "pool.miss",
            "page_id": 7,
        }


class TestResolveTracePath:
    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv(trace_mod.TRACE_ENV, "/tmp/env.jsonl")
        assert resolve_trace_path("arg.jsonl") == "arg.jsonl"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(trace_mod.TRACE_ENV, "  env.jsonl  ")
        assert resolve_trace_path(None) == "env.jsonl"

    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv(trace_mod.TRACE_ENV, raising=False)
        assert resolve_trace_path(None) is None

    def test_blank_env_means_off(self, monkeypatch):
        monkeypatch.setenv(trace_mod.TRACE_ENV, "   ")
        assert resolve_trace_path(None) is None


def _ok(kind, **fields):
    return {"seq": 1, "kind": kind, **fields}


class TestSchemaValidation:
    def test_every_kind_has_a_spec_with_typed_fields(self):
        for kind, spec in SCHEMA.items():
            assert "." in kind
            for expected in {**spec.required, **spec.optional}.values():
                assert isinstance(expected, type)

    def test_valid_record_passes(self):
        validate_record(_ok("disk.read", page_id=3, tag="postings"))

    def test_optional_field_accepted(self):
        validate_record(
            _ok("strategy.begin", strategy="row_pruning", mode="threshold", tau=0.1)
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceSchemaError, match="unknown record kind"):
            validate_record(_ok("disk.levitate", page_id=1))

    def test_missing_required_field_rejected(self):
        with pytest.raises(TraceSchemaError, match="missing required"):
            validate_record(_ok("disk.read", page_id=3))

    def test_extra_field_rejected(self):
        with pytest.raises(TraceSchemaError, match="unexpected field"):
            validate_record(_ok("pool.hit", page_id=3, color="red"))

    def test_bool_not_accepted_for_int(self):
        with pytest.raises(TraceSchemaError, match="expected int"):
            validate_record(_ok("pool.hit", page_id=True))

    def test_int_accepted_for_float(self):
        validate_record(
            _ok("strategy.stop", strategy="highest_prob_first",
                reason="lemma1", bound=0, tau=1)
        )

    def test_wrong_type_rejected(self):
        with pytest.raises(TraceSchemaError, match="expected str"):
            validate_record(_ok("disk.read", page_id=3, tag=9))

    def test_pdr_verdict_enum_enforced(self):
        with pytest.raises(TraceSchemaError, match="verdict"):
            validate_record(
                _ok("pdr.verdict", child=1, bound=0.5, tau=0.1, verdict="maybe")
            )

    @pytest.mark.parametrize("seq", [0, -1, True, None, "1"])
    def test_bad_seq_rejected(self, seq):
        with pytest.raises(TraceSchemaError, match="seq"):
            validate_record({"seq": seq, "kind": "pool.hit", "page_id": 1})

    def test_non_object_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_record([1, 2, 3])

    def test_validate_records_counts(self):
        records = [
            _ok("pool.hit", page_id=1),
            _ok("pool.miss", page_id=2),
        ]
        assert validate_records(records) == 2

    def test_validate_jsonl_names_the_offending_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            encode_record(_ok("pool.hit", page_id=1))
            + "\n"
            + encode_record(_ok("pool.hit", page_id=1, extra=9))
            + "\n"
        )
        with pytest.raises(TraceSchemaError, match=":2:"):
            validate_jsonl(path)

    def test_validate_jsonl_rejects_non_json(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(TraceSchemaError, match="not valid JSON"):
            validate_jsonl(path)


class TestReport:
    def _trace_records(self):
        return [
            {"seq": 1, "kind": "query.begin", "structure": "inv-index",
             "query": "EqualityThresholdQuery", "strategy": "row_pruning"},
            {"seq": 2, "kind": "pool.miss", "page_id": 1},
            {"seq": 3, "kind": "disk.read", "page_id": 1, "tag": "postings"},
            {"seq": 4, "kind": "pool.hit", "page_id": 1},
            {"seq": 5, "kind": "strategy.stop", "strategy": "row_pruning",
             "reason": "row_cutoff", "bound": 0.05, "tau": 0.1},
            {"seq": 6, "kind": "query.end", "structure": "inv-index",
             "strategy": "row_pruning", "matches": 2},
        ]

    def test_summarize(self):
        summary = summarize(self._trace_records())
        assert summary["records"] == 6
        assert summary["reads_by_tag"] == {"postings": 1}
        assert summary["stop_reasons"] == {"row_pruning:row_cutoff": 1}
        assert summary["queries"] == {"inv-index/row_pruning": 1}
        assert summary["pool_hit_rate"] == pytest.approx(0.5)

    def test_summarize_rejects_invalid_records(self):
        records = self._trace_records()
        records[2]["surprise"] = 1
        with pytest.raises(TraceSchemaError):
            summarize(records)

    def test_iter_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            encode_record(_ok("pool.hit", page_id=1)) + "\n\n"
        )
        assert len(list(iter_jsonl(path))) == 1

    def test_main_validate_only_ok(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(
                encode_record(r) for r in self._trace_records()
            ) + "\n"
        )
        assert report_main([str(path), "--validate-only"]) == 0
        assert "schema OK" in capsys.readouterr().out

    def test_main_renders_tables(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(
                encode_record(r) for r in self._trace_records()
            ) + "\n"
        )
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "records: 6" in out
        assert "row_pruning:row_cutoff" in out

    def test_main_json_mode(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(encode_record(_ok("pool.hit", page_id=1)) + "\n")
        assert report_main([str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 1

    def test_main_nonzero_on_malformed_trace(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq":1,"kind":"disk.levitate"}\n')
        assert report_main([str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_main_nonzero_on_missing_file(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "absent.jsonl")]) == 1
        assert "error" in capsys.readouterr().err
