"""Tests for the observability layer (:mod:`repro.obs`)."""
