"""Tests for :mod:`repro.obs.metrics` (the counter registry)."""

import pytest

from repro.obs.metrics import METRICS, MetricsRegistry, hit_rate


class TestMetricsRegistry:
    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().get("never.incremented") == 0

    def test_inc_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.inc("pool.hit")
        registry.inc("pool.hit")
        assert registry.get("pool.hit") == 2

    def test_inc_with_count(self):
        registry = MetricsRegistry()
        registry.inc("disk.read", 5)
        assert registry.get("disk.read") == 5

    def test_snapshot_is_a_sorted_copy(self):
        registry = MetricsRegistry()
        registry.inc("b.second")
        registry.inc("a.first")
        snap = registry.snapshot()
        assert list(snap) == ["a.first", "b.second"]
        registry.inc("a.first")  # mutating the registry must not alter snap
        assert snap["a.first"] == 1

    def test_delta_since_reports_only_changes(self):
        registry = MetricsRegistry()
        registry.inc("pool.hit", 3)
        registry.inc("pool.miss", 1)
        snap = registry.snapshot()
        registry.inc("pool.hit", 2)
        registry.inc("disk.read")
        assert registry.delta_since(snap) == {"disk.read": 1, "pool.hit": 2}

    def test_delta_since_empty_when_unchanged(self):
        registry = MetricsRegistry()
        registry.inc("pool.hit")
        assert registry.delta_since(registry.snapshot()) == {}

    def test_merge_accumulates_a_delta(self):
        registry = MetricsRegistry()
        registry.inc("pool.hit", 2)
        registry.merge({"pool.hit": 3, "pool.miss": 1})
        assert registry.get("pool.hit") == 5
        assert registry.get("pool.miss") == 1

    def test_merge_of_delta_reconstructs_the_other_registry(self):
        source = MetricsRegistry()
        source.inc("disk.read", 7)
        source.inc("pool.evict", 2)
        target = MetricsRegistry()
        target.merge(source.delta_since({}))
        assert target.snapshot() == source.snapshot()

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.inc("pool.hit")
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot() == {}

    def test_len_and_repr(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("b")
        assert len(registry) == 2
        assert "2 counters" in repr(registry)

    def test_registry_hit_rate(self):
        registry = MetricsRegistry()
        registry.inc("pool.hit", 3)
        registry.inc("pool.miss", 1)
        assert registry.hit_rate("pool.hit", "pool.miss") == pytest.approx(0.75)

    def test_registry_hit_rate_zero_access(self):
        assert MetricsRegistry().hit_rate("pool.hit", "pool.miss") == 0.0


class TestHitRateFunction:
    def test_zero_accesses_is_zero_not_an_error(self):
        assert hit_rate(0, 0) == 0.0

    def test_all_hits(self):
        assert hit_rate(10, 0) == 1.0

    def test_all_misses(self):
        assert hit_rate(0, 10) == 0.0

    def test_ratio(self):
        assert hit_rate(1, 3) == pytest.approx(0.25)


def test_global_registry_exists():
    assert isinstance(METRICS, MetricsRegistry)
