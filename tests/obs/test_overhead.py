"""The zero-overhead-when-off guarantee, enforced as a tier-1 test.

The instrumentation contract is that disabled tracing costs *nothing*:
hot paths read the module global ``trace.ACTIVE`` and skip every bit of
event work — record construction included — when it is ``None``.  There
is deliberately no "no-op tracer" object: these tests poison
``Tracer.event`` and run real queries untraced, which would explode if
any code path called the tracer without the ``is not None`` guard.
"""

import pytest

from repro.core import EqualityThresholdQuery, EqualityTopKQuery
from repro.invindex import STRATEGIES, ProbabilisticInvertedIndex
from repro.obs import trace as trace_mod
from repro.obs.metrics import METRICS
from repro.obs.trace import MemorySink, Tracer, tracing
from repro.pdrtree import PDRTree
from repro.storage import BufferPool, FaultPlan, fault_plan

from tests.invindex.conftest import random_query, random_relation

DOMAIN_SIZE = 15


@pytest.fixture(scope="module")
def relation():
    return random_relation(250, DOMAIN_SIZE, seed=17)


@pytest.fixture(scope="module")
def index(relation):
    built = ProbabilisticInvertedIndex(len(relation.domain))
    built.build(relation)
    return built


@pytest.fixture(scope="module")
def tree(relation):
    built = PDRTree(len(relation.domain))
    built.build(relation)
    return built


def test_tracing_is_off_by_default():
    assert trace_mod.ACTIVE is None
    assert trace_mod.BENCH_COLLECTOR is None
    assert trace_mod.active_tracer() is None


def test_disabled_path_never_touches_the_tracer(monkeypatch, index, tree):
    """Poison Tracer.event: untraced queries must never reach it."""

    def boom(self, kind, **fields):  # pragma: no cover - must not run
        raise AssertionError(f"Tracer.event({kind!r}) called while disabled")

    monkeypatch.setattr(Tracer, "event", boom)
    assert trace_mod.ACTIVE is None
    query = EqualityThresholdQuery(random_query(DOMAIN_SIZE, seed=1), 0.1)
    top_k = EqualityTopKQuery(random_query(DOMAIN_SIZE, seed=2), 5)
    with fault_plan(FaultPlan()):
        for strategy in sorted(STRATEGIES):
            index.pool = BufferPool(index.disk, capacity=100)
            index.execute(query, strategy=strategy)
            index.execute(top_k, strategy=strategy)
        tree.pool = BufferPool(tree.disk, capacity=100)
        tree.execute(query)
        tree.execute(top_k)


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_tracing_does_not_change_io(index, strategy):
    """Reads with a tracer installed equal reads without one."""
    query = EqualityThresholdQuery(random_query(DOMAIN_SIZE, seed=3), 0.1)

    def reads(traced):
        index.pool = BufferPool(index.disk, capacity=100)
        before = index.disk.stats.snapshot()
        with fault_plan(FaultPlan()):
            if traced:
                with tracing(Tracer(MemorySink())):
                    result = index.execute(query, strategy=strategy)
            else:
                result = index.execute(query, strategy=strategy)
        return index.disk.stats.delta_since(before).reads, result.tids()

    untraced_reads, untraced_tids = reads(traced=False)
    traced_reads, traced_tids = reads(traced=True)
    assert traced_reads == untraced_reads
    assert traced_tids == untraced_tids


def test_metrics_accumulate_while_tracing_is_off(index):
    """The counter registry is the always-on half: no tracer required."""
    assert trace_mod.ACTIVE is None
    query = EqualityThresholdQuery(random_query(DOMAIN_SIZE, seed=4), 0.1)
    index.pool = BufferPool(index.disk, capacity=100)
    before = METRICS.snapshot()
    with fault_plan(FaultPlan()):
        index.execute(query, strategy="inv_index_search")
    delta = METRICS.delta_since(before)
    assert delta.get("disk.read", 0) > 0
    assert delta.get("pool.miss", 0) == delta["disk.read"]
    assert delta.get("strategy.stop.scan_complete", 0) == 1
