"""Trace-driven invariant tests: the paper's claims, checked per event.

Every test here executes real queries under an in-memory tracer and
asserts properties of the emitted event stream:

* a ``lemma1`` early stop is only ever claimed when the Lemma 1 bound is
  actually below the (dynamic) threshold;
* the pruning strategies never read more posting pages than the
  exhaustive ``inv_index_search`` on the same query;
* every buffer-pool miss corresponds to exactly one physical disk read;
* every PDR-tree descend/prune verdict is consistent with Lemma 2, and
  the traversal only visits pages it previously decided to descend into.

Traces are captured with a fresh 100-frame buffer pool per execution
(the paper's measurement protocol) and a zero fault plan, so the streams
are deterministic.
"""

import pytest

from repro.core import EqualityThresholdQuery, EqualityTopKQuery
from repro.core.joins import petj
from repro.invindex import STRATEGIES, ProbabilisticInvertedIndex
from repro.obs.schema import PDR_VERDICTS, validate_records
from repro.obs.trace import MemorySink, Tracer, tracing
from repro.pdrtree import PDRTree
from repro.pdrtree.tree import EPSILON
from repro.storage import BufferPool, FaultPlan, fault_plan

from tests.invindex.conftest import random_query, random_relation

ALL_STRATEGIES = sorted(STRATEGIES)
DOMAIN_SIZE = 20
QUERY_SEEDS = range(6)
TAUS = (0.05, 0.1, 0.3)
K = 5


@pytest.fixture(scope="module")
def relation():
    return random_relation(300, DOMAIN_SIZE, seed=11)


@pytest.fixture(scope="module")
def index(relation):
    built = ProbabilisticInvertedIndex(len(relation.domain))
    built.build(relation)
    return built


@pytest.fixture(scope="module")
def tree(relation):
    built = PDRTree(len(relation.domain))
    built.build(relation)
    return built


def run_traced(index, query, strategy=None):
    """Execute ``query`` on a fresh 100-frame pool, returning the trace."""
    index.pool = BufferPool(index.disk, capacity=100)
    sink = MemorySink()
    with fault_plan(FaultPlan()), tracing(Tracer(sink)):
        if strategy is not None:
            result = index.execute(query, strategy=strategy)
        else:
            result = index.execute(query)
    validate_records(sink.records)
    return sink, result


def threshold_queries():
    for seed in QUERY_SEEDS:
        for tau in TAUS:
            yield EqualityThresholdQuery(random_query(DOMAIN_SIZE, seed), tau)


def posting_reads(sink):
    """Physical posting-page reads in one trace."""
    return sum(1 for r in sink.of_kind("disk.read") if r["tag"] == "postings")


class TestLemma1EarlyStop:
    def test_lemma1_claimed_only_when_bound_below_tau(self, index):
        """Reason ``lemma1`` must come with a bound strictly under tau."""
        lemma1_stops = 0
        for strategy in ALL_STRATEGIES:
            for query in threshold_queries():
                sink, _ = run_traced(index, query, strategy)
                for stop in sink.of_kind("strategy.stop"):
                    if stop["reason"] == "lemma1":
                        lemma1_stops += 1
                        assert stop["bound"] < stop["tau"], stop
        # Non-vacuous: the workload must actually trigger early stops.
        assert lemma1_stops > 0

    def test_lemma1_in_top_k_mode_uses_dynamic_threshold(self, index):
        lemma1_stops = 0
        for seed in QUERY_SEEDS:
            query = EqualityTopKQuery(random_query(DOMAIN_SIZE, seed), K)
            for strategy in ("highest_prob_first", "no_random_access"):
                sink, result = run_traced(index, query, strategy)
                for stop in sink.of_kind("strategy.stop"):
                    if stop["reason"] == "lemma1":
                        lemma1_stops += 1
                        assert stop["bound"] < stop["tau"], stop
                        if strategy == "highest_prob_first":
                            # The dynamic threshold is the k-th best score.
                            assert stop["tau"] == pytest.approx(
                                result.matches[K - 1].score
                            )
        assert lemma1_stops > 0

    def test_row_cutoff_bound_below_tau(self, index):
        cutoffs = 0
        for query in threshold_queries():
            sink, _ = run_traced(index, query, "row_pruning")
            for stop in sink.of_kind("strategy.stop"):
                if stop["reason"] == "row_cutoff":
                    cutoffs += 1
                    assert stop["bound"] < stop["tau"], stop
        assert cutoffs > 0

    def test_exactly_one_stop_per_query(self, index):
        """Every strategy run terminates with exactly one stop record."""
        for strategy in ALL_STRATEGIES:
            for query in threshold_queries():
                sink, _ = run_traced(index, query, strategy)
                assert sink.count("strategy.begin") == 1
                assert sink.count("strategy.stop") == 1
                (begin,) = sink.of_kind("strategy.begin")
                (stop,) = sink.of_kind("strategy.stop")
                assert begin["strategy"] == stop["strategy"] == strategy


class TestPruningNeverReadsMore:
    @pytest.mark.parametrize("pruning", ["row_pruning", "column_pruning"])
    def test_threshold_posting_reads_bounded_by_exhaustive(
        self, index, pruning
    ):
        """Pruning is a subset of the exhaustive scan, page for page."""
        for query in threshold_queries():
            baseline, base_result = run_traced(index, query, "inv_index_search")
            pruned, pruned_result = run_traced(index, query, pruning)
            assert posting_reads(pruned) <= posting_reads(baseline)
            # And pruning must not change the answer.
            assert [(m.tid, m.score) for m in pruned_result] == [
                (m.tid, m.score) for m in base_result
            ]

    @pytest.mark.parametrize("pruning", ["row_pruning", "column_pruning"])
    def test_top_k_posting_reads_bounded_by_exhaustive(self, index, pruning):
        for seed in QUERY_SEEDS:
            query = EqualityTopKQuery(random_query(DOMAIN_SIZE, seed), K)
            baseline, _ = run_traced(index, query, "inv_index_search")
            pruned, _ = run_traced(index, query, pruning)
            assert posting_reads(pruned) <= posting_reads(baseline)


class TestStorageConsistency:
    def test_pool_misses_equal_disk_reads(self, index, tree):
        """Under a zero fault plan every miss is exactly one physical read."""
        for query in threshold_queries():
            for strategy in ALL_STRATEGIES:
                sink, _ = run_traced(index, query, strategy)
                assert sink.count("pool.miss") == sink.count("disk.read")
                assert sink.count("pool.retry") == 0
            sink, _ = run_traced(tree, query)
            assert sink.count("pool.miss") == sink.count("disk.read")

    def test_misses_and_hits_partition_fetches(self, index):
        """Each fetched page's first touch is a miss; later ones are hits."""
        query = next(iter(threshold_queries()))
        sink, _ = run_traced(index, query, "inv_index_search")
        seen = set()
        for record in sink.records:
            if record["kind"] == "pool.miss":
                assert record["page_id"] not in seen
                seen.add(record["page_id"])
            elif record["kind"] == "pool.hit":
                assert record["page_id"] in seen

    def test_query_begin_and_end_bracket_the_trace(self, index):
        query = next(iter(threshold_queries()))
        sink, result = run_traced(index, query, "highest_prob_first")
        assert sink.records[0]["kind"] == "query.begin"
        assert sink.records[-1]["kind"] == "query.end"
        assert sink.records[0]["structure"] == "inv-index"
        assert sink.records[0]["strategy"] == "highest_prob_first"
        assert sink.records[-1]["matches"] == len(result)

    def test_metrics_delta_matches_trace_histogram(self, index):
        """The always-on counters are the per-kind histogram of the trace."""
        from repro.obs.metrics import METRICS

        query = next(iter(threshold_queries()))
        index.pool = BufferPool(index.disk, capacity=100)
        sink = MemorySink()
        before = METRICS.snapshot()
        with fault_plan(FaultPlan()), tracing(Tracer(sink)):
            index.execute(query, strategy="highest_prob_first")
        delta = METRICS.delta_since(before)
        kinds = sink.kinds()
        for kind in ("disk.read", "pool.hit", "pool.miss", "cursor.advance",
                     "verify.random_access"):
            assert delta.get(kind, 0) == kinds.get(kind, 0)
        (stop,) = sink.of_kind("strategy.stop")
        assert delta.get("strategy.stop." + stop["reason"]) == 1


class TestPDRTreeVerdicts:
    def test_verdicts_consistent_with_lemma2(self, tree):
        prunes = 0
        # High thresholds included: boundary bounds are generous maxima,
        # so pruning only kicks in once tau clears most subtree bounds.
        high_tau_queries = (
            EqualityThresholdQuery(random_query(DOMAIN_SIZE, seed), tau)
            for seed in QUERY_SEEDS
            for tau in (0.5, 0.8, 0.95)
        )
        for query in (*threshold_queries(), *high_tau_queries):
            sink, _ = run_traced(tree, query)
            for verdict in sink.of_kind("pdr.verdict"):
                assert verdict["verdict"] in PDR_VERDICTS
                if verdict["verdict"] == "descend":
                    assert verdict["bound"] >= verdict["tau"] - EPSILON
                else:
                    prunes += 1
                    assert verdict["bound"] < verdict["tau"]
        assert prunes > 0

    def test_top_k_verdicts_consistent(self, tree):
        for seed in QUERY_SEEDS:
            query = EqualityTopKQuery(random_query(DOMAIN_SIZE, seed), K)
            sink, _ = run_traced(tree, query)
            for verdict in sink.of_kind("pdr.verdict"):
                if verdict["verdict"] == "descend":
                    assert verdict["bound"] >= verdict["tau"] - EPSILON
                else:
                    assert verdict["bound"] < verdict["tau"]

    def test_only_descended_children_are_visited(self, tree):
        """Every visited non-root page was the subject of a descend verdict."""
        for query in threshold_queries():
            sink, _ = run_traced(tree, query)
            visits = sink.of_kind("pdr.visit")
            descended = {
                v["child"]
                for v in sink.of_kind("pdr.verdict")
                if v["verdict"] == "descend"
            }
            root = visits[0]["page_id"]
            for visit in visits[1:]:
                assert visit["page_id"] in descended or visit["page_id"] == root


class TestJoinTracing:
    def test_petj_probe_events(self, relation, index):
        left = random_relation(5, DOMAIN_SIZE, seed=3)
        sink = MemorySink()
        with fault_plan(FaultPlan()), tracing(Tracer(sink)):
            index.pool = BufferPool(index.disk, capacity=100)
            result = petj(left, relation, 0.3, right_index=index)
        validate_records(sink.records)
        assert sink.count("join.begin") == 1
        assert sink.count("join.probe") == len(list(left.tids()))
        (end,) = sink.of_kind("join.end")
        assert end["probes"] == result.num_probes
        assert end["pairs"] == len(result)
        # Every probe runs a full inner query under the tracer.
        assert sink.count("query.begin") == end["probes"]


class TestBlockJoinTracing:
    def _run_blocked(self, relation, index, block_size, *, kind="petj", k=4):
        from repro.exec import BlockJoinExecutor

        left = random_relation(18, DOMAIN_SIZE, seed=3)
        sink = MemorySink()
        with fault_plan(FaultPlan()), tracing(Tracer(sink)):
            index.pool = BufferPool(index.disk, capacity=100)
            engine = BlockJoinExecutor(relation, index, block_size=block_size)
            if kind == "petj":
                result = engine.petj(left, 0.3)
            else:
                result = engine.pej_top_k(left, k)
        validate_records(sink.records)
        return sink, result, len(left)

    def test_blocks_bracket_every_probe(self, relation, index):
        """block_begin/block_end pair up, cover all probes, and the join
        brackets survive around them."""
        sink, result, outer = self._run_blocked(relation, index, 5)
        begins = sink.of_kind("join.block_begin")
        ends = sink.of_kind("join.block_end")
        assert len(begins) == len(ends) == -(-outer // 5)
        assert [b["block"] for b in begins] == [e["block"] for e in ends]
        assert sum(b["size"] for b in begins) == outer
        assert sink.count("join.probe") == outer
        assert sink.count("join.begin") == 1
        assert sink.count("join.end") == 1

    def test_shared_pages_have_multiple_probes(self, relation, index):
        """A join.shared_page record's sharer count is >= 2 by definition."""
        sink, _, _ = self._run_blocked(relation, index, 6, kind="topk")
        for record in sink.of_kind("join.shared_page"):
            assert record["probes"] >= 2

    def test_block_one_trace_matches_per_probe_join(self, relation, index):
        """Default-config block size 1 emits byte-identical records to the
        legacy per-probe join — the engine delegates outright."""
        from repro.exec import BlockJoinExecutor

        left = random_relation(6, DOMAIN_SIZE, seed=3)

        def run(use_engine):
            sink = MemorySink()
            with fault_plan(FaultPlan()), tracing(Tracer(sink)):
                index.pool = BufferPool(index.disk, capacity=100)
                if use_engine:
                    BlockJoinExecutor(relation, index, block_size=1).petj(
                        left, 0.3
                    )
                else:
                    petj(left, relation, 0.3, right_index=index)
            return sink.jsonl_lines()

        assert run(True) == run(False)

    def test_adaptive_tau_never_reads_more_posting_pages(self, relation, index):
        """The raised bound may only *save* posting I/O vs the fixed path."""
        from repro.exec import BlockJoinExecutor

        left = random_relation(18, DOMAIN_SIZE, seed=3)

        def run(adaptive):
            sink = MemorySink()
            with fault_plan(FaultPlan()), tracing(Tracer(sink)):
                index.pool = BufferPool(index.disk, capacity=100)
                engine = BlockJoinExecutor(
                    relation,
                    index,
                    block_size=6,
                    pool_size=100,
                    adaptive_tau=adaptive,
                )
                result = engine.pej_top_k(left, 4)
            validate_records(sink.records)
            return sink, [(p.left_tid, p.right_tid, p.score) for p in result]

        adaptive_sink, adaptive_pairs = run(True)
        fixed_sink, fixed_pairs = run(False)
        assert adaptive_pairs == fixed_pairs
        assert posting_reads(adaptive_sink) <= posting_reads(fixed_sink)
        assert adaptive_sink.count("join.tau_raised") > 0
        assert fixed_sink.count("join.tau_raised") == 0
