"""Uncertain discrete attributes (UDAs).

A UDA is a probability distribution over a categorical domain
(Definition 1).  Because distributions are typically sparse, we store only
the pairs ``{(d, p) : Pr(u = d) = p, p != 0}`` — the "set of pairs"
representation the paper adopts — as two parallel, item-sorted NumPy
arrays.

Probabilities are quantized to ``float32`` precision at construction time
so that a UDA round-trips bit-exactly through the on-page layout
(:mod:`repro.storage.serialization`); all arithmetic is then carried out in
``float64``.  The model permits total mass below one ("the sum can be < 1
in the case of missing values", Section 2, footnote 2).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from repro.core import kernels
from repro.core.domain import CategoricalDomain
from repro.core.exceptions import DomainError, InvalidDistributionError

#: Tolerance on the "total mass <= 1" constraint, sized for float32 rounding.
MASS_TOLERANCE = 1e-4


def sparse_dot_fsum(
    left_items: np.ndarray,
    left_values: np.ndarray,
    right_items: np.ndarray,
    right_values: np.ndarray,
) -> float:
    """Canonical sparse dot product: correctly rounded, order-independent.

    Both item arrays must be strictly ascending.  This single function
    computes every probabilistic score in the library, which is what
    makes naive and indexed executors agree bit-for-bit.
    """
    if len(left_items) == 0 or len(right_items) == 0:
        return 0.0
    common, left_pos, right_pos = np.intersect1d(
        left_items, right_items, assume_unique=True, return_indices=True
    )
    if len(common) == 0:
        return 0.0
    return math.fsum((left_values[left_pos] * right_values[right_pos]).tolist())


class _DenseScorer:
    """Dense gather replacement for repeated sparse dots against one side.

    Scoring a query against thousands of candidates recomputes the same
    sorted-array intersection each time.  This table trades the
    intersection for one gather: items outside the query's support (or
    beyond it — ``take`` clips onto a trailing guard zero) contribute a
    product of exactly ``+0.0``, and ``math.fsum`` is the *correctly
    rounded* sum of its inputs, so appending exact zeros cannot change
    the result — the score stays bit-identical to
    :func:`sparse_dot_fsum`.
    """

    __slots__ = ("_table",)

    def __init__(self, items: np.ndarray, values: np.ndarray) -> None:
        table = np.zeros(int(items[-1]) + 2)
        table[items] = values
        self._table = table

    def score(self, items: np.ndarray, values: np.ndarray) -> float:
        products = self._table.take(items, mode="clip") * values
        return math.fsum(products.tolist())


class QueryVector:
    """A sparse non-negative weight vector used as a query.

    Structurally a read-only sibling of :class:`UncertainAttribute`
    (same ``items``/``probs`` surface, same canonical scoring) but
    without the "mass at most one" constraint — window-expanded equality
    queries weight an item once per nearby query item, so their mass can
    exceed one.  Search strategies accept either type.
    """

    __slots__ = ("items", "probs", "_scorer")

    def __init__(self, items: np.ndarray, probs: np.ndarray) -> None:
        items = np.asarray(items, dtype=np.int64)
        probs = np.asarray(probs, dtype=np.float64)
        if items.shape != probs.shape or items.ndim != 1:
            raise InvalidDistributionError(
                "query vector items/probs must be 1-D and equally long"
            )
        if len(items) and np.any(items[:-1] >= items[1:]):
            raise InvalidDistributionError(
                "query vector items must be strictly ascending"
            )
        if np.any(probs <= 0.0):
            raise InvalidDistributionError(
                "query vector weights must be positive"
            )
        items.setflags(write=False)
        probs.setflags(write=False)
        self.items = items
        self.probs = probs
        self._scorer: _DenseScorer | None = None

    @property
    def nnz(self) -> int:
        """Number of non-zero weights."""
        return len(self.items)

    @property
    def total_mass(self) -> float:
        """Sum of the weights (may exceed one)."""
        return float(self.probs.sum())

    def pairs(self) -> Iterator[tuple[int, float]]:
        """Iterate ``(item, weight)`` in ascending item order."""
        for item, prob in zip(self.items.tolist(), self.probs.tolist()):
            yield item, prob

    def pairs_by_probability(self) -> list[tuple[int, float]]:
        """``(item, weight)`` pairs sorted by descending weight."""
        order = np.lexsort((self.items, -self.probs))
        return [(int(self.items[i]), float(self.probs[i])) for i in order]

    def equality_with_arrays(self, items: np.ndarray, probs: np.ndarray) -> float:
        """Canonical weighted score against raw sparse arrays.

        The kernel mode is consulted once per instance (the env lookup is
        too costly for a per-candidate loop); a scorer built under the
        vectorized mode keeps serving if the mode later flips mid-object,
        which is safe because both paths are bit-identical.
        """
        scorer = self._scorer
        if scorer is not None:
            return scorer.score(items, probs)
        if kernels.vectorized() and self.nnz:
            self._scorer = _DenseScorer(self.items, self.probs)
            return self._scorer.score(items, probs)
        return sparse_dot_fsum(self.items, self.probs, items, probs)

    def equality_probability(self, other: "UncertainAttribute") -> float:
        """Canonical weighted score against a UDA."""
        return self.equality_with_arrays(other.items, other.probs)

    def __repr__(self) -> str:
        return f"QueryVector(nnz={self.nnz}, mass={self.total_mass:.3f})"


class UncertainAttribute:
    """A sparse probability distribution over a categorical domain.

    Instances are immutable.  Prefer the ``from_*`` constructors; the raw
    constructor expects *item-sorted, strictly positive, deduplicated*
    arrays and validates them.

    Parameters
    ----------
    items:
        Domain indices with non-zero probability, strictly ascending.
    probs:
        The matching probabilities, each in ``(0, 1]``, summing to at
        most one (within tolerance).

    Examples
    --------
    >>> u = UncertainAttribute.from_pairs([(0, 0.5), (1, 0.5)])
    >>> v = UncertainAttribute.from_pairs([(1, 0.4), (2, 0.6)])
    >>> round(u.equality_probability(v), 2)
    0.2
    """

    __slots__ = ("items", "probs", "_scorer")

    def __init__(self, items: np.ndarray, probs: np.ndarray) -> None:
        items = np.asarray(items, dtype=np.int64)
        # Quantize to float32 precision so on-page storage is lossless.
        probs = np.asarray(probs, dtype=np.float32).astype(np.float64)
        if items.shape != probs.shape or items.ndim != 1:
            raise InvalidDistributionError(
                f"items {items.shape} and probs {probs.shape} must be "
                "1-D arrays of equal length"
            )
        if len(items) > 0:
            if np.any(items[:-1] >= items[1:]):
                raise InvalidDistributionError(
                    "items must be strictly ascending (sorted, no duplicates)"
                )
            if items[0] < 0:
                raise InvalidDistributionError("item indices must be >= 0")
            if np.any(probs <= 0.0) or np.any(probs > 1.0):
                raise InvalidDistributionError(
                    "probabilities must lie in (0, 1]"
                )
            total = float(probs.sum())
            if total > 1.0 + MASS_TOLERANCE:
                raise InvalidDistributionError(
                    f"total probability mass {total:.6f} exceeds 1"
                )
        items.setflags(write=False)
        probs.setflags(write=False)
        self.items = items
        self.probs = probs
        self._scorer: _DenseScorer | None = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[int, float]] | Mapping[int, float]
    ) -> "UncertainAttribute":
        """Build from ``(item_index, probability)`` pairs in any order.

        Zero-probability pairs are dropped; duplicate items are an error.
        """
        if isinstance(pairs, Mapping):
            pairs = list(pairs.items())
        else:
            pairs = list(pairs)
        pairs = [(item, p) for item, p in pairs if p != 0.0]
        if not pairs:
            return cls(np.empty(0, dtype=np.int64), np.empty(0))
        pairs.sort(key=lambda pair: pair[0])
        items = np.array([item for item, _ in pairs], dtype=np.int64)
        if len(np.unique(items)) != len(items):
            raise InvalidDistributionError("duplicate item in pairs")
        probs = np.array([p for _, p in pairs], dtype=np.float64)
        return cls(items, probs)

    @classmethod
    def from_labels(
        cls, domain: CategoricalDomain, assignment: Mapping[str, float]
    ) -> "UncertainAttribute":
        """Build from ``{label: probability}`` against ``domain``.

        Example: ``from_labels(problems, {"Brake": 0.5, "Tires": 0.5})``
        mirrors Table 1(a) of the paper.
        """
        return cls.from_pairs(
            {domain.index_of(label): p for label, p in assignment.items()}
        )

    @classmethod
    def from_dense(cls, vector: np.ndarray) -> "UncertainAttribute":
        """Build from a dense probability vector (zeros are dropped)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1:
            raise InvalidDistributionError("dense vector must be 1-D")
        items = np.nonzero(vector)[0].astype(np.int64)
        return cls(items, vector[items])

    @classmethod
    def point(cls, item: int) -> "UncertainAttribute":
        """A certain value: all mass on one item (e.g. ``{(Trans, 1.0)}``)."""
        return cls(np.array([item], dtype=np.int64), np.array([1.0]))

    # -- basic accessors -----------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of items with non-zero probability."""
        return len(self.items)

    @property
    def total_mass(self) -> float:
        """Sum of stored probabilities (at most 1 within tolerance)."""
        return float(self.probs.sum())

    def probability_of(self, item: int) -> float:
        """``Pr(u = d_item)``; zero when the item is not in the support."""
        position = np.searchsorted(self.items, item)
        if position < len(self.items) and self.items[position] == item:
            return float(self.probs[position])
        return 0.0

    def support(self) -> np.ndarray:
        """Domain indices with non-zero probability (ascending copy)."""
        return self.items.copy()

    def pairs(self) -> Iterator[tuple[int, float]]:
        """Iterate ``(item, probability)`` in ascending item order."""
        for item, prob in zip(self.items.tolist(), self.probs.tolist()):
            yield item, prob

    def pairs_by_probability(self) -> list[tuple[int, float]]:
        """``(item, probability)`` pairs sorted by descending probability.

        Ties broken by ascending item, matching posting-key order.
        """
        order = np.lexsort((self.items, -self.probs))
        return [
            (int(self.items[i]), float(self.probs[i])) for i in order
        ]

    def mode(self) -> tuple[int, float]:
        """The most likely item and its probability."""
        if self.nnz == 0:
            raise InvalidDistributionError("empty distribution has no mode")
        best = int(np.argmax(self.probs))
        return int(self.items[best]), float(self.probs[best])

    def to_dense(self, domain_size: int) -> np.ndarray:
        """Expand to a dense vector of length ``domain_size``."""
        if self.nnz and self.items[-1] >= domain_size:
            raise DomainError(
                f"item {int(self.items[-1])} outside domain of size "
                f"{domain_size}"
            )
        dense = np.zeros(domain_size)
        dense[self.items] = self.probs
        return dense

    def to_dict(self) -> dict[int, float]:
        """Return ``{item: probability}``."""
        return dict(self.pairs())

    # -- probabilistic operators ---------------------------------------------------

    def equality_probability(self, other: "UncertainAttribute") -> float:
        """``Pr(u = v) = sum_i u.p_i * v.p_i`` (Definition 2).

        This is the canonical equality computation used by the naive
        executor and by every index structure.  The products are combined
        with :func:`math.fsum`, whose result is the *correctly rounded*
        real sum and therefore independent of summation order — so any
        executor that gathers the same products (in any order) computes a
        bit-identical probability.
        """
        return self.equality_with_arrays(other.items, other.probs)

    def equality_with_arrays(self, items: np.ndarray, probs: np.ndarray) -> float:
        """:meth:`equality_probability` against raw sparse arrays.

        ``items`` must be strictly ascending with no duplicates (the
        stored UDA layout guarantees this).  Index executors score
        decoded page entries through this method so their probabilities
        are bit-identical to the naive executor's.  The vectorized kernel
        mode scores through a cached :class:`_DenseScorer` (built on
        first use, so only the query side of repeated scoring pays for
        it); the scalar mode keeps the intersection-based seed path.  The
        mode is consulted once per instance — a scorer built under the
        vectorized mode keeps serving if the mode later flips mid-object,
        which is safe because both paths are bit-identical.
        """
        scorer = self._scorer
        if scorer is not None:
            return scorer.score(items, probs)
        if kernels.vectorized() and self.nnz:
            self._scorer = _DenseScorer(self.items, self.probs)
            return self._scorer.score(items, probs)
        return sparse_dot_fsum(self.items, self.probs, items, probs)

    def entropy(self) -> float:
        """Shannon entropy in nats over the stored support."""
        if self.nnz == 0:
            return 0.0
        return float(-np.sum(self.probs * np.log(self.probs)))

    def normalized(self) -> "UncertainAttribute":
        """Rescale so the total mass is exactly one."""
        total = self.total_mass
        if total <= 0.0:
            raise InvalidDistributionError("cannot normalize zero mass")
        return UncertainAttribute(self.items.copy(), self.probs / total)

    def sample(self, rng: np.random.Generator) -> int:
        """Draw the attribute's actual value (missing mass raises)."""
        total = self.total_mass
        if abs(total - 1.0) > MASS_TOLERANCE:
            raise InvalidDistributionError(
                f"cannot sample from mass {total:.6f} != 1; normalize first"
            )
        return int(rng.choice(self.items, p=self.probs / total))

    # -- equality / hashing -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainAttribute):
            return NotImplemented
        return (
            self.items.shape == other.items.shape
            and bool(np.all(self.items == other.items))
            and bool(np.all(self.probs == other.probs))
        )

    def __hash__(self) -> int:
        return hash((self.items.tobytes(), self.probs.tobytes()))

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        shown = ", ".join(
            f"({item}, {prob:.3f})" for item, prob in list(self.pairs())[:4]
        )
        suffix = ", ..." if self.nnz > 4 else ""
        return f"UncertainAttribute([{shown}{suffix}])"
