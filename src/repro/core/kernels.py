"""Vectorized scoring kernels (and the scalar/vectorized mode switch).

The search strategies decode posting pages into NumPy arrays, but the
seed implementation immediately fell back to per-posting Python loops
(``tids.tolist()``).  This module provides block-wise replacements that
are *bit-identical* to the scalar bookkeeping they replace:

* :func:`exact_scores` — grouped score accumulation.  Scores everywhere
  in the library are correctly rounded sums (``math.fsum``) of the
  per-list products, so the kernel groups products by tid and applies
  ``fsum`` per group (with a direct-assignment fast path for tids that
  occur in exactly one list).  A naive ``np.add.at`` would accumulate
  with sequential rounding and break bit-identity.
* :func:`block_scores` — the join-block generalization of
  :func:`exact_scores`: one grouped ``fsum`` over composite
  ``(outer row, tid)`` keys, scoring a whole block of outer tuples
  against the shared posting scan in a single call.
* :class:`SeenFilter` — sorted-array membership replacing the
  ``if tid in seen`` hot loop, preserving first-encounter order (the
  order determines random-access order and therefore counted page
  reads).
* :func:`masked_lacks` — per-candidate NRA "lack" bounds via a
  per-unique-bitmask ``fsum`` lookup table, exactly matching the scalar
  per-candidate ``fsum``.
* :class:`CandidatePool` — insertion-ordered NRA candidate store with
  vectorized run updates (bitmask bookkeeping, tombstones).
* :func:`kth_largest` / :func:`top_k_matches` — selection without
  arithmetic (``np.partition``), so thresholds and tie-breaks are the
  exact values the scalar ``sorted(...)`` code would produce.

The ``REPRO_KERNEL`` environment variable selects the implementation
(``vectorized`` is the default; ``scalar`` keeps the seed code paths
alive for the differential test suite), and :func:`kernel_override`
scopes a choice to a block of code.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager

import numpy as np

from repro.core.exceptions import QueryError

#: Environment variable selecting the kernel implementation.
KERNEL_ENV = "REPRO_KERNEL"

#: Recognized kernel modes.
KERNEL_MODES = ("vectorized", "scalar")

#: Process-local override installed by :func:`kernel_override`.
_OVERRIDE: str | None = None


def kernel_mode() -> str:
    """The active kernel mode: override, else ``REPRO_KERNEL``, else vectorized."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    raw = os.environ.get(KERNEL_ENV, "").strip().lower()
    if raw in ("", "default", "on"):
        return "vectorized"
    if raw not in KERNEL_MODES:
        raise QueryError(
            f"{KERNEL_ENV} must be one of {KERNEL_MODES}, got {raw!r}"
        )
    return raw


def vectorized() -> bool:
    """Whether the vectorized kernels are active."""
    return kernel_mode() == "vectorized"


@contextmanager
def kernel_override(mode: str):
    """Scope a kernel mode to a block (used by tests and worker processes)."""
    global _OVERRIDE
    if mode not in KERNEL_MODES:
        raise QueryError(
            f"kernel mode must be one of {KERNEL_MODES}, got {mode!r}"
        )
    previous = _OVERRIDE
    _OVERRIDE = mode
    try:
        yield
    finally:
        _OVERRIDE = previous


# ---------------------------------------------------------------------------
# Exact grouped accumulation
# ---------------------------------------------------------------------------

def exact_scores(
    tid_runs: list[np.ndarray], weighted_runs: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Group per-list products by tid and sum each group with ``fsum``.

    Returns ``(unique_tids_ascending, scores)``.  Bit-identical to the
    scalar ``dict`` accumulation because ``math.fsum`` is correctly
    rounded (order-independent) and a one-element ``fsum`` returns its
    argument unchanged — so tids contributed by a single list (the
    common case) take a direct-assignment fast path.
    """
    if not tid_runs:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    tids = np.concatenate(tid_runs)
    products = np.concatenate(weighted_runs)
    order = np.argsort(tids, kind="stable")
    tids = tids[order]
    products = products[order]
    unique, starts, counts = np.unique(
        tids, return_index=True, return_counts=True
    )
    scores = np.empty(len(unique), dtype=np.float64)
    single = counts == 1
    scores[single] = products[starts[single]]
    for i in np.nonzero(~single)[0].tolist():
        start = starts[i]
        scores[i] = math.fsum(products[start : start + counts[i]].tolist())
    return unique, scores


def block_scores(
    row_runs: list[int],
    tid_runs: list[np.ndarray],
    weighted_runs: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Grouped ``fsum`` over ``(outer row, tid)`` pairs for a join block.

    The block rank-join engine scans each touched posting list once and
    scores it against every outer tuple in the block that queries the
    list's item.  Each run is one (list, outer row) combination:
    ``row_runs[i]`` is the outer row the run belongs to, ``tid_runs[i]``
    the posting tids, and ``weighted_runs[i]`` the products
    ``q_prob * prob`` the row contributes through this list.

    Returns ``(rows, tids, scores)`` sorted by ``(row, tid)`` ascending.
    Bit-identical to per-probe verification for the same reason
    :func:`exact_scores` is: every ``(row, tid)`` group holds exactly the
    product multiset ``{q.p_i * u.p_i}`` over the common items, and
    ``math.fsum`` is correctly rounded (order-independent), with a
    direct-assignment fast path for single-occurrence groups.
    """
    if not tid_runs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=np.float64)
    rows = np.concatenate(
        [
            np.full(len(tids), row, dtype=np.int64)
            for row, tids in zip(row_runs, tid_runs)
        ]
    )
    tids = np.concatenate(tid_runs)
    products = np.concatenate(weighted_runs)
    # Composite (row, tid) key: tids are non-negative and bounded by the
    # relation size, so the packed key cannot collide or overflow int64.
    span = int(tids.max()) + 1 if len(tids) else 1
    keys = rows * span + tids
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    products = products[order]
    unique_keys, starts, counts = np.unique(
        keys, return_index=True, return_counts=True
    )
    scores = np.empty(len(unique_keys), dtype=np.float64)
    single = counts == 1
    scores[single] = products[starts[single]]
    for i in np.nonzero(~single)[0].tolist():
        start = starts[i]
        scores[i] = math.fsum(products[start : start + counts[i]].tolist())
    return unique_keys // span, unique_keys % span, scores


# ---------------------------------------------------------------------------
# First-encounter filtering
# ---------------------------------------------------------------------------

class SeenFilter:
    """Vectorized replacement for the ``if tid in seen`` dedup loop.

    :meth:`admit` returns the run's never-seen tids *in run order*
    (first occurrence wins within a run), and marks them seen.  The
    run order matters: it is the order candidates are random-accessed,
    which determines buffer-pool eviction patterns and therefore the
    counted page reads.
    """

    __slots__ = ("_sorted",)

    def __init__(self) -> None:
        self._sorted = np.empty(0, dtype=np.int64)

    def admit(self, tids: np.ndarray) -> np.ndarray:
        if len(tids) == 0:
            return tids
        if len(self._sorted):
            positions = np.minimum(
                np.searchsorted(self._sorted, tids), len(self._sorted) - 1
            )
            novel_mask = self._sorted[positions] != tids
            fresh = tids[novel_mask]
        else:
            fresh = tids
        if len(fresh) == 0:
            return fresh
        unique, first = np.unique(fresh, return_index=True)
        if len(unique) != len(fresh):
            fresh = fresh[np.sort(first)]
        self._sorted = np.union1d(self._sorted, unique)
        return fresh


# ---------------------------------------------------------------------------
# NRA bookkeeping
# ---------------------------------------------------------------------------

def masked_lacks(masks: np.ndarray, terms: list[float]) -> np.ndarray:
    """Per-candidate "lack" bounds: ``fsum(terms[j] for j not in mask)``.

    Candidates sharing a bitmask share a lack value, so the ``fsum`` is
    evaluated once per *unique* mask (a handful per resolve pass) and
    scattered back — exactly the scalar per-candidate sum.
    """
    if len(masks) == 0:
        return np.empty(0, dtype=np.float64)
    unique, inverse = np.unique(masks, return_inverse=True)
    num_lists = len(terms)
    table = np.empty(len(unique), dtype=np.float64)
    for u, mask in enumerate(unique.tolist()):
        table[u] = math.fsum(
            terms[j] for j in range(num_lists) if not mask >> j & 1
        )
    return table[inverse]


class CandidatePool:
    """Insertion-ordered NRA candidate store with vectorized run updates.

    Mirrors the scalar dict bookkeeping of ``NoRandomAccess`` exactly:
    candidates keep their admission order (the verification-pass order),
    a discarded candidate is a tombstone that never revives, and within
    one run the first occurrence of a tid wins.  Requires tids unique
    within each run for the fancy-indexed ``+=`` (guaranteed by the
    in-order dedup applied here).

    Masks are held as int64 bitmasks, so at most 62 lists are supported;
    callers fall back to the scalar path beyond that.
    """

    #: Highest list index representable in the int64 bitmask.
    MAX_LISTS = 62

    __slots__ = (
        "tids",
        "partial",
        "masks",
        "alive",
        "confirmed",
        "_sorted_tids",
        "_sorted_slots",
    )

    def __init__(self) -> None:
        self.tids = np.empty(0, dtype=np.int64)
        self.partial = np.empty(0, dtype=np.float64)
        self.masks = np.empty(0, dtype=np.int64)
        self.alive = np.empty(0, dtype=np.bool_)
        self.confirmed = np.empty(0, dtype=np.bool_)
        self._sorted_tids = np.empty(0, dtype=np.int64)
        self._sorted_slots = np.empty(0, dtype=np.int64)

    @property
    def size(self) -> int:
        """Number of live candidates (tombstones excluded)."""
        return int(self.alive.sum())

    def update_run(
        self,
        run_tids: np.ndarray,
        run_probs: np.ndarray,
        j: int,
        q_prob: float,
        admit: bool,
    ) -> None:
        """Fold one posting run from list ``j`` into the pool.

        ``admit`` mirrors the scalar ``discovering`` flag: when false,
        never-seen tids are ignored (they can no longer qualify).
        """
        if len(run_tids) == 0:
            return
        unique, first = np.unique(run_tids, return_index=True)
        if len(unique) != len(run_tids):
            keep = np.sort(first)
            run_tids = run_tids[keep]
            run_probs = run_probs[keep]
        products = q_prob * run_probs
        bit = np.int64(1) << np.int64(j)
        if len(self._sorted_tids):
            positions = np.minimum(
                np.searchsorted(self._sorted_tids, run_tids),
                len(self._sorted_tids) - 1,
            )
            found = self._sorted_tids[positions] == run_tids
            slots = self._sorted_slots[positions[found]]
            update = self.alive[slots] & ((self.masks[slots] & bit) == 0)
            hit = slots[update]
            self.partial[hit] += products[found][update]
            self.masks[hit] |= bit
        else:
            found = np.zeros(len(run_tids), dtype=np.bool_)
        if not admit:
            return
        fresh = run_tids[~found]
        if len(fresh) == 0:
            return
        base = len(self.tids)
        self.tids = np.concatenate([self.tids, fresh])
        self.partial = np.concatenate([self.partial, products[~found]])
        self.masks = np.concatenate(
            [self.masks, np.full(len(fresh), bit, dtype=np.int64)]
        )
        self.alive = np.concatenate(
            [self.alive, np.ones(len(fresh), dtype=np.bool_)]
        )
        self.confirmed = np.concatenate(
            [self.confirmed, np.zeros(len(fresh), dtype=np.bool_)]
        )
        new_slots = np.arange(base, base + len(fresh), dtype=np.int64)
        merged_tids = np.concatenate([self._sorted_tids, fresh])
        merged_slots = np.concatenate([self._sorted_slots, new_slots])
        order = np.argsort(merged_tids, kind="stable")
        self._sorted_tids = merged_tids[order]
        self._sorted_slots = merged_slots[order]

    def live_tids(self) -> list[int]:
        """Live candidate tids in admission order (the verification order)."""
        return self.tids[self.alive].tolist()


# ---------------------------------------------------------------------------
# Exact selection
# ---------------------------------------------------------------------------

def kth_largest(values: np.ndarray, k: int) -> float:
    """The k-th largest value — ``sorted(values, reverse=True)[k-1]``."""
    position = len(values) - k
    return float(np.partition(values, position)[position])


def top_k_matches(
    tids: np.ndarray, scores: np.ndarray, k: int
) -> np.ndarray:
    """Indices of the top ``k`` by ``(score desc, tid asc)``, exact under ties.

    ``np.partition`` preselects the candidates that can reach the k-th
    score (selection only, no arithmetic), then a lexsort applies the
    library's canonical ``Match`` ordering.
    """
    n = len(scores)
    if n == 0 or k < 1:
        return np.empty(0, dtype=np.int64)
    if k < n:
        kth = np.partition(scores, n - k)[n - k]
        candidates = np.nonzero(scores >= kth)[0]
    else:
        candidates = np.arange(n)
    order = np.lexsort((tids[candidates], -scores[candidates]))[:k]
    return candidates[order]
