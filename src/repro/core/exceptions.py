"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the layer that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DomainError(ReproError):
    """A categorical value or index does not belong to the domain."""


class InvalidDistributionError(ReproError):
    """A probability vector violates the UDA model constraints.

    Raised when probabilities fall outside ``(0, 1]``, when the total mass
    exceeds one beyond numerical tolerance, or when items are duplicated.
    """


class QueryError(ReproError):
    """A query descriptor is malformed (e.g. non-positive threshold)."""


class ConfigError(QueryError, ValueError):
    """A ``REPRO_*`` configuration knob holds an unusable value.

    Raised by :mod:`repro.core.config` with a message that always names
    the offending variable.  Subclasses :class:`QueryError` because the
    execution knobs (``REPRO_BATCH``, ``REPRO_JOIN_BLOCK``,
    ``REPRO_JOBS``) historically raised it, and :class:`ValueError` so
    callers treating a bad knob as a plain value error keep working.
    """


class StorageError(ReproError):
    """Base class for failures in the paged storage substrate."""


class PageError(StorageError):
    """A page id is unknown, or page data has an invalid size/layout."""


class ChecksumError(StorageError):
    """A page's bytes do not match its stored CRC32 checksum.

    Raised on every read of a corrupted page — whether the corruption is
    transient (in-flight bit rot, retryable) or persistent (a torn
    write).  The buffer pool retries a bounded number of times; if the
    corruption persists the error propagates, so a damaged page can
    never be silently served.
    """


class TransientReadError(StorageError):
    """An injected, retryable read failure (see :mod:`repro.storage.faults`).

    Models a device read error that succeeds on retry.  The buffer pool
    absorbs these with bounded retry-with-backoff.
    """


class RecoveryError(StorageError):
    """A persisted index image is damaged beyond automatic repair.

    Raised on attach when corruption reaches the authoritative record
    store (the inverted index's tuple list, a PDR-tree leaf), i.e. when
    rebuilding the derived structures cannot restore a correct index.
    """


class WalError(StorageError):
    """A write-ahead-log file is unusable (bad magic, wrong version).

    A *torn tail* — a partially written final record left by a crash —
    is **not** an error: the log truncates it on open and reports it via
    :attr:`repro.wal.WriteAheadLog.torn`, because losing the record
    being written at the moment of the crash is exactly the prefix
    semantics the WAL promises.
    """


class BufferPoolError(StorageError):
    """The buffer pool cannot satisfy a request.

    Raised for example when every frame is pinned and a new page must be
    brought in, or when unpinning a page that is not resident.
    """


class SerializationError(StorageError):
    """A record cannot be encoded into, or decoded from, its byte layout."""


class RecordTooLargeError(SerializationError):
    """A single record does not fit in one page."""


class IndexError_(ReproError):
    """Base class for index-structure failures (B+-tree, inverted, PDR)."""


class TreeError(IndexError_):
    """Structural invariant violation inside a paged tree."""


class DuplicateKeyError(TreeError):
    """An insert found an existing record with the same key."""


class KeyNotFoundError(TreeError):
    """A delete or lookup referenced a key that is not present."""
