"""Categorical domains.

A domain is the finite set ``D = {d1, ..., dN}`` an uncertain discrete
attribute ranges over (Definition 1 of the paper).  Internally every value
is an integer index in ``[0, N)``; :class:`CategoricalDomain` maintains the
bidirectional mapping between human-readable labels and indices.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.exceptions import DomainError


class CategoricalDomain:
    """An ordered, finite set of categorical values.

    Parameters
    ----------
    labels:
        The domain values, in index order.  Labels must be unique.

    Examples
    --------
    >>> problems = CategoricalDomain(["Brake", "Tires", "Trans"])
    >>> problems.index_of("Tires")
    1
    >>> problems.label_of(2)
    'Trans'
    >>> len(problems)
    3
    """

    __slots__ = ("_labels", "_index")

    def __init__(self, labels: Iterable[str]) -> None:
        self._labels: tuple[str, ...] = tuple(labels)
        if not self._labels:
            raise DomainError("a categorical domain must not be empty")
        self._index: dict[str, int] = {
            label: i for i, label in enumerate(self._labels)
        }
        if len(self._index) != len(self._labels):
            raise DomainError("domain labels must be unique")

    @classmethod
    def of_size(cls, size: int, prefix: str = "d") -> "CategoricalDomain":
        """Build an anonymous domain ``{prefix}0 .. {prefix}{size-1}``.

        Convenient for synthetic datasets where values carry no meaning.
        """
        if size < 1:
            raise DomainError(f"domain size must be >= 1, got {size}")
        return cls(f"{prefix}{i}" for i in range(size))

    # -- lookups ------------------------------------------------------------

    def index_of(self, label: str) -> int:
        """Return the index of ``label``; raises DomainError if unknown."""
        try:
            return self._index[label]
        except KeyError:
            raise DomainError(f"value {label!r} is not in the domain") from None

    def label_of(self, index: int) -> str:
        """Return the label at ``index``; raises DomainError if out of range."""
        if not 0 <= index < len(self._labels):
            raise DomainError(
                f"index {index} outside domain of size {len(self._labels)}"
            )
        return self._labels[index]

    @property
    def labels(self) -> tuple[str, ...]:
        """All labels in index order."""
        return self._labels

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: object) -> bool:
        return label in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CategoricalDomain):
            return NotImplemented
        return self._labels == other._labels

    def __hash__(self) -> int:
        return hash(self._labels)

    def __repr__(self) -> str:
        if len(self._labels) <= 6:
            inner = ", ".join(self._labels)
        else:
            shown = ", ".join(self._labels[:3])
            inner = f"{shown}, ... ({len(self._labels)} values)"
        return f"CategoricalDomain([{inner}])"
