"""Query result and statistics types shared by all executors."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Match:
    """One qualifying tuple.

    ``score`` is the equality probability for equality-based queries and
    the (negated-for-ordering-free) divergence for similarity queries;
    ``sort_index`` makes matches order naturally by descending score and
    then ascending tid, the presentation order used everywhere.
    """

    sort_index: tuple[float, int] = field(init=False, repr=False)
    tid: int = field(compare=False)
    score: float = field(compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sort_index", (-self.score, self.tid))


@dataclass
class QueryStats:
    """Work counters an executor fills in while answering one query."""

    #: Tuples whose exact score was computed (candidate verifications).
    candidates_examined: int = 0
    #: Posting entries or stored UDAs decoded during the search.
    entries_scanned: int = 0
    #: Tree nodes or lists visited.
    nodes_visited: int = 0
    #: Random accesses to the tuple store.
    random_accesses: int = 0
    #: Page reads that failed CRC verification (fault-tolerance telemetry;
    #: zero unless :mod:`repro.storage.faults` injection is active).
    checksum_failures: int = 0
    #: Page reads repeated by the buffer pool after a transient fault.
    retries: int = 0
    #: Faults injected by the storage layer while answering the query.
    faults_injected: int = 0
    #: Why the executor stopped consuming input ("lemma1", "row_cutoff",
    #: "exhausted", "scan_complete", ...; see
    #: :func:`repro.invindex.strategies._stop`).  ``None`` for executors
    #: that have no early-stop decision to attribute.
    stop_reason: str | None = None

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another executor's counters into this one."""
        self.candidates_examined += other.candidates_examined
        self.entries_scanned += other.entries_scanned
        self.nodes_visited += other.nodes_visited
        self.random_accesses += other.random_accesses
        self.checksum_failures += other.checksum_failures
        self.retries += other.retries
        self.faults_injected += other.faults_injected
        # The first attributed stop reason wins: for joins, that is the
        # outer structure's own decision, not a later probe's.
        if self.stop_reason is None:
            self.stop_reason = other.stop_reason


@dataclass
class QueryResult:
    """Matches plus the work statistics gathered while finding them."""

    matches: list[Match]
    stats: QueryStats = field(default_factory=QueryStats)

    def __post_init__(self) -> None:
        self.matches = sorted(self.matches)

    def tids(self) -> list[int]:
        """Qualifying tuple ids in presentation order."""
        return [match.tid for match in self.matches]

    def tid_set(self) -> set[int]:
        """Qualifying tuple ids as a set (for order-free comparison)."""
        return {match.tid for match in self.matches}

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self):
        return iter(self.matches)
