"""In-memory uncertain relations and the naive reference executor.

:class:`UncertainRelation` models a relation with (for simplicity, as in
the paper) a single uncertain attribute.  It owns the authoritative
tid -> UDA mapping and answers every query of :mod:`repro.core.queries`
by exhaustive scan with the canonical scoring functions.  The naive
executor is the correctness oracle for both index structures — every
index-vs-naive property test compares against it — and doubles as the
"no index" baseline.

A vectorized scipy-CSR fast path (:meth:`equality_probabilities`) serves
workload calibration, where thousands of full probability vectors are
needed and bit-exact agreement with the canonical path is not required.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np
from scipy import sparse

from repro.core.domain import CategoricalDomain
from repro.core.exceptions import DomainError, QueryError
from repro.core.queries import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    Query,
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
    WindowedEqualityQuery,
)
from repro.core.results import Match, QueryResult, QueryStats
from repro.core.uda import UncertainAttribute


class UncertainRelation:
    """A relation with one uncertain discrete attribute.

    Parameters
    ----------
    domain:
        The categorical domain of the uncertain attribute.
    name:
        Optional relation name used in reprs and examples.

    Examples
    --------
    >>> domain = CategoricalDomain(["Shoes", "Sales", "Clothes"])
    >>> employees = UncertainRelation(domain, name="personnel")
    >>> tid = employees.append(
    ...     UncertainAttribute.from_labels(domain, {"Shoes": 0.5, "Sales": 0.5}),
    ...     payload="Jim",
    ... )
    >>> employees.payload_of(tid)
    'Jim'
    """

    def __init__(self, domain: CategoricalDomain, name: str = "R") -> None:
        self.domain = domain
        self.name = name
        self._udas: list[UncertainAttribute] = []
        self._payloads: list[object] = []
        self._matrix: sparse.csr_matrix | None = None

    # -- construction ------------------------------------------------------

    def append(self, uda: UncertainAttribute, payload: object = None) -> int:
        """Add a tuple; returns its tid (tids are dense, starting at 0)."""
        if uda.nnz and uda.items[-1] >= len(self.domain):
            raise DomainError(
                f"item {int(uda.items[-1])} outside domain of size "
                f"{len(self.domain)}"
            )
        self._udas.append(uda)
        self._payloads.append(payload)
        self._matrix = None
        return len(self._udas) - 1

    def extend(self, udas: Iterable[UncertainAttribute]) -> None:
        """Append many tuples with no payloads."""
        for uda in udas:
            self.append(uda)

    @classmethod
    def from_udas(
        cls,
        domain: CategoricalDomain,
        udas: Iterable[UncertainAttribute],
        name: str = "R",
    ) -> "UncertainRelation":
        """Build a relation directly from an iterable of UDAs."""
        relation = cls(domain, name=name)
        relation.extend(udas)
        return relation

    # -- access ------------------------------------------------------------

    def uda_of(self, tid: int) -> UncertainAttribute:
        """The uncertain attribute of tuple ``tid``."""
        return self._udas[tid]

    def payload_of(self, tid: int) -> object:
        """The opaque payload stored with tuple ``tid`` (may be None)."""
        return self._payloads[tid]

    def __len__(self) -> int:
        return len(self._udas)

    def __iter__(self) -> Iterator[UncertainAttribute]:
        return iter(self._udas)

    def tids(self) -> range:
        """All tuple ids."""
        return range(len(self._udas))

    # -- vectorized fast path ------------------------------------------------

    def to_sparse_matrix(self) -> sparse.csr_matrix:
        """The relation as an ``n x N`` CSR matrix of probabilities."""
        if self._matrix is None:
            n = len(self._udas)
            indptr = np.zeros(n + 1, dtype=np.int64)
            for tid, uda in enumerate(self._udas):
                indptr[tid + 1] = indptr[tid] + uda.nnz
            indices = np.empty(indptr[-1], dtype=np.int64)
            data = np.empty(indptr[-1])
            for tid, uda in enumerate(self._udas):
                indices[indptr[tid] : indptr[tid + 1]] = uda.items
                data[indptr[tid] : indptr[tid + 1]] = uda.probs
            self._matrix = sparse.csr_matrix(
                (data, indices, indptr), shape=(n, len(self.domain))
            )
        return self._matrix

    def equality_probabilities(self, q: UncertainAttribute) -> np.ndarray:
        """``Pr(q = t.a)`` for every tuple, as one dense vector.

        Vectorized; used by workload calibration.  May differ from the
        canonical per-tuple computation in the last float bits.
        """
        return self.to_sparse_matrix() @ q.to_dense(len(self.domain))

    # -- naive executors (the correctness oracle) ----------------------------

    def execute(self, query: Query) -> QueryResult:
        """Answer any query descriptor by exhaustive scan."""
        if isinstance(query, EqualityQuery):
            return self._peq(query)
        if isinstance(query, EqualityThresholdQuery):
            return self._petq(query)
        if isinstance(query, EqualityTopKQuery):
            return self._peq_top_k(query)
        if isinstance(query, SimilarityThresholdQuery):
            return self._dstq(query)
        if isinstance(query, SimilarityTopKQuery):
            return self._dsq_top_k(query)
        if isinstance(query, WindowedEqualityQuery):
            return self._windowed(query)
        raise QueryError(f"unsupported query type: {type(query).__name__}")

    def _windowed(self, query: WindowedEqualityQuery) -> QueryResult:
        weights = query.expanded(len(self.domain))
        stats = QueryStats(candidates_examined=len(self._udas))
        matches = []
        for tid, uda in enumerate(self._udas):
            probability = weights.equality_with_arrays(uda.items, uda.probs)
            if probability >= query.threshold:
                matches.append(Match(tid=tid, score=probability))
        return QueryResult(matches, stats)

    def _peq(self, query: EqualityQuery) -> QueryResult:
        stats = QueryStats(candidates_examined=len(self._udas))
        matches = []
        for tid, uda in enumerate(self._udas):
            probability = query.q.equality_probability(uda)
            if probability > 0.0:
                matches.append(Match(tid=tid, score=probability))
        return QueryResult(matches, stats)

    def _petq(self, query: EqualityThresholdQuery) -> QueryResult:
        stats = QueryStats(candidates_examined=len(self._udas))
        matches = []
        for tid, uda in enumerate(self._udas):
            probability = query.q.equality_probability(uda)
            if probability >= query.threshold:
                matches.append(Match(tid=tid, score=probability))
        return QueryResult(matches, stats)

    def _peq_top_k(self, query: EqualityTopKQuery) -> QueryResult:
        stats = QueryStats(candidates_examined=len(self._udas))
        scored = []
        for tid, uda in enumerate(self._udas):
            probability = query.q.equality_probability(uda)
            if probability > 0.0:
                scored.append(Match(tid=tid, score=probability))
        scored.sort()
        return QueryResult(scored[: query.k], stats)

    def _dstq(self, query: SimilarityThresholdQuery) -> QueryResult:
        stats = QueryStats(candidates_examined=len(self._udas))
        matches = []
        for tid, uda in enumerate(self._udas):
            distance = query.distance(uda)
            if distance <= query.threshold:
                matches.append(Match(tid=tid, score=-distance))
        return QueryResult(matches, stats)

    def _dsq_top_k(self, query: SimilarityTopKQuery) -> QueryResult:
        stats = QueryStats(candidates_examined=len(self._udas))
        scored = [
            Match(tid=tid, score=-query.distance(uda))
            for tid, uda in enumerate(self._udas)
        ]
        scored.sort()
        return QueryResult(scored[: query.k], stats)

    def __repr__(self) -> str:
        return (
            f"UncertainRelation(name={self.name!r}, tuples={len(self)}, "
            f"domain_size={len(self.domain)})"
        )
