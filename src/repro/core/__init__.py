"""Core data model: domains, UDAs, divergences, queries, relations, joins."""

from repro.core.divergence import (
    DIVERGENCES,
    get_divergence,
    kl_divergence,
    l1_divergence,
    l2_divergence,
    symmetric_kl,
)
from repro.core.domain import CategoricalDomain
from repro.core.exceptions import (
    BufferPoolError,
    ConfigError,
    DomainError,
    DuplicateKeyError,
    InvalidDistributionError,
    KeyNotFoundError,
    PageError,
    QueryError,
    RecordTooLargeError,
    ReproError,
    SerializationError,
    StorageError,
    TreeError,
)
from repro.core.joins import JoinPair, JoinResult, dstj, pej_top_k, petj
from repro.core.queries import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    Query,
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
    WindowedEqualityQuery,
)
from repro.core.relation import UncertainRelation
from repro.core.results import Match, QueryResult, QueryStats
from repro.core.uda import QueryVector, UncertainAttribute

__all__ = [
    "DIVERGENCES",
    "BufferPoolError",
    "CategoricalDomain",
    "ConfigError",
    "DomainError",
    "DuplicateKeyError",
    "EqualityQuery",
    "EqualityThresholdQuery",
    "EqualityTopKQuery",
    "InvalidDistributionError",
    "JoinPair",
    "JoinResult",
    "Match",
    "PageError",
    "Query",
    "QueryError",
    "QueryResult",
    "QueryStats",
    "KeyNotFoundError",
    "RecordTooLargeError",
    "ReproError",
    "SerializationError",
    "SimilarityThresholdQuery",
    "SimilarityTopKQuery",
    "StorageError",
    "TreeError",
    "QueryVector",
    "UncertainAttribute",
    "UncertainRelation",
    "WindowedEqualityQuery",
    "dstj",
    "get_divergence",
    "kl_divergence",
    "l1_divergence",
    "l2_divergence",
    "pej_top_k",
    "petj",
    "symmetric_kl",
]
