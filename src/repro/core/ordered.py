"""Probabilistic operators for totally ordered categorical domains.

Section 2 of the paper notes: "for the special case of totally ordered
categorical domains, e.g. D = {1, .., N}, additional inequality
probabilistic relations and operators can be defined between two UDAs.
For example, we can define Pr(u > v), and Pr(|u - v| <= c).  The notion
of probabilistic equality can be slightly relaxed to allow a window
within which the values are considered equal."

This module implements those operators (under the same independence
assumption as Definition 2) plus the windowed-equality relaxation of
PETQ.  Domains are ordered by item index.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.exceptions import QueryError
from repro.core.relation import UncertainRelation
from repro.core.results import QueryResult
from repro.core.uda import UncertainAttribute


def greater_than_probability(u: UncertainAttribute, v: UncertainAttribute) -> float:
    """``Pr(u > v) = sum_{i > j} u.p_i * v.p_j`` under independence."""
    if u.nnz == 0 or v.nnz == 0:
        return 0.0
    # v's cumulative mass strictly below each of u's items.
    positions = np.searchsorted(v.items, u.items)  # v items < u item count
    cumulative = np.concatenate(([0.0], np.cumsum(v.probs)))
    below = cumulative[positions]
    return math.fsum((u.probs * below).tolist())


def less_than_probability(u: UncertainAttribute, v: UncertainAttribute) -> float:
    """``Pr(u < v)``; by symmetry ``greater_than_probability(v, u)``."""
    return greater_than_probability(v, u)


def within_window_probability(
    u: UncertainAttribute, v: UncertainAttribute, window: int
) -> float:
    """``Pr(|u - v| <= window)`` under independence.

    ``window = 0`` degenerates to ordinary equality (Definition 2).
    """
    if window < 0:
        raise QueryError(f"window must be >= 0, got {window}")
    if u.nnz == 0 or v.nnz == 0:
        return 0.0
    cumulative = np.concatenate(([0.0], np.cumsum(v.probs)))
    # For each u item i, sum v's mass with items in [i-window, i+window].
    low = np.searchsorted(v.items, u.items - window, side="left")
    high = np.searchsorted(v.items, u.items + window, side="right")
    near = cumulative[high] - cumulative[low]
    return math.fsum((u.probs * near).tolist())


def windowed_equality_query(
    relation: UncertainRelation,
    q: UncertainAttribute,
    threshold: float,
    window: int,
) -> QueryResult:
    """Windowed PETQ: tuples with ``Pr(|q - t.a| <= window) >= threshold``.

    The relaxed-equality threshold query the paper sketches for ordered
    domains.  Convenience wrapper over
    :class:`~repro.core.queries.WindowedEqualityQuery`, which both index
    structures also answer (via query-weight expansion).
    """
    from repro.core.queries import WindowedEqualityQuery

    return relation.execute(WindowedEqualityQuery(q, threshold, window))


def expected_rank_difference(u: UncertainAttribute, v: UncertainAttribute) -> float:
    """``E[u - v]`` over item indices — a cheap orderly summary."""
    if u.nnz == 0 or v.nnz == 0:
        raise QueryError("expected difference of an empty distribution")
    mean_u = float(np.dot(u.items, u.probs)) / u.total_mass
    mean_v = float(np.dot(v.items, v.probs)) / v.total_mass
    return mean_u - mean_v
