"""Probabilistic join operators over uncertain relations.

Section 2 (Definition 6) lifts each select query to a join: ``R ⋈ S``
under probability threshold τ contains every pair ``(r, s)`` with
``Pr(r.a = s.b) >= τ`` (PETJ), and analogously PEJ-top-k, DSTJ and
DSJ-top-k.

Two execution strategies are provided:

* a **nested-loop** reference implementation that scores every pair, and
* an **index-nested-loop** that probes any executor implementing
  :class:`QueryExecutor` (the probabilistic inverted index and the
  PDR-tree both do) once per outer tuple.

As the paper notes, joining introduces correlations between result pairs;
like the paper, we only perform threshold/top-k *selection* and do not
track lineage.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Protocol

from repro.core.exceptions import QueryError
from repro.core.queries import (
    EqualityThresholdQuery,
    EqualityTopKQuery,
    Query,
    SimilarityThresholdQuery,
)
from repro.core.relation import UncertainRelation
from repro.core.results import QueryResult, QueryStats
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS


class QueryExecutor(Protocol):
    """Anything that can answer the query descriptors of this library."""

    def execute(self, query: Query) -> QueryResult:  # pragma: no cover
        ...


@dataclass(frozen=True, order=True)
class JoinPair:
    """One qualifying pair, ordered by descending score then tids."""

    sort_index: tuple[float, int, int] = field(init=False, repr=False)
    left_tid: int = field(compare=False)
    right_tid: int = field(compare=False)
    score: float = field(compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sort_index", (-self.score, self.left_tid, self.right_tid)
        )


@dataclass
class JoinResult:
    """Qualifying pairs plus the work done probing the inner side.

    ``stats`` is every probe's :class:`QueryStats` merged via
    :meth:`QueryStats.merge` — without it, index-nested-loop join
    experiments would report zero I/O for the inner side.  The class
    behaves as a sequence of :class:`JoinPair`, so code that only wants
    the pairs can iterate/index it directly.
    """

    pairs: list[JoinPair]
    stats: QueryStats = field(default_factory=QueryStats)
    #: Number of inner-side probes performed (one per outer tuple).
    num_probes: int = 0

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def __getitem__(self, index):
        return self.pairs[index]


class BoundedPairHeap:
    """The k best :class:`JoinPair`\\ s under ``sort_index``, incrementally.

    A size-``k`` min-heap over the *negated* sort key, so the root is
    always the currently worst retained pair and each push costs
    O(log k) — replacing the O(pairs log pairs) re-sort the top-k joins
    used to run after every probe.  Negating every component of
    ``sort_index`` reverses its lexicographic order exactly (the key is
    strict — ``(left_tid, right_tid)`` is unique per pair), so
    :meth:`sorted_pairs` reproduces ``sorted(pairs)[:k]`` bit-for-bit,
    score ties included.
    """

    __slots__ = ("_k", "_heap")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self._k = k
        self._heap: list[tuple[tuple[float, int, int], JoinPair]] = []

    @staticmethod
    def _negated(pair: JoinPair) -> tuple[float, int, int]:
        score, left_tid, right_tid = pair.sort_index
        return (-score, -left_tid, -right_tid)

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, pair: JoinPair) -> None:
        entry = (self._negated(pair), pair)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
        elif entry[0] > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def kth_score(self) -> float:
        """The k-th best score so far, or 0.0 until k pairs are held.

        This is the adaptive rank-join threshold: once k pairs exist, no
        pair scoring below this value can enter the final top-k.
        """
        if len(self._heap) < self._k:
            return 0.0
        return self._heap[0][1].score

    def sorted_pairs(self) -> list[JoinPair]:
        """The retained pairs in canonical (descending-score) order."""
        return sorted(pair for _, pair in self._heap)


def _join_begin(join_kind: str, **fields) -> None:
    METRICS.inc("join.begin")
    tracer = _trace.ACTIVE
    if tracer is not None:
        tracer.event("join.begin", join_kind=join_kind, **fields)


def _join_probe(left_tid: int) -> None:
    METRICS.inc("join.probe")
    tracer = _trace.ACTIVE
    if tracer is not None:
        tracer.event("join.probe", left_tid=left_tid)


def _join_end(join_kind: str, pairs: int, probes: int) -> None:
    METRICS.inc("join.end")
    tracer = _trace.ACTIVE
    if tracer is not None:
        tracer.event(
            "join.end", join_kind=join_kind, pairs=pairs, probes=probes
        )


def petj(
    left: UncertainRelation,
    right: UncertainRelation,
    threshold: float,
    right_index: QueryExecutor | None = None,
) -> JoinResult:
    """Probabilistic equality threshold join (Definition 6).

    Returns a :class:`JoinResult` with all pairs satisfying
    ``Pr(r.a = s.b) >= threshold`` sorted by descending probability,
    plus the merged per-probe statistics.  When ``right_index`` is
    given, each outer tuple probes it with a PETQ; otherwise the inner
    relation's naive executor is used.

    The threshold must lie in ``(0, 1]`` — **zero is rejected by
    design**, because at τ = 0 every pair with any common item
    qualifies and the probabilistic pruning the index exists for is
    vacuous (Definition 6 assumes a positive probability threshold).
    Contrast :func:`dstj`, whose divergence threshold legally *is* 0
    (exact distribution equality).  A threshold equal to a pair's exact
    probability keeps the pair (the comparison is ``>=``).
    """
    if not 0.0 < threshold <= 1.0:
        raise QueryError(f"join threshold must lie in (0, 1], got {threshold}")
    inner: QueryExecutor = right_index if right_index is not None else right
    _join_begin("petj", threshold=threshold)
    pairs: list[JoinPair] = []
    stats = QueryStats()
    num_probes = 0
    for left_tid in left.tids():
        _join_probe(left_tid)
        probe = EqualityThresholdQuery(left.uda_of(left_tid), threshold)
        result = inner.execute(probe)
        stats.merge(result.stats)
        num_probes += 1
        for match in result:
            pairs.append(
                JoinPair(
                    left_tid=left_tid, right_tid=match.tid, score=match.score
                )
            )
    _join_end("petj", pairs=len(pairs), probes=num_probes)
    return JoinResult(sorted(pairs), stats, num_probes)


def pej_top_k(
    left: UncertainRelation,
    right: UncertainRelation,
    k: int,
    right_index: QueryExecutor | None = None,
) -> JoinResult:
    """PEJ-top-k: the ``k`` pairs with the highest equality probability.

    Every globally top-k pair lies within its outer tuple's local top-k,
    so probing each outer tuple with a top-k query and merging is exact.
    The running top-k lives in a :class:`BoundedPairHeap` — O(log k) per
    candidate instead of re-sorting all retained pairs after every probe
    — with output order (ties included) identical to the sorted merge.
    Returns a :class:`JoinResult` with the merged per-probe statistics.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    inner: QueryExecutor = right_index if right_index is not None else right
    _join_begin("pej_top_k", k=k)
    heap = BoundedPairHeap(k)
    stats = QueryStats()
    num_probes = 0
    for left_tid in left.tids():
        _join_probe(left_tid)
        probe = EqualityTopKQuery(left.uda_of(left_tid), k)
        result = inner.execute(probe)
        stats.merge(result.stats)
        num_probes += 1
        for match in result:
            heap.push(
                JoinPair(
                    left_tid=left_tid, right_tid=match.tid, score=match.score
                )
            )
    pairs = heap.sorted_pairs()
    _join_end("pej_top_k", pairs=len(pairs), probes=num_probes)
    return JoinResult(pairs, stats, num_probes)


def dstj(
    left: UncertainRelation,
    right: UncertainRelation,
    threshold: float,
    divergence: str = "l1",
    right_index: QueryExecutor | None = None,
) -> JoinResult:
    """Distributional-similarity threshold join.

    Returns a :class:`JoinResult` with all pairs satisfying
    ``F(r.a, s.b) <= threshold`` sorted by ascending divergence, plus
    the merged per-probe statistics.  The returned ``score`` is the
    *negated* divergence so that JoinPair ordering (descending score)
    presents the most similar pairs first.

    Unlike :func:`petj`, a threshold of exactly ``0.0`` is **accepted
    by design**: divergences are distances, and τ = 0 is the meaningful
    query "find tuples whose distribution equals mine exactly" (the
    comparison is ``<=``, so zero-divergence pairs qualify).  Only
    negative thresholds are rejected — no pair could ever satisfy one.
    """
    if threshold < 0.0:
        raise QueryError(f"DSTJ threshold must be >= 0, got {threshold}")
    inner: QueryExecutor = right_index if right_index is not None else right
    _join_begin("dstj", threshold=threshold)
    pairs: list[JoinPair] = []
    stats = QueryStats()
    num_probes = 0
    for left_tid in left.tids():
        _join_probe(left_tid)
        probe = SimilarityThresholdQuery(
            left.uda_of(left_tid), threshold, divergence
        )
        result = inner.execute(probe)
        stats.merge(result.stats)
        num_probes += 1
        for match in result:
            pairs.append(
                JoinPair(
                    left_tid=left_tid, right_tid=match.tid, score=match.score
                )
            )
    _join_end("dstj", pairs=len(pairs), probes=num_probes)
    return JoinResult(sorted(pairs), stats, num_probes)
