"""Shared parsing for ``REPRO_*`` environment knobs.

Every execution knob in the repository — ``REPRO_BATCH``,
``REPRO_JOIN_BLOCK``, ``REPRO_JOBS``, ``REPRO_DECODED_CACHE``, the
``REPRO_SERVE_*`` family — funnels through the two readers here, so a
malformed value always fails the same way: a
:class:`~repro.core.exceptions.ConfigError` (a :class:`ValueError`)
whose message *names the variable*, never a bare ``int()`` traceback
that leaves the operator grepping for which of a dozen knobs was wrong.

The readers normalize the raw string (strip + casefold) and support
per-knob *special words* ("off", "auto", "default", ...) that map to
sentinel values, because several knobs accept an English word alongside
an integer.  A special word may map to ``None``, meaning "treat as
unset" — the caller then applies its own computed default.
"""

from __future__ import annotations

import os
from typing import Mapping

from repro.core.exceptions import ConfigError

__all__ = [
    "ConfigError",
    "parse_int_knob",
    "parse_float_knob",
    "parse_choice_knob",
    "read_env_int",
    "read_env_float",
    "read_env_choice",
]


def parse_int_knob(
    raw: int | str, name: str, *, minimum: int | None = None
) -> int:
    """Parse an integer knob value, naming ``name`` in every error.

    ``raw`` may already be an int (programmatic callers share the same
    range validation as the environment path).  ``bool`` is rejected:
    ``REPRO_JOBS=True`` is a bug, not a worker count.
    """
    if isinstance(raw, bool):
        raise ConfigError(f"{name} must be an integer, got {raw!r}")
    if isinstance(raw, int):
        value = raw
    else:
        try:
            value = int(str(raw).strip())
        except ValueError:
            raise ConfigError(
                f"{name} must be an integer, got {raw!r}"
            ) from None
    if minimum is not None and value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    return value


def parse_float_knob(
    raw: float | str, name: str, *, minimum: float | None = None
) -> float:
    """Parse a float knob value, naming ``name`` in every error."""
    if isinstance(raw, bool):
        raise ConfigError(f"{name} must be a number, got {raw!r}")
    if isinstance(raw, (int, float)):
        value = float(raw)
    else:
        try:
            value = float(str(raw).strip())
        except ValueError:
            raise ConfigError(
                f"{name} must be a number, got {raw!r}"
            ) from None
    if value != value:  # NaN never satisfies a range check
        raise ConfigError(f"{name} must be a number, got {raw!r}")
    if minimum is not None and value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    return value


def parse_choice_knob(
    raw: str, name: str, *, choices: tuple[str, ...]
) -> str:
    """Parse an enumerated knob value, naming ``name`` in every error.

    The value is normalized (strip + casefold) before matching, so
    ``REPRO_BACKEND=MMap`` selects ``mmap``.
    """
    value = str(raw).strip().lower()
    if value not in choices:
        raise ConfigError(
            f"{name} must be one of {', '.join(choices)}, got {raw!r}"
        )
    return value


def _normalized(name: str, environ: Mapping[str, str] | None) -> str:
    source = os.environ if environ is None else environ
    return source.get(name, "").strip().lower()


def read_env_int(
    name: str,
    *,
    minimum: int | None = None,
    special: Mapping[str, int | None] | None = None,
    environ: Mapping[str, str] | None = None,
) -> int | None:
    """Read and parse an integer environment knob.

    Returns ``None`` when the variable is unset/empty (unless ``special``
    maps ``""`` elsewhere) so the caller can apply its default.
    ``special`` maps normalized words to values; a ``None`` value means
    "treat this word as unset" too.
    """
    raw = _normalized(name, environ)
    if special is not None and raw in special:
        return special[raw]
    if raw == "":
        return None
    return parse_int_knob(raw, name, minimum=minimum)


def read_env_choice(
    name: str,
    *,
    choices: tuple[str, ...],
    special: Mapping[str, str | None] | None = None,
    environ: Mapping[str, str] | None = None,
) -> str | None:
    """Read an enumerated environment knob (see :func:`read_env_int`).

    Returns ``None`` when unset/empty; an unknown value raises a
    :class:`ConfigError` naming the variable and listing the choices.
    """
    raw = _normalized(name, environ)
    if special is not None and raw in special:
        return special[raw]
    if raw == "":
        return None
    return parse_choice_knob(raw, name, choices=choices)


def read_env_float(
    name: str,
    *,
    minimum: float | None = None,
    special: Mapping[str, float | None] | None = None,
    environ: Mapping[str, str] | None = None,
) -> float | None:
    """Read and parse a float environment knob (see :func:`read_env_int`)."""
    raw = _normalized(name, environ)
    if special is not None and raw in special:
        return special[raw]
    if raw == "":
        return None
    return parse_float_knob(raw, name, minimum=minimum)
