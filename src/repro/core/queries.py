"""Query descriptors for uncertain categorical data.

These are the select-query forms of Section 2 of the paper:

* :class:`EqualityQuery` — PEQ (Definition 3): every tuple with non-zero
  equality probability, reported with its probability.
* :class:`EqualityThresholdQuery` — PETQ (Definition 4): tuples with
  ``Pr(q = t.a) >= threshold``.
* :class:`EqualityTopKQuery` — PEQ-top-k: the ``k`` tuples with the
  highest equality probability.
* :class:`SimilarityThresholdQuery` — DSTQ (Definition 5): tuples whose
  divergence from the query distribution is at most the threshold.
* :class:`SimilarityTopKQuery` — DSQ-top-k.

A descriptor is pure data (plus validation); executors live in the
relation (naive reference), inverted index, and PDR-tree packages.

Threshold semantics: this library uses the *inclusive* comparison
``Pr >= threshold`` (respectively ``divergence <= threshold``) uniformly
across the naive executor and both indexes, so that all three provably
return identical answer sets.  The paper writes a strict inequality; for
calibrated workloads the distinction only moves boundary-probability
tuples and does not change any reported trend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.divergence import (
    DivergenceFn,
    get_divergence,
    get_sparse_divergence,
)
from repro.core.exceptions import QueryError
from repro.core.uda import QueryVector, UncertainAttribute


@dataclass(frozen=True)
class EqualityQuery:
    """PEQ: all tuples with ``Pr(q = t.a) > 0``, with their probabilities."""

    q: UncertainAttribute

    def __post_init__(self) -> None:
        if self.q.nnz == 0:
            raise QueryError("PEQ query distribution must be non-empty")


@dataclass(frozen=True)
class EqualityThresholdQuery:
    """PETQ: all tuples with ``Pr(q = t.a) >= threshold``."""

    q: UncertainAttribute
    threshold: float

    def __post_init__(self) -> None:
        if self.q.nnz == 0:
            raise QueryError("PETQ query distribution must be non-empty")
        if not 0.0 < self.threshold <= 1.0:
            raise QueryError(
                f"PETQ threshold must lie in (0, 1], got {self.threshold}"
            )


@dataclass(frozen=True)
class EqualityTopKQuery:
    """PEQ-top-k: the ``k`` tuples with the highest equality probability.

    Ties at the k-th probability are broken by ascending tuple id, so the
    answer is deterministic and identical across executors.
    """

    q: UncertainAttribute
    k: int

    def __post_init__(self) -> None:
        if self.q.nnz == 0:
            raise QueryError("top-k query distribution must be non-empty")
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")


@dataclass(frozen=True)
class SimilarityThresholdQuery:
    """DSTQ: all tuples with ``F(q, t.a) <= threshold``.

    ``divergence`` names a measure from
    :data:`repro.core.divergence.DIVERGENCES` ("l1", "l2", "kl", ...).
    """

    q: UncertainAttribute
    threshold: float
    divergence: str = "l1"
    _fn: DivergenceFn = field(init=False, repr=False, compare=False)
    _sparse_fn: DivergenceFn = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.q.nnz == 0:
            raise QueryError("DSTQ query distribution must be non-empty")
        if self.threshold < 0.0:
            raise QueryError(
                f"DSTQ threshold must be >= 0, got {self.threshold}"
            )
        object.__setattr__(self, "_fn", get_divergence(self.divergence))
        object.__setattr__(
            self, "_sparse_fn", get_sparse_divergence(self.divergence)
        )

    def distance(self, other: UncertainAttribute) -> float:
        """Divergence from the query distribution to ``other``."""
        return self._fn(self.q, other)

    def distance_arrays(self, items: np.ndarray, probs: np.ndarray) -> float:
        """:meth:`distance` on a raw sparse vector, skipping UDA wrapping.

        Bit-identical to ``distance(UncertainAttribute(items, probs))``
        because every UDA-level divergence delegates to its sparse form
        on exactly these arrays.
        """
        return self._sparse_fn(self.q.items, self.q.probs, items, probs)


@dataclass(frozen=True)
class SimilarityTopKQuery:
    """DSQ-top-k: the ``k`` tuples with the smallest divergence."""

    q: UncertainAttribute
    k: int
    divergence: str = "l1"
    _fn: DivergenceFn = field(init=False, repr=False, compare=False)
    _sparse_fn: DivergenceFn = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.q.nnz == 0:
            raise QueryError("top-k query distribution must be non-empty")
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        object.__setattr__(self, "_fn", get_divergence(self.divergence))
        object.__setattr__(
            self, "_sparse_fn", get_sparse_divergence(self.divergence)
        )

    def distance(self, other: UncertainAttribute) -> float:
        """Divergence from the query distribution to ``other``."""
        return self._fn(self.q, other)

    def distance_arrays(self, items: np.ndarray, probs: np.ndarray) -> float:
        """:meth:`distance` on a raw sparse vector, skipping UDA wrapping.

        Bit-identical to ``distance(UncertainAttribute(items, probs))``
        because every UDA-level divergence delegates to its sparse form
        on exactly these arrays.
        """
        return self._sparse_fn(self.q.items, self.q.probs, items, probs)


@dataclass(frozen=True)
class WindowedEqualityQuery:
    """Relaxed PETQ on a totally ordered domain (paper Section 2).

    Returns tuples with ``Pr(|q - t.a| <= window) >= threshold``, where
    items are ordered by index.  ``window = 0`` is ordinary PETQ.

    Internally the query expands into a :class:`QueryVector` of weights
    ``w_i = sum_{j : |i-j| <= window} q.p_j`` so that the windowed
    probability is the plain weighted dot product ``sum_i w_i * u_i`` —
    which lets every equality executor (naive, inverted index, PDR-tree)
    answer it with its ordinary machinery.
    """

    q: UncertainAttribute
    threshold: float
    window: int

    def __post_init__(self) -> None:
        if self.q.nnz == 0:
            raise QueryError("windowed query distribution must be non-empty")
        if not 0.0 < self.threshold <= 1.0:
            raise QueryError(
                f"threshold must lie in (0, 1], got {self.threshold}"
            )
        if self.window < 0:
            raise QueryError(f"window must be >= 0, got {self.window}")

    def expanded(self, domain_size: int | None = None) -> QueryVector:
        """The window-expanded weight vector.

        ``domain_size`` clamps the span on the high side, mirroring the
        clamp at 0 on the low side: a window reaching past the last
        domain item must not emit weights for items outside the domain
        (executors would crash or, worse, silently score phantom items).
        """
        low = int(self.q.items.min()) - self.window
        high = int(self.q.items.max()) + self.window
        if domain_size is not None:
            if int(self.q.items.max()) >= domain_size:
                raise QueryError(
                    f"query item {int(self.q.items.max())} outside domain "
                    f"of size {domain_size}"
                )
            high = min(high, domain_size - 1)
        span = np.arange(max(low, 0), high + 1, dtype=np.int64)
        weights = np.zeros(len(span))
        for item, prob in self.q.pairs():
            start = max(item - self.window, 0) - span[0]
            end = min(item + self.window, span[-1]) + 1 - span[0]
            weights[max(start, 0) : end] += prob
        keep = weights > 0.0
        return QueryVector(span[keep], weights[keep])


#: Union of every query descriptor type.
Query = (
    EqualityQuery
    | EqualityThresholdQuery
    | EqualityTopKQuery
    | SimilarityThresholdQuery
    | SimilarityTopKQuery
    | WindowedEqualityQuery
)
