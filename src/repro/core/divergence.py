"""Distributional divergence measures: L1, L2, and KL.

Section 2 of the paper defines three distances between distributions:

* ``L1(u, v) = sum_i |u.p_i - v.p_i|`` — Manhattan distance;
* ``L2(u, v) = sqrt(sum_i (u.p_i - v.p_i)^2)`` — Euclidean distance;
* ``KL(u, v) = sum_i u.p_i log(u.p_i / v.p_i)`` — Kullback–Leibler
  divergence, which "is not a metric ... but can be used for clustering in
  an index".

All three operate on the *sparse* UDA representation; KL uses an epsilon
floor on the right-hand distribution so it is defined when ``v`` lacks an
item of ``u``'s support (needed when clustering against MBR boundary
vectors, which are not strict distributions).

The measures double as distances between MBR boundary vectors during
PDR-tree insertion and splitting, so they also accept plain
``(items, values)`` sparse vectors via :func:`sparse_l1` and friends.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.exceptions import QueryError
from repro.core.uda import UncertainAttribute

#: Epsilon floor for KL against vectors with holes in their support.
KL_EPSILON = 1e-9

#: Signature shared by all divergence measures.
DivergenceFn = Callable[[UncertainAttribute, UncertainAttribute], float]


def _aligned(
    u_items: np.ndarray,
    u_values: np.ndarray,
    v_items: np.ndarray,
    v_values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand two sparse vectors onto the union of their supports."""
    union = np.union1d(u_items, v_items)
    left = np.zeros(len(union))
    right = np.zeros(len(union))
    left[np.searchsorted(union, u_items)] = u_values
    right[np.searchsorted(union, v_items)] = v_values
    return left, right


def sparse_l1(
    u_items: np.ndarray,
    u_values: np.ndarray,
    v_items: np.ndarray,
    v_values: np.ndarray,
) -> float:
    """Manhattan distance between two sparse non-negative vectors."""
    left, right = _aligned(u_items, u_values, v_items, v_values)
    return float(np.abs(left - right).sum())


def sparse_l2(
    u_items: np.ndarray,
    u_values: np.ndarray,
    v_items: np.ndarray,
    v_values: np.ndarray,
) -> float:
    """Euclidean distance between two sparse non-negative vectors."""
    left, right = _aligned(u_items, u_values, v_items, v_values)
    return float(np.sqrt(np.square(left - right).sum()))


def sparse_kl(
    u_items: np.ndarray,
    u_values: np.ndarray,
    v_items: np.ndarray,
    v_values: np.ndarray,
    epsilon: float = KL_EPSILON,
) -> float:
    """KL divergence ``KL(u || v)`` with an epsilon floor on ``v``.

    Only items in ``u``'s support contribute (``0 log 0 = 0``); items of
    ``u`` missing from ``v`` are compared against ``epsilon`` rather than
    zero, keeping the result finite.
    """
    if len(u_items) == 0:
        return 0.0
    if len(v_items) == 0:
        v_aligned = np.full(len(u_items), epsilon)
    else:
        positions = np.minimum(
            np.searchsorted(v_items, u_items), len(v_items) - 1
        )
        matched = v_items[positions] == u_items
        v_aligned = np.where(matched, v_values[positions], epsilon)
        v_aligned = np.maximum(v_aligned, epsilon)
    return float(np.sum(u_values * np.log(u_values / v_aligned)))


def l1_divergence(u: UncertainAttribute, v: UncertainAttribute) -> float:
    """``L1(u, v)``: Manhattan distance between two UDAs."""
    return sparse_l1(u.items, u.probs, v.items, v.probs)


def l2_divergence(u: UncertainAttribute, v: UncertainAttribute) -> float:
    """``L2(u, v)``: Euclidean distance between two UDAs."""
    return sparse_l2(u.items, u.probs, v.items, v.probs)


def kl_divergence(u: UncertainAttribute, v: UncertainAttribute) -> float:
    """``KL(u, v)``: Kullback–Leibler divergence (asymmetric, non-metric)."""
    return sparse_kl(u.items, u.probs, v.items, v.probs)


def symmetric_kl(u: UncertainAttribute, v: UncertainAttribute) -> float:
    """Symmetrized KL, ``(KL(u,v) + KL(v,u)) / 2``.

    Used where a clustering step needs a symmetric dissimilarity (e.g.
    picking the two farthest split seeds) while staying in the KL family.
    """
    return 0.5 * (kl_divergence(u, v) + kl_divergence(v, u))


def sparse_symmetric_kl(
    u_items: np.ndarray,
    u_values: np.ndarray,
    v_items: np.ndarray,
    v_values: np.ndarray,
) -> float:
    """Symmetrized KL over sparse vectors, ``(KL(u,v) + KL(v,u)) / 2``."""
    return 0.5 * (
        sparse_kl(u_items, u_values, v_items, v_values)
        + sparse_kl(v_items, v_values, u_items, u_values)
    )


#: Registry of divergence measures by name, as used throughout the library
#: and in the Figure 4 experiment.
DIVERGENCES: dict[str, DivergenceFn] = {
    "l1": l1_divergence,
    "l2": l2_divergence,
    "kl": kl_divergence,
    "symmetric_kl": symmetric_kl,
}

#: Sparse-vector counterparts of :data:`DIVERGENCES`, keyed identically.
#: Each UDA-level measure is a thin wrapper over its sparse function, so
#: calling the sparse form on ``(u.items, u.probs, v.items, v.probs)``
#: returns the bit-identical float — the DSTQ leaf loops rely on this to
#: score decoded entry arrays without building UDA objects.
SPARSE_DIVERGENCES: dict[str, Callable[..., float]] = {
    "l1": sparse_l1,
    "l2": sparse_l2,
    "kl": sparse_kl,
    "symmetric_kl": sparse_symmetric_kl,
}


def get_divergence(name: str) -> DivergenceFn:
    """Look up a divergence measure by name (case-insensitive)."""
    try:
        return DIVERGENCES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(DIVERGENCES))
        raise QueryError(
            f"unknown divergence {name!r}; expected one of: {known}"
        ) from None


def get_sparse_divergence(name: str) -> Callable[..., float]:
    """Look up the sparse-vector form of a divergence (case-insensitive)."""
    try:
        return SPARSE_DIVERGENCES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(SPARSE_DIVERGENCES))
        raise QueryError(
            f"unknown divergence {name!r}; expected one of: {known}"
        ) from None
