"""A paged B+-tree with fixed-size keys and values.

The paper organises posting lists and tuple lists "as dynamic structures
such as B-trees, allowing efficient searches, insertions, and deletions"
(Section 3.1).  This module provides that substrate: a disk-backed B+-tree
whose every node is one page fetched through the buffer pool, so tree
traversals cost exactly the I/Os the paper counts.

Keys are fixed-length byte strings compared lexicographically; encode keys
so that byte order equals logical order (see
:func:`repro.storage.serialization.encode_posting_key`).  Values are
fixed-length byte strings.

Supported operations: point search, ascending iteration (whole tree or
from a key), insert, delete, and sorted bulk load.  Deletes do not
rebalance (no merging/borrowing): records are removed in place and empty
non-root leaves simply persist until their sibling chain is rebuilt.  This
keeps the structure simple while preserving every search invariant; the
experiment workloads are build-once/query-many, matching the paper's.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterable, Iterator

from repro.core.exceptions import (
    DuplicateKeyError,
    KeyNotFoundError,
    TreeError,
)
from repro.btree.node import (
    INTERNAL,
    InternalView,
    LeafView,
    decode_internal_node,
    decode_leaf_node,
    node_type,
)
from repro.storage.buffer import BufferPool
from repro.storage.page import INVALID_PAGE_ID, Page

#: DecodedCache kinds for this tree's node decodings.
INTERNAL_KIND = "btree-internal"
LEAF_KIND = "btree-leaf"


class BPlusTree:
    """A disk-backed B+-tree over fixed-size byte keys and values.

    Parameters
    ----------
    pool:
        Buffer pool for all page access; swap the attribute to re-run
        queries under a fresh bounded pool.
    key_size / value_size:
        Record geometry in bytes.  All keys and values must have exactly
        these lengths.
    """

    def __init__(
        self,
        pool: BufferPool,
        key_size: int,
        value_size: int,
        tag: str = "btree",
    ) -> None:
        if key_size < 1:
            raise TreeError(f"key_size must be >= 1, got {key_size}")
        if value_size < 0:
            raise TreeError(f"value_size must be >= 0, got {value_size}")
        self.pool = pool
        self.key_size = key_size
        self.value_size = value_size
        self.tag = tag
        page_size = pool.disk.page_size
        self.leaf_capacity = LeafView.capacity(page_size, key_size, value_size)
        self.internal_capacity = InternalView.capacity(page_size, key_size)
        if self.leaf_capacity < 2 or self.internal_capacity < 2:
            raise TreeError(
                f"records of {key_size}+{value_size} bytes are too large for "
                f"{page_size}-byte pages"
            )
        root = self.pool.new_page(tag=self.tag)
        LeafView.initialize(root, key_size, value_size)
        self.pool.mark_dirty(root.page_id)
        self.root_page_id = root.page_id
        self.height = 1
        self.num_records = 0

    @classmethod
    def attach(
        cls,
        pool: BufferPool,
        key_size: int,
        value_size: int,
        root_page_id: int,
        height: int,
        num_records: int,
        tag: str = "btree",
    ) -> "BPlusTree":
        """Re-attach to an existing tree on disk (no root allocation).

        Used when reopening a persisted structure: the caller supplies
        the root id and counters previously captured from :meth:`state`.
        """
        tree = cls.__new__(cls)
        tree.pool = pool
        tree.key_size = key_size
        tree.value_size = value_size
        tree.tag = tag
        page_size = pool.disk.page_size
        tree.leaf_capacity = LeafView.capacity(page_size, key_size, value_size)
        tree.internal_capacity = InternalView.capacity(page_size, key_size)
        tree.root_page_id = root_page_id
        tree.height = height
        tree.num_records = num_records
        return tree

    def state(self) -> dict:
        """The attachment state for :meth:`attach` (JSON-serializable)."""
        return {
            "root_page_id": self.root_page_id,
            "height": self.height,
            "num_records": self.num_records,
        }

    # -- views ---------------------------------------------------------------

    def _leaf(self, page: Page) -> LeafView:
        return LeafView(page, self.key_size, self.value_size)

    def _internal(self, page: Page) -> InternalView:
        return InternalView(page, self.key_size)

    def _check_key(self, key: bytes) -> None:
        if len(key) != self.key_size:
            raise TreeError(
                f"key of {len(key)} bytes; tree expects {self.key_size}"
            )

    # -- decoded node access -------------------------------------------------

    def _decode_internal(self, page: Page) -> tuple[list[bytes], list[int]]:
        return decode_internal_node(page, self.key_size)

    def _decode_leaf(self, page: Page) -> tuple[list[bytes], list[bytes], int]:
        return decode_leaf_node(page, self.key_size, self.value_size)

    def _decoded_internal(self, page: Page) -> tuple[list[bytes], list[int]]:
        return self.pool.decoded.get_or_decode(
            INTERNAL_KIND, page, self._decode_internal
        )

    def _decoded_leaf(self, page: Page) -> tuple[list[bytes], list[bytes], int]:
        return self.pool.decoded.get_or_decode(LEAF_KIND, page, self._decode_leaf)

    # -- search ----------------------------------------------------------------

    def _descend_to_leaf_page(self, key: bytes) -> tuple[Page, list[int]]:
        """Walk from the root to the leaf page for ``key``.

        Returns the leaf page and the page-id path (root first, leaf
        last).  Internal nodes are routed through the decoded cache;
        each level still costs exactly one ``fetch_page``.
        """
        path = []
        page = self.pool.fetch_page(self.root_page_id)
        path.append(page.page_id)
        while node_type(page) == INTERNAL:
            keys, children = self._decoded_internal(page)
            page = self.pool.fetch_page(children[bisect_right(keys, key)])
            path.append(page.page_id)
        return page, path

    def _descend_to_leaf(self, key: bytes) -> tuple[LeafView, list[int]]:
        """Like :meth:`_descend_to_leaf_page` but returning a mutable view."""
        page, path = self._descend_to_leaf_page(key)
        return self._leaf(page), path

    def search(self, key: bytes) -> bytes | None:
        """Return the value stored under ``key``, or None."""
        self._check_key(key)
        page, _ = self._descend_to_leaf_page(key)
        keys, values, _ = self._decoded_leaf(page)
        index = bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return values[index]
        return None

    def _leftmost_leaf_id(self) -> int:
        page = self.pool.fetch_page(self.root_page_id)
        while node_type(page) == INTERNAL:
            _, children = self._decoded_internal(page)
            page = self.pool.fetch_page(children[0])
        return page.page_id

    def leftmost_path_ids(self) -> list[int]:
        """Page-id path root -> leftmost leaf (the pages a fresh cursor reads).

        Used by the batch executor to pin-ahead exactly the pages a
        descending scan is guaranteed to touch first.  Costs the same
        fetches as opening a cursor would.
        """
        path = []
        page = self.pool.fetch_page(self.root_page_id)
        path.append(page.page_id)
        while node_type(page) == INTERNAL:
            _, children = self._decoded_internal(page)
            page = self.pool.fetch_page(children[0])
            path.append(page.page_id)
        return path

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate all records in ascending key order."""
        for page in self.iter_leaf_pages():
            keys, values, _ = self._decoded_leaf(page)
            yield from zip(keys, values)

    def items_from(self, key: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate records with key >= ``key`` in ascending order."""
        self._check_key(key)
        page, _ = self._descend_to_leaf_page(key)
        keys, values, next_leaf = self._decoded_leaf(page)
        index = bisect_left(keys, key)
        while True:
            for i in range(index, len(keys)):
                yield keys[i], values[i]
            if next_leaf == INVALID_PAGE_ID:
                return
            page = self.pool.fetch_page(next_leaf)
            keys, values, next_leaf = self._decoded_leaf(page)
            index = 0

    def iter_leaf_pages(self) -> Iterator[Page]:
        """Yield each leaf's page, left to right (one fetch per leaf).

        The chain is followed via the on-page next-leaf header, with no
        record decoding, so callers choose their own decoded form — the
        posting lists cache numpy arrays, :meth:`items` caches
        key/value lists — and pay for exactly one of them.
        """
        page_id = self._leftmost_leaf_id()
        visited = set()
        while page_id != INVALID_PAGE_ID:
            if page_id in visited:
                raise TreeError(f"leaf chain cycles at page {page_id}")
            visited.add(page_id)
            page = self.pool.fetch_page(page_id)
            yield page
            page_id = page.read_u32(4)

    def iter_leaf_runs(self) -> Iterator[bytes]:
        """Yield each leaf's packed records (for vectorized decoding).

        Visiting one leaf costs one page fetch; decoding the returned run
        is free.  Kept for callers that want raw bytes; cache-aware
        scans should prefer :meth:`iter_leaf_pages`.
        """
        for page in self.iter_leaf_pages():
            yield self._leaf(page).records_bytes()

    # -- insert -------------------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> None:
        """Insert a record; raises DuplicateKeyError if ``key`` exists."""
        self._check_key(key)
        if len(value) != self.value_size:
            raise TreeError(
                f"value of {len(value)} bytes; tree expects {self.value_size}"
            )
        leaf, path = self._descend_to_leaf(key)
        index = leaf.bisect_left(key)
        if index < leaf.count and leaf.key_at(index) == key:
            raise DuplicateKeyError(f"key {key.hex()} already present")
        if leaf.count < self.leaf_capacity:
            leaf.insert_at(index, key, value)
            self.pool.mark_dirty(leaf.page.page_id)
        else:
            self._split_leaf_and_insert(leaf, path, key, value)
        self.num_records += 1

    def _split_leaf_and_insert(
        self, leaf: LeafView, path: list[int], key: bytes, value: bytes
    ) -> None:
        new_page = self.pool.new_page(tag=self.tag)
        new_leaf = LeafView.initialize(new_page, self.key_size, self.value_size)
        separator = leaf.take_upper_half(new_leaf)
        new_leaf.next_leaf = leaf.next_leaf
        leaf.next_leaf = new_page.page_id
        if key < separator:
            leaf.insert_at(leaf.bisect_left(key), key, value)
        else:
            new_leaf.insert_at(new_leaf.bisect_left(key), key, value)
        self.pool.mark_dirty(leaf.page.page_id)
        self.pool.mark_dirty(new_page.page_id)
        self._insert_separator(path[:-1], leaf.page.page_id, separator, new_page.page_id)

    def _insert_separator(
        self, path: list[int], left_id: int, key: bytes, right_id: int
    ) -> None:
        """Propagate a split upward along ``path`` (may grow a new root)."""
        while path:
            parent = self._internal(self.pool.fetch_page(path[-1]))
            index = parent.child_index_for(key)
            if parent.child_at(index) != left_id:
                # The key equals an existing separator; the left child sits
                # immediately before the descend position.
                raise TreeError("split parent does not reference child")
            if parent.count < self.internal_capacity:
                parent.insert_entry(index, key, right_id)
                self.pool.mark_dirty(parent.page.page_id)
                return
            # Split the parent, then decide which half receives the entry.
            new_page = self.pool.new_page(tag=self.tag)
            new_internal = InternalView.initialize(
                new_page, self.key_size, leftmost_child=0
            )
            promoted = parent.split_into(new_internal)
            if key < promoted:
                parent.insert_entry(parent.child_index_for(key), key, right_id)
            else:
                new_internal.insert_entry(
                    new_internal.child_index_for(key), key, right_id
                )
            self.pool.mark_dirty(parent.page.page_id)
            self.pool.mark_dirty(new_page.page_id)
            left_id = parent.page.page_id
            key = promoted
            right_id = new_page.page_id
            path = path[:-1]
        self._grow_root(left_id, key, right_id)

    def _grow_root(self, left_id: int, key: bytes, right_id: int) -> None:
        root = self.pool.new_page(tag=self.tag)
        view = InternalView.initialize(root, self.key_size, leftmost_child=left_id)
        view.append_entry(key, right_id)
        self.pool.mark_dirty(root.page_id)
        self.root_page_id = root.page_id
        self.height += 1

    # -- delete ---------------------------------------------------------------------

    def delete(self, key: bytes) -> None:
        """Remove the record under ``key``; raises KeyNotFoundError if absent."""
        self._check_key(key)
        leaf, _ = self._descend_to_leaf(key)
        index = leaf.bisect_left(key)
        if index >= leaf.count or leaf.key_at(index) != key:
            raise KeyNotFoundError(f"key {key.hex()} not present")
        leaf.remove_at(index)
        self.pool.mark_dirty(leaf.page.page_id)
        self.num_records -= 1

    # -- bulk load --------------------------------------------------------------------

    def bulk_load(
        self,
        records: Iterable[tuple[bytes, bytes]],
        fill_factor: float = 1.0,
    ) -> None:
        """Replace the tree's contents with pre-sorted ``records``.

        ``records`` must be in strictly ascending key order.  Leaves are
        packed to ``fill_factor`` of capacity; internal levels are built
        bottom-up.  Only valid on an empty tree.
        """
        if self.num_records:
            raise TreeError("bulk_load requires an empty tree")
        if not 0.0 < fill_factor <= 1.0:
            raise TreeError(f"fill factor must be in (0, 1], got {fill_factor}")
        per_leaf = max(2, int(self.leaf_capacity * fill_factor))

        # Build the leaf level.
        leaf_firsts: list[bytes] = []
        leaf_ids: list[int] = []
        current: LeafView | None = None
        previous_key: bytes | None = None
        count = 0
        for key, value in records:
            self._check_key(key)
            if previous_key is not None and key <= previous_key:
                raise TreeError("bulk_load records must be strictly ascending")
            previous_key = key
            if current is None or current.count >= per_leaf:
                page = self.pool.new_page(tag=self.tag)
                new_leaf = LeafView.initialize(page, self.key_size, self.value_size)
                if current is not None:
                    current.next_leaf = page.page_id
                    self.pool.mark_dirty(current.page.page_id)
                current = new_leaf
                leaf_ids.append(page.page_id)
                leaf_firsts.append(key)
            current.append_record(key, value)
            self.pool.mark_dirty(current.page.page_id)
            count += 1
        if not leaf_ids:
            return  # nothing to load; keep the empty root leaf

        # Build internal levels bottom-up until a single root remains.
        level_ids = leaf_ids
        level_firsts = leaf_firsts
        height = 1
        per_internal = max(2, int(self.internal_capacity * fill_factor))
        while len(level_ids) > 1:
            parent_firsts: list[bytes] = []
            i = 0
            parents: list[int] = []
            while i < len(level_ids):
                group_ids = level_ids[i : i + per_internal + 1]
                group_firsts = level_firsts[i : i + per_internal + 1]
                page = self.pool.new_page(tag=self.tag)
                view = InternalView.initialize(
                    page, self.key_size, leftmost_child=group_ids[0]
                )
                for child_id, first in zip(group_ids[1:], group_firsts[1:]):
                    view.append_entry(first, child_id)
                self.pool.mark_dirty(page.page_id)
                parents.append(page.page_id)
                parent_firsts.append(group_firsts[0])
                i += per_internal + 1
            level_ids = parents
            level_firsts = parent_firsts
            height += 1

        # Install the new root.  The placeholder empty root leaf remains
        # allocated (one page) so that a buffered copy can still be flushed.
        self.root_page_id = level_ids[0]
        self.height = height
        self.num_records = count

    # -- introspection -------------------------------------------------------------------

    def __len__(self) -> int:
        return self.num_records

    def __repr__(self) -> str:
        return (
            f"BPlusTree(records={self.num_records}, height={self.height}, "
            f"leaf_capacity={self.leaf_capacity})"
        )
