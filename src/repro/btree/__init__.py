"""Paged B+-tree substrate used by posting lists and tuple directories."""

from repro.btree.node import InternalView, LeafView
from repro.btree.tree import BPlusTree

__all__ = ["BPlusTree", "InternalView", "LeafView"]
