"""On-page node layouts for the paged B+-tree.

Both node kinds share a 4-byte header; records are fixed size, packed
contiguously, and kept sorted by raw byte comparison (callers encode keys
so that lexicographic byte order equals logical order — see
:mod:`repro.storage.serialization`).

Leaf layout::

    0  u8   node_type (0)
    1  u8   reserved
    2  u16  count
    4  u32  next_leaf page id (INVALID_PAGE_ID if none)
    8  records: count * (key_size + value_size) bytes, ascending by key

Internal layout::

    0  u8   node_type (1)
    1  u8   reserved
    2  u16  count                (number of separator keys)
    4  u32  child[0] page id
    8  entries: count * (key_size + 4) bytes of (separator key, child id);
       child[i+1] holds keys >= separator[i]
"""

from __future__ import annotations

import struct

from repro.core.exceptions import TreeError
from repro.storage.page import INVALID_PAGE_ID, Page

LEAF = 0
INTERNAL = 1

_HEADER_SIZE = 8
_CHILD_SIZE = 4
_U32 = struct.Struct("<I")


class LeafView:
    """A typed view over a leaf node's page."""

    __slots__ = ("page", "key_size", "value_size", "record_size")

    def __init__(self, page: Page, key_size: int, value_size: int) -> None:
        self.page = page
        self.key_size = key_size
        self.value_size = value_size
        self.record_size = key_size + value_size

    @classmethod
    def initialize(cls, page: Page, key_size: int, value_size: int) -> "LeafView":
        """Format ``page`` as an empty leaf."""
        page.write_u8(0, LEAF)
        page.write_u8(1, 0)
        page.write_u16(2, 0)
        page.write_u32(4, INVALID_PAGE_ID)
        return cls(page, key_size, value_size)

    @staticmethod
    def capacity(page_size: int, key_size: int, value_size: int) -> int:
        """Maximum number of records a leaf can hold."""
        return (page_size - _HEADER_SIZE) // (key_size + value_size)

    # -- header -------------------------------------------------------------

    @property
    def count(self) -> int:
        return self.page.read_u16(2)

    @count.setter
    def count(self, value: int) -> None:
        self.page.write_u16(2, value)

    @property
    def next_leaf(self) -> int:
        return self.page.read_u32(4)

    @next_leaf.setter
    def next_leaf(self, page_id: int) -> None:
        self.page.write_u32(4, page_id)

    # -- records ------------------------------------------------------------

    def _offset(self, index: int) -> int:
        return _HEADER_SIZE + index * self.record_size

    def key_at(self, index: int) -> bytes:
        offset = self._offset(index)
        return bytes(self.page.data[offset : offset + self.key_size])

    def value_at(self, index: int) -> bytes:
        offset = self._offset(index) + self.key_size
        return bytes(self.page.data[offset : offset + self.value_size])

    def record_at(self, index: int) -> bytes:
        offset = self._offset(index)
        return bytes(self.page.data[offset : offset + self.record_size])

    def records_bytes(self) -> bytes:
        """All records as one contiguous byte run (for bulk decoding)."""
        return bytes(self.page.data[_HEADER_SIZE : self._offset(self.count)])

    def records_view(self) -> memoryview:
        """Zero-copy window over the records (valid until the next write)."""
        return self.page.view(_HEADER_SIZE, self.count * self.record_size)

    def bisect_left(self, key: bytes) -> int:
        """First index whose key is >= ``key``."""
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            if self.key_at(mid) < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def insert_at(self, index: int, key: bytes, value: bytes) -> None:
        """Shift records right and place ``(key, value)`` at ``index``."""
        count = self.count
        start = self._offset(index)
        end = self._offset(count)
        self.page.data[start + self.record_size : end + self.record_size] = (
            self.page.data[start:end]
        )
        self.page.data[start : start + self.key_size] = key
        self.page.data[start + self.key_size : start + self.record_size] = value
        self.page.bump_version()
        self.count = count + 1

    def remove_at(self, index: int) -> None:
        """Delete the record at ``index``, shifting the tail left."""
        count = self.count
        start = self._offset(index)
        end = self._offset(count)
        self.page.data[start : end - self.record_size] = self.page.data[
            start + self.record_size : end
        ]
        self.page.bump_version()
        self.count = count - 1

    def append_record(self, key: bytes, value: bytes) -> None:
        """Append at the end; caller guarantees sort order and capacity."""
        offset = self._offset(self.count)
        self.page.data[offset : offset + self.key_size] = key
        self.page.data[offset + self.key_size : offset + self.record_size] = value
        self.page.bump_version()
        self.count = self.count + 1

    def take_upper_half(self, into: "LeafView") -> bytes:
        """Move the upper half of the records into the (empty) leaf ``into``.

        Returns the first key of the moved half (the separator).
        """
        count = self.count
        split = count // 2
        if split == 0 or split == count:
            raise TreeError(f"cannot split a leaf of {count} records")
        start = self._offset(split)
        end = self._offset(count)
        moved = self.page.data[start:end]
        into.page.data[_HEADER_SIZE : _HEADER_SIZE + len(moved)] = moved
        into.page.bump_version()
        into.count = count - split
        self.count = split
        return bytes(moved[: self.key_size])


class InternalView:
    """A typed view over an internal node's page."""

    __slots__ = ("page", "key_size", "entry_size")

    def __init__(self, page: Page, key_size: int) -> None:
        self.page = page
        self.key_size = key_size
        self.entry_size = key_size + _CHILD_SIZE

    @classmethod
    def initialize(
        cls, page: Page, key_size: int, leftmost_child: int
    ) -> "InternalView":
        """Format ``page`` as an internal node with one child, no keys."""
        page.write_u8(0, INTERNAL)
        page.write_u8(1, 0)
        page.write_u16(2, 0)
        page.write_u32(4, leftmost_child)
        return cls(page, key_size)

    @staticmethod
    def capacity(page_size: int, key_size: int) -> int:
        """Maximum number of separator keys an internal node can hold."""
        return (page_size - _HEADER_SIZE) // (key_size + _CHILD_SIZE)

    # -- header -------------------------------------------------------------

    @property
    def count(self) -> int:
        return self.page.read_u16(2)

    @count.setter
    def count(self, value: int) -> None:
        self.page.write_u16(2, value)

    # -- entries ------------------------------------------------------------

    def _offset(self, index: int) -> int:
        return _HEADER_SIZE + index * self.entry_size

    def key_at(self, index: int) -> bytes:
        offset = self._offset(index)
        return bytes(self.page.data[offset : offset + self.key_size])

    def child_at(self, index: int) -> int:
        """The page id of child ``index`` in ``[0, count]``."""
        if index == 0:
            return self.page.read_u32(4)
        offset = self._offset(index - 1) + self.key_size
        return _U32.unpack_from(self.page.data, offset)[0]

    def set_child(self, index: int, page_id: int) -> None:
        if index == 0:
            self.page.write_u32(4, page_id)
        else:
            offset = self._offset(index - 1) + self.key_size
            _U32.pack_into(self.page.data, offset, page_id)
            self.page.bump_version()

    def child_index_for(self, key: bytes) -> int:
        """Index of the child whose subtree may contain ``key``.

        ``child[i+1]`` holds keys >= ``separator[i]``, so we descend into
        the child after the last separator <= key.
        """
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            if self.key_at(mid) <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def insert_entry(self, index: int, key: bytes, right_child: int) -> None:
        """Insert separator ``key`` with its right child at key slot ``index``."""
        count = self.count
        start = self._offset(index)
        end = self._offset(count)
        self.page.data[start + self.entry_size : end + self.entry_size] = (
            self.page.data[start:end]
        )
        self.page.data[start : start + self.key_size] = key
        _U32.pack_into(self.page.data, start + self.key_size, right_child)
        self.page.bump_version()
        self.count = count + 1

    def append_entry(self, key: bytes, right_child: int) -> None:
        """Append a separator/child pair at the end (bulk load path)."""
        offset = self._offset(self.count)
        self.page.data[offset : offset + self.key_size] = key
        _U32.pack_into(self.page.data, offset + self.key_size, right_child)
        self.page.bump_version()
        self.count = self.count + 1

    def remove_entry(self, index: int) -> None:
        """Remove separator ``index`` and its right child."""
        count = self.count
        start = self._offset(index)
        end = self._offset(count)
        self.page.data[start : end - self.entry_size] = self.page.data[
            start + self.entry_size : end
        ]
        self.page.bump_version()
        self.count = count - 1

    def split_into(self, into: "InternalView") -> bytes:
        """Move the upper half into ``into``; returns the promoted key.

        The median separator is *promoted* (removed from both halves), as
        usual for internal B+-tree splits.
        """
        count = self.count
        mid = count // 2
        promoted = self.key_at(mid)
        into.set_child(0, self.child_at(mid + 1))
        for i in range(mid + 1, count):
            into.append_entry(self.key_at(i), self.child_at(i + 1))
        self.count = mid
        return promoted


def node_type(page: Page) -> int:
    """Read the node-type tag of a formatted tree page."""
    return page.read_u8(0)


# -- decoded forms (for the DecodedCache) ------------------------------------
#
# The view classes above re-parse the page bytes on every access, which is
# free in the paper's I/O model but not in wall-clock.  The tree's read
# paths instead cache these fully materialized forms, keyed by the page's
# (id, version) in the pool's DecodedCache.  They hold independent ``bytes``
# objects (never the live page buffer), so they stay valid after the page
# is rewritten or evicted.


def decode_internal_node(
    page: Page, key_size: int
) -> tuple[list[bytes], list[int]]:
    """Decode an internal page into ``(separator keys, child page ids)``.

    ``len(children) == len(keys) + 1`` and ``bisect_right(keys, key)`` is
    the descent index, matching :meth:`InternalView.child_index_for`
    (which descends after the last separator <= key).
    """
    count = page.read_u16(2)
    entry_size = key_size + _CHILD_SIZE
    buf = page.view(4, _CHILD_SIZE + count * entry_size)
    children = [_U32.unpack_from(buf, 0)[0]]
    keys = []
    offset = _CHILD_SIZE
    for _ in range(count):
        keys.append(bytes(buf[offset : offset + key_size]))
        children.append(_U32.unpack_from(buf, offset + key_size)[0])
        offset += entry_size
    return keys, children


def decode_leaf_node(
    page: Page, key_size: int, value_size: int
) -> tuple[list[bytes], list[bytes], int]:
    """Decode a leaf page into ``(keys, values, next_leaf)``.

    ``bisect_left(keys, key)`` matches :meth:`LeafView.bisect_left`.
    """
    count = page.read_u16(2)
    next_leaf = page.read_u32(4)
    record_size = key_size + value_size
    buf = page.view(_HEADER_SIZE, count * record_size)
    keys = []
    values = []
    offset = 0
    for _ in range(count):
        keys.append(bytes(buf[offset : offset + key_size]))
        values.append(bytes(buf[offset + key_size : offset + record_size]))
        offset += record_size
    return keys, values, next_leaf
