"""Query tracing: typed event records, pluggable sinks, scoped activation.

The paper's whole evaluation is the number of page I/Os per query; this
module makes that number *auditable* instead of trusted.  A
:class:`Tracer` emits flat dict records (``{"seq": n, "kind": ..., ...}``)
describing every buffer-pool hit/miss/evict, physical disk read/write,
decoded-cache lookup, posting-cursor advance, early-stop decision, and
PDR-tree prune/descend verdict, into one of two sinks:

* :class:`MemorySink` — an in-process record list, used by the
  trace-driven invariant tests (``tests/obs/``);
* :class:`JsonlSink` — one canonical JSON object per line
  (``sort_keys``, compact separators, no timestamps), so a trace of a
  seeded workload is *byte-identical* across runs and ``--jobs`` counts.

Tracing is **off by default and zero-overhead when off**: instrumented
code checks the module global :data:`ACTIVE` for ``None`` before
building any record — there is no no-op tracer object and no event
allocation on the disabled path.  (The counter-only
:data:`repro.obs.metrics.METRICS` registry stays on regardless; see
:mod:`repro.obs.metrics`.)

Activation is scoped, never ambient:

* ``with tracing(tracer): ...`` installs a tracer for a block;
* ``with tracing_to_path(path): ...`` does the same with a JSONL file;
* the benchmark harness installs a per-experiment
  :class:`BenchCollector` (``--trace`` / ``REPRO_TRACE``), which
  activates the tracer only around each *measured* query — builds and
  cache-warmup are never traced, which is what keeps bench traces
  deterministic across worker counts and module-level dataset caches.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Any, Iterator, TextIO

from repro.obs.metrics import MetricsRegistry

#: Environment variable naming a JSONL file for benchmark traces.
TRACE_ENV = "REPRO_TRACE"


def encode_record(record: dict[str, Any]) -> str:
    """The canonical JSONL encoding of one trace record (no newline).

    Keys are sorted and separators compact so that equal records encode
    to equal bytes — the determinism tests compare whole files.
    """
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


class MemorySink:
    """An in-process sink: records accumulate in a plain list."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def write(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    # -- test/replay helpers -------------------------------------------------

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """Every record of one event kind, in emission order."""
        return [r for r in self.records if r["kind"] == kind]

    def count(self, kind: str) -> int:
        """Number of records of one event kind."""
        return sum(1 for r in self.records if r["kind"] == kind)

    def kinds(self) -> dict[str, int]:
        """Histogram of record kinds."""
        histogram: dict[str, int] = {}
        for record in self.records:
            kind = record["kind"]
            histogram[kind] = histogram.get(kind, 0) + 1
        return histogram

    def jsonl_lines(self) -> list[str]:
        """Canonical JSONL encoding of every record (no newlines)."""
        return [encode_record(record) for record in self.records]

    def __len__(self) -> int:
        return len(self.records)


class JsonlSink:
    """A sink writing one canonical JSON object per line to a text file."""

    __slots__ = ("_fh",)

    def __init__(self, fh: TextIO) -> None:
        self._fh = fh

    def write(self, record: dict[str, Any]) -> None:
        self._fh.write(encode_record(record) + "\n")

    def flush(self) -> None:
        self._fh.flush()


class Tracer:
    """Emits sequenced event records into one sink.

    ``seq`` is a per-tracer monotonic counter starting at 1; records
    carry no timestamps or process ids, so a trace is a pure function of
    the traced execution.
    """

    __slots__ = ("sink", "seq")

    def __init__(self, sink) -> None:
        self.sink = sink
        self.seq = 0

    def event(self, kind: str, **fields: Any) -> None:
        """Emit one record.  Only call through an ``is not None`` guard."""
        self.seq += 1
        record: dict[str, Any] = {"seq": self.seq, "kind": kind}
        record.update(fields)
        self.sink.write(record)


#: The installed tracer, or None (the common case).  Hot paths read this
#: directly (``trace.ACTIVE``) and skip all event work when it is None.
ACTIVE: Tracer | None = None


def active_tracer() -> Tracer | None:
    """The currently installed tracer, if any."""
    return ACTIVE


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the active tracer for the block (re-entrant)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer
    try:
        yield tracer
    finally:
        ACTIVE = previous


@contextmanager
def tracing_to_path(path) -> Iterator[Tracer]:
    """Trace the block to a JSONL file at ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        with tracing(Tracer(JsonlSink(fh))) as tracer:
            yield tracer


def resolve_trace_path(arg: str | None = None) -> str | None:
    """Resolve a trace destination: explicit argument, else ``REPRO_TRACE``."""
    if arg:
        return arg
    env = os.environ.get(TRACE_ENV, "").strip()
    return env or None


# ---------------------------------------------------------------------------
# Benchmark collection (measurement-scoped tracing + metrics)
# ---------------------------------------------------------------------------

class BenchCollector:
    """Per-experiment collector the bench runner installs.

    ``tracer`` (optional) receives events only while a measured query is
    executing — :func:`repro.bench.harness.measure_query` activates it
    around ``execute`` — so index builds and dataset generation never
    pollute the trace.  ``metrics`` accumulates each measured query's
    :data:`~repro.obs.metrics.METRICS` delta, giving a measurement-scoped
    registry that is identical across ``--jobs`` counts and cache warmth.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Tracer | None = None) -> None:
        self.tracer = tracer
        self.metrics = MetricsRegistry()


#: The installed bench collector, or None outside benchmark runs.
BENCH_COLLECTOR: BenchCollector | None = None


@contextmanager
def bench_collection(collector: BenchCollector) -> Iterator[BenchCollector]:
    """Install ``collector`` for the block (used by the parallel runner)."""
    global BENCH_COLLECTOR
    previous = BENCH_COLLECTOR
    BENCH_COLLECTOR = collector
    try:
        yield collector
    finally:
        BENCH_COLLECTOR = previous
