"""Counter-only metrics: the always-on half of the observability layer.

A :class:`MetricsRegistry` is a flat bag of named monotonic counters.
Unlike tracing (:mod:`repro.obs.trace`), which is off unless a sink is
installed, the process-global :data:`METRICS` registry is *always*
incremented by the instrumented hot paths — an increment is one dict
operation, allocates nothing after the first occurrence of a name, and
performs no I/O, so it cannot perturb the paper's simulated I/O counts.

The registry mirrors the snapshot/delta discipline of
:class:`repro.storage.stats.IOStatistics`: a harness snapshots before an
operation and reads the delta after, so concurrent accumulation by other
components in the same process never leaks into a measurement (see
:func:`repro.bench.harness.measure_query`).

Counter names are dotted event kinds ("pool.hit", "disk.read",
"cursor.advance", ...) — the same vocabulary as the trace record schema
(:mod:`repro.obs.schema`), with decision events suffixed by their
outcome ("strategy.stop.lemma1", "pdr.verdict.prune"), so a metrics
delta reads as the per-kind histogram of the trace the same execution
would have emitted.
"""

from __future__ import annotations


class MetricsRegistry:
    """A flat registry of named monotonic counters."""

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}

    # -- accumulation -------------------------------------------------------

    def inc(self, name: str, count: int = 1) -> None:
        """Add ``count`` to the named counter (creating it at zero)."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + count

    def merge(self, delta: dict[str, int]) -> None:
        """Accumulate a snapshot/delta dict into this registry."""
        counters = self._counters
        for name, count in delta.items():
            counters[name] = counters.get(name, 0) + count

    # -- reading ------------------------------------------------------------

    def get(self, name: str) -> int:
        """The counter's current value (0 if never incremented)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """A sorted point-in-time copy of every nonzero counter."""
        return {
            name: self._counters[name] for name in sorted(self._counters)
        }

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Counters accumulated since ``snapshot`` (nonzero entries only)."""
        delta = {}
        for name in sorted(self._counters):
            diff = self._counters[name] - snapshot.get(name, 0)
            if diff:
                delta[name] = diff
        return delta

    def hit_rate(self, hit_name: str, miss_name: str) -> float:
        """Zero-safe ratio ``hits / (hits + misses)`` of two counters."""
        return hit_rate(self.get(hit_name), self.get(miss_name))

    def reset(self) -> None:
        """Drop every counter."""
        self._counters.clear()

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._counters)} counters)"


def hit_rate(hits: int, misses: int) -> float:
    """Zero-safe hit ratio: 0.0 when there were no accesses at all."""
    total = hits + misses
    return hits / total if total else 0.0


#: The process-global registry every instrumented hot path increments.
METRICS = MetricsRegistry()
