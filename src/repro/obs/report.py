"""Pretty-print and validate JSONL query traces.

Usage::

    PYTHONPATH=src python -m repro.obs.report trace.jsonl
    PYTHONPATH=src python -m repro.obs.report --validate-only trace.jsonl

Validates every record against the published schema
(:mod:`repro.obs.schema`) and prints a human-oriented summary: record
histogram, physical reads by page tag, cache hit rates, and strategy
early-stop reasons.  Exits nonzero if the trace is malformed, so CI can
use it as a schema gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterable, Iterator

from repro.obs.metrics import hit_rate
from repro.obs.schema import TraceSchemaError, validate_record


def iter_jsonl(path) -> Iterator[dict[str, Any]]:
    """Yield records from a JSONL trace file (blank lines skipped)."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc


def summarize(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate a record stream into a summary dict.

    Each record is validated as it streams through; the summary of an
    invalid trace is a :class:`TraceSchemaError`, not a number.
    """
    kinds: dict[str, int] = {}
    reads_by_tag: dict[str, int] = {}
    stop_reasons: dict[str, int] = {}
    queries: dict[str, int] = {}
    for record in records:
        validate_record(record)
        kind = record["kind"]
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "disk.read":
            tag = record["tag"]
            reads_by_tag[tag] = reads_by_tag.get(tag, 0) + 1
        elif kind == "strategy.stop":
            key = f"{record['strategy']}:{record['reason']}"
            stop_reasons[key] = stop_reasons.get(key, 0) + 1
        elif kind == "query.begin":
            label = record["structure"]
            if "strategy" in record:
                label = f"{label}/{record['strategy']}"
            queries[label] = queries.get(label, 0) + 1
    return {
        "records": sum(kinds.values()),
        "kinds": dict(sorted(kinds.items())),
        "queries": dict(sorted(queries.items())),
        "reads_by_tag": dict(sorted(reads_by_tag.items())),
        "stop_reasons": dict(sorted(stop_reasons.items())),
        "pool_hit_rate": hit_rate(
            kinds.get("pool.hit", 0), kinds.get("pool.miss", 0)
        ),
        "decoded_hit_rate": hit_rate(
            kinds.get("decoded.hit", 0), kinds.get("decoded.miss", 0)
        ),
    }


def _print_table(title: str, rows: dict[str, int], out) -> None:
    if not rows:
        return
    print(f"\n{title}", file=out)
    width = max(len(name) for name in rows)
    for name, count in rows.items():
        print(f"  {name:<{width}}  {count}", file=out)


def render(summary: dict[str, Any], out=None) -> None:
    """Print a summary dict as aligned tables."""
    out = out if out is not None else sys.stdout
    print(f"records: {summary['records']}", file=out)
    print(f"pool hit rate:    {summary['pool_hit_rate']:.3f}", file=out)
    print(f"decoded hit rate: {summary['decoded_hit_rate']:.3f}", file=out)
    _print_table("record kinds:", summary["kinds"], out)
    _print_table("queries by structure:", summary["queries"], out)
    _print_table("disk reads by tag:", summary["reads_by_tag"], out)
    _print_table("strategy stop reasons:", summary["stop_reasons"], out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.report",
        description="Validate and summarize a JSONL query trace.",
    )
    parser.add_argument("trace", help="path to a JSONL trace file")
    parser.add_argument(
        "--validate-only",
        action="store_true",
        help="check the schema and print only the record count",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of tables",
    )
    args = parser.parse_args(argv)
    try:
        summary = summarize(iter_jsonl(args.trace))
    except (TraceSchemaError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.validate_only:
        print(f"{args.trace}: {summary['records']} records, schema OK")
    elif args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        render(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
