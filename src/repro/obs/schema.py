"""The published trace-record schema, and a strict validator for it.

Every record a :class:`repro.obs.trace.Tracer` may emit is declared here
as a :class:`RecordSpec`: the set of required fields, the optional
fields, and the expected type of each.  CI's trace-smoke job validates
a real benchmark trace line-by-line against this module, so the schema
is a contract — adding an event kind or a field means adding it here
(and to ``docs/observability.md``), or the smoke job fails.

Validation is deliberately strict: unknown kinds, missing required
fields, *extra* fields, and type mismatches are all errors.  ``bool`` is
not accepted where ``int`` is declared (Python's bool subclasses int;
a trace that says ``"count": true`` is a bug, not a count), while
``float`` fields accept ints (JSON round-trips ``2.0`` as ``2``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable


class TraceSchemaError(ValueError):
    """A trace record or file does not conform to the published schema."""


@dataclass(frozen=True)
class RecordSpec:
    """Field contract for one event kind."""

    required: dict[str, type]
    optional: dict[str, type] = field(default_factory=dict)


def _spec(required: dict[str, type], optional: dict[str, type] | None = None) -> RecordSpec:
    return RecordSpec(required=required, optional=optional or {})


#: Every event kind the instrumentation may emit.  Field vocabulary:
#: ``page_id``/``tag`` are physical-page coordinates; ``strategy`` is an
#: equality-strategy name; ``bound``/``tau`` are the probability bound
#: and threshold at a decision point; ``decode_kind``/``join_kind``
#: avoid colliding with the record-level ``kind`` discriminator.
SCHEMA: dict[str, RecordSpec] = {
    # -- storage layer ------------------------------------------------------
    "disk.read": _spec({"page_id": int, "tag": str}),
    "disk.write": _spec({"page_id": int}),
    "disk.checksum_failure": _spec({"page_id": int}),
    "pool.hit": _spec({"page_id": int}),
    "pool.miss": _spec({"page_id": int}),
    "pool.evict": _spec({"page_id": int, "dirty": bool}),
    "pool.retry": _spec({"page_id": int, "attempt": int}),
    "decoded.hit": _spec({"decode_kind": str, "page_id": int}),
    "decoded.miss": _spec({"decode_kind": str, "page_id": int}),
    # -- query dispatch -----------------------------------------------------
    "query.begin": _spec(
        {"structure": str, "query": str}, {"strategy": str}
    ),
    "query.end": _spec(
        {"structure": str, "matches": int}, {"strategy": str}
    ),
    # -- inverted-index strategies ------------------------------------------
    "strategy.begin": _spec(
        {"strategy": str, "mode": str},
        {"tau": float, "k": int, "tau_floor": float},
    ),
    "strategy.stop": _spec(
        {"strategy": str, "reason": str},
        {"bound": float, "tau": float, "unresolved": int},
    ),
    "cursor.advance": _spec({"item": int, "count": int, "head_prob": float}),
    "verify.random_access": _spec({"tid": int}),
    "nra.resolve": _spec({"discarded": int, "confirmed": int, "unresolved": int}),
    # -- PDR-tree -----------------------------------------------------------
    "pdr.visit": _spec({"page_id": int, "node": str}),
    "pdr.verdict": _spec(
        {"child": int, "bound": float, "tau": float, "verdict": str}
    ),
    # -- joins --------------------------------------------------------------
    "join.begin": _spec({"join_kind": str}, {"threshold": float, "k": int}),
    "join.probe": _spec({"left_tid": int}),
    "join.end": _spec({"join_kind": str, "pairs": int, "probes": int}),
    # -- block rank-join engine ---------------------------------------------
    # block is the 0-based block ordinal, size the outer tuples in it;
    # mode discriminates the shared-scan fast path from grouped probing.
    "join.block_begin": _spec(
        {"join_kind": str, "block": int, "size": int},
        {"strategy": str, "mode": str},
    ),
    # One per head page pinned for the block; probes is how many of the
    # block's outer tuples touch the page's posting list.
    "join.shared_page": _spec({"page_id": int, "probes": int}),
    "join.block_end": _spec(
        {"join_kind": str, "block": int, "pairs": int},
        {"shared_pages": int},
    ),
    # Adaptive top-k threshold propagation: the probe for left_tid ran
    # with its dynamic threshold elevated to the global k-th pair score.
    "join.tau_raised": _spec({"left_tid": int, "tau": float}),
    # -- batch executor -----------------------------------------------------
    # mode is present ("warm") when the batch ran against a long-lived
    # serving pool instead of a fresh per-batch pool (docs/serving.md).
    "batch.begin": _spec(
        {"size": int, "structure": str}, {"strategy": str, "mode": str}
    ),
    "batch.query": _spec({"position": int, "query": str}),
    "batch.shared_page": _spec({"page_id": int, "queries": int}),
    "batch.end": _spec({"size": int, "shared_pages": int}),
    # -- query service (repro.serve) ----------------------------------------
    # One serve.request per response written: status is "ok", "shed",
    # "timeout", or "error"; reads/coalesced only accompany "ok".
    # Records carry no timestamps (trace byte-determinism), so queueing
    # delay is deliberately absent — wall-clock lives in the response
    # payload, not the trace.
    "serve.request": _spec(
        {"query": str, "status": str},
        {"reads": int, "coalesced": int, "reason": str, "matches": int},
    ),
    # One per executed coalesced batch: how many requests it grouped
    # and the batch's total physical reads (including shared-prefetch
    # overhead attributed to no single request).
    "serve.batch": _spec({"size": int, "reads": int}),
    # Admission control turned a request away: reason "inflight" (the
    # in-flight cap) or "queue" (the bounded wait queue overflowed).
    "serve.shed": _spec({"reason": str}),
    # -- scatter-gather sharding (repro.shard, docs/sharding.md) ------------
    # One shard.begin/end per coordinated query; k/fanout only for
    # top-k.  Each round carries the global tau floor its probes were
    # elevated to; each completed probe reports its measured reads; a
    # shard.shed marks a probe shed by its shard's deadline/admission
    # and requeued into a later round.
    "shard.begin": _spec(
        {"shards": int, "query": str, "transport": str},
        {"k": int, "fanout": int},
    ),
    # div_ceiling is the similarity round protocol's global k-th
    # divergence (the dual of tau_floor); absent until k matches merge.
    "shard.round": _spec(
        {"round": int, "size": int, "tau_floor": float},
        {"div_ceiling": float},
    ),
    "shard.probe": _spec(
        {"shard": int, "reads": int, "matches": int}, {"tau_floor": float}
    ),
    "shard.shed": _spec({"shard": int, "round": int}),
    "shard.end": _spec(
        {"shards": int, "reads": int, "matches": int, "rounds": int}
    ),
    # -- sketch pre-filtering (repro.sketch, docs/sketch-prefilter.md) ------
    # One sketch.probe per sketch-assisted similarity query: the mode
    # ("exact"/"approx"), the query's divergence, and the live tuple
    # count the prefilter ranged over.  sketch.prune reports how many
    # tuples the prefilter excluded versus kept for verification; one
    # sketch.verify per exact verification of a surviving candidate.
    "sketch.probe": _spec({"mode": str, "divergence": str, "tuples": int}),
    "sketch.prune": _spec({"pruned": int, "candidates": int}),
    "sketch.verify": _spec({"tid": int}),
    # -- write-ahead log + LSM segments (repro.wal, docs/mutability.md) -----
    # One wal.append per durable record; op is "insert" or "delete".
    "wal.append": _spec({"lsn": int, "op": str}),
    # One wal.replay per attach_wal: applied records past the image's
    # wal_lsn, skipped records at or below it, and whether the log had a
    # torn tail truncated on open.
    "wal.replay": _spec({"applied": int, "skipped": int, "torn": bool}),
    # The active segment reached capacity and was sealed; segment is its
    # 0-based ordinal, tuples how many tids it holds.
    "segment.flush": _spec({"segment": int, "tuples": int}),
    # Compaction folds every segment (and drops deleted tuples) back
    # into freshly bulk-loaded base structures.
    "compaction.begin": _spec({"segments": int, "deleted": int}),
    "compaction.end": _spec({"items": int, "pages_freed": int}),
    # -- bench harness ------------------------------------------------------
    # backend names the storage backend under the disk ("simulated",
    # "mmap", "shm"); I/O counts are backend-independent, so it exists
    # to make cross-backend trace comparisons self-describing.
    "measure.begin": _spec(
        {"index": str, "query": str, "pool_size": int}, {"backend": str}
    ),
    "measure.end": _spec({"index": str, "reads": int, "matches": int}),
    "experiment.begin": _spec({"name": str}),
    "experiment.end": _spec({"name": str}),
}

#: Values a ``pdr.verdict`` record's ``verdict`` field may take.
PDR_VERDICTS = ("descend", "prune")


def _type_ok(value: Any, expected: type) -> bool:
    if expected is bool:
        return isinstance(value, bool)
    if expected is int:
        # bool subclasses int; an int field holding True is a bug.
        return isinstance(value, int) and not isinstance(value, bool)
    if expected is float:
        # JSON round-trips 2.0 as 2 — accept ints where floats are declared.
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, expected)


def validate_record(record: dict[str, Any]) -> None:
    """Raise :class:`TraceSchemaError` unless ``record`` conforms."""
    if not isinstance(record, dict):
        raise TraceSchemaError(f"record is not an object: {record!r}")
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        raise TraceSchemaError(f"bad or missing seq: {record!r}")
    kind = record.get("kind")
    spec = SCHEMA.get(kind) if isinstance(kind, str) else None
    if spec is None:
        raise TraceSchemaError(f"unknown record kind: {kind!r}")
    for name, expected in spec.required.items():
        if name not in record:
            raise TraceSchemaError(f"{kind}: missing required field {name!r}")
        if not _type_ok(record[name], expected):
            raise TraceSchemaError(
                f"{kind}: field {name!r} expected {expected.__name__}, "
                f"got {record[name]!r}"
            )
    for name, value in record.items():
        if name in ("seq", "kind") or name in spec.required:
            continue
        expected = spec.optional.get(name)
        if expected is None:
            raise TraceSchemaError(f"{kind}: unexpected field {name!r}")
        if not _type_ok(value, expected):
            raise TraceSchemaError(
                f"{kind}: field {name!r} expected {expected.__name__}, "
                f"got {value!r}"
            )
    if kind == "pdr.verdict" and record["verdict"] not in PDR_VERDICTS:
        raise TraceSchemaError(
            f"pdr.verdict: verdict must be one of {PDR_VERDICTS}, "
            f"got {record['verdict']!r}"
        )


def validate_records(records: Iterable[dict[str, Any]]) -> int:
    """Validate an iterable of records; return how many were checked."""
    checked = 0
    for record in records:
        validate_record(record)
        checked += 1
    return checked


def validate_jsonl(path) -> int:
    """Validate a JSONL trace file; return the number of records.

    Raises :class:`TraceSchemaError` naming the offending line on the
    first malformed or non-conforming record.
    """
    checked = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            try:
                validate_record(record)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: {exc}") from exc
            checked += 1
    return checked
