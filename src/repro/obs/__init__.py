"""Observability: query tracing and always-on counter metrics.

Two halves, with very different cost models:

* :mod:`repro.obs.metrics` — the process-global :data:`METRICS`
  registry of monotonic counters, incremented unconditionally by the
  instrumented hot paths.  One dict op per event; no I/O; cannot
  perturb the paper's simulated read counts.
* :mod:`repro.obs.trace` — typed event records to pluggable sinks,
  **off by default**.  Hot paths guard on ``ACTIVE is not None`` and
  allocate nothing when tracing is disabled.

See ``docs/observability.md`` for the record schema and the
instrumentation discipline.
"""

from repro.obs.metrics import METRICS, MetricsRegistry, hit_rate
from repro.obs.schema import (
    SCHEMA,
    TraceSchemaError,
    validate_jsonl,
    validate_record,
    validate_records,
)
from repro.obs.trace import (
    TRACE_ENV,
    BenchCollector,
    JsonlSink,
    MemorySink,
    Tracer,
    active_tracer,
    bench_collection,
    encode_record,
    resolve_trace_path,
    tracing,
    tracing_to_path,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "hit_rate",
    "SCHEMA",
    "TraceSchemaError",
    "validate_jsonl",
    "validate_record",
    "validate_records",
    "TRACE_ENV",
    "BenchCollector",
    "JsonlSink",
    "MemorySink",
    "Tracer",
    "active_tracer",
    "bench_collection",
    "encode_record",
    "resolve_trace_path",
    "tracing",
    "tracing_to_path",
]
