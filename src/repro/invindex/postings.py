"""Posting lists for the probabilistic inverted index.

A posting list for domain item ``d`` holds the pairs
``{(tid, p) : Pr(tid = d) = p > 0}`` *sorted by descending probability* —
the defining twist of the paper's probabilistic inverted index
(Section 3.1).  Each list is "organized as [a] dynamic structure ... such
as B-trees, allowing efficient searches, insertions, and deletions"; we
store it in a :class:`~repro.btree.BPlusTree` keyed by the
order-preserving ``(descending prob, ascending tid)`` byte encoding of
:mod:`repro.storage.serialization`.

:class:`PostingCursor` is the scan primitive every search strategy is
written against: it walks a list head-to-tail (highest probability
first), decoding one leaf page per fetch.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.btree import BPlusTree
from repro.btree.node import LeafView
from repro.core.exceptions import KeyNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.page import Page
from repro.storage.serialization import (
    POSTING_KEY_SIZE,
    decode_posting_leaf,
    encode_posting_key,
    encode_posting_value,
)

#: DecodedCache kind for a posting leaf's ``(tids, probs)`` array pair.
POSTING_LEAF_KIND = "posting-leaf"


def _decode_leaf_arrays(page: Page) -> tuple[np.ndarray, np.ndarray]:
    """Decode a posting leaf page into independent ``(tids, probs)`` arrays."""
    leaf = LeafView(page, POSTING_KEY_SIZE, 4)
    return decode_posting_leaf(leaf.records_view())


class PostingList:
    """One domain item's descending-probability posting list."""

    def __init__(self, pool: BufferPool) -> None:
        self._tree = BPlusTree(
            pool, key_size=POSTING_KEY_SIZE, value_size=4, tag="postings"
        )

    @classmethod
    def attach(cls, pool: BufferPool, state: dict) -> "PostingList":
        """Re-attach to a persisted posting list (see :meth:`state`)."""
        posting_list = cls.__new__(cls)
        posting_list._tree = BPlusTree.attach(
            pool,
            key_size=POSTING_KEY_SIZE,
            value_size=4,
            tag="postings",
            root_page_id=int(state["root_page_id"]),
            height=int(state["height"]),
            num_records=int(state["num_records"]),
        )
        return posting_list

    def state(self) -> dict:
        """JSON-serializable attachment state."""
        return self._tree.state()

    @property
    def pool(self) -> BufferPool:
        return self._tree.pool

    @pool.setter
    def pool(self, pool: BufferPool) -> None:
        # Flush first: dirty pages stranded in the old pool would leave
        # stale bytes (dangling leaf chains) on disk for the new pool.
        self._tree.pool.flush_all()
        self._tree.pool = pool

    def __len__(self) -> int:
        return len(self._tree)

    # -- updates -------------------------------------------------------------

    def insert(self, tid: int, prob: float) -> None:
        """Add the pair ``(tid, prob)``."""
        self._tree.insert(encode_posting_key(prob, tid), encode_posting_value(prob))

    def delete(self, tid: int, prob: float) -> None:
        """Remove the pair ``(tid, prob)``; raises if absent."""
        try:
            self._tree.delete(encode_posting_key(prob, tid))
        except KeyNotFoundError:
            raise KeyNotFoundError(
                f"posting (tid={tid}, prob={prob}) not present"
            ) from None

    def bulk_build(self, tids: np.ndarray, probs: np.ndarray) -> None:
        """Bulk-load postings (any order; sorted internally).

        Entries are ordered by the *encoded key* — the fixed-point
        quantized probability, not the raw float — because distinct
        float32 probabilities can quantize to the same key prefix, and
        within such a tie the tid must ascend for keys to be strictly
        ascending.
        """
        quantized = np.rint(
            np.asarray(probs, dtype=np.float64) * 0xFFFFFFFF
        ).astype(np.uint64)
        order = np.lexsort((tids, -quantized.astype(np.int64)))

        def records() -> Iterator[tuple[bytes, bytes]]:
            for i in order:
                prob = float(probs[i])
                yield (
                    encode_posting_key(prob, int(tids[i])),
                    encode_posting_value(prob),
                )

        self._tree.bulk_load(records())

    # -- scans ---------------------------------------------------------------

    def cursor(self) -> "PostingCursor":
        """A cursor positioned at the head (highest probability)."""
        return PostingCursor(self)

    def head_page_ids(self) -> list[int]:
        """Page-id path root -> head leaf, in the order a cursor reads them.

        The batch executor's pin-ahead hint: every strategy that touches
        this list fetches exactly these pages first (opening a cursor,
        starting a scan, or reading a prefix), so prefetching them is
        guaranteed useful work.
        """
        return self._tree.leftmost_path_ids()

    def iter_leaf_arrays(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield each leaf's ``(tids, probs)`` pair, head to tail.

        One page fetch per leaf; the arrays come from the pool's decoded
        cache and are shared across scans — callers must not mutate them
        (mask/slice instead).
        """
        decoded = self._tree.pool.decoded
        for page in self._tree.iter_leaf_pages():
            yield decoded.get_or_decode(
                POSTING_LEAF_KIND, page, _decode_leaf_arrays
            )

    def read_all(self) -> tuple[np.ndarray, np.ndarray]:
        """Read the entire list; returns ``(tids, probs)`` descending.

        This is the brute-force access path (`inv-index-search`): every
        leaf page of the list is fetched.
        """
        tid_runs = []
        prob_runs = []
        for tids, probs in self.iter_leaf_arrays():
            tid_runs.append(tids)
            prob_runs.append(probs)
        if not tid_runs:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return np.concatenate(tid_runs), np.concatenate(prob_runs)

    def read_prefix(self, min_prob: float) -> tuple[np.ndarray, np.ndarray]:
        """Read the head of the list down to probability ``min_prob``.

        Stops fetching leaf pages as soon as a page's tail probability
        falls below ``min_prob`` — the column-pruning access path.
        Returned arrays contain exactly the entries with
        ``prob >= min_prob``.
        """
        tid_runs = []
        prob_runs = []
        for tids, probs in self.iter_leaf_arrays():
            if len(probs) == 0:
                continue
            keep = probs >= min_prob
            tid_runs.append(tids[keep])
            prob_runs.append(probs[keep])
            if not keep[-1]:
                break
        if not tid_runs:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return np.concatenate(tid_runs), np.concatenate(prob_runs)


class PostingCursor:
    """Head-to-tail iterator over a posting list.

    The cursor exposes the probability at its current position
    (:meth:`head_prob`) — the ``p'`` of the paper's stopping criteria —
    and advances one posting at a time.  Leaf pages are fetched lazily,
    one per :meth:`PostingList.iter_leaf_arrays` step, so I/O is only
    paid for the prefix actually consumed.
    """

    __slots__ = ("_runs", "_tids", "_probs", "_pos", "exhausted")

    def __init__(self, posting_list: PostingList) -> None:
        self._runs = posting_list.iter_leaf_arrays()
        self._tids: np.ndarray | None = None
        self._probs: np.ndarray | None = None
        self._pos = 0
        self.exhausted = False
        self._ensure_loaded()

    def _ensure_loaded(self) -> None:
        """Load leaf runs until one has unread entries, or exhaust."""
        while not self.exhausted and (
            self._tids is None or self._pos >= len(self._tids)
        ):
            try:
                self._tids, self._probs = next(self._runs)
            except StopIteration:
                self.exhausted = True
                self._tids = None
                self._probs = None
                return
            self._pos = 0

    def head_prob(self) -> float:
        """Probability at the cursor, or 0.0 when exhausted."""
        if self.exhausted:
            return 0.0
        return float(self._probs[self._pos])

    def peek(self) -> tuple[int, float] | None:
        """The pair at the cursor without advancing, or None."""
        if self.exhausted:
            return None
        return int(self._tids[self._pos]), float(self._probs[self._pos])

    def pop(self) -> tuple[int, float]:
        """Consume and return the pair at the cursor."""
        if self.exhausted:
            raise StopIteration("posting cursor is exhausted")
        pair = int(self._tids[self._pos]), float(self._probs[self._pos])
        self._pos += 1
        self._ensure_loaded()
        return pair

    def pop_run(self) -> tuple[np.ndarray, np.ndarray]:
        """Consume the rest of the current leaf's entries at once.

        Leaf-granularity consumption matches the I/O the cursor already
        paid (the page is read whole) and lets search strategies process
        postings in vectorized batches.  Returns ``(tids, probs)`` in
        descending-probability order.
        """
        if self.exhausted:
            raise StopIteration("posting cursor is exhausted")
        tids = self._tids[self._pos :]
        probs = self._probs[self._pos :]
        self._pos = len(self._tids)
        self._ensure_loaded()
        return tids, probs
