"""Probabilistic inverted index (paper Section 3.1)."""

from repro.invindex.index import ProbabilisticInvertedIndex
from repro.invindex.postings import PostingCursor, PostingList
from repro.invindex.segments import PostingSegment, SegmentedPostingList
from repro.invindex.strategies import (
    STRATEGIES,
    ColumnPruning,
    HighestProbFirst,
    InvIndexSearch,
    NoRandomAccess,
    RowPruning,
    SearchStrategy,
    get_strategy,
)

__all__ = [
    "STRATEGIES",
    "ColumnPruning",
    "HighestProbFirst",
    "InvIndexSearch",
    "NoRandomAccess",
    "PostingCursor",
    "PostingList",
    "PostingSegment",
    "ProbabilisticInvertedIndex",
    "RowPruning",
    "SegmentedPostingList",
    "SearchStrategy",
    "get_strategy",
]
