"""LSM-style posting segments for the mutable inverted index.

Static builds bulk-load one B+-tree per item (the *base* lists).  Online
inserts do not touch those trees: each new tuple's ``(tid, p)`` pairs
land in the posting lists of a small mutable :class:`PostingSegment`,
and when the active segment reaches its tuple capacity it is *sealed*
and a fresh one opens — the classic LSM write path, scaled down to the
paper's per-item lists.

Readers never see the segmentation: :class:`SegmentedPostingList` merges
one item's base list and segment lists into a single
descending-probability view with exactly the interface strategies
consume (``cursor`` / ``iter_leaf_arrays`` / ``read_all`` /
``read_prefix`` / ``head_page_ids``), so every search strategy and the
rank-join machinery run unchanged over a mutated index.  Compaction
(:meth:`ProbabilisticInvertedIndex.compact
<repro.invindex.index.ProbabilisticInvertedIndex.compact>`) folds the
segments back into freshly bulk-loaded base trees, restoring the static
build's exact page layout.

The merge compares *encoded keys* — the fixed-point quantized
probability with the tid in the low bits, the same total order the
B+-tree pages are sorted by — so the merged sequence is bit-identical to
what one bulk-loaded tree over the union would produce.  A tid occurs in
at most one part per item (inserts route a tuple wholly into one
segment), so keys never collide across parts.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.uda import UncertainAttribute
from repro.invindex.postings import PostingCursor, PostingList
from repro.storage.buffer import BufferPool

_U32_MAX = np.uint64(0xFFFFFFFF)
_SHIFT = np.uint64(32)


def packed_posting_keys(tids, probs) -> np.ndarray:
    """The u64 sort keys of ``(tid, prob)`` pairs, ascending = list order.

    Mirrors :func:`repro.storage.serialization.encode_posting_key`:
    complemented fixed-point probability in the high 32 bits (so higher
    probability sorts first), tid in the low 32 (ascending tie-break).
    """
    quantized = np.rint(
        np.asarray(probs, dtype=np.float64) * 0xFFFFFFFF
    ).astype(np.uint64)
    tids = np.asarray(tids).astype(np.uint64)
    return ((_U32_MAX - quantized) << _SHIFT) | tids


class PostingSegment:
    """One mutable batch of recently inserted tuples.

    Holds a :class:`PostingList` per item touched by its tuples, plus
    the set of tids it owns.  Segments are tiny (a handful of leaf
    pages), so their trees stay shallow and cheap to merge.
    """

    def __init__(self, pool: BufferPool) -> None:
        self._pool = pool
        self.lists: dict[int, PostingList] = {}
        self.tids: set[int] = set()
        self.sealed = False

    @classmethod
    def attach(cls, pool: BufferPool, state: dict) -> "PostingSegment":
        """Re-attach a persisted segment (see :meth:`state`)."""
        segment = cls(pool)
        segment.sealed = bool(state["sealed"])
        segment.tids = {int(tid) for tid in state["tids"]}
        segment.lists = {
            int(item): PostingList.attach(pool, list_state)
            for item, list_state in state["lists"].items()
        }
        return segment

    def state(self) -> dict:
        """JSON-serializable attachment state."""
        return {
            "sealed": self.sealed,
            "tids": sorted(self.tids),
            "lists": {
                str(item): posting_list.state()
                for item, posting_list in self.lists.items()
            },
        }

    @property
    def pool(self) -> BufferPool:
        return self._pool

    @pool.setter
    def pool(self, pool: BufferPool) -> None:
        self._pool = pool
        for posting_list in self.lists.values():
            posting_list.pool = pool

    def insert(self, tid: int, uda: UncertainAttribute) -> None:
        """Route one tuple's pairs into this segment's lists."""
        for item, prob in uda.pairs():
            posting_list = self.lists.get(item)
            if posting_list is None:
                posting_list = PostingList(self._pool)
                self.lists[item] = posting_list
            posting_list.insert(tid, prob)
        self.tids.add(tid)

    def remove(self, tid: int, uda: UncertainAttribute) -> None:
        """Remove one of this segment's tuples from its lists."""
        for item, prob in uda.pairs():
            self.lists[item].delete(tid, prob)
        self.tids.discard(tid)

    def __repr__(self) -> str:
        return (
            f"PostingSegment(tuples={len(self.tids)}, "
            f"items={len(self.lists)}, sealed={self.sealed})"
        )


class _PartStream:
    """Buffered head of one part during a k-way merge.

    Leaf pages load lazily — the next leaf is only fetched once the
    current one is fully consumed — so a query that stops early (every
    threshold/top-k strategy) pays I/O only for the prefix it reads,
    exactly like a single-tree cursor.
    """

    __slots__ = ("_runs", "tids", "probs", "keys", "pos", "exhausted")

    def __init__(self, part: PostingList) -> None:
        self._runs = part.iter_leaf_arrays()
        self.tids: np.ndarray | None = None
        self.probs: np.ndarray | None = None
        self.keys: np.ndarray | None = None
        self.pos = 0
        self.exhausted = False
        self.refill()

    def refill(self) -> None:
        """Load leaves until the buffer has unread entries, or exhaust."""
        while not self.exhausted and (
            self.keys is None or self.pos >= len(self.keys)
        ):
            try:
                self.tids, self.probs = next(self._runs)
            except StopIteration:
                self.exhausted = True
                self.tids = None
                self.probs = None
                self.keys = None
                return
            self.keys = packed_posting_keys(self.tids, self.probs)
            self.pos = 0

    def head_key(self) -> np.uint64:
        return self.keys[self.pos]


class SegmentedPostingList:
    """Read-only merged view over one item's base + segment lists.

    Duck-types the read side of :class:`PostingList`; the write methods
    are deliberately absent — updates go through the owning index, which
    routes them to the part that owns the tid.
    """

    def __init__(self, parts: list[PostingList]) -> None:
        if len(parts) < 2:
            raise ValueError("SegmentedPostingList needs >= 2 parts")
        self._parts = parts

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)

    def cursor(self) -> PostingCursor:
        """A cursor positioned at the merged head (highest probability)."""
        return PostingCursor(self)

    def head_page_ids(self) -> list[int]:
        """Pin-ahead hint: every part's root -> head-leaf path, in order.

        Opening a merged cursor loads each part's first leaf (the merge
        needs every head to compare), so all of these pages are fetched
        up front.
        """
        page_ids: list[int] = []
        for part in self._parts:
            page_ids.extend(part.head_page_ids())
        return page_ids

    def iter_leaf_arrays(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield merged ``(tids, probs)`` runs in global list order.

        Chunked k-way merge: the stream with the smallest head key emits
        its buffered prefix up to the smallest *other* head key in one
        slice (keys within a part ascend across leaves, so the bound is
        global, not per-leaf).  Runs are slices of the parts' decoded
        leaf arrays — no per-posting Python loop, and callers must not
        mutate them, same contract as :meth:`PostingList.iter_leaf_arrays`.
        """
        streams = [_PartStream(part) for part in self._parts]
        while True:
            live = [stream for stream in streams if not stream.exhausted]
            if not live:
                return
            if len(live) == 1:
                stream = live[0]
                yield stream.tids[stream.pos :], stream.probs[stream.pos :]
                stream.pos = len(stream.keys)
                stream.refill()
                continue
            head = min(live, key=_PartStream.head_key)
            bound = min(
                stream.head_key() for stream in live if stream is not head
            )
            # Keys are unique across parts, so at least the head entry
            # itself is strictly below the bound.
            end = int(np.searchsorted(head.keys, bound, side="left"))
            yield head.tids[head.pos : end], head.probs[head.pos : end]
            head.pos = end
            head.refill()

    def read_all(self) -> tuple[np.ndarray, np.ndarray]:
        """Read every part wholly; returns merged ``(tids, probs)``."""
        return self._merge_reads([part.read_all() for part in self._parts])

    def read_prefix(self, min_prob: float) -> tuple[np.ndarray, np.ndarray]:
        """Merged entries with ``prob >= min_prob``; per-part early stop."""
        return self._merge_reads(
            [part.read_prefix(min_prob) for part in self._parts]
        )

    @staticmethod
    def _merge_reads(
        reads: list[tuple[np.ndarray, np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray]:
        tid_runs = [tids for tids, _ in reads if len(tids)]
        prob_runs = [probs for _, probs in reads if len(probs)]
        if not tid_runs:
            return np.empty(0, dtype=np.int64), np.empty(0)
        if len(tid_runs) == 1:
            return tid_runs[0], prob_runs[0]
        tids = np.concatenate(tid_runs)
        probs = np.concatenate(prob_runs)
        order = np.argsort(packed_posting_keys(tids, probs))
        return tids[order], probs[order]

    def __repr__(self) -> str:
        return f"SegmentedPostingList(parts={len(self._parts)}, len={len(self)})"
