"""Search strategies for the probabilistic inverted index.

Section 3.1 of the paper describes one brute-force lookup and "three
heuristics by which the search can be concluded early", which "search the
tuples in decreasing probability order, stopping when no more tuples are
likely to satisfy the threshold":

* :class:`InvIndexSearch` — read every query item's list fully and score
  candidates from the accumulated contributions;
* :class:`HighestProbFirst` — synchronized descending-probability cursors
  over the query lists, always advancing the most promising one, stopping
  by Lemma 1;
* :class:`RowPruning` — only read lists of items whose *query*
  probability can reach the threshold;
* :class:`ColumnPruning` — read every query list, but only the prefix
  whose *stored* probabilities can reach the threshold;
* :class:`NoRandomAccess` — the rank-join variant (after Fagin's NRA):
  per-tuple lower/upper "lack" bookkeeping, candidates discarded as their
  upper bound falls below the threshold, random accesses deferred until
  the candidate set is small.

Every strategy answers both PETQ (``threshold``) and PEQ-top-k
(``top_k``, via a dynamically raised threshold, as in Section 2).

Strategies consume posting lists at *leaf granularity* (a page is read
whole, so its postings are processed as one batch); the stopping rules
hold at any batch size, with an overshoot of at most one leaf per list.
Strategies accept both :class:`UncertainAttribute` queries and the
mass-unconstrained :class:`~repro.core.uda.QueryVector` weights that
windowed ordered-domain queries expand into.

Exactness
---------
All strategies return *exactly* the naive executor's answer set and
scores.  Scores are always computed with the canonical
:meth:`~repro.core.uda.UncertainAttribute.equality_probability`
(an order-independent, correctly rounded sum).  Pruning bounds are
floating-point estimates, so every cut-off carries the safety margin
:data:`EPSILON` (and a query/tuple mass allowance where the paper's
argument relies on masses being at most one): the bounds may admit a few
extra candidates, never drop a qualifying one.

Kernels
-------
The per-posting bookkeeping (score accumulation, seen-set dedup, NRA
lack bounds) runs block-wise over whole decoded leaf runs through
:mod:`repro.core.kernels`.  ``REPRO_KERNEL=scalar`` selects the original
per-posting loops; both modes return bit-identical answers, stats, stop
reasons, and counted page reads (enforced by the differential suite in
``tests/invindex/test_kernel_differential.py``).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.core import kernels
from repro.core.exceptions import QueryError
from repro.core.results import Match, QueryResult, QueryStats
from repro.core.uda import MASS_TOLERANCE, UncertainAttribute
from repro.invindex.index import ProbabilisticInvertedIndex
from repro.invindex.postings import PostingCursor
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS

#: Safety margin absorbing float error in pruning bounds (never in scores).
EPSILON = 1e-10

#: Allowance for total tuple mass, which may exceed 1 by MASS_TOLERANCE.
_MASS_BOUND = 1.0 + MASS_TOLERANCE


def _begin(
    strategy: str,
    mode: str,
    *,
    tau: float | None = None,
    k: int | None = None,
    tau_floor: float = 0.0,
) -> None:
    """Trace the start of one strategy execution (trace-only, no counter)."""
    tracer = _trace.ACTIVE
    if tracer is not None:
        fields: dict[str, float | int] = {}
        if tau is not None:
            fields["tau"] = tau
        if k is not None:
            fields["k"] = k
        if tau_floor > 0.0:
            fields["tau_floor"] = tau_floor
        tracer.event("strategy.begin", strategy=strategy, mode=mode, **fields)


def _stop(stats: QueryStats, strategy: str, reason: str, **fields) -> None:
    """Record why a strategy stopped consuming postings.

    The reason lands in three places: ``stats.stop_reason`` (threaded to
    :class:`~repro.bench.harness.Measurement`), the always-on
    ``strategy.stop.<reason>`` counter, and — when tracing — a
    ``strategy.stop`` record carrying the decision's bound/threshold, so
    the invariant tests can check Lemma 1 *at the point of use*.
    """
    stats.stop_reason = reason
    METRICS.inc("strategy.stop." + reason)
    tracer = _trace.ACTIVE
    if tracer is not None:
        tracer.event("strategy.stop", strategy=strategy, reason=reason, **fields)


def _scalar_novel(seen: set[int], tids: np.ndarray) -> list[int]:
    """The original per-posting dedup loop (``REPRO_KERNEL=scalar``)."""
    novel = []
    for tid in tids.tolist():
        if tid in seen:
            continue
        seen.add(tid)
        novel.append(tid)
    return novel


class _NovelFilter:
    """First-encounter tid filter, kernel-mode dispatched.

    Returns each run's never-seen tids in encounter order — the order
    candidates get random-accessed, which the I/O counts depend on.
    """

    __slots__ = ("_seen", "_filter")

    def __init__(self) -> None:
        if kernels.vectorized():
            self._seen = None
            self._filter = kernels.SeenFilter()
        else:
            self._seen: set[int] = set()
            self._filter = None

    def admit(self, tids: np.ndarray) -> list[int]:
        if self._filter is not None:
            return self._filter.admit(tids).tolist()
        return _scalar_novel(self._seen, tids)


class _TopKFrontier:
    """The dynamic top-k frontier: found matches plus the k-th best score.

    The seed code builds a :class:`Match` per positive candidate and
    re-sorts the whole list after every consumed run just to read
    ``found[k - 1].score``.  The scalar mode keeps exactly that; the
    vectorized mode tracks plain ``(tid, score)`` lists, reads the k-th
    largest with ``np.partition`` (the same float the sorted list holds
    at ``[k - 1]`` — selection, no arithmetic), and materializes only
    the k result matches via :func:`kernels.top_k_matches`, which
    applies the identical ``(score desc, tid asc)`` ordering.
    """

    __slots__ = ("_k", "_found", "_tids", "_scores", "_vectorized")

    def __init__(self, k: int) -> None:
        self._k = k
        self._vectorized = kernels.vectorized()
        self._found: list[Match] = []
        self._tids: list[int] = []
        self._scores: list[float] = []

    def __len__(self) -> int:
        if self._vectorized:
            return len(self._tids)
        return len(self._found)

    def add(self, tid: int, score: float) -> None:
        if self._vectorized:
            self._tids.append(tid)
            self._scores.append(score)
        else:
            self._found.append(Match(tid=tid, score=score))

    def round_done(self) -> None:
        """Called where the seed code re-sorted after a consumed run."""
        if not self._vectorized:
            self._found.sort()

    def tau_k(self) -> float:
        """The k-th best exact score so far (0.0 until k are found)."""
        if self._vectorized:
            if len(self._tids) < self._k:
                return 0.0
            return kernels.kth_largest(np.asarray(self._scores), self._k)
        if len(self._found) < self._k:
            return 0.0
        return self._found[self._k - 1].score

    def results(self) -> list[Match]:
        if not self._vectorized:
            return self._found[: self._k]
        tids = np.asarray(self._tids, dtype=np.int64)
        scores = np.asarray(self._scores)
        pick = kernels.top_k_matches(tids, scores, self._k)
        return [
            Match(tid=int(tids[i]), score=float(scores[i])) for i in pick
        ]


class _Verifier:
    """Random-access verification with per-query memoization."""

    def __init__(
        self,
        index: ProbabilisticInvertedIndex,
        q: UncertainAttribute,
        stats: QueryStats,
    ) -> None:
        self._index = index
        self._q = q
        self._stats = stats
        self._cache: dict[int, float] = {}

    def score(self, tid: int) -> float:
        """Exact ``Pr(q = tid)`` via one random access (memoized)."""
        cached = self._cache.get(tid)
        if cached is not None:
            return cached
        self._stats.random_accesses += 1
        self._stats.candidates_examined += 1
        METRICS.inc("verify.random_access")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event("verify.random_access", tid=tid)
        items, probs = self._index.fetch_uda_arrays(tid)
        probability = self._q.equality_with_arrays(items, probs)
        self._cache[tid] = probability
        return probability

    def score_many(self, tids: list[int]) -> list[float]:
        """:meth:`score` for a run of candidates, bookkeeping hoisted.

        Semantically a per-tid :meth:`score` loop — same scores, same
        per-miss trace events in the same order, same counter totals —
        with the attribute lookups and counter updates lifted out of the
        per-candidate hot path.
        """
        cache = self._cache
        fetch = self._index.fetch_uda_arrays
        equality = self._q.equality_with_arrays
        tracer = _trace.ACTIVE
        scores = []
        misses = 0
        for tid in tids:
            cached = cache.get(tid)
            if cached is not None:
                scores.append(cached)
                continue
            misses += 1
            if tracer is not None:
                tracer.event("verify.random_access", tid=tid)
            items, probs = fetch(tid)
            probability = equality(items, probs)
            cache[tid] = probability
            scores.append(probability)
        if misses:
            self._stats.random_accesses += misses
            self._stats.candidates_examined += misses
            METRICS.inc("verify.random_access", misses)
        return scores


class _CursorSet:
    """Descending cursors over the query's posting lists.

    Wraps one :class:`PostingCursor` per query item that has a posting
    list, tracking the "most promising" list — the one maximizing
    ``q.p_j * p'_j`` — and the Lemma 1 bound ``sum_j q.p_j * p'_j``.
    """

    def __init__(
        self, index: ProbabilisticInvertedIndex, q: UncertainAttribute
    ) -> None:
        self.items: list[int] = []
        self.q_probs: list[float] = []
        self.cursors: list[PostingCursor] = []
        for item, q_prob in q.pairs_by_probability():
            posting_list = index.posting_list(item)
            if posting_list is None:
                continue
            self.items.append(item)
            self.q_probs.append(q_prob)
            self.cursors.append(posting_list.cursor())

    def __len__(self) -> int:
        return len(self.cursors)

    def bound(self) -> float:
        """Lemma 1 upper bound on any tuple below every cursor."""
        return math.fsum(
            q_prob * cursor.head_prob()
            for q_prob, cursor in zip(self.q_probs, self.cursors)
        )

    def pop_run(self, j: int):
        """Consume cursor ``j``'s next run, tracing the advance.

        The traced ``head_prob`` is the head *before* the pop — the
        probability level the stopping rules reasoned about when they
        chose to keep scanning this list.
        """
        cursor = self.cursors[j]
        tracer = _trace.ACTIVE
        head = cursor.head_prob() if tracer is not None else 0.0
        tids, probs = cursor.pop_run()
        METRICS.inc("cursor.advance")
        if tracer is not None:
            tracer.event(
                "cursor.advance",
                item=self.items[j],
                count=len(tids),
                head_prob=head,
            )
        return tids, probs

    def most_promising(self) -> int | None:
        """Index of the live cursor maximizing ``q.p_j * p'_j``."""
        best = None
        best_value = 0.0
        for j, (q_prob, cursor) in enumerate(zip(self.q_probs, self.cursors)):
            if cursor.exhausted:
                continue
            value = q_prob * cursor.head_prob()
            if best is None or value > best_value:
                best = j
                best_value = value
        return best


class SearchStrategy(ABC):
    """Interface every inverted-index search strategy implements."""

    #: Registry name; set by subclasses.
    name: str

    @abstractmethod
    def threshold(
        self,
        index: ProbabilisticInvertedIndex,
        q: UncertainAttribute,
        tau: float,
    ) -> QueryResult:
        """Answer PETQ(q, tau)."""

    @abstractmethod
    def top_k(
        self,
        index: ProbabilisticInvertedIndex,
        q: UncertainAttribute,
        k: int,
        tau_floor: float = 0.0,
    ) -> QueryResult:
        """Answer PEQ-top-k(q, k).

        ``tau_floor`` is a rank-join extension (see
        :mod:`repro.exec.join`): an externally known lower bound on the
        caller's *global* k-th best score.  It licenses two extra
        optimizations, both exact with respect to the caller's merge:
        the dynamic stopping threshold becomes
        ``max(local tau_k, tau_floor)`` (so Lemma 1 can fire before —
        and earlier than — k local results exist), and the strategy may
        omit result matches whose score falls below ``tau_floor``
        (they cannot enter the caller's global top-k).  At the default
        ``0.0`` every code path is bit-identical to the classic top-k.
        """


# ---------------------------------------------------------------------------
# Brute force: inv-index-search
# ---------------------------------------------------------------------------

class InvIndexSearch(SearchStrategy):
    """Brute-force lookup: read every query list fully.

    Because *all* lists of the query's support are read, the gathered
    contributions of a candidate cover every common item of ``q`` and the
    tuple — the accumulated score *is* the exact equality probability, so
    no random access is needed.  "In many cases when these lists are not
    too big and the query involves fewer [items], this could be as good
    as any other method.  However, ... it reads the entire list for every
    query."
    """

    name = "inv_index_search"

    def _gather(
        self, index: ProbabilisticInvertedIndex, q: UncertainAttribute, stats: QueryStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact scores for every tuple sharing an item with ``q``.

        Returns ``(tids, scores)`` with tids ascending.  The vectorized
        path accumulates whole decoded runs (grouped ``fsum``, see
        :func:`repro.core.kernels.exact_scores`); both paths produce the
        same product multiset per tid, hence bit-identical scores.
        """
        if not kernels.vectorized():
            return self._gather_scalar(index, q, stats)
        tid_runs: list[np.ndarray] = []
        weighted_runs: list[np.ndarray] = []
        for item, q_prob in q.pairs():
            posting_list = index.posting_list(item)
            if posting_list is None:
                continue
            stats.nodes_visited += 1
            tids, probs = posting_list.read_all()
            stats.entries_scanned += len(tids)
            tid_runs.append(tids)
            weighted_runs.append(q_prob * probs)
        tids, scores = kernels.exact_scores(tid_runs, weighted_runs)
        stats.candidates_examined += len(tids)
        return tids, scores

    def _gather_scalar(
        self, index: ProbabilisticInvertedIndex, q: UncertainAttribute, stats: QueryStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """The original per-posting accumulation (``REPRO_KERNEL=scalar``)."""
        contributions: dict[int, list[float]] = {}
        for item, q_prob in q.pairs():
            posting_list = index.posting_list(item)
            if posting_list is None:
                continue
            stats.nodes_visited += 1
            tids, probs = posting_list.read_all()
            stats.entries_scanned += len(tids)
            for tid, prob in zip(tids.tolist(), probs.tolist()):
                contributions.setdefault(tid, []).append(q_prob * prob)
        stats.candidates_examined += len(contributions)
        tids = np.fromiter(contributions, dtype=np.int64, count=len(contributions))
        order = np.argsort(tids)
        scores = np.array(
            [math.fsum(products) for products in contributions.values()]
        )
        if len(tids) == 0:
            scores = np.empty(0, dtype=np.float64)
        return tids[order], scores[order]

    def threshold(self, index, q, tau):
        stats = QueryStats()
        _begin(self.name, "threshold", tau=tau)
        tids, scores = self._gather(index, q, stats)
        _stop(stats, self.name, "scan_complete")
        keep = scores >= tau
        matches = [
            Match(tid=tid, score=score)
            for tid, score in zip(tids[keep].tolist(), scores[keep].tolist())
        ]
        return QueryResult(matches, stats)

    def top_k(self, index, q, k, tau_floor=0.0):
        # tau_floor cannot save work here: the scan is exhaustive by
        # definition, and its local top-k already satisfies the caller.
        stats = QueryStats()
        _begin(self.name, "top_k", k=k, tau_floor=tau_floor)
        tids, scores = self._gather(index, q, stats)
        _stop(stats, self.name, "scan_complete")
        positive = np.nonzero(scores > 0.0)[0]
        pick = positive[
            kernels.top_k_matches(tids[positive], scores[positive], k)
        ]
        matches = [
            Match(tid=tid, score=score)
            for tid, score in zip(tids[pick].tolist(), scores[pick].tolist())
        ]
        return QueryResult(matches, stats)


# ---------------------------------------------------------------------------
# Highest-prob-first
# ---------------------------------------------------------------------------

class HighestProbFirst(SearchStrategy):
    """Synchronized descending scan, most promising list first.

    At each step the cursor whose next pair maximizes ``q.p_j * p'_j`` is
    advanced; each first-seen tuple is verified by random access.  The
    search stops when the Lemma 1 bound ``sum_j q.p_j * p'_j`` drops
    below the (possibly dynamic) threshold: no unseen tuple can qualify.
    """

    name = "highest_prob_first"

    def threshold(self, index, q, tau):
        stats = QueryStats()
        _begin(self.name, "threshold", tau=tau)
        verifier = _Verifier(index, q, stats)
        cursors = _CursorSet(index, q)
        stats.nodes_visited += len(cursors)
        matches: list[Match] = []
        novel = _NovelFilter()
        while True:
            bound = cursors.bound()
            if bound < tau - EPSILON:
                _stop(stats, self.name, "lemma1", bound=bound, tau=tau)
                break
            j = cursors.most_promising()
            if j is None:
                _stop(stats, self.name, "exhausted")
                break
            # Consume the most promising list at leaf granularity (the
            # page is read whole anyway); the Lemma 1 stopping argument
            # is insensitive to batch size.
            tids, _ = cursors.pop_run(j)
            stats.entries_scanned += len(tids)
            novel_tids = novel.admit(tids)
            for tid, score in zip(novel_tids, verifier.score_many(novel_tids)):
                if score >= tau:
                    matches.append(Match(tid=tid, score=score))
        return QueryResult(matches, stats)

    def top_k(self, index, q, k, tau_floor=0.0):
        stats = QueryStats()
        _begin(self.name, "top_k", k=k, tau_floor=tau_floor)
        verifier = _Verifier(index, q, stats)
        cursors = _CursorSet(index, q)
        stats.nodes_visited += len(cursors)
        found = _TopKFrontier(k)
        novel = _NovelFilter()
        while True:
            # Dynamic threshold: the k-th best exact score so far,
            # elevated to tau_floor when the rank-join caller supplied
            # one (then the stop may fire before k local results exist —
            # unseen tuples below the floor cannot enter the caller's
            # global top-k).
            if len(found) >= k or tau_floor > 0.0:
                tau_k = found.tau_k() if len(found) >= k else 0.0
                tau_eff = tau_k if tau_k > tau_floor else tau_floor
                bound = cursors.bound()
                if bound < tau_eff - EPSILON:
                    _stop(stats, self.name, "lemma1", bound=bound, tau=tau_eff)
                    break
            j = cursors.most_promising()
            if j is None:
                _stop(stats, self.name, "exhausted")
                break
            tids, _ = cursors.pop_run(j)
            stats.entries_scanned += len(tids)
            novel_tids = novel.admit(tids)
            for tid, score in zip(novel_tids, verifier.score_many(novel_tids)):
                if score > 0.0:
                    found.add(tid, score)
            found.round_done()
        return QueryResult(found.results(), stats)


# ---------------------------------------------------------------------------
# Row pruning
# ---------------------------------------------------------------------------

class RowPruning(SearchStrategy):
    """Only read lists whose *query* probability can reach the threshold.

    A tuple whose every common item has query probability below
    ``tau / mass`` satisfies ``Pr(q = u) <= max_i q.p_i * sum_i u.p_i
    < tau``, so lists with smaller query probability cannot introduce new
    qualifying tuples and are skipped entirely.
    """

    name = "row_pruning"

    def threshold(self, index, q, tau):
        stats = QueryStats()
        _begin(self.name, "threshold", tau=tau)
        verifier = _Verifier(index, q, stats)
        cutoff = tau / _MASS_BOUND - EPSILON
        matches: list[Match] = []
        novel = _NovelFilter()
        for item, q_prob in q.pairs_by_probability():
            if q_prob < cutoff:
                # Pairs are in descending q_prob order; no later list can
                # introduce a tuple scoring q_prob * mass >= tau.
                _stop(
                    stats,
                    self.name,
                    "row_cutoff",
                    bound=q_prob * _MASS_BOUND,
                    tau=tau,
                )
                break
            posting_list = index.posting_list(item)
            if posting_list is None:
                continue
            stats.nodes_visited += 1
            tids, _ = posting_list.read_all()
            stats.entries_scanned += len(tids)
            novel_tids = novel.admit(tids)
            for tid, score in zip(novel_tids, verifier.score_many(novel_tids)):
                if score >= tau:
                    matches.append(Match(tid=tid, score=score))
        else:
            _stop(stats, self.name, "exhausted")
        return QueryResult(matches, stats)

    def top_k(self, index, q, k, tau_floor=0.0):
        """Examine candidate lists eagerly, raising the threshold as we go."""
        stats = QueryStats()
        _begin(self.name, "top_k", k=k, tau_floor=tau_floor)
        verifier = _Verifier(index, q, stats)
        found = _TopKFrontier(k)
        novel = _NovelFilter()
        for item, q_prob in q.pairs_by_probability():
            tau_k = found.tau_k()
            tau_eff = tau_k if tau_k > tau_floor else tau_floor
            if (
                len(found) >= k or tau_floor > 0.0
            ) and q_prob * _MASS_BOUND < tau_eff - EPSILON:
                # No unseen tuple in this or later lists can qualify.
                _stop(
                    stats,
                    self.name,
                    "row_cutoff",
                    bound=q_prob * _MASS_BOUND,
                    tau=tau_eff,
                )
                break
            posting_list = index.posting_list(item)
            if posting_list is None:
                continue
            stats.nodes_visited += 1
            tids, _ = posting_list.read_all()
            stats.entries_scanned += len(tids)
            novel_tids = novel.admit(tids)
            for tid, score in zip(novel_tids, verifier.score_many(novel_tids)):
                if score > 0.0:
                    found.add(tid, score)
            found.round_done()
        else:
            _stop(stats, self.name, "exhausted")
        return QueryResult(found.results(), stats)


# ---------------------------------------------------------------------------
# Column pruning
# ---------------------------------------------------------------------------

class ColumnPruning(SearchStrategy):
    """Read every query list, but only down to the threshold probability.

    A tuple whose every common item has *stored* probability below
    ``tau / q_mass`` satisfies ``Pr(q = u) <= (max common u.p_i) *
    sum_j q.p_j < tau``; such tuples appear only in the pruned tails.
    """

    name = "column_pruning"

    def threshold(self, index, q, tau):
        stats = QueryStats()
        _begin(self.name, "threshold", tau=tau)
        verifier = _Verifier(index, q, stats)
        cutoff = tau / max(q.total_mass, EPSILON) - EPSILON
        matches: list[Match] = []
        novel = _NovelFilter()
        for item, _ in q.pairs_by_probability():
            posting_list = index.posting_list(item)
            if posting_list is None:
                continue
            stats.nodes_visited += 1
            tids, _ = posting_list.read_prefix(cutoff)
            stats.entries_scanned += len(tids)
            novel_tids = novel.admit(tids)
            for tid, score in zip(novel_tids, verifier.score_many(novel_tids)):
                if score >= tau:
                    matches.append(Match(tid=tid, score=score))
        # Every list was visited (to its prefix cutoff); there is no
        # early-stop decision to attribute.
        _stop(stats, self.name, "scan_complete")
        return QueryResult(matches, stats)

    def top_k(self, index, q, k, tau_floor=0.0):
        """Like highest-prob-first, but each list is dropped independently
        once its head probability falls below the dynamic per-list cutoff
        ("more conducive to top-k queries")."""
        stats = QueryStats()
        _begin(self.name, "top_k", k=k, tau_floor=tau_floor)
        verifier = _Verifier(index, q, stats)
        cursors = _CursorSet(index, q)
        stats.nodes_visited += len(cursors)
        q_mass = max(q.total_mass, EPSILON)
        found = _TopKFrontier(k)
        novel = _NovelFilter()
        live = [not cursor.exhausted for cursor in cursors.cursors]
        while any(live):
            tau_k = found.tau_k()
            tau_eff = tau_k if tau_k > tau_floor else tau_floor
            cutoff = (
                tau_eff / q_mass - EPSILON
                if len(found) >= k or tau_floor > 0.0
                else -1.0
            )
            advanced = False
            for j, cursor in enumerate(cursors.cursors):
                if not live[j]:
                    continue
                if cursor.exhausted or cursor.head_prob() < cutoff:
                    live[j] = False
                    continue
                run_tids, run_probs = cursors.pop_run(j)
                # Entries below the cutoff cannot introduce new top-k
                # tuples via this list (their maximal common probability
                # lies above the cutoff in some other list, where they
                # are seen); skip verifying them, as the per-entry
                # algorithm would have.
                keep = run_probs >= cutoff
                stats.entries_scanned += int(keep.sum())
                advanced = True
                novel_tids = novel.admit(run_tids[keep])
                for tid, score in zip(
                    novel_tids, verifier.score_many(novel_tids)
                ):
                    if score > 0.0:
                        found.add(tid, score)
                found.round_done()
            if not advanced:
                break
        if any(not cursor.exhausted for cursor in cursors.cursors):
            _stop(stats, self.name, "column_cutoff")
        else:
            _stop(stats, self.name, "exhausted")
        return QueryResult(found.results(), stats)


# ---------------------------------------------------------------------------
# No-random-access (rank-join) variant
# ---------------------------------------------------------------------------

class NoRandomAccess(SearchStrategy):
    """Rank-join search with "lack" bookkeeping and deferred verification.

    "For each tuple so far encountered ... we maintain its lack parameter
    — the amount of probability value required for the tuple, and which
    lists it could come from.  As soon as the probability values of
    required lists drop below a certain boundary such that a tuple can
    never qualify, we discard the tuple. ...  Finally, once the size of
    this candidate set falls below some number ... we perform random
    accesses for these tuples."

    ``fallback`` is that "some number": when at most this many candidates
    remain unresolved, the strategy switches to random accesses.  Result
    scores are always verified by random access so they match the naive
    executor exactly.  Bound bookkeeping over the whole candidate set is
    amortized: it runs every ``resolve_every`` consumed postings rather
    than after each one.
    """

    name = "no_random_access"

    def __init__(self, fallback: int = 64, resolve_every: int = 64) -> None:
        if fallback < 1:
            raise QueryError(f"fallback must be >= 1, got {fallback}")
        if resolve_every < 1:
            raise QueryError(
                f"resolve_every must be >= 1, got {resolve_every}"
            )
        self.fallback = fallback
        self.resolve_every = resolve_every

    def threshold(self, index, q, tau):
        stats = QueryStats()
        _begin(self.name, "threshold", tau=tau)
        verifier = _Verifier(index, q, stats)
        cursors = _CursorSet(index, q)
        stats.nodes_visited += len(cursors)
        # The vectorized pool packs "which lists" into an int64 bitmask;
        # wider queries take the scalar path (dict bookkeeping has no
        # list-count limit).
        if kernels.vectorized() and len(cursors) <= kernels.CandidatePool.MAX_LISTS:
            return self._threshold_vec(tau, stats, verifier, cursors)
        return self._threshold_scalar(tau, stats, verifier, cursors)

    def _threshold_vec(self, tau, stats, verifier, cursors):
        """Block-wise NRA: whole runs folded into a :class:`CandidatePool`."""
        pool = kernels.CandidatePool()
        discovering = True
        since_resolve = self.resolve_every  # force an initial pass
        while True:
            if since_resolve >= self.resolve_every:
                since_resolve = 0
                heads = [cursor.head_prob() for cursor in cursors.cursors]
                terms = [
                    q_prob * head
                    for q_prob, head in zip(cursors.q_probs, heads)
                ]
                unseen_bound = math.fsum(terms)
                if discovering and unseen_bound < tau - EPSILON:
                    discovering = False
                active = np.nonzero(pool.alive & ~pool.confirmed)[0]
                lacks = kernels.masked_lacks(pool.masks[active], terms)
                partial = pool.partial[active]
                drop = partial + lacks < tau - EPSILON
                pool.alive[active[drop]] = False  # tombstones, never revive
                pool.confirmed[active[~drop & (partial >= tau + EPSILON)]] = True
                confirmed_total = int(pool.confirmed.sum())
                unresolved = pool.size - confirmed_total
                METRICS.inc("nra.resolve")
                tracer = _trace.ACTIVE
                if tracer is not None:
                    tracer.event(
                        "nra.resolve",
                        discarded=int(drop.sum()),
                        confirmed=confirmed_total,
                        unresolved=unresolved,
                    )
                if not discovering and unresolved <= self.fallback:
                    _stop(
                        stats, self.name, "nra_fallback", unresolved=unresolved
                    )
                    break
            j = cursors.most_promising()
            if j is None:
                _stop(stats, self.name, "exhausted")
                break
            run_tids, run_probs = cursors.pop_run(j)
            stats.entries_scanned += len(run_tids)
            since_resolve += len(run_tids)
            pool.update_run(
                run_tids, run_probs, j, cursors.q_probs[j], admit=discovering
            )
        matches = []
        live = pool.live_tids()
        for tid, score in zip(live, verifier.score_many(live)):
            if score >= tau:
                matches.append(Match(tid=tid, score=score))
        return QueryResult(matches, stats)

    def _threshold_scalar(self, tau, stats, verifier, cursors):
        """The original per-posting NRA loop (``REPRO_KERNEL=scalar``)."""
        num_lists = len(cursors)
        partial: dict[int, float] = {}
        seen_in: dict[int, int] = {}  # tid -> bitmask of consumed lists
        confirmed: set[int] = set()
        # Tombstones: tids proven unable to qualify.  Without these, a
        # discarded tid reappearing in a not-yet-consumed list would be
        # re-admitted with a fresh mask and reset partial score, then
        # pointlessly random-accessed in the verification pass.
        discarded: set[int] = set()
        discovering = True
        since_resolve = self.resolve_every  # force an initial pass
        while True:
            if since_resolve >= self.resolve_every:
                since_resolve = 0
                heads = [cursor.head_prob() for cursor in cursors.cursors]
                unseen_bound = math.fsum(
                    q_prob * head
                    for q_prob, head in zip(cursors.q_probs, heads)
                )
                if discovering and unseen_bound < tau - EPSILON:
                    discovering = False
                # Resolve candidates whose bounds crossed the threshold.
                resolved = []
                for tid, mask in seen_in.items():
                    if tid in confirmed:
                        continue
                    lack = math.fsum(
                        cursors.q_probs[j] * heads[j]
                        for j in range(num_lists)
                        if not mask >> j & 1
                    )
                    if partial[tid] + lack < tau - EPSILON:
                        resolved.append(tid)  # can never qualify
                    elif partial[tid] >= tau + EPSILON:
                        confirmed.add(tid)  # definitely qualifies
                for tid in resolved:
                    del seen_in[tid]
                    del partial[tid]
                    discarded.add(tid)
                unresolved = len(seen_in) - len(confirmed)
                METRICS.inc("nra.resolve")
                tracer = _trace.ACTIVE
                if tracer is not None:
                    tracer.event(
                        "nra.resolve",
                        discarded=len(resolved),
                        confirmed=len(confirmed),
                        unresolved=unresolved,
                    )
                if not discovering and unresolved <= self.fallback:
                    _stop(
                        stats, self.name, "nra_fallback", unresolved=unresolved
                    )
                    break
            j = cursors.most_promising()
            if j is None:
                _stop(stats, self.name, "exhausted")
                break
            run_tids, run_probs = cursors.pop_run(j)
            stats.entries_scanned += len(run_tids)
            since_resolve += len(run_tids)
            bit = 1 << j
            q_prob = cursors.q_probs[j]
            for tid, prob in zip(run_tids.tolist(), run_probs.tolist()):
                mask = seen_in.get(tid)
                if mask is None:
                    if not discovering or tid in discarded:
                        continue  # new tuples / tombstones cannot qualify
                    seen_in[tid] = bit
                    partial[tid] = q_prob * prob
                elif not mask & bit:
                    seen_in[tid] = mask | bit
                    partial[tid] += q_prob * prob
        # Final verification pass: confirmed tuples need exact scores, the
        # remaining unresolved candidates need a membership decision.
        matches = []
        for tid in seen_in:
            score = verifier.score(tid)
            if score >= tau:
                matches.append(Match(tid=tid, score=score))
        return QueryResult(matches, stats)

    def top_k(self, index, q, k, tau_floor=0.0):
        """Collect candidates without random access, then verify.

        Scans until no unseen tuple can beat the k-th best partial (lower
        bound) score, then random-accesses every surviving candidate
        whose upper bound reaches it.
        """
        stats = QueryStats()
        _begin(self.name, "top_k", k=k, tau_floor=tau_floor)
        verifier = _Verifier(index, q, stats)
        cursors = _CursorSet(index, q)
        stats.nodes_visited += len(cursors)
        if kernels.vectorized() and len(cursors) <= kernels.CandidatePool.MAX_LISTS:
            return self._top_k_vec(k, stats, verifier, cursors, tau_floor)
        return self._top_k_scalar(k, stats, verifier, cursors, tau_floor)

    def _top_k_vec(self, k, stats, verifier, cursors, tau_floor=0.0):
        """Block-wise candidate collection, then bounded verification."""
        pool = kernels.CandidatePool()
        since_check = self.resolve_every  # force an initial stop check
        while True:
            if since_check >= self.resolve_every:
                since_check = 0
                heads = [cursor.head_prob() for cursor in cursors.cursors]
                unseen_bound = math.fsum(
                    q_prob * head
                    for q_prob, head in zip(cursors.q_probs, heads)
                )
                if len(pool.tids) >= k or tau_floor > 0.0:
                    tau_k = (
                        kernels.kth_largest(pool.partial, k)
                        if len(pool.tids) >= k
                        else 0.0
                    )
                    tau_eff = tau_k if tau_k > tau_floor else tau_floor
                    if unseen_bound < tau_eff - EPSILON:
                        _stop(
                            stats,
                            self.name,
                            "lemma1",
                            bound=unseen_bound,
                            tau=tau_eff,
                        )
                        break
            j = cursors.most_promising()
            if j is None:
                _stop(stats, self.name, "exhausted")
                break
            run_tids, run_probs = cursors.pop_run(j)
            stats.entries_scanned += len(run_tids)
            since_check += len(run_tids)
            pool.update_run(
                run_tids, run_probs, j, cursors.q_probs[j], admit=True
            )
        if len(pool.tids) == 0:
            return QueryResult([], stats)
        tau_k = (
            kernels.kth_largest(pool.partial, k)
            if len(pool.tids) >= k
            else 0.0
        )
        tau_eff = tau_k if tau_k > tau_floor else tau_floor
        heads = [cursor.head_prob() for cursor in cursors.cursors]
        terms = [
            q_prob * head for q_prob, head in zip(cursors.q_probs, heads)
        ]
        lacks = kernels.masked_lacks(pool.masks, terms)
        keep = ~(pool.partial + lacks < tau_eff - EPSILON)
        found = []
        survivors = pool.tids[keep].tolist()
        for tid, score in zip(survivors, verifier.score_many(survivors)):
            if score > 0.0:
                found.append(Match(tid=tid, score=score))
        found.sort()
        return QueryResult(found[:k], stats)

    def _top_k_scalar(self, k, stats, verifier, cursors, tau_floor=0.0):
        """The original per-posting loop (``REPRO_KERNEL=scalar``)."""
        num_lists = len(cursors)
        partial: dict[int, float] = {}
        seen_in: dict[int, int] = {}
        since_check = self.resolve_every  # force an initial stop check
        while True:
            if since_check >= self.resolve_every:
                since_check = 0
                heads = [cursor.head_prob() for cursor in cursors.cursors]
                unseen_bound = math.fsum(
                    q_prob * head
                    for q_prob, head in zip(cursors.q_probs, heads)
                )
                if len(partial) >= k or tau_floor > 0.0:
                    tau_k = (
                        sorted(partial.values(), reverse=True)[k - 1]
                        if len(partial) >= k
                        else 0.0
                    )
                    tau_eff = tau_k if tau_k > tau_floor else tau_floor
                    if unseen_bound < tau_eff - EPSILON:
                        _stop(
                            stats,
                            self.name,
                            "lemma1",
                            bound=unseen_bound,
                            tau=tau_eff,
                        )
                        break
            j = cursors.most_promising()
            if j is None:
                _stop(stats, self.name, "exhausted")
                break
            run_tids, run_probs = cursors.pop_run(j)
            stats.entries_scanned += len(run_tids)
            since_check += len(run_tids)
            bit = 1 << j
            q_prob = cursors.q_probs[j]
            for tid, prob in zip(run_tids.tolist(), run_probs.tolist()):
                mask = seen_in.get(tid)
                if mask is None:
                    seen_in[tid] = bit
                    partial[tid] = q_prob * prob
                elif not mask & bit:
                    seen_in[tid] = mask | bit
                    partial[tid] += q_prob * prob
        if not partial:
            return QueryResult([], stats)
        tau_k = (
            sorted(partial.values(), reverse=True)[k - 1]
            if len(partial) >= k
            else 0.0
        )
        tau_eff = tau_k if tau_k > tau_floor else tau_floor
        heads = [cursor.head_prob() for cursor in cursors.cursors]
        found = []
        for tid, mask in seen_in.items():
            lack = math.fsum(
                cursors.q_probs[j] * heads[j]
                for j in range(num_lists)
                if not mask >> j & 1
            )
            if partial[tid] + lack < tau_eff - EPSILON:
                continue  # upper bound cannot reach the k-th best
            score = verifier.score(tid)
            if score > 0.0:
                found.append(Match(tid=tid, score=score))
        found.sort()
        return QueryResult(found[:k], stats)


#: Strategy registry by name.
STRATEGIES: dict[str, SearchStrategy] = {
    strategy.name: strategy
    for strategy in (
        InvIndexSearch(),
        HighestProbFirst(),
        RowPruning(),
        ColumnPruning(),
        NoRandomAccess(),
    )
}


def get_strategy(name: str) -> SearchStrategy:
    """Look up a search strategy by name (case-insensitive)."""
    try:
        return STRATEGIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise QueryError(
            f"unknown search strategy {name!r}; expected one of: {known}"
        ) from None
