"""The probabilistic inverted index (paper Section 3.1).

Structure: for every domain item ``d`` that occurs in the dataset, a
posting list of ``(tid, p)`` pairs sorted by descending probability
(each list a paged B+-tree), plus a *tuple list* — a heap file mapping
tid to the full UDA — for the random accesses the search strategies make
to verify candidates.

The index supports:

* ``build`` — bulk construction from an :class:`UncertainRelation`;
* ``insert`` / ``delete`` — the paper's dynamic maintenance: "we dissect
  the tuple into the list of pairs; for each pair (d, p) we access the
  list of d and insert the pair (tid, p) in the B-tree of this list";
* ``execute`` — PEQ, PETQ and PEQ-top-k under any of the strategies of
  :mod:`repro.invindex.strategies` (default: ``highest_prob_first``).

All page access flows through :attr:`pool`; assign a fresh
:class:`~repro.storage.buffer.BufferPool` to measure a query under the
paper's 100-block-per-query buffering regime.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.core.config import read_env_int
from repro.core.exceptions import KeyNotFoundError, QueryError
from repro.core.queries import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    Query,
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
    WindowedEqualityQuery,
)
from repro.core.relation import UncertainRelation
from repro.core.results import QueryResult
from repro.core.uda import UncertainAttribute
from repro.invindex.postings import PostingList
from repro.invindex.segments import PostingSegment, SegmentedPostingList
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heapfile import HeapFile, Rid
from repro.storage.serialization import decode_heap_record, encode_heap_record

#: Tuples the active segment absorbs before it is sealed and a fresh
#: one opens.  Small by design: segments are the write path's staging
#: area, not a second index generation.
DEFAULT_SEGMENT_TUPLES = 128

#: Environment variable overriding :data:`DEFAULT_SEGMENT_TUPLES`.
SEGMENT_TUPLES_ENV = "REPRO_SEGMENT_TUPLES"


def _segment_capacity_from_env() -> int:
    value = read_env_int(SEGMENT_TUPLES_ENV, minimum=1)
    return DEFAULT_SEGMENT_TUPLES if value is None else value


class ProbabilisticInvertedIndex:
    """Inverted index over one uncertain attribute.

    Parameters
    ----------
    domain_size:
        Size of the categorical domain.
    disk:
        Backing disk; created fresh when omitted.
    pool:
        Buffer pool used for construction; a default full-size pool is
        created when omitted.  Reassign :attr:`pool` before each measured
        query.

    Notes
    -----
    The item directory (item -> posting-tree root) and the tid -> rid map
    are kept in memory, modelling a cached catalog; neither contributes
    to the per-query I/O counts, mirroring the paper's accounting which
    charges only list pages and tuple random accesses.
    """

    def __init__(
        self,
        domain_size: int,
        disk: DiskManager | None = None,
        pool: BufferPool | None = None,
    ) -> None:
        if domain_size < 1:
            raise QueryError(f"domain_size must be >= 1, got {domain_size}")
        self.domain_size = domain_size
        self.disk = disk if disk is not None else DiskManager()
        self._pool = pool if pool is not None else BufferPool(self.disk, 4096)
        self._lists: dict[int, PostingList] = {}
        self._heap = HeapFile(self._pool, tag="tuples")
        self._rid_of_tid: dict[int, Rid] = {}
        self._tuple_memo: dict[int, tuple[np.ndarray, np.ndarray]] | None = None
        self.num_tuples = 0
        #: Monotonic mutation counter (insert/delete/build/compact).
        #: Long-lived caches keyed by tid (the serving executor's
        #: tuple-decode cache) compare this stamp to know when entries
        #: may be stale.
        self.mutations = 0
        #: Whether the last :meth:`load` had to rebuild derived structures.
        self.recovered = False
        #: LSM write path (docs/mutability.md): online inserts land in
        #: ``_segments`` (the last un-sealed one is active), deletes of
        #: segment-owned tids resolve through ``_segment_of_tid``, and
        #: ``_dead_tids`` remembers deleted tuples whose heap records
        #: linger (the heap is append-only) so recovery and compaction
        #: can drop them.
        self._segments: list[PostingSegment] = []
        self._segment_of_tid: dict[int, int] = {}
        self._dead_tids: set[int] = set()
        self._segment_capacity = _segment_capacity_from_env()
        self._wal = None
        #: LSN of the last write-ahead-log record applied to this index.
        self.wal_lsn = 0
        #: Optional :class:`~repro.sketch.SketchIndex` enabling sketch
        #: pre-filtered similarity execution (docs/sketch-prefilter.md).
        #: Built with :meth:`build_sketch`; maintained by insert/delete,
        #: rebuilt by :meth:`compact`, persisted by :meth:`save`.
        self.sketch = None

    # -- buffering ------------------------------------------------------------

    @property
    def pool(self) -> BufferPool:
        """The buffer pool all page access goes through."""
        return self._pool

    @pool.setter
    def pool(self, pool: BufferPool) -> None:
        if pool is self._pool:
            # Serving mode re-installs its warm pool before every batch;
            # a no-op reassign must not flush (and so perturb) the pool.
            return
        if pool.disk is not self.disk:
            raise QueryError("buffer pool must be backed by the index's disk")
        self._pool.flush_all()  # don't strand dirty pages in the old pool
        self._pool = pool
        self._heap.pool = pool
        for posting_list in self._lists.values():
            posting_list.pool = pool
        for segment in self._segments:
            segment.pool = pool
        if self.sketch is not None:
            self.sketch.pool = pool

    @contextmanager
    def shared_scan(self, memo: dict | None = None):
        """Memoize random-access tuple decodes for a batch of queries.

        While active, :meth:`fetch_uda_arrays` keeps each decoded tuple in
        memory, so a tuple verified by one query in a batch is served to
        every later query without re-fetching its heap page or re-decoding
        the record.  Per-query logical behavior (answer sets, scores, stop
        rules) is untouched — only repeated physical work is skipped,
        which is exactly the amortization :class:`repro.exec.BatchExecutor`
        models with its shared per-batch pool.  Never active at batch
        size 1, so per-query I/O counts stay the paper's.

        ``memo`` lets a caller own the memo dict and carry it across
        scopes — the serving executor passes its long-lived tuple cache
        here so decode warmth survives between requests while the index
        itself stays memo-free (and measurement-exact) whenever no scope
        is active.  The caller owning ``memo`` owns its invalidation
        (see :attr:`mutations`).
        """
        if self._tuple_memo is not None:  # nested batches don't occur,
            yield  # but re-entry must not clear the outer scope's memo
            return
        self._tuple_memo = {} if memo is None else memo
        try:
            yield
        finally:
            self._tuple_memo = None

    # -- construction -----------------------------------------------------------

    def build(self, relation: UncertainRelation) -> None:
        """Bulk-build the index over every tuple of ``relation``."""
        if self.num_tuples:
            raise QueryError("index already built; create a fresh one")
        if len(relation.domain) != self.domain_size:
            raise QueryError(
                f"relation domain size {len(relation.domain)} != index "
                f"domain size {self.domain_size}"
            )
        for tid in relation.tids():
            uda = relation.uda_of(tid)
            record = encode_heap_record(tid, uda.items, uda.probs)
            self._rid_of_tid[tid] = self._heap.append(record)
        matrix = relation.to_sparse_matrix().tocsc()
        for item in range(self.domain_size):
            start, end = matrix.indptr[item], matrix.indptr[item + 1]
            if start == end:
                continue
            posting_list = PostingList(self._pool)
            posting_list.bulk_build(
                matrix.indices[start:end].astype(np.int64),
                matrix.data[start:end],
            )
            self._lists[item] = posting_list
        self.num_tuples = len(relation)
        self.mutations += 1
        self._pool.flush_all()

    def insert(self, tid: int, uda: UncertainAttribute) -> None:
        """Insert one tuple (paper Section 3.1, insert/delete paragraph).

        The pairs land in the active mutable segment, not the base
        trees; with a write-ahead log attached (:meth:`attach_wal`) the
        operation is made durable before it is applied.
        """
        if tid in self._rid_of_tid:
            raise QueryError(f"tid {tid} already present")
        lsn = (
            self._wal.append_insert(tid, uda.items, uda.probs)
            if self._wal is not None
            else None
        )
        self._apply_insert(tid, uda)
        if lsn is not None:
            self.wal_lsn = lsn

    def delete(self, tid: int) -> None:
        """Remove a tuple from every posting list it occurs in.

        The heap record stays behind (the tuple list is append-only);
        ``_dead_tids`` marks it dead until the next :meth:`compact`.
        """
        uda = self.fetch_uda(tid)  # validates presence
        lsn = (
            self._wal.append_delete(tid) if self._wal is not None else None
        )
        self._apply_delete(tid, uda)
        if lsn is not None:
            self.wal_lsn = lsn

    def _apply_insert(self, tid: int, uda: UncertainAttribute) -> None:
        """Apply an insert to the in-memory/paged state (no WAL write)."""
        record = encode_heap_record(tid, uda.items, uda.probs)
        self._rid_of_tid[tid] = self._heap.append(record)
        self._dead_tids.discard(tid)  # a reinsert supersedes the old record
        if self._segments and not self._segments[-1].sealed:
            ordinal = len(self._segments) - 1
        else:
            self._segments.append(PostingSegment(self._pool))
            ordinal = len(self._segments) - 1
        segment = self._segments[ordinal]
        segment.insert(tid, uda)
        self._segment_of_tid[tid] = ordinal
        if self.sketch is not None:
            # Sketch the f32-exact values the heap record stores — what
            # verification will score against (WAL replay funnels
            # through here too, so recovery re-sketches identically).
            self.sketch.insert(
                tid,
                np.asarray(uda.items, dtype=np.int64),
                np.asarray(uda.probs, dtype=np.float32).astype(np.float64),
            )
        self.num_tuples += 1
        self.mutations += 1
        if len(segment.tids) >= self._segment_capacity:
            segment.sealed = True
            METRICS.inc("segment.flush")
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.event(
                    "segment.flush", segment=ordinal, tuples=len(segment.tids)
                )

    def _apply_delete(self, tid: int, uda: UncertainAttribute) -> None:
        """Apply a delete to the in-memory/paged state (no WAL write)."""
        ordinal = self._segment_of_tid.pop(tid, None)
        if ordinal is None:
            for item, prob in uda.pairs():
                self._lists[item].delete(tid, prob)
        else:
            self._segments[ordinal].remove(tid, uda)
        del self._rid_of_tid[tid]
        self._dead_tids.add(tid)
        if self.sketch is not None:
            self.sketch.delete(tid)
        self.num_tuples -= 1
        self.mutations += 1

    # -- write-ahead log -------------------------------------------------------

    def attach_wal(self, wal, *, replay: bool = True) -> None:
        """Attach a :class:`~repro.wal.WriteAheadLog`; replay its tail.

        Records with ``lsn <= self.wal_lsn`` were already absorbed by
        the image this index was loaded from and are skipped; the rest
        are re-applied in order (crash recovery over the last durable
        image).  Subsequent :meth:`insert`/:meth:`delete` calls log to
        ``wal`` before applying.  A torn tail truncated when ``wal`` was
        opened marks this index :attr:`recovered` — the prefix is
        consistent, but the crash lost the record being written.
        """
        self._wal = wal
        if not replay:
            return
        applied = skipped = 0
        for record in wal.replay():
            if record.lsn <= self.wal_lsn:
                skipped += 1
                continue
            if record.items is not None:
                self._apply_insert(
                    record.tid, UncertainAttribute(record.items, record.probs)
                )
            else:
                self._apply_delete(record.tid, self.fetch_uda(record.tid))
            self.wal_lsn = record.lsn
            applied += 1
        if wal.torn:
            self.recovered = True
        METRICS.inc("wal.replay")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event(
                "wal.replay", applied=applied, skipped=skipped, torn=wal.torn
            )

    # -- compaction ------------------------------------------------------------

    def compact(self) -> None:
        """Fold segments and deletions back into bulk-loaded base trees.

        Rebuilds the tuple heap (live records only, ascending tid) and
        every posting list (one bulk-loaded tree per item) in exactly
        the layout :meth:`build` produces for the same final tuple set,
        then frees every old page wholesale — the disk held nothing but
        the old heap and posting pages, so no per-tree enumeration is
        needed.  Afterwards queries read the index byte-for-byte like a
        static build: the differential suite asserts identical answers
        *and* identical measurement-mode read counts.
        """
        if not self._segments and not self._dead_tids:
            return
        METRICS.inc("compaction")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event(
                "compaction.begin",
                segments=len(self._segments),
                deleted=len(self._dead_tids),
            )
        # Gather the merged view while the old structures are readable.
        merged: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        items = set(self._lists)
        for segment in self._segments:
            items.update(segment.lists)
        for item in sorted(items):
            posting_list = self.posting_list(item)
            tids, probs = posting_list.read_all()
            if len(tids):
                merged[item] = (tids, probs)
        live_records = []
        for tid in sorted(self._rid_of_tid):
            items_arr, probs_arr = self.fetch_uda_arrays(tid)
            live_records.append((tid, items_arr, probs_arr))
        old_pages = sorted(self.disk.page_ids())
        # Rebuild: heap first, then posting trees in ascending item
        # order — the exact allocation sequence of a static build.
        self._heap = HeapFile(self._pool, tag="tuples")
        self._rid_of_tid = {}
        for tid, items_arr, probs_arr in live_records:
            record = encode_heap_record(tid, items_arr, probs_arr)
            self._rid_of_tid[tid] = self._heap.append(record)
        self._lists = {}
        for item, (tids, probs) in merged.items():
            posting_list = PostingList(self._pool)
            posting_list.bulk_build(tids, probs)
            self._lists[item] = posting_list
        if self.sketch is not None:
            # Rebuild the sketch store deterministically over the live
            # set (its stale pages are in ``old_pages``, freed below).
            params = self.sketch.params
            self.sketch = None
            self.build_sketch(params, flush=False)
        # The old pages are garbage now: drop their frames unwritten and
        # return them to the allocator.
        for page_id in old_pages:
            self._pool.discard_page(page_id)
            self.disk.deallocate_page(page_id)
        self._segments = []
        self._segment_of_tid = {}
        self._dead_tids = set()
        self.mutations += 1
        self._pool.flush_all()
        if tracer is not None:
            tracer.event(
                "compaction.end",
                items=len(merged),
                pages_freed=len(old_pages),
            )

    # -- sketch pre-filtering --------------------------------------------------

    def live_tids(self) -> list[int]:
        """Every live tuple id, ascending — the similarity scan order."""
        return sorted(self._rid_of_tid)

    def build_sketch(self, params=None, *, flush: bool = True) -> None:
        """Build (or rebuild) the attached sketch store over the live set.

        Sketches every live tuple in ascending-tid order, so the page
        image is a deterministic function of the logical contents —
        build-then-mutate and mutate-then-compact converge on the same
        sketch pages.
        """
        from repro.sketch import SketchIndex

        sketch = SketchIndex(self._pool, params)
        for tid in self.live_tids():
            items, probs = self.fetch_uda_arrays(tid)
            sketch.insert(tid, items, probs)
        self.sketch = sketch
        if flush:
            self._pool.flush_all()

    # -- access paths -------------------------------------------------------------

    def posting_list(self, item: int) -> PostingList | SegmentedPostingList | None:
        """The posting list for ``item``, or None if the item never occurs.

        With live segments this is a :class:`SegmentedPostingList`
        merging the base tree and every segment tree for the item; with
        none (static builds, or after :meth:`compact`) it is the base
        tree itself, bit-identical to the pre-mutability access path.
        """
        base = self._lists.get(item)
        if not self._segments:
            return base
        parts = [base] if base is not None else []
        for segment in self._segments:
            part = segment.lists.get(item)
            if part is not None:
                parts.append(part)
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return SegmentedPostingList(parts)

    def fetch_uda_arrays(self, tid: int) -> tuple[np.ndarray, np.ndarray]:
        """Random access: a tuple's stored sparse arrays, unvalidated.

        The stored layout guarantees item-sorted, float32-exact pairs,
        so strategies can score against these directly (one random
        access, no re-validation).
        """
        memo = self._tuple_memo
        if memo is not None:
            cached = memo.get(tid)
            if cached is not None:
                return cached
        try:
            rid = self._rid_of_tid[tid]
        except KeyError:
            raise KeyNotFoundError(f"tid {tid} not in index") from None
        # Zero-copy read; the .astype calls below copy out of the page
        # buffer before any other fetch can touch it.
        stored_tid, pairs, _ = decode_heap_record(self._heap.get_view(rid))
        if stored_tid != tid:
            raise KeyNotFoundError(
                f"tuple list corrupted: rid of tid {tid} holds {stored_tid}"
            )
        arrays = pairs["item"].astype(np.int64), pairs["prob"].astype(np.float64)
        if memo is not None:
            memo[tid] = arrays
        return arrays

    def fetch_uda(self, tid: int) -> UncertainAttribute:
        """Random access: fetch a tuple's full UDA from the tuple list."""
        items, probs = self.fetch_uda_arrays(tid)
        return UncertainAttribute(items, probs)

    # -- queries ----------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        strategy: str = "highest_prob_first",
        tau_floor: float = 0.0,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> QueryResult:
        """Answer an equality or similarity query descriptor.

        ``strategy`` is a name from
        :data:`repro.invindex.strategies.STRATEGIES`.  ``tau_floor`` is
        the rank-join elevation of a top-k query's dynamic threshold
        (see :meth:`SearchStrategy.top_k <repro.invindex.strategies.SearchStrategy.top_k>`);
        it is only meaningful for :class:`EqualityTopKQuery` and must be
        ``0.0`` for every other descriptor.

        Similarity descriptors run as sketch-assisted scans over the
        tuple list (:mod:`repro.sketch.search`): ``sketch`` overrides
        the resolved ``REPRO_SKETCH`` mode, and ``div_ceiling`` lets a
        shard coordinator cap a :class:`SimilarityTopKQuery` at the
        global k-th divergence (the dual of ``tau_floor``).  Both are
        rejected on non-similarity descriptors.
        """
        from repro.invindex.strategies import get_strategy
        from repro.obs import trace as _trace
        from repro.sketch import resolve_sketch
        from repro.sketch.search import similarity_execute

        similarity = isinstance(
            query, (SimilarityThresholdQuery, SimilarityTopKQuery)
        )
        if sketch is not None and not similarity:
            raise QueryError(
                "sketch mode only applies to similarity queries; got "
                f"{type(query).__name__}"
            )
        if div_ceiling is not None:
            if not isinstance(query, SimilarityTopKQuery):
                raise QueryError(
                    "div_ceiling only applies to similarity top-k "
                    f"queries; got {type(query).__name__}"
                )
            if div_ceiling < 0.0:
                raise QueryError(
                    f"div_ceiling must be >= 0, got {div_ceiling}"
                )
        if tau_floor < 0.0:
            raise QueryError(f"tau_floor must be >= 0, got {tau_floor}")
        if tau_floor > 0.0 and not isinstance(query, EqualityTopKQuery):
            raise QueryError(
                "tau_floor only applies to top-k queries; got "
                f"{type(query).__name__}"
            )
        if similarity:
            mode = resolve_sketch(sketch)
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.event(
                    "query.begin",
                    structure="inv-index",
                    query=type(query).__name__,
                )
            result = similarity_execute(self, query, mode, div_ceiling)
            if tracer is not None:
                tracer.event(
                    "query.end",
                    structure="inv-index",
                    matches=len(result),
                )
            return result
        runner = get_strategy(strategy)
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event(
                "query.begin",
                structure="inv-index",
                query=type(query).__name__,
                strategy=runner.name,
            )
        result = self._execute_with(runner, query, tau_floor)
        if tracer is not None:
            tracer.event(
                "query.end",
                structure="inv-index",
                strategy=runner.name,
                matches=len(result),
            )
        return result

    def _execute_with(
        self, runner, query: Query, tau_floor: float = 0.0
    ) -> QueryResult:
        """Dispatch ``query`` to the right entry point of ``runner``."""
        if isinstance(query, EqualityThresholdQuery):
            return runner.threshold(self, query.q, query.threshold)
        if isinstance(query, EqualityTopKQuery):
            return runner.top_k(self, query.q, query.k, tau_floor=tau_floor)
        if isinstance(query, EqualityQuery):
            # PEQ is a threshold query at the smallest representable
            # positive probability.
            return runner.threshold(self, query.q, np.finfo(np.float32).tiny)
        if isinstance(query, WindowedEqualityQuery):
            # Ordered-domain windowed equality: the expanded weight
            # vector turns the query into a plain threshold search.
            return runner.threshold(
                self, query.expanded(self.domain_size), query.threshold
            )
        raise QueryError(
            "the inverted index answers equality queries; got "
            f"{type(query).__name__}"
        )

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> None:
        """Persist the index (pages plus catalog) to ``path``.

        The tid -> rid directory is rebuilt from the tuple list on load,
        so the catalog stays small.
        """
        from repro.storage.persistence import save_disk_to_path

        self._pool.flush_all()
        metadata = {
            "kind": "inverted",
            "domain_size": self.domain_size,
            "num_tuples": self.num_tuples,
            "heap": self._heap.state(),
            "lists": {
                str(item): posting_list.state()
                for item, posting_list in self._lists.items()
            },
            "wal_lsn": self.wal_lsn,
            "deleted_tids": sorted(self._dead_tids),
            "segments": [segment.state() for segment in self._segments],
        }
        if self.sketch is not None:
            metadata["sketch"] = self.sketch.state()
        save_disk_to_path(path, self.disk, metadata)

    @classmethod
    def load(cls, path, *, recover: bool = True) -> "ProbabilisticInvertedIndex":
        """Reopen an index persisted with :meth:`save`.

        The image is checksum-scanned on attach.  A damaged image (torn
        pages, truncation) is recovered transparently when ``recover``
        is true: the tuple list (heap) is the ground truth, so corrupt
        posting pages are dropped and every posting list is rebuilt from
        a heap scan.  Damage *to the heap itself* — or ``recover=False``
        with any damage — raises
        :class:`~repro.core.exceptions.RecoveryError`: a wrong answer is
        never silently served.  :attr:`recovered` records which path ran.
        """
        from repro.core.exceptions import RecoveryError
        from repro.storage.persistence import scan_disk_from_path

        disk, metadata, report = scan_disk_from_path(path)
        if metadata.get("kind") != "inverted":
            raise QueryError(
                f"{path} holds a {metadata.get('kind')!r} structure, "
                "not an inverted index"
            )
        if not report.clean and not recover:
            raise RecoveryError(
                f"{path} is damaged (corrupt pages "
                f"{report.corrupt_page_ids}, truncated={report.truncated}) "
                "and recovery is disabled"
            )
        index = cls.__new__(cls)
        index.domain_size = int(metadata["domain_size"])
        index.disk = disk
        index._pool = BufferPool(disk, 4096)
        index.recovered = not report.clean
        index._tuple_memo = None
        index.mutations = 0
        index._wal = None
        index.wal_lsn = int(metadata.get("wal_lsn", 0))
        index._dead_tids = {int(tid) for tid in metadata.get("deleted_tids", [])}
        index._segment_capacity = _segment_capacity_from_env()
        heap_state = metadata["heap"]
        if not report.clean:
            heap_pages = set(heap_state["page_ids"])
            damaged_heap = heap_pages & set(report.corrupt_page_ids)
            missing_heap = heap_pages - set(disk.page_ids())
            if damaged_heap or missing_heap:
                raise RecoveryError(
                    f"{path}: tuple list damaged beyond repair "
                    f"(corrupt heap pages {sorted(damaged_heap)}, "
                    f"missing heap pages {sorted(missing_heap)})"
                )
            # Posting pages are derived data: drop every non-heap page
            # (including the corrupt ones) and rebuild below.
            for page_id in sorted(set(disk.page_ids()) - heap_pages):
                disk.deallocate_page(page_id)
        index._heap = HeapFile.attach(index._pool, heap_state, tag="tuples")
        if report.clean:
            index._lists = {
                int(item): PostingList.attach(index._pool, state)
                for item, state in metadata["lists"].items()
            }
            index._segments = [
                PostingSegment.attach(index._pool, state)
                for state in metadata.get("segments", [])
            ]
            index._segment_of_tid = {
                tid: ordinal
                for ordinal, segment in enumerate(index._segments)
                for tid in segment.tids
            }
            index._rid_of_tid = {}
            # Scan order is append order, so for a reinserted tid the
            # later (live) record wins the directory slot.
            for rid, record in index._heap.scan():
                tid, _, _ = decode_heap_record(record)
                index._rid_of_tid[tid] = rid
            for tid in index._dead_tids:
                index._rid_of_tid.pop(tid, None)
        else:
            # Unclean: every posting page — base and segment alike — was
            # dropped above; rebuild one base tree per item from the
            # heap's latest record per tid, minus the dead set.
            index._lists = {}
            index._segments = []
            index._segment_of_tid = {}
            index._rid_of_tid = {}
            latest: dict[int, tuple[Rid, bytes]] = {}
            for rid, record in index._heap.scan():
                tid, _, _ = decode_heap_record(record)
                latest[tid] = (rid, bytes(record))
            for tid in index._dead_tids:
                latest.pop(tid, None)
            per_item: dict[int, list[tuple[int, float]]] = {}
            for tid, (rid, record) in latest.items():
                index._rid_of_tid[tid] = rid
                _, pairs, _ = decode_heap_record(record)
                for item, prob in zip(
                    pairs["item"].tolist(), pairs["prob"].tolist()
                ):
                    per_item.setdefault(int(item), []).append((tid, prob))
            for item in sorted(per_item):
                tids, probs = zip(*per_item[item])
                posting_list = PostingList(index._pool)
                posting_list.bulk_build(
                    np.asarray(tids, dtype=np.int64),
                    np.asarray(probs, dtype=np.float64),
                )
                index._lists[item] = posting_list
            index._pool.flush_all()
        index.num_tuples = int(metadata["num_tuples"])
        if index.num_tuples != len(index._rid_of_tid):
            raise RecoveryError(
                f"{path} is corrupt: catalog says {index.num_tuples} "
                f"tuples, tuple list holds {len(index._rid_of_tid)}"
            )
        index.sketch = None
        sketch_state = metadata.get("sketch")
        if sketch_state is not None:
            from repro.sketch import SketchIndex, SketchParams

            if report.clean:
                index.sketch = SketchIndex.attach(
                    index._pool, sketch_state, set(index._rid_of_tid)
                )
            else:
                # Sketch pages were derived data dropped with the rest;
                # rebuild deterministically from the recovered heap.
                index.build_sketch(
                    SketchParams(**sketch_state["params"])
                )
        return index

    def __repr__(self) -> str:
        return (
            f"ProbabilisticInvertedIndex(tuples={self.num_tuples}, "
            f"lists={len(self._lists)}, pages={self.disk.num_pages})"
        )
