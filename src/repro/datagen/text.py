"""Synthetic document corpus (substitute for the proprietary CRM text).

The paper's real datasets derive from "100,000 text documents consisting
of complaints, responses, and ensuing communications" of "a major cell
phone service provider" — data we cannot have.  What the indexes see,
however, is only the *probability vectors* a classifier/clusterer emits,
so we substitute a topic-mixture corpus generator whose statistical
structure (topical vocabulary, mixed-topic documents, term sparsity)
drives the downstream classifier (:mod:`repro.datagen.classifier`) and
fuzzy clusterer (:mod:`repro.datagen.fuzzy`) the same way real support
tickets would.

Generative model (a fixed-length LDA-style mixture):

1. Each of ``num_topics`` topics draws a word distribution over the
   vocabulary from ``Dirichlet(beta)`` (small ``beta`` => topical words).
2. Each document draws topic weights from ``Dirichlet(alpha)`` (small
   ``alpha`` => one or two dominant topics, like a complaint that is
   mostly about brakes) and its bag of words from the mixture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.exceptions import QueryError


@dataclass
class Corpus:
    """A generated corpus: term counts plus generative ground truth."""

    #: Document-term counts, shape (num_docs, vocab_size).
    counts: sparse.csr_matrix
    #: The dominant generating topic of each document (ground truth).
    labels: np.ndarray
    #: True per-document topic weights, shape (num_docs, num_topics).
    topic_weights: np.ndarray
    #: Topic-word distributions, shape (num_topics, vocab_size).
    topics: np.ndarray

    @property
    def num_docs(self) -> int:
        return self.counts.shape[0]

    @property
    def vocab_size(self) -> int:
        return self.counts.shape[1]

    @property
    def num_topics(self) -> int:
        return self.topics.shape[0]


def generate_corpus(
    num_docs: int,
    num_topics: int = 50,
    vocab_size: int = 500,
    doc_length: int = 60,
    alpha: float = 0.08,
    beta: float = 0.05,
    seed: int = 0,
    chunk_size: int = 4096,
) -> Corpus:
    """Generate a topic-mixture corpus.

    ``alpha`` controls how mixed documents are (smaller = purer topics,
    sparser downstream posteriors), ``beta`` how topical words are.
    """
    if num_docs < 1:
        raise QueryError(f"num_docs must be >= 1, got {num_docs}")
    if num_topics < 2:
        raise QueryError(f"num_topics must be >= 2, got {num_topics}")
    rng = np.random.default_rng(seed)
    topics = rng.dirichlet(np.full(vocab_size, beta), size=num_topics)
    weights = rng.dirichlet(np.full(num_topics, alpha), size=num_docs)
    labels = weights.argmax(axis=1)
    blocks = []
    for start in range(0, num_docs, chunk_size):
        block_weights = weights[start : start + chunk_size]
        mixtures = block_weights @ topics  # (chunk, vocab)
        # Guard against tiny negative round-off and renormalize rows.
        mixtures = np.maximum(mixtures, 0.0)
        mixtures /= mixtures.sum(axis=1, keepdims=True)
        block_counts = np.vstack(
            [rng.multinomial(doc_length, row) for row in mixtures]
        )
        blocks.append(sparse.csr_matrix(block_counts))
    counts = sparse.vstack(blocks).tocsr()
    return Corpus(
        counts=counts, labels=labels, topic_weights=weights, topics=topics
    )
