"""Dataset and workload generators for the paper's evaluation."""

from repro.datagen.classifier import MultinomialNaiveBayes
from repro.datagen.crm import crm1_dataset, crm2_dataset
from repro.datagen.fuzzy import FuzzyCMeansResult, fuzzy_c_means
from repro.datagen.synthetic import (
    expected_group_size,
    gen3_dataset,
    pairwise_dataset,
    uniform_dataset,
    zipf_dataset,
)
from repro.datagen.text import Corpus, generate_corpus
from repro.datagen.workload import (
    PAPER_SELECTIVITIES,
    CalibratedQuery,
    build_workload,
    calibrate_threshold,
    sample_query_udas,
)

__all__ = [
    "PAPER_SELECTIVITIES",
    "CalibratedQuery",
    "Corpus",
    "FuzzyCMeansResult",
    "MultinomialNaiveBayes",
    "build_workload",
    "calibrate_threshold",
    "crm1_dataset",
    "crm2_dataset",
    "expected_group_size",
    "fuzzy_c_means",
    "gen3_dataset",
    "generate_corpus",
    "pairwise_dataset",
    "sample_query_udas",
    "uniform_dataset",
    "zipf_dataset",
]
