"""Synthetic datasets from the paper's evaluation (Section 4).

* **Uniform** — "5 items and the probability of each item is chosen
  randomly for all tuples": every tuple is a dense random distribution
  over the whole (small) domain.  The worst case for an inverted index
  (every query touches every list).
* **Pairwise** — "also has 5 elements but the individual tuples have
  only 2 non-zero items with roughly equal probabilities.  In addition,
  the total number of item combinations is restricted to 5": maximally
  sparse and clusterable.  "These two datasets represent the two extreme
  possible scenarios."
* **Gen3** — the domain-size scalability family: "a number of item
  groups are picked at random from the domain.  The size of the item
  groups ... is distributed geometrically.  The expected group size was
  varied from 3 (in domain size 10) to 10 (in domain size 500).  The
  item probabilities inside a group are chosen randomly."

All generators are deterministic given a seed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.domain import CategoricalDomain
from repro.core.exceptions import QueryError
from repro.core.relation import UncertainRelation
from repro.core.uda import UncertainAttribute

#: The paper's synthetic dataset size.
DEFAULT_NUM_TUPLES = 10_000

#: The paper's Uniform/Pairwise domain size.
DEFAULT_DOMAIN_SIZE = 5


def uniform_dataset(
    num_tuples: int = DEFAULT_NUM_TUPLES,
    domain_size: int = DEFAULT_DOMAIN_SIZE,
    seed: int = 0,
) -> UncertainRelation:
    """The Uniform dataset: dense random distributions."""
    rng = np.random.default_rng(seed)
    domain = CategoricalDomain.of_size(domain_size)
    relation = UncertainRelation(domain, name=f"Uniform-{num_tuples}")
    items = np.arange(domain_size, dtype=np.int64)
    probabilities = rng.dirichlet(np.ones(domain_size), size=num_tuples)
    for row in probabilities:
        relation.append(UncertainAttribute(items, row))
    return relation


def pairwise_dataset(
    num_tuples: int = DEFAULT_NUM_TUPLES,
    domain_size: int = DEFAULT_DOMAIN_SIZE,
    num_combinations: int = 5,
    jitter: float = 0.1,
    seed: int = 0,
) -> UncertainRelation:
    """The Pairwise dataset: 2 non-zero items, 5 possible combinations.

    ``jitter`` controls "roughly equal probabilities": each tuple's split
    is ``0.5 +- uniform(0, jitter/2)``.
    """
    max_pairs = domain_size * (domain_size - 1) // 2
    if num_combinations > max_pairs:
        raise QueryError(
            f"domain of size {domain_size} has only {max_pairs} item pairs"
        )
    rng = np.random.default_rng(seed)
    domain = CategoricalDomain.of_size(domain_size)
    relation = UncertainRelation(domain, name=f"Pairwise-{num_tuples}")
    all_pairs = [
        (a, b)
        for a in range(domain_size)
        for b in range(a + 1, domain_size)
    ]
    chosen = rng.choice(len(all_pairs), size=num_combinations, replace=False)
    combinations = [all_pairs[int(i)] for i in chosen]
    picks = rng.integers(0, num_combinations, size=num_tuples)
    splits = 0.5 + rng.uniform(-jitter / 2, jitter / 2, size=num_tuples)
    for pick, split in zip(picks.tolist(), splits.tolist()):
        first, second = combinations[pick]
        relation.append(
            UncertainAttribute.from_pairs(
                [(first, split), (second, 1.0 - split)]
            )
        )
    return relation


def expected_group_size(domain_size: int) -> int:
    """The paper's fill-factor schedule: 3 at ``|D|=10`` up to 10 at 500.

    Interpolates logarithmically between the two anchor points and clips
    to ``[3, 10]``.
    """
    if domain_size <= 10:
        return 3
    if domain_size >= 500:
        return 10
    fraction = math.log(domain_size / 10) / math.log(500 / 10)
    return int(round(3 + fraction * (10 - 3)))


def zipf_dataset(
    num_tuples: int = DEFAULT_NUM_TUPLES,
    domain_size: int = 50,
    skew: float = 1.1,
    nnz: int = 4,
    seed: int = 0,
) -> UncertainRelation:
    """A skewed synthetic family (beyond the paper's three).

    Item popularity follows a Zipf law with exponent ``skew``: a few
    "hot" domain values occur in most tuples, the long tail almost
    never.  Real categorical data (problem codes, departments) is
    usually skewed, so this family probes how both index structures
    degrade when a handful of posting lists hold most of the mass —
    the regime the ablation bench ``bench_abl_skew`` sweeps.
    """
    if skew <= 1.0:
        raise QueryError(f"zipf skew must be > 1, got {skew}")
    if not 1 <= nnz <= domain_size:
        raise QueryError(
            f"nnz must be in [1, {domain_size}], got {nnz}"
        )
    rng = np.random.default_rng(seed)
    domain = CategoricalDomain.of_size(domain_size)
    relation = UncertainRelation(domain, name=f"Zipf-{skew}")
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    popularity = ranks**-skew
    popularity /= popularity.sum()
    for _ in range(num_tuples):
        items = rng.choice(domain_size, size=nnz, replace=False, p=popularity)
        probabilities = rng.dirichlet(np.ones(nnz))
        relation.append(
            UncertainAttribute.from_pairs(
                list(zip(items.tolist(), probabilities.tolist()))
            )
        )
    return relation


def gen3_dataset(
    num_tuples: int = DEFAULT_NUM_TUPLES,
    domain_size: int = 100,
    group_size: int | None = None,
    num_groups: int | None = None,
    seed: int = 0,
) -> UncertainRelation:
    """The Gen3 dataset used for domain-size scalability (Figure 9).

    Item groups are sampled from the domain with geometrically
    distributed sizes (mean ``group_size``, clipped to the domain); each
    tuple picks a random group and spreads random probabilities over its
    items.
    """
    rng = np.random.default_rng(seed)
    if group_size is None:
        group_size = expected_group_size(domain_size)
    if num_groups is None:
        num_groups = max(8, domain_size // 2)
    domain = CategoricalDomain.of_size(domain_size)
    relation = UncertainRelation(domain, name=f"Gen3-{domain_size}")
    groups = []
    for _ in range(num_groups):
        size = int(rng.geometric(1.0 / group_size))
        size = max(1, min(size, domain_size))
        groups.append(rng.choice(domain_size, size=size, replace=False))
    picks = rng.integers(0, num_groups, size=num_tuples)
    for pick in picks.tolist():
        members = groups[pick]
        probabilities = rng.dirichlet(np.ones(len(members)))
        relation.append(
            UncertainAttribute.from_pairs(
                list(zip(members.tolist(), probabilities.tolist()))
            )
        )
    return relation
