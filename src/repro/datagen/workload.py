"""Query workload generation and selectivity calibration.

The paper's x-axis is *query selectivity* — the fraction of the dataset
a query returns — swept across 0.01% to 10% by varying the threshold and
``k`` ("Multiple thresholds and values for k are considered in order to
produce queries with varying selectivities").

Queries are drawn from the dataset's own distribution: a query UDA is a
randomly picked tuple's distribution.  That mirrors the paper's
motivating use ("determine the k patients that are most similar to a
given patient") and guarantees non-degenerate answer sets at every
selectivity.

:func:`calibrate_threshold` turns a target selectivity into the exact
threshold that yields it for a given query, using the relation's
vectorized probability fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import QueryError
from repro.core.queries import EqualityThresholdQuery, EqualityTopKQuery
from repro.core.relation import UncertainRelation
from repro.core.uda import UncertainAttribute

#: The selectivity grid of the paper's figures (fractions, not percent).
PAPER_SELECTIVITIES = (0.0001, 0.001, 0.01, 0.1)


@dataclass(frozen=True)
class CalibratedQuery:
    """A query distribution calibrated to one target selectivity."""

    q: UncertainAttribute
    selectivity: float
    threshold: float
    k: int

    def threshold_query(self) -> EqualityThresholdQuery:
        """The PETQ form of this workload entry."""
        return EqualityThresholdQuery(self.q, self.threshold)

    def top_k_query(self) -> EqualityTopKQuery:
        """The PEQ-top-k form of this workload entry."""
        return EqualityTopKQuery(self.q, self.k)


def sample_query_udas(
    relation: UncertainRelation, num_queries: int, seed: int = 0
) -> list[UncertainAttribute]:
    """Draw query distributions from the relation's own tuples."""
    if len(relation) == 0:
        raise QueryError("cannot sample queries from an empty relation")
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(relation), size=num_queries)
    return [relation.uda_of(int(tid)) for tid in picks]


def calibrate_threshold(
    relation: UncertainRelation,
    q: UncertainAttribute,
    selectivity: float,
) -> tuple[float, int]:
    """Threshold and k matching a target selectivity for query ``q``.

    Returns ``(threshold, k)`` where ``k = max(1, round(selectivity * n))``
    and ``threshold`` is the k-th largest equality probability — i.e.
    the inclusive PETQ threshold that selects (at least) ``k`` tuples.
    Raises QueryError when fewer than ``k`` tuples have positive
    probability (the query cannot reach the target selectivity).
    """
    if not 0.0 < selectivity <= 1.0:
        raise QueryError(
            f"selectivity must be in (0, 1], got {selectivity}"
        )
    probabilities = relation.equality_probabilities(q)
    k = max(1, int(round(selectivity * len(relation))))
    positive = int((probabilities > 0.0).sum())
    if positive < k:
        raise QueryError(
            f"query reaches only {positive}/{len(relation)} tuples; "
            f"selectivity {selectivity} needs {k}"
        )
    kth = float(np.partition(probabilities, -k)[-k])
    return kth, k


def build_workload(
    relation: UncertainRelation,
    selectivities: tuple[float, ...] = PAPER_SELECTIVITIES,
    queries_per_point: int = 10,
    seed: int = 0,
    max_attempts_factor: int = 10,
) -> dict[float, list[CalibratedQuery]]:
    """A calibrated workload: per selectivity, a list of queries.

    Sampled query distributions that cannot reach a target selectivity
    are skipped and resampled (up to ``max_attempts_factor`` times the
    requested count per point).
    """
    workload: dict[float, list[CalibratedQuery]] = {}
    for point, selectivity in enumerate(selectivities):
        candidates = sample_query_udas(
            relation,
            queries_per_point * max_attempts_factor,
            seed=seed * 7919 + point,
        )
        calibrated: list[CalibratedQuery] = []
        for q in candidates:
            if len(calibrated) >= queries_per_point:
                break
            try:
                threshold, k = calibrate_threshold(relation, q, selectivity)
            except QueryError:
                continue
            if threshold <= 0.0:
                continue
            calibrated.append(
                CalibratedQuery(
                    q=q, selectivity=selectivity, threshold=threshold, k=k
                )
            )
        if not calibrated:
            raise QueryError(
                f"no sampled query reaches selectivity {selectivity}; "
                "the dataset may be too small or too sparse"
            )
        workload[selectivity] = calibrated
    return workload
