"""The append-only write-ahead log behind online mutability.

Every mutation (tuple insert or delete) is made durable *before* it is
applied to an index: the operation is framed as one WAL record, written
at the tail of the log file, and — unless fsync is disabled — synced to
the device before the append returns.  An index image saved afterwards
records the last applied LSN (:attr:`wal_lsn` in its metadata), so
reattaching after a crash replays exactly the suffix of the log the
image has not absorbed (see ``docs/mutability.md``).

File layout::

    magic   b"REPROWAL1\\n"                          (10 bytes)
    record  u64 lsn | u8 op | u32 payload_len        (13-byte header)
            payload                                  (payload_len bytes)
            u32 crc32(header + payload)
    record  ...

LSNs are assigned by the log, start at 1, and increase by exactly 1 per
record; any gap, backward step, or CRC mismatch marks the end of the
valid prefix.  Opening a log with trailing garbage (a *torn tail*, the
footprint of a crash mid-append) truncates the file back to the valid
prefix and sets :attr:`WriteAheadLog.torn` — replay is always
prefix-consistent, never partially applied.  A bad magic or an
impossible geometry raises :class:`~repro.core.exceptions.WalError`
instead: that is not a crash footprint, it is the wrong file.

Payloads:

``OP_INSERT``
    ``u64 tid | u32 nnz | nnz * u32 item | nnz * f64 prob`` — the
    tuple's sparse distribution, exactly the arrays an
    :class:`~repro.core.uda.UncertainAttribute` round-trips (UDAs
    quantize to float32 at construction, and float64 represents every
    float32 exactly, so replayed tuples score bit-identically).

``OP_DELETE``
    ``u64 tid``
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.exceptions import WalError
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS

#: File magic; the trailing newline catches text-mode mangling early.
MAGIC = b"REPROWAL1\n"

#: Record operations.
OP_INSERT = 1
OP_DELETE = 2

#: Human-readable names, used in trace records and error messages.
OP_NAMES = {OP_INSERT: "insert", OP_DELETE: "delete"}

_HEADER = struct.Struct("<QBI")
_CRC = struct.Struct("<I")
_TID = struct.Struct("<Q")
_TID_NNZ = struct.Struct("<QI")

#: Ceiling on one record's payload; far above any real UDA (which must
#: fit in a page), it exists so a corrupt length field cannot make the
#: scanner attempt a gigabyte read before the CRC check rejects it.
MAX_PAYLOAD = 1 << 24


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    lsn: int
    op: int
    tid: int
    #: Sparse distribution arrays (insert records only; None on delete).
    items: np.ndarray | None = None
    probs: np.ndarray | None = None


def _encode_insert(tid: int, items, probs) -> bytes:
    items = np.asarray(items, dtype=np.uint32)
    probs = np.asarray(probs, dtype=np.float64)
    return (
        _TID_NNZ.pack(int(tid), len(items))
        + items.tobytes()
        + probs.tobytes()
    )


def _decode_payload(op: int, payload: bytes) -> tuple[int, np.ndarray | None, np.ndarray | None]:
    if op == OP_DELETE:
        (tid,) = _TID.unpack(payload)
        return tid, None, None
    tid, nnz = _TID_NNZ.unpack_from(payload, 0)
    offset = _TID_NNZ.size
    items = np.frombuffer(payload, dtype=np.uint32, count=nnz, offset=offset)
    offset += 4 * nnz
    probs = np.frombuffer(payload, dtype=np.float64, count=nnz, offset=offset)
    return tid, items.astype(np.int64), probs.copy()


class WriteAheadLog:
    """An append-only, CRC-framed operation log.

    Parameters
    ----------
    path:
        The log file.  Created (with just the magic) if absent.
    fsync:
        Sync the file to the device after every append — the durability
        half of write-ahead logging.  Tests that tear the log at exact
        record boundaries keep it on; bulk loaders may turn it off and
        accept losing a suffix on power failure (prefix consistency
        still holds).

    Attributes
    ----------
    last_lsn:
        LSN of the last valid record (0 for an empty log).
    torn:
        Whether opening found — and truncated — a torn tail.
    """

    def __init__(self, path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.torn = False
        self.last_lsn = 0
        if not self.path.exists():
            with open(self.path, "wb") as fh:
                fh.write(MAGIC)
                fh.flush()
                os.fsync(fh.fileno())
        else:
            valid_end = self._scan_valid_prefix()
            if valid_end < self.path.stat().st_size:
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid_end)
                    fh.flush()
                    os.fsync(fh.fileno())
                self.torn = True
        self._fh = open(self.path, "ab")

    # -- scanning ------------------------------------------------------------

    def _scan_valid_prefix(self) -> int:
        """Validate the file; set counters; return the valid-prefix end.

        Raises :class:`WalError` for a wrong or truncated magic — that
        is a foreign file, not a crash footprint.
        """
        data = self.path.read_bytes()
        if len(data) < len(MAGIC) or not data.startswith(MAGIC):
            raise WalError(f"{self.path}: not a WAL file (bad magic)")
        cursor = len(MAGIC)
        lsn = 0
        while cursor < len(data):
            end = self._validate_record_at(data, cursor, lsn + 1)
            if end is None:
                break
            cursor = end
            lsn += 1
        self.last_lsn = lsn
        return cursor

    @staticmethod
    def _validate_record_at(data: bytes, cursor: int, expect_lsn: int) -> int | None:
        """End offset of a valid record at ``cursor``, or None."""
        if cursor + _HEADER.size > len(data):
            return None
        lsn, op, length = _HEADER.unpack_from(data, cursor)
        if lsn != expect_lsn or op not in OP_NAMES or length > MAX_PAYLOAD:
            return None
        end = cursor + _HEADER.size + length + _CRC.size
        if end > len(data):
            return None
        (stored_crc,) = _CRC.unpack_from(data, end - _CRC.size)
        body = data[cursor : cursor + _HEADER.size + length]
        if zlib.crc32(body) != stored_crc:
            return None
        return end

    def record_offsets(self) -> list[int]:
        """Byte offset of each record boundary, magic first, EOF last.

        The kill-point harness truncates the file at (and between) these
        offsets to simulate crashes at every stage of an append.
        """
        data = self.path.read_bytes()
        offsets = [len(MAGIC)]
        lsn = 0
        cursor = len(MAGIC)
        while cursor < len(data):
            end = self._validate_record_at(data, cursor, lsn + 1)
            if end is None:
                break
            offsets.append(end)
            cursor = end
            lsn += 1
        return offsets

    # -- appending -----------------------------------------------------------

    def _append(self, op: int, payload: bytes) -> int:
        lsn = self.last_lsn + 1
        body = _HEADER.pack(lsn, op, len(payload)) + payload
        self._fh.write(body + _CRC.pack(zlib.crc32(body)))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.last_lsn = lsn
        METRICS.inc("wal.append")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event("wal.append", lsn=lsn, op=OP_NAMES[op])
        return lsn

    def append_insert(self, tid: int, items, probs) -> int:
        """Log a tuple insert; returns its LSN (durable on return)."""
        return self._append(OP_INSERT, _encode_insert(tid, items, probs))

    def append_delete(self, tid: int) -> int:
        """Log a tuple delete; returns its LSN (durable on return)."""
        return self._append(OP_DELETE, _TID.pack(int(tid)))

    # -- replay --------------------------------------------------------------

    def replay(self, after_lsn: int = 0) -> list[WalRecord]:
        """Decode every valid record with ``lsn > after_lsn``, in order.

        Reads the file fresh (not the in-memory tail), so a log another
        process appended to replays completely.  The valid prefix ends
        at the first framing or CRC violation — a torn tail yields the
        records before it, never a partial record.
        """
        data = self.path.read_bytes()
        if not data.startswith(MAGIC):
            raise WalError(f"{self.path}: not a WAL file (bad magic)")
        records: list[WalRecord] = []
        cursor = len(MAGIC)
        lsn = 0
        while cursor < len(data):
            end = self._validate_record_at(data, cursor, lsn + 1)
            if end is None:
                break
            stored_lsn, op, length = _HEADER.unpack_from(data, cursor)
            lsn = stored_lsn
            if lsn > after_lsn:
                payload = data[
                    cursor + _HEADER.size : cursor + _HEADER.size + length
                ]
                tid, items, probs = _decode_payload(op, payload)
                records.append(
                    WalRecord(lsn=lsn, op=op, tid=tid, items=items, probs=probs)
                )
            cursor = end
        return records

    # -- maintenance ---------------------------------------------------------

    def reset(self) -> None:
        """Drop every record (post-checkpoint truncation).

        :attr:`last_lsn` is preserved so future appends continue the LSN
        sequence past any image that already recorded it — replay-skip
        arithmetic stays monotonic across checkpoints.
        """
        self._fh.close()
        # last_lsn survives; only the bytes are discarded.  A log reset
        # this way replays as empty, which is correct: every dropped
        # record was applied before the checkpoint image was saved.
        with open(self.path, "r+b") as fh:
            fh.truncate(len(MAGIC))
            fh.flush()
            os.fsync(fh.fileno())
        self._fh = open(self.path, "ab")

    def sync(self) -> None:
        """Force buffered appends to the device."""
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(path={str(self.path)!r}, "
            f"last_lsn={self.last_lsn}, torn={self.torn})"
        )
