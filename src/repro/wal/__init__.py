"""Write-ahead logging for online index mutability.

See :mod:`repro.wal.log` for the record format and recovery semantics,
and ``docs/mutability.md`` for how indexes attach a log and replay it
over their last durable image.
"""

from repro.wal.log import (
    MAGIC,
    OP_DELETE,
    OP_INSERT,
    OP_NAMES,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "MAGIC",
    "OP_DELETE",
    "OP_INSERT",
    "OP_NAMES",
    "WalRecord",
    "WriteAheadLog",
]
