"""Binary persistence for simulated disks and index metadata.

The storage substrate is an in-memory page store; this module gives it a
durable form so an index built once (minutes for large datasets) can be
saved and reopened instantly.  The format is deliberately simple and
self-describing::

    8  bytes  magic  b"REPRODB1"
    4  bytes  u32    page size
    4  bytes  u32    metadata length
    n  bytes  JSON   structure-specific metadata (UTF-8)
    4  bytes  u32    number of pages
    per page: u32 page id, page bytes

Page ids are preserved exactly, so all intra-structure references
(tree roots, leaf chains, rids) stay valid.  Unallocated id gaps are
preserved through ``next_page_id`` in the metadata envelope.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import BinaryIO

from repro.core.exceptions import SerializationError
from repro.storage.disk import DiskManager

MAGIC = b"REPRODB1"
_U32 = struct.Struct("<I")


def save_disk(
    handle: BinaryIO, disk: DiskManager, metadata: dict
) -> None:
    """Write ``disk`` (and structure metadata) to an open binary file."""
    envelope = {
        "next_page_id": disk._next_page_id,
        "structure": metadata,
    }
    encoded = json.dumps(envelope).encode("utf-8")
    handle.write(MAGIC)
    handle.write(_U32.pack(disk.page_size))
    handle.write(_U32.pack(len(encoded)))
    handle.write(encoded)
    handle.write(_U32.pack(disk.num_pages))
    for page_id, data in sorted(disk._pages.items()):
        handle.write(_U32.pack(page_id))
        handle.write(data)


def load_disk(handle: BinaryIO) -> tuple[DiskManager, dict]:
    """Read a disk and its structure metadata from an open binary file."""
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise SerializationError(
            f"not a repro database file (magic {magic!r})"
        )
    (page_size,) = _U32.unpack(handle.read(4))
    (metadata_length,) = _U32.unpack(handle.read(4))
    envelope = json.loads(handle.read(metadata_length).decode("utf-8"))
    (num_pages,) = _U32.unpack(handle.read(4))
    disk = DiskManager(page_size=page_size)
    for _ in range(num_pages):
        (page_id,) = _U32.unpack(handle.read(4))
        data = handle.read(page_size)
        if len(data) != page_size:
            raise SerializationError("truncated page data")
        disk._pages[page_id] = data
    disk._next_page_id = int(envelope["next_page_id"])
    return disk, envelope["structure"]


def save_disk_to_path(
    path: str | Path, disk: DiskManager, metadata: dict
) -> None:
    """Write a disk image to ``path`` (see :func:`save_disk`)."""
    with open(path, "wb") as handle:
        save_disk(handle, disk, metadata)


def load_disk_from_path(path: str | Path) -> tuple[DiskManager, dict]:
    """Read a disk image from ``path`` (see :func:`load_disk`)."""
    with open(path, "rb") as handle:
        return load_disk(handle)
