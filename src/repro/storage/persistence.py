"""Binary persistence for simulated disks and index metadata.

The storage substrate is an in-memory page store; this module gives it a
durable form so an index built once (minutes for large datasets) can be
saved and reopened instantly.  The current format (version 2) is
deliberately simple and self-describing::

    8  bytes  magic  b"REPRODB2"
    4  bytes  u32    page size
    4  bytes  u32    metadata length
    n  bytes  JSON   envelope {next_page_id, tags, structure} (UTF-8)
    4  bytes  u32    number of pages
    per page: u32 page id, u32 CRC32, page bytes

Page ids are preserved exactly, so all intra-structure references
(tree roots, leaf chains, rids) stay valid.  Unallocated id gaps are
preserved through ``next_page_id`` in the metadata envelope, and page
allocation tags survive the round trip so per-tag I/O attribution works
on a reloaded disk.

Integrity and recovery
----------------------
Each page's CRC32 travels with it — the disk's *stored* checksum, not
one recomputed at save time, so a page torn in memory stays detectably
torn in the file.  Version-1 images (magic ``REPRODB1``, no CRCs, no
tags) still load; their checksums are computed from the page bytes.

Two read paths exist:

* :func:`load_disk` — strict; any structural damage raises
  :class:`SerializationError`.
* :func:`scan_disk` — the recovery path; it salvages every readable
  page, verifies each against its stored CRC, and returns a
  :class:`ScanReport` naming the corrupt pages and whether the image was
  truncated.  Index ``load`` paths use it to decide between transparent
  rebuild and failing loudly (see ``docs/fault-model.md``).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO

from repro.core.exceptions import SerializationError
from repro.storage.disk import DiskManager, page_checksum

MAGIC = b"REPRODB2"
MAGIC_V1 = b"REPRODB1"
_U32 = struct.Struct("<I")


@dataclass
class ScanReport:
    """What :func:`scan_disk` found while salvaging a disk image."""

    #: Ids of pages whose bytes fail their stored CRC32.
    corrupt_page_ids: list[int] = field(default_factory=list)
    #: Whether the image ended mid-record (crash during save).
    truncated: bool = False

    @property
    def clean(self) -> bool:
        """True when every declared page was present and verified."""
        return not self.corrupt_page_ids and not self.truncated


def save_disk(handle: BinaryIO, disk: DiskManager, metadata: dict) -> None:
    """Write ``disk`` (and structure metadata) to an open binary file.

    Each page is written with the disk's *stored* checksum — the CRC of
    the bytes the writer intended — so corruption already present on the
    simulated disk (e.g. a torn write) remains detectable after reload.
    """
    tags = disk.tag_directory()
    envelope = {
        "next_page_id": disk._next_page_id,
        "tags": {str(pid): tag for pid, tag in sorted(tags.items())},
        "structure": metadata,
    }
    encoded = json.dumps(envelope).encode("utf-8")
    handle.write(MAGIC)
    handle.write(_U32.pack(disk.page_size))
    handle.write(_U32.pack(len(encoded)))
    handle.write(encoded)
    handle.write(_U32.pack(disk.num_pages))
    for page_id in disk.page_ids():
        handle.write(_U32.pack(page_id))
        handle.write(_U32.pack(disk.checksum_of(page_id)))
        handle.write(disk.raw_page_bytes(page_id))


def _read_exact(handle: BinaryIO, size: int) -> bytes:
    data = handle.read(size)
    if len(data) != size:
        raise SerializationError(
            f"truncated file: wanted {size} bytes, got {len(data)}"
        )
    return data


def _read_header(handle: BinaryIO) -> tuple[int, int, dict]:
    """Parse magic + header; returns (version, page_size, envelope)."""
    magic = handle.read(len(MAGIC))
    if magic == MAGIC:
        version = 2
    elif magic == MAGIC_V1:
        version = 1
    else:
        raise SerializationError(f"not a repro database file (magic {magic!r})")
    (page_size,) = _U32.unpack(_read_exact(handle, 4))
    (metadata_length,) = _U32.unpack(_read_exact(handle, 4))
    try:
        envelope = json.loads(_read_exact(handle, metadata_length).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt metadata envelope: {exc}") from None
    return version, page_size, envelope


def _restore(
    disk: DiskManager,
    envelope: dict,
    pages: dict[int, bytes],
    checksums: dict[int, int],
) -> None:
    """Install salvaged pages, checksums, and tags into a fresh disk."""
    tags = envelope.get("tags", {})
    disk.install_image(
        pages,
        checksums,
        {pid: str(tags.get(str(pid), "untagged")) for pid in pages},
        int(envelope["next_page_id"]),
    )


def load_disk(handle: BinaryIO) -> tuple[DiskManager, dict]:
    """Read a disk and its structure metadata from an open binary file.

    Strict: a truncated or structurally damaged file raises
    :class:`SerializationError`.  Pages whose bytes fail their stored
    CRC are *loaded as-is* — the corruption is surfaced on first read
    through the counted path, exactly as on the original disk.  Use
    :func:`scan_disk` to detect such pages up front.
    """
    version, page_size, envelope = _read_header(handle)
    (num_pages,) = _U32.unpack(_read_exact(handle, 4))
    pages: dict[int, bytes] = {}
    checksums: dict[int, int] = {}
    for _ in range(num_pages):
        (page_id,) = _U32.unpack(_read_exact(handle, 4))
        if version >= 2:
            (crc,) = _U32.unpack(_read_exact(handle, 4))
        data = handle.read(page_size)
        if len(data) != page_size:
            raise SerializationError("truncated page data")
        pages[page_id] = data
        checksums[page_id] = crc if version >= 2 else page_checksum(data)
    disk = DiskManager(page_size=page_size)
    _restore(disk, envelope, pages, checksums)
    return disk, envelope["structure"]


def scan_disk(handle: BinaryIO) -> tuple[DiskManager, dict, ScanReport]:
    """Salvage a (possibly damaged) disk image; never raises on torn data.

    Reads as many complete page records as the file contains, verifies
    each against its stored CRC, and reports corruption instead of
    raising.  Only an unreadable *header* (bad magic, mangled metadata
    envelope) still raises :class:`SerializationError` — with no
    envelope there is nothing to recover toward.

    Returns ``(disk, structure_metadata, report)``.  Corrupt pages are
    installed with their (mismatching) stored checksum, so any read of
    them through the counted path raises
    :class:`~repro.core.exceptions.ChecksumError` — a recovery that
    ignores the report still cannot serve bad bytes.
    """
    version, page_size, envelope = _read_header(handle)
    report = ScanReport()
    pages: dict[int, bytes] = {}
    checksums: dict[int, int] = {}
    raw = handle.read(4)
    if len(raw) != 4:
        report.truncated = True
        num_pages = 0
    else:
        (num_pages,) = _U32.unpack(raw)
    record = _U32.size + (_U32.size if version >= 2 else 0) + page_size
    for _ in range(num_pages):
        chunk = handle.read(record)
        if len(chunk) != record:
            report.truncated = True
            break
        (page_id,) = _U32.unpack_from(chunk, 0)
        if version >= 2:
            (crc,) = _U32.unpack_from(chunk, 4)
            data = chunk[8:]
        else:
            data = chunk[4:]
            crc = page_checksum(data)
        pages[page_id] = data
        checksums[page_id] = crc
        if page_checksum(data) != crc:
            report.corrupt_page_ids.append(page_id)
    disk = DiskManager(page_size=page_size)
    _restore(disk, envelope, pages, checksums)
    return disk, envelope.get("structure", {}), report


def save_disk_to_path(path: str | Path, disk: DiskManager, metadata: dict) -> None:
    """Write a disk image to ``path`` (see :func:`save_disk`)."""
    with open(path, "wb") as handle:
        save_disk(handle, disk, metadata)


def load_disk_from_path(path: str | Path) -> tuple[DiskManager, dict]:
    """Read a disk image from ``path`` (see :func:`load_disk`)."""
    with open(path, "rb") as handle:
        return load_disk(handle)


def scan_disk_from_path(
    path: str | Path,
) -> tuple[DiskManager, dict, ScanReport]:
    """Salvage a disk image from ``path`` (see :func:`scan_disk`)."""
    with open(path, "rb") as handle:
        return scan_disk(handle)
