"""Seeded fault injection for the simulated disk.

The storage substrate's I/O counts are the paper's entire evaluation
metric, yet a disk that never fails cannot demonstrate that the query
algorithms *detect* failure rather than silently returning wrong
answers.  This module supplies the failure modes a real device exhibits:

* **read errors** — the read raises :class:`TransientReadError`; a retry
  succeeds (the stored bytes are intact);
* **bit rot** — the read returns a copy with one flipped bit; the page's
  CRC32 checksum (see :class:`~repro.storage.disk.DiskManager`) catches
  it and the read raises :class:`ChecksumError`; a retry succeeds;
* **torn writes** — only a prefix of the page reaches the store while
  the checksum of the *intended* bytes is recorded, so every later read
  of the page fails its CRC check persistently (retries cannot help; the
  failure surfaces loudly).

Faults are drawn from a :class:`FaultPlan` — per-operation probabilities
plus a seed — by a per-disk :class:`FaultInjector`, so a given plan
produces the same fault sequence for a given disk regardless of process
layout (the parallel benchmark runner ships the resolved plan to its
workers by value).

Injection never perturbs the simulated I/O counts: failed read attempts
are tracked as ``faults_injected`` / ``checksum_failures`` telemetry,
never as reads, so a zero-rate plan is byte-identical to no plan at all.

Configuration
-------------
``FaultPlan.from_env()`` reads the ``REPRO_FAULT_*`` knobs:

========================  =====================================================
``REPRO_FAULT_SEED``      integer RNG seed (default 0)
``REPRO_FAULT_READ_ERROR``  per-read probability of a transient read error
``REPRO_FAULT_TORN_WRITE``  per-write probability of a torn (partial) write
``REPRO_FAULT_BIT_ROT``     per-read probability of a flipped bit in flight
========================  =====================================================

Rates default to 0; a plan with all rates zero is disabled.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from dataclasses import dataclass

from repro.core.exceptions import QueryError, TransientReadError
from repro.storage.disk import DiskManager
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.stats import IOStatistics

#: Environment knobs (see module docstring).
FAULT_SEED_ENV = "REPRO_FAULT_SEED"
FAULT_READ_ERROR_ENV = "REPRO_FAULT_READ_ERROR"
FAULT_TORN_WRITE_ENV = "REPRO_FAULT_TORN_WRITE"
FAULT_BIT_ROT_ENV = "REPRO_FAULT_BIT_ROT"


def _rate_from_env(name: str) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return 0.0
    try:
        rate = float(raw)
    except ValueError:
        raise QueryError(f"{name} must be a float in [0, 1], got {raw!r}") from None
    if not 0.0 <= rate <= 1.0:
        raise QueryError(f"{name} must lie in [0, 1], got {rate}")
    return rate


@dataclass(frozen=True)
class FaultPlan:
    """Per-operation fault probabilities plus the seed that draws them."""

    seed: int = 0
    read_error_rate: float = 0.0
    torn_write_rate: float = 0.0
    bit_rot_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("read_error_rate", "torn_write_rate", "bit_rot_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise QueryError(f"{name} must lie in [0, 1], got {rate}")

    @property
    def enabled(self) -> bool:
        """Whether any fault can ever fire under this plan."""
        return (
            self.read_error_rate > 0.0
            or self.torn_write_rate > 0.0
            or self.bit_rot_rate > 0.0
        )

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """Build a plan from the ``REPRO_FAULT_*`` environment knobs."""
        raw_seed = os.environ.get(FAULT_SEED_ENV, "").strip()
        try:
            seed = int(raw_seed) if raw_seed else 0
        except ValueError:
            raise QueryError(
                f"{FAULT_SEED_ENV} must be an integer, got {raw_seed!r}"
            ) from None
        return cls(
            seed=seed,
            read_error_rate=_rate_from_env(FAULT_READ_ERROR_ENV),
            torn_write_rate=_rate_from_env(FAULT_TORN_WRITE_ENV),
            bit_rot_rate=_rate_from_env(FAULT_BIT_ROT_ENV),
        )


#: Process-wide plan override (set by the parallel runner so worker
#: processes inherit the coordinator's resolved plan by value rather
#: than re-reading the environment).  ``None`` defers to the env knobs.
_ACTIVE_PLAN: FaultPlan | None = None


def set_active_plan(plan: FaultPlan | None) -> None:
    """Install (or with ``None`` clear) the process-wide plan override."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def active_plan() -> FaultPlan:
    """The plan new disks pick up: the override, else the env knobs."""
    if _ACTIVE_PLAN is not None:
        return _ACTIVE_PLAN
    return FaultPlan.from_env()


@contextmanager
def fault_plan(plan: FaultPlan | None):
    """Scoped :func:`set_active_plan` (tests and the parallel runner)."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield
    finally:
        _ACTIVE_PLAN = previous


class FaultInjector:
    """Draws per-operation faults for one disk from a :class:`FaultPlan`.

    Each disk owns its own injector seeded solely by the plan, so the
    fault sequence depends only on the disk's own operation order —
    deterministic across process layouts and ``--jobs`` counts.
    """

    __slots__ = ("plan", "_rng", "read_errors", "torn_writes", "bits_rotted")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.read_errors = 0
        self.torn_writes = 0
        self.bits_rotted = 0

    def before_read(self, page_id: int, stats: IOStatistics) -> None:
        """Maybe fail the read attempt (raises :class:`TransientReadError`)."""
        if self._rng.random() < self.plan.read_error_rate:
            self.read_errors += 1
            stats.record_fault()
            raise TransientReadError(
                f"injected read error on page {page_id} "
                f"(fault #{self.read_errors})"
            )

    def maybe_rot(self, data: bytes, stats: IOStatistics) -> bytes:
        """Maybe flip one bit of the *returned* copy (store stays intact)."""
        if self._rng.random() < self.plan.bit_rot_rate and data:
            self.bits_rotted += 1
            stats.record_fault()
            rotted = bytearray(data)
            position = self._rng.randrange(len(rotted))
            rotted[position] ^= 1 << self._rng.randrange(8)
            return bytes(rotted)
        return data

    def maybe_tear(self, data: bytes, old: bytes, stats: IOStatistics) -> bytes:
        """Maybe tear the write: a prefix of ``data`` over the rest of ``old``.

        The caller records the checksum of the intended ``data`` either
        way, so a torn page fails verification on every later read.
        """
        if self._rng.random() < self.plan.torn_write_rate and len(data) > 1:
            self.torn_writes += 1
            stats.record_fault()
            cut = self._rng.randrange(1, len(data))
            return data[:cut] + old[cut:]
        return data


class FaultyDisk(DiskManager):
    """A :class:`DiskManager` with an explicit, seeded fault plan.

    Sugar for tests and harnesses that want injection regardless of the
    environment: ``FaultyDisk(FaultPlan(seed=7, bit_rot_rate=0.01))``.
    """

    def __init__(
        self, plan: FaultPlan, page_size: int = DEFAULT_PAGE_SIZE
    ) -> None:
        super().__init__(page_size=page_size, fault_plan=plan)
