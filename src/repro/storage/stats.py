"""I/O accounting for the simulated storage substrate.

The paper's evaluation metric is the *number of disk I/O operations per
query* (Section 4).  :class:`IOStatistics` is a plain counter bundle that the
:class:`~repro.storage.disk.DiskManager` increments on every physical page
access; :class:`IOSnapshot` captures a point-in-time copy so a harness can
compute per-query deltas with :meth:`IOStatistics.delta_since`.

Beyond the paper's reads/writes, the bundle carries fault-tolerance
telemetry: ``checksum_failures`` (reads that failed CRC verification) and
``faults_injected`` (operations perturbed by
:mod:`repro.storage.faults`).  Failed read *attempts* are deliberately not
counted as reads — the paper's metric counts successful page transfers —
so the simulated I/O numbers are identical with fault injection disabled
or set to zero rates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable point-in-time copy of the I/O counters."""

    reads: int
    writes: int
    allocations: int
    checksum_failures: int = 0
    faults_injected: int = 0

    @property
    def total(self) -> int:
        """Total physical I/O operations (reads plus writes)."""
        return self.reads + self.writes


class IOStatistics:
    """Mutable read/write/allocation counters for one simulated disk."""

    __slots__ = (
        "reads",
        "writes",
        "allocations",
        "checksum_failures",
        "faults_injected",
    )

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.checksum_failures = 0
        self.faults_injected = 0

    def record_read(self, count: int = 1) -> None:
        """Count ``count`` physical page reads."""
        self.reads += count

    def record_write(self, count: int = 1) -> None:
        """Count ``count`` physical page writes."""
        self.writes += count

    def record_allocation(self, count: int = 1) -> None:
        """Count ``count`` page allocations."""
        self.allocations += count

    def record_checksum_failure(self, count: int = 1) -> None:
        """Count ``count`` reads whose CRC verification failed."""
        self.checksum_failures += count

    def record_fault(self, count: int = 1) -> None:
        """Count ``count`` injected faults (read errors, torn writes, rot)."""
        self.faults_injected += count

    def reset(self) -> None:
        """Zero every counter."""
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.checksum_failures = 0
        self.faults_injected = 0

    def snapshot(self) -> IOSnapshot:
        """Return an immutable copy of the current counters."""
        return IOSnapshot(
            self.reads,
            self.writes,
            self.allocations,
            self.checksum_failures,
            self.faults_injected,
        )

    def delta_since(self, snapshot: IOSnapshot) -> IOSnapshot:
        """Return counters accumulated since ``snapshot`` was taken."""
        return IOSnapshot(
            reads=self.reads - snapshot.reads,
            writes=self.writes - snapshot.writes,
            allocations=self.allocations - snapshot.allocations,
            checksum_failures=self.checksum_failures - snapshot.checksum_failures,
            faults_injected=self.faults_injected - snapshot.faults_injected,
        )

    @property
    def total(self) -> int:
        """Total physical I/O operations (reads plus writes)."""
        return self.reads + self.writes

    def __repr__(self) -> str:
        return (
            f"IOStatistics(reads={self.reads}, writes={self.writes}, "
            f"allocations={self.allocations})"
        )
