"""Byte-level codecs for UDA records and index entries.

Layouts (all little-endian):

* **UDA payload** — ``u16 count`` followed by ``count`` pairs of
  ``(u32 item, f32 prob)``.  This is the paper's "pairs" representation
  (Section 2): only items with non-zero probability are stored, and each
  list of pairs "also stores the number of pairs in the list" (Section 3.2).
* **Heap record** — ``u32 tid`` followed by a UDA payload.
* **Posting entry** — fixed 12 bytes: a big-endian order-preserving key
  (see :func:`encode_posting_key`) plus a ``f32`` probability.

The big-endian key trick: the B+-tree compares keys as raw bytes, so we
encode ``(descending probability, ascending tid)`` into 8 bytes whose
lexicographic byte order equals the logical order.  Probabilities are
quantized to 32-bit fixed point for the key; the exact ``f32`` probability
travels in the entry value.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.exceptions import SerializationError

_HEADER = struct.Struct("<H")
_PAIR = struct.Struct("<If")
_TID = struct.Struct("<I")

#: dtype of a decoded pairs array: item id + probability.
PAIRS_DTYPE = np.dtype([("item", "<u4"), ("prob", "<f4")])

#: Fixed-point scale for posting keys (2**32 - 1).
_PROB_SCALE = 0xFFFFFFFF

#: Size in bytes of an encoded posting key and a full posting entry.
POSTING_KEY_SIZE = 8
POSTING_ENTRY_SIZE = 12


# ---------------------------------------------------------------------------
# UDA payloads
# ---------------------------------------------------------------------------

def uda_payload_size(num_pairs: int) -> int:
    """Size in bytes of a serialized UDA with ``num_pairs`` pairs."""
    return _HEADER.size + num_pairs * _PAIR.size


def encode_uda_payload(items: np.ndarray, probs: np.ndarray) -> bytes:
    """Serialize parallel item/prob arrays into a UDA payload."""
    count = len(items)
    if count != len(probs):
        raise SerializationError(
            f"items ({count}) and probs ({len(probs)}) differ in length"
        )
    if count > 0xFFFF:
        raise SerializationError(f"UDA has {count} pairs; maximum is 65535")
    pairs = np.empty(count, dtype=PAIRS_DTYPE)
    pairs["item"] = items
    pairs["prob"] = probs
    return _HEADER.pack(count) + pairs.tobytes()


def decode_uda_payload(buffer: bytes | bytearray | memoryview, offset: int = 0) -> tuple[np.ndarray, int]:
    """Decode a UDA payload at ``offset``.

    Returns
    -------
    (pairs, end_offset):
        ``pairs`` is a structured array with fields ``item`` and ``prob``;
        ``end_offset`` is the offset one past the payload.
    """
    (count,) = _HEADER.unpack_from(buffer, offset)
    start = offset + _HEADER.size
    end = start + count * _PAIR.size
    if end > len(buffer):
        raise SerializationError(
            f"UDA payload at offset {offset} claims {count} pairs but "
            f"overruns the {len(buffer)}-byte buffer"
        )
    pairs = np.frombuffer(buffer, dtype=PAIRS_DTYPE, count=count, offset=start)
    return pairs, end


# ---------------------------------------------------------------------------
# Heap records (tid + UDA)
# ---------------------------------------------------------------------------

def heap_record_size(num_pairs: int) -> int:
    """Size in bytes of a heap record holding ``num_pairs`` pairs."""
    return _TID.size + uda_payload_size(num_pairs)


def encode_heap_record(tid: int, items: np.ndarray, probs: np.ndarray) -> bytes:
    """Serialize ``(tid, UDA)`` into a heap record."""
    return _TID.pack(tid) + encode_uda_payload(items, probs)


def decode_heap_record(buffer: bytes | bytearray | memoryview, offset: int = 0) -> tuple[int, np.ndarray, int]:
    """Decode a heap record; returns ``(tid, pairs, end_offset)``."""
    (tid,) = _TID.unpack_from(buffer, offset)
    pairs, end = decode_uda_payload(buffer, offset + _TID.size)
    return tid, pairs, end


# ---------------------------------------------------------------------------
# Posting keys and entries
# ---------------------------------------------------------------------------

def quantize_prob(prob: float) -> int:
    """Map a probability in [0, 1] to 32-bit fixed point (round-to-nearest)."""
    if not 0.0 <= prob <= 1.0:
        raise SerializationError(f"probability {prob} outside [0, 1]")
    return int(round(prob * _PROB_SCALE))


def encode_posting_key(prob: float, tid: int) -> bytes:
    """Encode ``(descending prob, ascending tid)`` as an 8-byte sortable key.

    The fixed-point probability is bit-flipped so that byte-lexicographic
    order puts *larger* probabilities first, matching the paper's
    descending-probability posting lists.
    """
    return struct.pack(">II", _PROB_SCALE - quantize_prob(prob), tid)


def decode_posting_key(key: bytes) -> tuple[float, int]:
    """Invert :func:`encode_posting_key` (probability is quantized)."""
    flipped, tid = struct.unpack(">II", key)
    return (_PROB_SCALE - flipped) / _PROB_SCALE, tid


def encode_posting_value(prob: float) -> bytes:
    """Encode the exact probability carried alongside the key."""
    return struct.pack("<f", prob)


def decode_posting_value(value: bytes) -> float:
    """Decode the exact probability from a posting value."""
    return struct.unpack("<f", value)[0]


def decode_posting_leaf(records: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized decode of a run of posting entries.

    Parameters
    ----------
    records:
        Concatenated 12-byte posting entries (key + value), as stored in a
        B+-tree leaf.

    Returns
    -------
    (tids, probs):
        Parallel arrays in stored (descending-probability) order.
    """
    if len(records) % POSTING_ENTRY_SIZE:
        raise SerializationError(
            f"posting run of {len(records)} bytes is not a multiple of "
            f"{POSTING_ENTRY_SIZE}"
        )
    raw = np.frombuffer(
        records,
        dtype=np.dtype([("flipped", ">u4"), ("tid", ">u4"), ("prob", "<f4")]),
    )
    return raw["tid"].astype(np.int64), raw["prob"].astype(np.float64)
