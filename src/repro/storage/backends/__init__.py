"""Pluggable storage backends behind the simulated disk.

Which byte store a :class:`~repro.storage.disk.DiskManager` delegates to
is config-dispatched, mirroring the ``ordered_storage`` /
``unordered_storage`` pattern of datasketch's production inverted-index
deployment (SNIPPETS.md §1): a registry of named backends, an
environment knob selecting among them, and a process-wide override for
harnesses that must ship the resolved choice to workers by value.

Backends
--------
``simulated``
    The in-memory dict the paper's figures are measured on (default).
``mmap``
    Pages in a real file via ``mmap`` — wall-clock numbers mean
    something; survives close/reopen through a meta sidecar.
``shm``
    Pages in ``multiprocessing.shared_memory`` segments — one attached
    index image shared by the serving layer and process-pool shards.

Configuration
-------------
``REPRO_BACKEND``
    Backend name (default ``simulated``).  Unknown names raise a
    :class:`~repro.core.exceptions.ConfigError` naming the variable.
``REPRO_BACKEND_PATH``
    Directory for ``mmap`` page files (each disk gets a unique file
    inside it; default: a per-process temporary directory).  Setting it
    with any other backend is a configuration error — the knob would be
    silently dead, which PR 6's config discipline forbids.

Simulated I/O counts are backend-independent by construction — the disk
layer counts logical page transfers above the backend — but goldens
still bind to ``simulated`` only; see ``docs/storage-backends.md``.
"""

from __future__ import annotations

import itertools
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import ConfigError, parse_choice_knob, read_env_choice
from repro.storage.backends.base import StorageBackend
from repro.storage.backends.mmapfile import MmapFileBackend
from repro.storage.backends.shared import SharedMemoryBackend
from repro.storage.backends.simulated import SimulatedBackend
from repro.storage.page import DEFAULT_PAGE_SIZE

__all__ = [
    "BACKEND_ENV",
    "BACKEND_PATH_ENV",
    "BACKEND_NAMES",
    "BackendSpec",
    "MmapFileBackend",
    "SharedMemoryBackend",
    "SimulatedBackend",
    "StorageBackend",
    "active_backend_spec",
    "backend_scope",
    "create_backend",
    "set_active_backend",
    "spec_from_env",
]

#: Environment knobs (see module docstring).
BACKEND_ENV = "REPRO_BACKEND"
BACKEND_PATH_ENV = "REPRO_BACKEND_PATH"

#: Registered backend names, in registry order.
BACKEND_NAMES = ("simulated", "mmap", "shm")


@dataclass(frozen=True)
class BackendSpec:
    """A resolved backend choice, picklable for worker processes."""

    name: str = "simulated"
    #: Directory for mmap page files (``None``: per-process temp dir).
    directory: str | None = None

    def __post_init__(self) -> None:
        parse_choice_knob(self.name, "backend name", choices=BACKEND_NAMES)


def spec_from_env(environ=None) -> BackendSpec:
    """Resolve the ``REPRO_BACKEND`` / ``REPRO_BACKEND_PATH`` knobs.

    Malformed values raise :class:`ConfigError` naming the offending
    variable; both knobs unset resolves to the simulated default.
    """
    name = read_env_choice(
        BACKEND_ENV, choices=BACKEND_NAMES, special={"default": None}, environ=environ
    )
    source = os.environ if environ is None else environ
    raw_path = source.get(BACKEND_PATH_ENV, "").strip()
    if not raw_path:
        return BackendSpec(name or "simulated")
    if (name or "simulated") != "mmap":
        raise ConfigError(
            f"{BACKEND_PATH_ENV} is only meaningful with {BACKEND_ENV}=mmap "
            f"(got backend {name or 'simulated'!r})"
        )
    path = Path(raw_path)
    if path.exists() and not path.is_dir():
        raise ConfigError(
            f"{BACKEND_PATH_ENV} must name a directory, "
            f"got existing non-directory {raw_path!r}"
        )
    return BackendSpec("mmap", directory=raw_path)


#: Process-wide spec override (set by the parallel runner so worker
#: processes inherit the coordinator's resolved choice by value rather
#: than re-reading the environment).  ``None`` defers to the env knobs.
_ACTIVE_SPEC: BackendSpec | None = None


def set_active_backend(spec: BackendSpec | str | None) -> None:
    """Install (or with ``None`` clear) the process-wide spec override."""
    global _ACTIVE_SPEC
    _ACTIVE_SPEC = BackendSpec(spec) if isinstance(spec, str) else spec


@contextmanager
def backend_scope(spec: BackendSpec | str | None):
    """Scoped :func:`set_active_backend` (tests and the parallel runner)."""
    global _ACTIVE_SPEC
    previous = _ACTIVE_SPEC
    set_active_backend(spec)
    try:
        yield
    finally:
        _ACTIVE_SPEC = previous


def active_backend_spec() -> BackendSpec:
    """The spec new disks pick up: the override, else the env knobs."""
    if _ACTIVE_SPEC is not None:
        return _ACTIVE_SPEC
    return spec_from_env()


#: Lazily created scratch directory for mmap page files when no
#: directory is configured; lives for the process (temp cleanup is the
#: OS's job, exactly like any other TMPDIR user).
_SCRATCH_DIR: str | None = None

#: Monotonic counter making each mmap page file name unique per process.
_FILE_COUNTER = itertools.count()


def _mmap_directory(spec: BackendSpec) -> Path:
    global _SCRATCH_DIR
    if spec.directory is not None:
        directory = Path(spec.directory)
        directory.mkdir(parents=True, exist_ok=True)
        return directory
    if _SCRATCH_DIR is None:
        _SCRATCH_DIR = tempfile.mkdtemp(prefix="repro-mmap-")
    return Path(_SCRATCH_DIR)


def create_backend(
    spec: StorageBackend | BackendSpec | str | None = None,
    *,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> StorageBackend:
    """Instantiate (or pass through) the backend a new disk should use.

    ``None`` consults :func:`active_backend_spec`; a string is a registry
    name (unknown names raise :class:`ConfigError`); an existing
    :class:`StorageBackend` is returned as-is after a page-size check,
    so callers can hand a disk a reopened :class:`MmapFileBackend` or an
    attached :class:`SharedMemoryBackend` directly.
    """
    if isinstance(spec, StorageBackend):
        if spec.page_size != page_size:
            raise ConfigError(
                f"backend page size {spec.page_size} != disk page size "
                f"{page_size}"
            )
        return spec
    if spec is None:
        spec = active_backend_spec()
    elif isinstance(spec, str):
        spec = BackendSpec(spec)
    if spec.name == "simulated":
        return SimulatedBackend(page_size)
    if spec.name == "mmap":
        directory = _mmap_directory(spec)
        filename = f"disk-{os.getpid()}-{next(_FILE_COUNTER)}.pages"
        return MmapFileBackend(directory / filename, page_size)
    return SharedMemoryBackend(page_size)
