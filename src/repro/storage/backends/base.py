"""The storage-backend contract the simulated disk delegates to.

:class:`~repro.storage.disk.DiskManager` is the *accounting and
integrity* layer — I/O counters, per-tag attribution, out-of-band CRC32
checksums, fault injection.  A :class:`StorageBackend` is the *byte
store* underneath it: a mapping from page id to exactly
``page_size`` raw bytes, with no counting, no checksumming, and no
notion of queries.  Keeping the split this way means every guarantee
built at the disk layer (CRC verification before a read is counted,
torn-write detection, the kill-point recovery contract) composes with
any backend unchanged — which the per-backend recovery harness asserts.

Contract
--------
* Page ids are assigned by the disk layer; a backend never invents them.
* ``allocate``/``read``/``write``/``deallocate`` raise :class:`KeyError`
  for ids the backend does not hold (double allocation included); the
  disk layer translates that uniformly into
  :class:`~repro.core.exceptions.PageError`.
* ``read`` returns an independent ``bytes`` copy — callers may hold it
  across later writes.
* Backends store bytes verbatim.  In particular they must preserve a
  *torn* page exactly as written: detection is the checksum layer's job.

Durable backends additionally implement ``save_meta``/``load_meta`` so
the disk layer's out-of-band accounting (checksums, tags, the next page
id) survives a close/reopen cycle alongside the page bytes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.storage.page import DEFAULT_PAGE_SIZE


class StorageBackend(ABC):
    """Abstract page-byte store underneath :class:`DiskManager`.

    Subclasses set :attr:`name` (the registry/config identifier) and
    :attr:`persistent` (whether page bytes outlive :meth:`close`).
    """

    #: Registry name, also recorded in benchmark summaries and traces.
    name: str = "abstract"
    #: Whether page bytes (and saved meta) survive close/reopen.
    persistent: bool = False

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.page_size = page_size

    # -- page bytes ---------------------------------------------------------

    @abstractmethod
    def allocate(self, page_id: int, data: bytes) -> None:
        """Store a page under a fresh id (KeyError if already held)."""

    @abstractmethod
    def read(self, page_id: int) -> bytes:
        """The page's bytes, as an independent copy (KeyError if unknown)."""

    @abstractmethod
    def write(self, page_id: int, data: bytes) -> None:
        """Replace an existing page's bytes (KeyError if unknown)."""

    @abstractmethod
    def deallocate(self, page_id: int) -> None:
        """Release a page (KeyError if unknown)."""

    # -- introspection ------------------------------------------------------

    @abstractmethod
    def page_ids(self) -> list[int]:
        """Ids of every held page, ascending."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of held pages."""

    def __contains__(self, page_id: int) -> bool:
        try:
            self.read(page_id)
        except KeyError:
            return False
        return True

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release OS resources.  Idempotent; ephemeral stores may no-op."""

    # -- out-of-band meta (durable backends) --------------------------------

    def save_meta(self, meta: dict) -> None:
        """Persist the disk layer's accounting sidecar (durable backends).

        Ephemeral backends ignore it — their pages die with the process,
        so there is nothing for the meta to describe after that.
        """

    def load_meta(self) -> dict | None:
        """The sidecar saved by a previous :meth:`save_meta`, or ``None``.

        ``None`` means "fresh store": the disk layer starts with empty
        accounting, which is always correct for ephemeral backends.
        """
        return None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(pages={len(self)}, "
            f"page_size={self.page_size})"
        )
