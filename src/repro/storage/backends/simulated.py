"""The in-memory backend the paper's I/O figures are measured on.

This is the original simulated disk's page store — one dict from page id
to page bytes — extracted behind the :class:`StorageBackend` interface.
Every committed ``BENCH_*`` golden binds to this backend: the disk
layer's counting is backend-independent, but only the simulated store is
guaranteed free of OS-level side effects, so it remains the measurement
default (see ``docs/storage-backends.md``).
"""

from __future__ import annotations

from repro.storage.backends.base import StorageBackend
from repro.storage.page import DEFAULT_PAGE_SIZE


class SimulatedBackend(StorageBackend):
    """Page bytes in a plain process-local dict."""

    name = "simulated"
    persistent = False

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        super().__init__(page_size)
        self._pages: dict[int, bytes] = {}

    def allocate(self, page_id: int, data: bytes) -> None:
        if page_id in self._pages:
            raise KeyError(page_id)
        self._pages[page_id] = bytes(data)

    def read(self, page_id: int) -> bytes:
        return self._pages[page_id]

    def write(self, page_id: int, data: bytes) -> None:
        if page_id not in self._pages:
            raise KeyError(page_id)
        self._pages[page_id] = bytes(data)

    def deallocate(self, page_id: int) -> None:
        del self._pages[page_id]

    def page_ids(self) -> list[int]:
        return sorted(self._pages)

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages
