"""Real-file page store via ``mmap``: wall-clock numbers that mean something.

The simulated backend keeps the paper's I/O counts honest but makes
every wall-clock figure a fiction — all "disk" traffic is dict lookups.
:class:`MmapFileBackend` persists pages in an ordinary file mapped into
memory, so reads and writes go through real OS pages, page-cache
behavior, and real flushes.  Simulated I/O *counts* are identical by
construction (the disk layer counts logical page transfers, not
syscalls); only time differs, which is exactly the split
``docs/io-model.md`` documents.

Layout
------
The page file is raw slots: slot ``i`` occupies bytes
``[i * page_size, (i + 1) * page_size)``.  The page-id -> slot directory
— plus the disk layer's accounting sidecar (checksums, tags, next page
id) — lives in a JSON file at ``<path>.meta.json``, written by
:meth:`save_meta` (the disk layer's ``close``).  Reopening a path whose
sidecar exists re-attaches the directory and returns the saved
accounting, so CRC verification works across process restarts; a page
file *without* a sidecar (a crash before close) is treated as a fresh
store — crash durability is the ``REPRODB`` image format's job
(:mod:`repro.storage.persistence`), not this backend's.
"""

from __future__ import annotations

import json
import mmap
import os
from pathlib import Path

from repro.core.exceptions import StorageError
from repro.storage.backends.base import StorageBackend
from repro.storage.page import DEFAULT_PAGE_SIZE

#: Slots added per file growth (one truncate + remap per batch).
GROW_SLOTS = 64

#: Sidecar format discriminator.
META_FORMAT = "repro-mmap-meta-1"


class MmapFileBackend(StorageBackend):
    """Pages persisted in a real file, accessed through one ``mmap``.

    Parameters
    ----------
    path:
        The page file.  If ``<path>.meta.json`` exists the store is
        reopened (directory and saved accounting restored); otherwise a
        fresh store truncates whatever is at ``path``.
    page_size:
        Must match the sidecar's recorded size on reopen.
    """

    name = "mmap"
    persistent = True

    def __init__(self, path: str | Path, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        super().__init__(page_size)
        self.path = Path(path)
        self._slots: dict[int, int] = {}
        self._free: list[int] = []
        self._num_slots = 0
        self._meta: dict | None = None
        self._closed = False
        sidecar = self._sidecar_path()
        reopen = sidecar.exists() and self.path.exists()
        if reopen:
            payload = json.loads(sidecar.read_text())
            if payload.get("format") != META_FORMAT:
                raise StorageError(
                    f"{sidecar}: not a {META_FORMAT} sidecar "
                    f"(format {payload.get('format')!r})"
                )
            if int(payload["page_size"]) != page_size:
                raise StorageError(
                    f"{self.path}: stored page size {payload['page_size']} "
                    f"!= requested {page_size}"
                )
            self._slots = {int(k): int(v) for k, v in payload["slots"].items()}
            self._free = [int(s) for s in payload["free"]]
            self._meta = payload.get("disk")
            self._file = open(self.path, "r+b")
            self._num_slots = os.fstat(self._file.fileno()).st_size // page_size
            used = max(self._slots.values(), default=-1) + 1
            if self._num_slots < used:
                raise StorageError(
                    f"{self.path}: file holds {self._num_slots} slots but "
                    f"the directory references slot {used - 1}"
                )
        else:
            self._file = open(self.path, "w+b")
        self._mm: mmap.mmap | None = None
        if self._num_slots:
            self._mm = mmap.mmap(self._file.fileno(), 0)

    def _sidecar_path(self) -> Path:
        return self.path.with_name(self.path.name + ".meta.json")

    # -- slot management ----------------------------------------------------

    def _take_slot(self) -> int:
        if self._free:
            return self._free.pop()
        slot = len(self._slots)
        if slot >= self._num_slots:
            self._grow(slot + 1)
        return slot

    def _grow(self, needed_slots: int) -> None:
        new_slots = max(needed_slots, self._num_slots + GROW_SLOTS)
        if self._mm is not None:
            self._mm.close()
        self._file.truncate(new_slots * self.page_size)
        self._num_slots = new_slots
        self._mm = mmap.mmap(self._file.fileno(), 0)

    def _offset(self, page_id: int) -> int:
        return self._slots[page_id] * self.page_size

    # -- page bytes ---------------------------------------------------------

    def allocate(self, page_id: int, data: bytes) -> None:
        if page_id in self._slots:
            raise KeyError(page_id)
        slot = self._take_slot()
        self._slots[page_id] = slot
        offset = slot * self.page_size
        self._mm[offset : offset + self.page_size] = data

    def read(self, page_id: int) -> bytes:
        offset = self._offset(page_id)
        return bytes(self._mm[offset : offset + self.page_size])

    def write(self, page_id: int, data: bytes) -> None:
        offset = self._offset(page_id)
        self._mm[offset : offset + self.page_size] = data

    def deallocate(self, page_id: int) -> None:
        self._free.append(self._slots.pop(page_id))

    # -- introspection ------------------------------------------------------

    def page_ids(self) -> list[int]:
        return sorted(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._slots

    # -- lifecycle / meta ---------------------------------------------------

    def save_meta(self, meta: dict) -> None:
        payload = {
            "format": META_FORMAT,
            "page_size": self.page_size,
            "slots": {str(pid): slot for pid, slot in sorted(self._slots.items())},
            "free": sorted(self._free),
            "disk": meta,
        }
        if self._mm is not None:
            self._mm.flush()
        self._sidecar_path().write_text(json.dumps(payload, sort_keys=True) + "\n")

    def load_meta(self) -> dict | None:
        return self._meta

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._mm is not None:
            self._mm.flush()
            self._mm.close()
            self._mm = None
        self._file.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
