"""Shared-memory page store for multi-process serving.

The serving layer and the process-pool shards today each hold their own
copy of an index's pages.  :class:`SharedMemoryBackend` keeps the pages
in ``multiprocessing.shared_memory`` segments instead, so one attached
index image can back every worker: the owner process builds (or loads)
the index, ships :meth:`attach_state` to its workers by value, and each
worker attaches the *same* physical pages read-only through
:meth:`attach` — no per-worker copy, no serialization of page bytes.

Pages live in fixed-size segments of :data:`PAGES_PER_SEGMENT` slots; a
page-id -> (segment, slot) directory stays in ordinary memory and
travels inside the attach state (page *bytes* are shared; the small
directory is cheap to copy).  The owner unlinks the segments on
:meth:`close`; attached handles only detach.

Checksums, tags, and fault injection all stay in the disk layer, so the
CRC/recovery machinery composes with shared pages unchanged — a reader
in any process still verifies every page against the checksum table it
attached with.
"""

from __future__ import annotations

import secrets
from multiprocessing import shared_memory

from repro.storage.backends.base import StorageBackend
from repro.storage.page import DEFAULT_PAGE_SIZE

#: Page slots per shared-memory segment (one segment = one shm_open).
PAGES_PER_SEGMENT = 128


class SharedMemoryBackend(StorageBackend):
    """Pages in ``multiprocessing.shared_memory`` segments.

    Parameters
    ----------
    page_size:
        Bytes per page.
    pages_per_segment:
        Slots per segment; growth allocates whole segments.
    """

    name = "shm"
    persistent = False

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        pages_per_segment: int = PAGES_PER_SEGMENT,
    ) -> None:
        super().__init__(page_size)
        self.pages_per_segment = pages_per_segment
        self._segments: list[shared_memory.SharedMemory] = []
        self._slots: dict[int, tuple[int, int]] = {}
        self._free: list[tuple[int, int]] = []
        self._owner = True
        self._closed = False

    @classmethod
    def attach(cls, state: dict) -> "SharedMemoryBackend":
        """Attach to another process's segments (see :meth:`attach_state`).

        The attached handle shares page *bytes* with the owner but owns
        its directory copy; it never unlinks the segments on close.
        """
        backend = cls(
            page_size=int(state["page_size"]),
            pages_per_segment=int(state["pages_per_segment"]),
        )
        backend._owner = False
        backend._segments = [
            shared_memory.SharedMemory(name=name) for name in state["segments"]
        ]
        backend._slots = {
            int(pid): (int(seg), int(slot))
            for pid, (seg, slot) in state["slots"].items()
        }
        backend._free = [(int(seg), int(slot)) for seg, slot in state["free"]]
        return backend

    def attach_state(self) -> dict:
        """A picklable description another process can :meth:`attach` to."""
        return {
            "page_size": self.page_size,
            "pages_per_segment": self.pages_per_segment,
            "segments": [segment.name for segment in self._segments],
            "slots": {pid: list(loc) for pid, loc in self._slots.items()},
            "free": [list(loc) for loc in self._free],
        }

    # -- slot management ----------------------------------------------------

    def _take_slot(self) -> tuple[int, int]:
        if self._free:
            return self._free.pop()
        used = len(self._slots)
        segment_index, slot = divmod(used, self.pages_per_segment)
        if segment_index >= len(self._segments):
            self._segments.append(
                shared_memory.SharedMemory(
                    name=f"repro-pages-{secrets.token_hex(8)}",
                    create=True,
                    size=self.pages_per_segment * self.page_size,
                )
            )
        return segment_index, slot

    def _locate(self, page_id: int) -> tuple[shared_memory.SharedMemory, int]:
        segment_index, slot = self._slots[page_id]
        return self._segments[segment_index], slot * self.page_size

    # -- page bytes ---------------------------------------------------------

    def allocate(self, page_id: int, data: bytes) -> None:
        if page_id in self._slots:
            raise KeyError(page_id)
        location = self._take_slot()
        self._slots[page_id] = location
        segment, offset = self._locate(page_id)
        segment.buf[offset : offset + self.page_size] = data

    def read(self, page_id: int) -> bytes:
        segment, offset = self._locate(page_id)
        return bytes(segment.buf[offset : offset + self.page_size])

    def write(self, page_id: int, data: bytes) -> None:
        segment, offset = self._locate(page_id)
        segment.buf[offset : offset + self.page_size] = data

    def deallocate(self, page_id: int) -> None:
        self._free.append(self._slots.pop(page_id))

    # -- introspection ------------------------------------------------------

    def page_ids(self) -> list[int]:
        return sorted(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._slots

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            segment.close()
            if self._owner:
                try:
                    segment.unlink()
                except FileNotFoundError:  # owner already unlinked elsewhere
                    pass

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
