"""Slotted-page heap file.

This is the paper's *tuple-list*: the store that maps a tuple id to its
full UDA so that search strategies can make a "random access ... to check
whether the tuple qualifies" (Section 3.1).  Each random access costs at
most one physical read (zero on a buffer hit), which is exactly how the
paper accounts for it.

Page layout (little-endian)::

    offset 0   u16  num_slots
    offset 2   u16  free_ptr            (offset of next record write)
    offset 4   record area, growing upward
    ...        slot directory, growing downward from the page end:
               slot i occupies the 4 bytes at  page_size - 4*(i+1)
               as  (u16 record_offset, u16 record_length)

Records never move and are never deleted individually (the experiment
datasets are append-only); a record id (rid) is the pair
``(page_id, slot)``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.exceptions import PageError, RecordTooLargeError
from repro.storage.buffer import BufferPool
from repro.storage.page import Page

_HEADER_SIZE = 4
_SLOT_SIZE = 4

#: A record id: (page_id, slot index within the page).
Rid = tuple[int, int]


class HeapFile:
    """An append-only record store over a buffer pool.

    Parameters
    ----------
    pool:
        Buffer pool through which all page access flows.  Swap the
        ``pool`` attribute to run queries against a fresh, bounded pool
        (the harness does this per query).
    """

    def __init__(self, pool: BufferPool, tag: str = "heap") -> None:
        self.pool = pool
        self.tag = tag
        self._page_ids: list[int] = []
        self._current_page_id: int | None = None

    @classmethod
    def attach(cls, pool: BufferPool, state: dict, tag: str = "heap") -> "HeapFile":
        """Re-attach to a persisted heap file (see :meth:`state`)."""
        heap = cls(pool, tag=tag)
        heap._page_ids = [int(pid) for pid in state["page_ids"]]
        current = state["current_page_id"]
        heap._current_page_id = None if current is None else int(current)
        return heap

    def state(self) -> dict:
        """JSON-serializable attachment state."""
        return {
            "page_ids": self._page_ids,
            "current_page_id": self._current_page_id,
        }

    # -- writes -----------------------------------------------------------

    def append(self, record: bytes) -> Rid:
        """Append ``record`` and return its rid."""
        page_size = self.pool.disk.page_size
        max_record = page_size - _HEADER_SIZE - _SLOT_SIZE
        if len(record) > max_record:
            raise RecordTooLargeError(
                f"record of {len(record)} bytes exceeds the per-page "
                f"maximum of {max_record}"
            )
        page = self._writable_page(len(record))
        num_slots = page.read_u16(0)
        free_ptr = page.read_u16(2)
        page.write_bytes(free_ptr, record)
        slot_offset = page.size - _SLOT_SIZE * (num_slots + 1)
        page.write_u16(slot_offset, free_ptr)
        page.write_u16(slot_offset + 2, len(record))
        page.write_u16(0, num_slots + 1)
        page.write_u16(2, free_ptr + len(record))
        self.pool.mark_dirty(page.page_id)
        return (page.page_id, num_slots)

    def _writable_page(self, record_size: int) -> Page:
        """Return the current tail page, or a new one if it cannot fit."""
        if self._current_page_id is not None:
            page = self.pool.fetch_page(self._current_page_id)
            num_slots = page.read_u16(0)
            free_ptr = page.read_u16(2)
            slot_top = page.size - _SLOT_SIZE * (num_slots + 1)
            if free_ptr + record_size <= slot_top:
                return page
        page = self.pool.new_page(tag=self.tag)
        page.write_u16(0, 0)
        page.write_u16(2, _HEADER_SIZE)
        self.pool.mark_dirty(page.page_id)
        self._page_ids.append(page.page_id)
        self._current_page_id = page.page_id
        return page

    # -- reads -------------------------------------------------------------

    def get(self, rid: Rid) -> bytes:
        """Fetch the record stored at ``rid``."""
        page_id, slot = rid
        page = self.pool.fetch_page(page_id)
        num_slots = page.read_u16(0)
        if not 0 <= slot < num_slots:
            raise PageError(
                f"rid ({page_id}, {slot}): page has only {num_slots} slots"
            )
        slot_offset = page.size - _SLOT_SIZE * (slot + 1)
        record_offset = page.read_u16(slot_offset)
        record_length = page.read_u16(slot_offset + 2)
        return page.read_bytes(record_offset, record_length)

    def get_view(self, rid: Rid) -> memoryview:
        """Zero-copy view of the record at ``rid``.

        The view aliases the live page buffer: decode it (materializing
        any derived arrays) before the next fetch that could evict or
        rewrite the page.
        """
        page_id, slot = rid
        page = self.pool.fetch_page(page_id)
        num_slots = page.read_u16(0)
        if not 0 <= slot < num_slots:
            raise PageError(
                f"rid ({page_id}, {slot}): page has only {num_slots} slots"
            )
        slot_offset = page.size - _SLOT_SIZE * (slot + 1)
        record_offset = page.read_u16(slot_offset)
        record_length = page.read_u16(slot_offset + 2)
        return page.view(record_offset, record_length)

    def scan(self) -> Iterator[tuple[Rid, bytes]]:
        """Iterate over every record in file order (a full scan)."""
        for page_id in self._page_ids:
            page = self.pool.fetch_page(page_id)
            num_slots = page.read_u16(0)
            for slot in range(num_slots):
                slot_offset = page.size - _SLOT_SIZE * (slot + 1)
                record_offset = page.read_u16(slot_offset)
                record_length = page.read_u16(slot_offset + 2)
                yield (page_id, slot), page.read_bytes(record_offset, record_length)

    # -- introspection ------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of pages the file occupies."""
        return len(self._page_ids)

    def flush(self) -> None:
        """Flush dirty pages through the owning pool."""
        self.pool.flush_all()

    def __repr__(self) -> str:
        return f"HeapFile(pages={self.num_pages})"
