"""Buffer pool with clock (second-chance) replacement.

The paper's evaluation "simulate[s] the effect of buffering" with "a buffer
manager that allocates 100 blocks to each query" managed by "a clock
replacement algorithm" (Section 4).  :class:`BufferPool` reproduces that:
a bounded set of frames over a :class:`~repro.storage.disk.DiskManager`;
a hit costs no I/O, a miss costs one physical read, and evicting a dirty
frame costs one physical write.

Each pool also owns a :class:`~repro.storage.cache.DecodedCache` of the
decoded (Python-object) form of its resident pages; see
:mod:`repro.storage.cache` for the invariants.  The decoded cache affects
wall-clock only — it is consulted *after* ``fetch_page``, so simulated
I/O counts are identical with it enabled or disabled.  Its capacity
defaults to ``DEFAULT_ENTRIES_PER_FRAME`` x the pool capacity and can be
overridden with the ``REPRO_DECODED_CACHE`` environment variable
(``0`` or ``off`` disables it; any other integer sets the entry count).

Queries in the experiment harness each run against a fresh pool (see
:mod:`repro.bench.harness`), exactly like the paper's per-query allocation.
"""

from __future__ import annotations

import time

from repro.core.config import read_env_int
from repro.core.exceptions import (
    BufferPoolError,
    ChecksumError,
    TransientReadError,
)
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS
from repro.storage.cache import DEFAULT_ENTRIES_PER_FRAME, DecodedCache
from repro.storage.disk import DiskManager
from repro.storage.page import Page

#: The paper's per-query buffer allocation, in frames.
DEFAULT_POOL_SIZE = 100

#: Environment variable overriding the decoded-cache capacity.
DECODED_CACHE_ENV = "REPRO_DECODED_CACHE"

#: Maximum read retries after a transient fault before giving up.
MAX_READ_RETRIES = 3

#: Base of the exponential backoff between retries, in seconds.  Kept tiny:
#: wall-clock is not the metric (DESIGN.md), the backoff exists to model the
#: policy, and retries only ever happen under injected faults.
RETRY_BACKOFF_BASE = 0.0005


def _decoded_capacity_from_env(pool_capacity: int) -> int:
    """Decoded-cache capacity from ``REPRO_DECODED_CACHE``.

    A malformed value raises a
    :class:`~repro.core.exceptions.ConfigError` naming the variable
    (see :mod:`repro.core.config`).
    """
    value = read_env_int(
        DECODED_CACHE_ENV,
        minimum=0,
        special={
            "on": None,
            "default": None,
            "off": 0,
            "false": 0,
            "no": 0,
            "disabled": 0,
        },
    )
    if value is None:
        return DEFAULT_ENTRIES_PER_FRAME * pool_capacity
    return value


class _Frame:
    """One buffer slot: a resident page plus replacement metadata."""

    __slots__ = ("page", "pin_count", "referenced", "dirty")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.pin_count = 0
        self.referenced = True
        self.dirty = False


class BufferPool:
    """A bounded page cache with clock replacement.

    Parameters
    ----------
    disk:
        The disk whose pages are cached.
    capacity:
        Maximum number of resident frames (the paper uses 100).
    decoded_capacity:
        Entry budget for the owned :class:`DecodedCache`; ``0`` disables
        decoded caching.  ``None`` (the default) consults the
        ``REPRO_DECODED_CACHE`` environment variable, falling back to
        ``DEFAULT_ENTRIES_PER_FRAME * capacity``.
    """

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = DEFAULT_POOL_SIZE,
        *,
        decoded_capacity: int | None = None,
    ) -> None:
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        if decoded_capacity is None:
            decoded_capacity = _decoded_capacity_from_env(capacity)
        self.decoded = DecodedCache(decoded_capacity)
        self._frames: dict[int, _Frame] = {}
        self._clock_order: list[int] = []
        self._clock_hand = 0
        self.hits = 0
        self.misses = 0
        #: Read attempts repeated after a transient fault (telemetry).
        self.retries = 0

    # -- page access ----------------------------------------------------------

    def _read_with_retry(self, page_id: int) -> Page:
        """Read ``page_id`` from disk, absorbing transient faults.

        Retries up to :data:`MAX_READ_RETRIES` times with exponential
        backoff after a :class:`TransientReadError` (injected device
        error) or :class:`ChecksumError` (in-flight bit rot — the stored
        bytes may still be intact).  Persistent corruption (a torn write)
        fails every attempt, so the final error propagates: a damaged
        page is never silently served.
        """
        attempt = 0
        while True:
            try:
                return self.disk.read_page(page_id)
            except (TransientReadError, ChecksumError):
                if attempt >= MAX_READ_RETRIES:
                    raise
                if RETRY_BACKOFF_BASE > 0:
                    time.sleep(RETRY_BACKOFF_BASE * (2**attempt))
                attempt += 1
                self.retries += 1
                METRICS.inc("pool.retry")
                tracer = _trace.ACTIVE
                if tracer is not None:
                    tracer.event("pool.retry", page_id=page_id, attempt=attempt)

    def fetch_page(self, page_id: int, *, pin: bool = False) -> Page:
        """Return the page, reading it from disk if not resident.

        When ``pin`` is true the frame's pin count is incremented and the
        caller must later :meth:`unpin_page`.  Pinned frames are never
        evicted.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            METRICS.inc("pool.hit")
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.event("pool.hit", page_id=page_id)
            frame.referenced = True
        else:
            self.misses += 1
            METRICS.inc("pool.miss")
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.event("pool.miss", page_id=page_id)
            self._ensure_free_frame()
            frame = _Frame(self._read_with_retry(page_id))
            self._frames[page_id] = frame
            self._clock_order.append(page_id)
        if pin:
            frame.pin_count += 1
        return frame.page

    def fetch_many(
        self, page_ids, *, pin: bool = False, reserve: int = 0
    ) -> list[int]:
        """Fetch (and optionally pin) a batch of pages, in order.

        The batch executor's pin-ahead prefetch: shared pages are fetched
        once up front so later queries in the batch hit them without
        re-reading, and — when ``pin`` is true — cannot lose them to
        eviction mid-batch.  Duplicate ids are fetched (and pinned) once.

        ``reserve`` keeps that many frames un-pinned for the queries'
        own working sets: pinning stops (the remaining ids are simply not
        prefetched — correctness never depends on the hint) as soon as
        another pin would leave fewer than ``reserve`` free frames.

        Returns the page ids actually pinned, in pin order; the caller
        owes one :meth:`unpin_page` per entry.
        """
        pinned: list[int] = []
        seen: set[int] = set()
        if pin:
            in_use = sum(
                1 for frame in self._frames.values() if frame.pin_count > 0
            )
        for page_id in page_ids:
            if page_id in seen:
                continue
            seen.add(page_id)
            if pin:
                frame = self._frames.get(page_id)
                newly_pinned = frame is None or frame.pin_count == 0
                if newly_pinned and in_use + 1 > self.capacity - reserve:
                    break
                self.fetch_page(page_id, pin=True)
                pinned.append(page_id)
                if newly_pinned:
                    in_use += 1
            else:
                self.fetch_page(page_id)
        return pinned

    def pinned_page_ids(self) -> list[int]:
        """Ids of currently pinned resident pages (ascending)."""
        return sorted(
            page_id
            for page_id, frame in self._frames.items()
            if frame.pin_count > 0
        )

    def new_page(self, *, pin: bool = False, tag: str = "untagged") -> Page:
        """Allocate a disk page and return its (resident, dirty) frame.

        ``tag`` attributes the page to a component for per-tag I/O
        accounting (see :meth:`DiskManager.allocate_page`).
        """
        page_id = self.disk.allocate_page(tag)
        self._ensure_free_frame()
        # The freshly allocated page is all zeroes; no physical read needed.
        frame = _Frame(Page(page_id, size=self.disk.page_size))
        frame.dirty = True
        self._frames[page_id] = frame
        self._clock_order.append(page_id)
        if pin:
            frame.pin_count += 1
        return frame.page

    def mark_dirty(self, page_id: int) -> None:
        """Record that the resident page has been modified."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"mark_dirty: page {page_id} is not resident")
        frame.dirty = True

    def unpin_page(self, page_id: int) -> None:
        """Decrement the pin count taken by ``fetch_page(..., pin=True)``."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"unpin: page {page_id} is not resident")
        if frame.pin_count == 0:
            raise BufferPoolError(f"unpin: page {page_id} is not pinned")
        frame.pin_count -= 1

    def discard_page(self, page_id: int) -> None:
        """Drop the resident frame *without* writing it back.

        Compaction's wholesale page reclamation: the page's contents are
        about to be deallocated, so flushing a dirty frame would waste a
        physical write on bytes nobody will read again.  A no-op when the
        page is not resident; raises when it is pinned (someone still
        holds it).
        """
        frame = self._frames.get(page_id)
        if frame is None:
            return
        if frame.pin_count > 0:
            raise BufferPoolError(f"discard: page {page_id} is pinned")
        del self._frames[page_id]
        index = self._clock_order.index(page_id)
        self._clock_order.pop(index)
        if index < self._clock_hand:
            self._clock_hand -= 1
        if self._clock_hand >= len(self._clock_order):
            self._clock_hand = 0
        self.decoded.evict_page(page_id)

    # -- flushing ---------------------------------------------------------------

    def flush_page(self, page_id: int) -> None:
        """Write the resident page back to disk if dirty."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"flush: page {page_id} is not resident")
        if frame.dirty:
            self.disk.write_page(frame.page)
            frame.dirty = False

    def flush_all(self) -> None:
        """Write every dirty resident page back to disk."""
        for page_id in list(self._frames):
            self.flush_page(page_id)

    # -- replacement --------------------------------------------------------------

    def _ensure_free_frame(self) -> None:
        """Evict with the clock algorithm until a frame slot is free."""
        if len(self._frames) < self.capacity:
            return
        # Two full sweeps: the first clears reference bits, the second
        # evicts.  If every frame stays pinned across both sweeps the pool
        # genuinely cannot make room.
        max_steps = 2 * len(self._clock_order) + 1
        for _ in range(max_steps):
            if self._clock_hand >= len(self._clock_order):
                self._clock_hand = 0
            frame = self._frames[self._clock_order[self._clock_hand]]
            if frame.pin_count > 0:
                self._clock_hand += 1
                continue
            if frame.referenced:
                frame.referenced = False
                self._clock_hand += 1
                continue
            self._evict_at_hand()
            return
        raise BufferPoolError(
            "buffer pool exhausted: every frame is pinned "
            f"(capacity={self.capacity})"
        )

    def _evict_at_hand(self) -> None:
        """Evict the page under the clock hand.

        Popping exactly at the hand (rather than searching the clock list
        for the victim) keeps the hand pointing at the victim's successor
        without any index arithmetic, so repeated evict/refetch cycles
        can neither grow the clock list nor skew the hand.
        """
        page_id = self._clock_order.pop(self._clock_hand)
        frame = self._frames.pop(page_id)
        METRICS.inc("pool.evict")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event("pool.evict", page_id=page_id, dirty=frame.dirty)
        if frame.dirty:
            self.disk.write_page(frame.page)
        self.decoded.evict_page(page_id)
        if self._clock_hand >= len(self._clock_order):
            self._clock_hand = 0

    # -- introspection ----------------------------------------------------------------

    @property
    def num_resident(self) -> int:
        """Number of pages currently buffered."""
        return len(self._frames)

    def is_resident(self, page_id: int) -> bool:
        """Whether ``page_id`` is currently buffered (no I/O, no ref bit)."""
        return page_id in self._frames

    @property
    def hit_ratio(self) -> float:
        """Fraction of fetches served without physical I/O."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the telemetry counters without disturbing the pool.

        Long-lived serving pools (see ``docs/serving.md``) report
        per-window :attr:`hit_ratio` by resetting between reporting
        windows instead of rebuilding the pool — a rebuild would evict
        every warm page, which is the whole point of serving mode.
        Only :attr:`hits` / :attr:`misses` / :attr:`retries` (and the
        decoded cache's counters) are touched: resident pages, pin
        counts, dirty flags, and clock state are untouched, which the
        reset property test asserts via :meth:`check_invariants` and a
        frame-state snapshot.
        """
        self.hits = 0
        self.misses = 0
        self.retries = 0
        self.decoded.reset_counters()

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if frame/clock bookkeeping diverged.

        Exercised by the property tests: after any sequence of
        fetch/new/pin/unpin/flush operations the clock list must be a
        permutation of the resident set, the hand must address it (or be
        0 when empty), and residency must respect capacity.
        """
        assert len(self._frames) <= self.capacity, "capacity exceeded"
        assert len(self._clock_order) == len(self._frames), (
            "clock list length diverged from resident frames"
        )
        assert set(self._clock_order) == set(self._frames), (
            "clock list is not a permutation of the resident set"
        )
        assert len(set(self._clock_order)) == len(self._clock_order), (
            "duplicate page ids in clock list"
        )
        if self._clock_order:
            assert 0 <= self._clock_hand < len(self._clock_order), (
                f"clock hand {self._clock_hand} outside "
                f"[0, {len(self._clock_order)})"
            )
        else:
            assert self._clock_hand == 0, "hand nonzero on empty clock"
        self.decoded.check_invariants()

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, resident={self.num_resident}, "
            f"hits={self.hits}, misses={self.misses})"
        )
