"""Buffer pool with clock (second-chance) replacement.

The paper's evaluation "simulate[s] the effect of buffering" with "a buffer
manager that allocates 100 blocks to each query" managed by "a clock
replacement algorithm" (Section 4).  :class:`BufferPool` reproduces that:
a bounded set of frames over a :class:`~repro.storage.disk.DiskManager`;
a hit costs no I/O, a miss costs one physical read, and evicting a dirty
frame costs one physical write.

Queries in the experiment harness each run against a fresh pool (see
:mod:`repro.bench.harness`), exactly like the paper's per-query allocation.
"""

from __future__ import annotations

from repro.core.exceptions import BufferPoolError
from repro.storage.disk import DiskManager
from repro.storage.page import Page

#: The paper's per-query buffer allocation, in frames.
DEFAULT_POOL_SIZE = 100


class _Frame:
    """One buffer slot: a resident page plus replacement metadata."""

    __slots__ = ("page", "pin_count", "referenced", "dirty")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.pin_count = 0
        self.referenced = True
        self.dirty = False


class BufferPool:
    """A bounded page cache with clock replacement.

    Parameters
    ----------
    disk:
        The disk whose pages are cached.
    capacity:
        Maximum number of resident frames (the paper uses 100).
    """

    def __init__(self, disk: DiskManager, capacity: int = DEFAULT_POOL_SIZE) -> None:
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self._frames: dict[int, _Frame] = {}
        self._clock_order: list[int] = []
        self._clock_hand = 0
        self.hits = 0
        self.misses = 0

    # -- page access ----------------------------------------------------------

    def fetch_page(self, page_id: int, *, pin: bool = False) -> Page:
        """Return the page, reading it from disk if not resident.

        When ``pin`` is true the frame's pin count is incremented and the
        caller must later :meth:`unpin_page`.  Pinned frames are never
        evicted.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            frame.referenced = True
        else:
            self.misses += 1
            self._ensure_free_frame()
            frame = _Frame(self.disk.read_page(page_id))
            self._frames[page_id] = frame
            self._clock_order.append(page_id)
        if pin:
            frame.pin_count += 1
        return frame.page

    def new_page(self, *, pin: bool = False, tag: str = "untagged") -> Page:
        """Allocate a disk page and return its (resident, dirty) frame.

        ``tag`` attributes the page to a component for per-tag I/O
        accounting (see :meth:`DiskManager.allocate_page`).
        """
        page_id = self.disk.allocate_page(tag)
        self._ensure_free_frame()
        # The freshly allocated page is all zeroes; no physical read needed.
        frame = _Frame(Page(page_id, size=self.disk.page_size))
        frame.dirty = True
        self._frames[page_id] = frame
        self._clock_order.append(page_id)
        if pin:
            frame.pin_count += 1
        return frame.page

    def mark_dirty(self, page_id: int) -> None:
        """Record that the resident page has been modified."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"mark_dirty: page {page_id} is not resident")
        frame.dirty = True

    def unpin_page(self, page_id: int) -> None:
        """Decrement the pin count taken by ``fetch_page(..., pin=True)``."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"unpin: page {page_id} is not resident")
        if frame.pin_count == 0:
            raise BufferPoolError(f"unpin: page {page_id} is not pinned")
        frame.pin_count -= 1

    # -- flushing ---------------------------------------------------------------

    def flush_page(self, page_id: int) -> None:
        """Write the resident page back to disk if dirty."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"flush: page {page_id} is not resident")
        if frame.dirty:
            self.disk.write_page(frame.page)
            frame.dirty = False

    def flush_all(self) -> None:
        """Write every dirty resident page back to disk."""
        for page_id in list(self._frames):
            self.flush_page(page_id)

    # -- replacement --------------------------------------------------------------

    def _ensure_free_frame(self) -> None:
        """Evict with the clock algorithm until a frame slot is free."""
        if len(self._frames) < self.capacity:
            return
        # Two full sweeps: the first clears reference bits, the second
        # evicts.  If every frame stays pinned across both sweeps the pool
        # genuinely cannot make room.
        max_steps = 2 * len(self._clock_order) + 1
        for _ in range(max_steps):
            if self._clock_hand >= len(self._clock_order):
                self._clock_hand = 0
            page_id = self._clock_order[self._clock_hand]
            frame = self._frames[page_id]
            if frame.pin_count > 0:
                self._clock_hand += 1
                continue
            if frame.referenced:
                frame.referenced = False
                self._clock_hand += 1
                continue
            self._evict(page_id)
            return
        raise BufferPoolError(
            "buffer pool exhausted: every frame is pinned "
            f"(capacity={self.capacity})"
        )

    def _evict(self, page_id: int) -> None:
        frame = self._frames.pop(page_id)
        if frame.dirty:
            self.disk.write_page(frame.page)
        index = self._clock_order.index(page_id)
        self._clock_order.pop(index)
        if index < self._clock_hand:
            self._clock_hand -= 1

    # -- introspection ----------------------------------------------------------------

    @property
    def num_resident(self) -> int:
        """Number of pages currently buffered."""
        return len(self._frames)

    def is_resident(self, page_id: int) -> bool:
        """Whether ``page_id`` is currently buffered (no I/O, no ref bit)."""
        return page_id in self._frames

    @property
    def hit_ratio(self) -> float:
        """Fraction of fetches served without physical I/O."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, resident={self.num_resident}, "
            f"hits={self.hits}, misses={self.misses})"
        )
