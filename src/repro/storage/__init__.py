"""Paged storage substrate: disk simulation, buffering, and record codecs.

This package provides the storage layer the paper's evaluation implicitly
assumes: 8 KB pages, a disk whose physical reads/writes are counted, a
100-frame clock-replacement buffer pool per query, and the byte layouts of
UDA records and posting entries.  Every page carries an out-of-band CRC32
checksum, and :mod:`repro.storage.faults` can inject seeded device faults
to exercise the detection and recovery machinery (see
``docs/fault-model.md``).
"""

from repro.storage.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    BACKEND_PATH_ENV,
    BackendSpec,
    MmapFileBackend,
    SharedMemoryBackend,
    SimulatedBackend,
    StorageBackend,
    active_backend_spec,
    backend_scope,
    create_backend,
    set_active_backend,
    spec_from_env,
)
from repro.storage.buffer import (
    DECODED_CACHE_ENV,
    DEFAULT_POOL_SIZE,
    MAX_READ_RETRIES,
    BufferPool,
)
from repro.storage.cache import DEFAULT_ENTRIES_PER_FRAME, DecodedCache
from repro.storage.disk import DiskManager, page_checksum
from repro.storage.faults import (
    FaultInjector,
    FaultPlan,
    FaultyDisk,
    active_plan,
    fault_plan,
    set_active_plan,
)
from repro.storage.heapfile import HeapFile, Rid
from repro.storage.page import DEFAULT_PAGE_SIZE, INVALID_PAGE_ID, Page
from repro.storage.persistence import ScanReport, scan_disk, scan_disk_from_path
from repro.storage.stats import IOSnapshot, IOStatistics

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "BACKEND_PATH_ENV",
    "BackendSpec",
    "MmapFileBackend",
    "SharedMemoryBackend",
    "SimulatedBackend",
    "StorageBackend",
    "active_backend_spec",
    "backend_scope",
    "create_backend",
    "set_active_backend",
    "spec_from_env",
    "DECODED_CACHE_ENV",
    "DEFAULT_ENTRIES_PER_FRAME",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_POOL_SIZE",
    "INVALID_PAGE_ID",
    "MAX_READ_RETRIES",
    "BufferPool",
    "DecodedCache",
    "DiskManager",
    "FaultInjector",
    "FaultPlan",
    "FaultyDisk",
    "HeapFile",
    "IOSnapshot",
    "IOStatistics",
    "Page",
    "Rid",
    "ScanReport",
    "active_plan",
    "fault_plan",
    "page_checksum",
    "scan_disk",
    "scan_disk_from_path",
    "set_active_plan",
]
