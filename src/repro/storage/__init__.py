"""Paged storage substrate: disk simulation, buffering, and record codecs.

This package provides the storage layer the paper's evaluation implicitly
assumes: 8 KB pages, a disk whose physical reads/writes are counted, a
100-frame clock-replacement buffer pool per query, and the byte layouts of
UDA records and posting entries.
"""

from repro.storage.buffer import DECODED_CACHE_ENV, DEFAULT_POOL_SIZE, BufferPool
from repro.storage.cache import DEFAULT_ENTRIES_PER_FRAME, DecodedCache
from repro.storage.disk import DiskManager
from repro.storage.heapfile import HeapFile, Rid
from repro.storage.page import DEFAULT_PAGE_SIZE, INVALID_PAGE_ID, Page
from repro.storage.stats import IOSnapshot, IOStatistics

__all__ = [
    "DECODED_CACHE_ENV",
    "DEFAULT_ENTRIES_PER_FRAME",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_POOL_SIZE",
    "INVALID_PAGE_ID",
    "BufferPool",
    "DecodedCache",
    "DiskManager",
    "HeapFile",
    "IOSnapshot",
    "IOStatistics",
    "Page",
    "Rid",
]
