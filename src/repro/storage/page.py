"""Fixed-size page abstraction.

All index structures in this library are laid out on fixed-size pages —
8 KB by default, matching the paper's experimental setup ("All experiments
are conducted with page size of 8 KB", Section 4).  A :class:`Page` is a
thin wrapper over a ``bytearray`` with typed read/write helpers; it knows
its own id but nothing about buffering or persistence (see
:mod:`repro.storage.disk` and :mod:`repro.storage.buffer` for those).

Every page carries a monotonically increasing :attr:`Page.version`,
bumped by every typed write (and by :meth:`Page.bump_version` for callers
that splice :attr:`Page.data` directly).  The version is what makes the
decoded-object cache (:mod:`repro.storage.cache`) safe: a decoded node is
memoized under ``(page_id, version)``, so any write naturally strands the
stale entry.  :meth:`Page.view` is the zero-copy read path decoders use
instead of slicing ``data`` into fresh ``bytes``.
"""

from __future__ import annotations

import struct

from repro.core.exceptions import PageError

#: Default page size in bytes, matching the paper's 8 KB pages.
DEFAULT_PAGE_SIZE = 8192

#: Sentinel page id meaning "no page" (e.g. a leaf with no right sibling).
INVALID_PAGE_ID = 0xFFFFFFFF

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")


class Page:
    """A fixed-size byte buffer with typed accessors.

    Parameters
    ----------
    page_id:
        The identifier assigned by the :class:`~repro.storage.disk.DiskManager`.
    data:
        Existing page contents.  When omitted a zero-filled buffer of
        ``size`` bytes is created.
    size:
        Page size in bytes; must match ``len(data)`` when ``data`` is given.
    """

    __slots__ = ("page_id", "data", "size", "version")

    def __init__(
        self,
        page_id: int,
        data: bytearray | None = None,
        size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        if data is None:
            data = bytearray(size)
        elif len(data) != size:
            raise PageError(
                f"page {page_id}: buffer is {len(data)} bytes, expected {size}"
            )
        self.page_id = page_id
        self.data = data
        self.size = size
        self.version = 0

    # -- versioning --------------------------------------------------------

    def bump_version(self) -> None:
        """Record a modification of :attr:`data`.

        Typed writes bump automatically; callers that splice ``data``
        directly (the B+-tree node views) must call this themselves so
        that decoded-object cache entries keyed by ``(page_id, version)``
        cannot outlive the bytes they were decoded from.
        """
        self.version += 1

    # -- zero-copy reads ---------------------------------------------------

    def view(self, offset: int = 0, length: int | None = None) -> memoryview:
        """A zero-copy read-only window over the page bytes.

        Decoders should prefer this over slicing :attr:`data` (which
        copies); anything decoded from the view must be materialized
        (``bytes(...)``, ``ndarray.astype``, ...) before the page is next
        written, since the view aliases the live buffer.
        """
        if length is None:
            length = self.size - offset
        if offset < 0 or offset + length > self.size:
            raise PageError(
                f"page {self.page_id}: view of {length} bytes at offset "
                f"{offset} overruns the {self.size}-byte page"
            )
        return memoryview(self.data)[offset : offset + length]

    # -- unsigned integers -------------------------------------------------

    def read_u8(self, offset: int) -> int:
        return _U8.unpack_from(self.data, offset)[0]

    def write_u8(self, offset: int, value: int) -> None:
        _U8.pack_into(self.data, offset, value)
        self.version += 1

    def read_u16(self, offset: int) -> int:
        return _U16.unpack_from(self.data, offset)[0]

    def write_u16(self, offset: int, value: int) -> None:
        _U16.pack_into(self.data, offset, value)
        self.version += 1

    def read_u32(self, offset: int) -> int:
        return _U32.unpack_from(self.data, offset)[0]

    def write_u32(self, offset: int, value: int) -> None:
        _U32.pack_into(self.data, offset, value)
        self.version += 1

    def read_u64(self, offset: int) -> int:
        return _U64.unpack_from(self.data, offset)[0]

    def write_u64(self, offset: int, value: int) -> None:
        _U64.pack_into(self.data, offset, value)
        self.version += 1

    # -- floats ------------------------------------------------------------

    def read_f32(self, offset: int) -> float:
        return _F32.unpack_from(self.data, offset)[0]

    def write_f32(self, offset: int, value: float) -> None:
        _F32.pack_into(self.data, offset, value)
        self.version += 1

    def read_f64(self, offset: int) -> float:
        return _F64.unpack_from(self.data, offset)[0]

    def write_f64(self, offset: int, value: float) -> None:
        _F64.pack_into(self.data, offset, value)
        self.version += 1

    # -- raw bytes ---------------------------------------------------------

    def read_bytes(self, offset: int, length: int) -> bytes:
        if offset + length > self.size:
            raise PageError(
                f"page {self.page_id}: read of {length} bytes at offset "
                f"{offset} overruns the {self.size}-byte page"
            )
        return bytes(self.data[offset : offset + length])

    def write_bytes(self, offset: int, value: bytes) -> None:
        if offset + len(value) > self.size:
            raise PageError(
                f"page {self.page_id}: write of {len(value)} bytes at offset "
                f"{offset} overruns the {self.size}-byte page"
            )
        self.data[offset : offset + len(value)] = value
        self.version += 1

    def zero(self) -> None:
        """Reset the entire page to zero bytes."""
        self.data[:] = bytes(self.size)
        self.version += 1

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, size={self.size}, "
            f"version={self.version})"
        )
