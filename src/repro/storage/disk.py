"""Simulated disk with physical-I/O accounting.

The paper measures index performance as the number of disk I/O operations
per query.  We reproduce that metric with an in-memory "disk": a mapping
from page id to page bytes whose every physical read and write increments
the counters in :class:`~repro.storage.stats.IOStatistics`.  Wall-clock time
is deliberately *not* the metric — see DESIGN.md, "Substitutions".

A :class:`DiskManager` is shared by everything belonging to one index
structure (its tree pages, posting pages, heap pages, ...), so the
per-query read delta is exactly the paper's y-axis.
"""

from __future__ import annotations

from repro.core.exceptions import PageError
from repro.storage.page import DEFAULT_PAGE_SIZE, Page
from repro.storage.stats import IOStatistics


class DiskManager:
    """An in-memory page store that counts physical I/O operations.

    Parameters
    ----------
    page_size:
        Size of every page in bytes (default 8 KB, as in the paper).
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.page_size = page_size
        self.stats = IOStatistics()
        self._pages: dict[int, bytes] = {}
        self._tags: dict[int, str] = {}
        self._next_page_id = 0
        #: Physical reads attributed to each allocation tag.
        self.reads_by_tag: dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------

    def allocate_page(self, tag: str = "untagged") -> int:
        """Allocate a fresh zero-filled page and return its id.

        ``tag`` names the component the page belongs to ("postings",
        "tuples", "pdr-node", ...); every later physical read of the
        page is attributed to it in :attr:`reads_by_tag`.  Allocation
        itself is not counted as a read or a write.
        """
        page_id = self._next_page_id
        self._next_page_id += 1
        self._pages[page_id] = bytes(self.page_size)
        self._tags[page_id] = tag
        self.stats.record_allocation()
        return page_id

    def tag_of(self, page_id: int) -> str:
        """The allocation tag of ``page_id``."""
        try:
            return self._tags[page_id]
        except KeyError:
            raise PageError(f"unknown page {page_id}") from None

    def snapshot_tags(self) -> dict[str, int]:
        """A copy of the per-tag read counters (pair with delta math)."""
        return dict(self.reads_by_tag)

    def deallocate_page(self, page_id: int) -> None:
        """Release ``page_id``.  Accessing it afterwards raises PageError."""
        if page_id not in self._pages:
            raise PageError(f"cannot deallocate unknown page {page_id}")
        del self._pages[page_id]
        self._tags.pop(page_id, None)

    # -- physical I/O ---------------------------------------------------------

    def read_page(self, page_id: int) -> Page:
        """Physically read ``page_id``; counts one read (and its tag)."""
        try:
            data = self._pages[page_id]
        except KeyError:
            raise PageError(f"read of unknown page {page_id}") from None
        self.stats.record_read()
        tag = self._tags.get(page_id, "untagged")
        self.reads_by_tag[tag] = self.reads_by_tag.get(tag, 0) + 1
        return Page(page_id, bytearray(data), size=self.page_size)

    def write_page(self, page: Page) -> None:
        """Physically write ``page``; counts one write."""
        if page.page_id not in self._pages:
            raise PageError(f"write of unknown page {page.page_id}")
        if len(page.data) != self.page_size:
            raise PageError(
                f"page {page.page_id}: buffer is {len(page.data)} bytes, "
                f"expected {self.page_size}"
            )
        self._pages[page.page_id] = bytes(page.data)
        self.stats.record_write()

    # -- introspection --------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of currently allocated pages."""
        return len(self._pages)

    @property
    def size_in_bytes(self) -> int:
        """Total size of all allocated pages."""
        return len(self._pages) * self.page_size

    def __repr__(self) -> str:
        return (
            f"DiskManager(pages={self.num_pages}, "
            f"page_size={self.page_size}, stats={self.stats!r})"
        )
