"""Simulated disk with physical-I/O accounting and page checksums.

The paper measures index performance as the number of disk I/O operations
per query.  We reproduce that metric with a counted "disk": a
:class:`DiskManager` that attributes every physical read and write to the
counters in :class:`~repro.storage.stats.IOStatistics`.  Wall-clock time
is deliberately *not* the metric — see DESIGN.md, "Substitutions".

A :class:`DiskManager` is shared by everything belonging to one index
structure (its tree pages, posting pages, heap pages, ...), so the
per-query read delta is exactly the paper's y-axis.

Storage backends
----------------
The disk is an *accounting and integrity shell*: the raw page bytes live
in a pluggable :class:`~repro.storage.backends.StorageBackend`
(config-dispatched via ``REPRO_BACKEND``; see
:mod:`repro.storage.backends` and ``docs/storage-backends.md``).  The
default ``simulated`` backend is the original in-memory dict, so the
paper's figures are byte-identical; the ``mmap`` backend persists pages
in a real file (wall-clock numbers mean something), and the ``shm``
backend shares one page image across processes.  Counting, tagging,
checksums, and fault injection all happen *here*, above the backend, so
the simulated I/O counts are identical under every backend.

Integrity
---------
Every page carries a CRC32 checksum, recomputed on each write and
verified on each read.  Checksums are stored *out-of-band* (a side table
keyed by page id, mirroring the sector-metadata area of a real device),
so page payload capacity — and therefore every simulated I/O count — is
exactly what it was without them.  A mismatch raises
:class:`~repro.core.exceptions.ChecksumError` *before* the read is
counted: only successful, verified page transfers contribute to the
paper's metric.  Fault injection (see :mod:`repro.storage.faults`) hooks
into both paths to exercise the detection machinery.

Tag accounting is *strict* across the whole page lifecycle: a page
either has an allocation tag or accessing it raises
:class:`~repro.core.exceptions.PageError` — reads are never silently
attributed to ``"untagged"`` for a page the disk does not know, and a
read whose attribution would fail is not counted.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

from repro.core.exceptions import ChecksumError, PageError
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS
from repro.storage.page import DEFAULT_PAGE_SIZE, Page
from repro.storage.stats import IOStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults imports disk)
    from repro.storage.backends import StorageBackend
    from repro.storage.faults import FaultPlan


def page_checksum(data: bytes) -> int:
    """The CRC32 checksum of a page's bytes (unsigned 32-bit)."""
    return zlib.crc32(data) & 0xFFFFFFFF


class DiskManager:
    """A counted page store over a pluggable byte backend.

    Parameters
    ----------
    page_size:
        Size of every page in bytes (default 8 KB, as in the paper).
    fault_plan:
        Fault-injection plan for this disk.  ``None`` (the default)
        consults :func:`repro.storage.faults.active_plan`, which resolves
        to the process-wide override or the ``REPRO_FAULT_*`` environment
        knobs; pass a plan with all rates zero to force a clean disk
        regardless of the environment.
    backend:
        The byte store underneath the accounting: a
        :class:`~repro.storage.backends.StorageBackend` instance, a
        registry name (``"simulated"``, ``"mmap"``, ``"shm"``), or
        ``None`` to consult the process override / ``REPRO_BACKEND``
        (default ``simulated``).  A durable backend reopened on an
        existing store restores its saved accounting (checksums, tags,
        next page id) so CRC verification spans process restarts.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        fault_plan: "FaultPlan | None" = None,
        backend: "StorageBackend | str | None" = None,
    ) -> None:
        from repro.storage.backends import create_backend

        self.page_size = page_size
        self.stats = IOStatistics()
        self.backend = create_backend(backend, page_size=page_size)
        #: Out-of-band CRC32 of each page's *intended* bytes.  Lives beside
        #: the payload (like a device's sector metadata), so it consumes no
        #: page capacity and no simulated I/O.
        self._checksums: dict[int, int] = {}
        self._tags: dict[int, str] = {}
        self._next_page_id = 0
        #: Physical reads attributed to each allocation tag.
        self.reads_by_tag: dict[str, int] = {}
        # Imported lazily: faults.py subclasses DiskManager.
        from repro.storage.faults import FaultInjector, active_plan

        self.faults = FaultInjector(fault_plan if fault_plan is not None else active_plan())
        meta = self.backend.load_meta()
        if meta is not None:
            self._next_page_id = int(meta["next_page_id"])
            self._checksums = {
                int(pid): int(crc) for pid, crc in meta["checksums"].items()
            }
            self._tags = {
                int(pid): str(tag) for pid, tag in meta["tags"].items()
            }

    # -- lifecycle ----------------------------------------------------------

    def allocate_page(self, tag: str = "untagged") -> int:
        """Allocate a fresh zero-filled page and return its id.

        ``tag`` names the component the page belongs to ("postings",
        "tuples", "pdr-node", ...); every later physical read of the
        page is attributed to it in :attr:`reads_by_tag`.  Allocation
        itself is not counted as a read or a write.
        """
        page_id = self._next_page_id
        self._next_page_id += 1
        data = bytes(self.page_size)
        self.backend.allocate(page_id, data)
        self._checksums[page_id] = page_checksum(data)
        self._tags[page_id] = tag
        self.stats.record_allocation()
        return page_id

    def tag_of(self, page_id: int) -> str:
        """The allocation tag of ``page_id``; strict (unknown -> PageError)."""
        try:
            return self._tags[page_id]
        except KeyError:
            raise PageError(f"unknown page {page_id}") from None

    def tag_directory(self) -> dict[int, str]:
        """A copy of the page-id -> allocation-tag table."""
        return dict(self._tags)

    def snapshot_tags(self) -> dict[str, int]:
        """A copy of the per-tag read counters (pair with delta math)."""
        return dict(self.reads_by_tag)

    def deallocate_page(self, page_id: int) -> None:
        """Release ``page_id``.  Accessing it afterwards raises PageError."""
        try:
            self.backend.deallocate(page_id)
        except KeyError:
            raise PageError(
                f"cannot deallocate unknown page {page_id}"
            ) from None
        del self._checksums[page_id]
        del self._tags[page_id]

    def close(self) -> None:
        """Detach from the backend, saving accounting meta if it is durable.

        A durable backend (``mmap``) persists the checksum and tag side
        tables alongside its page bytes, so a later
        ``DiskManager(backend=MmapFileBackend(path))`` verifies the same
        CRCs it would have in the original process.  Ephemeral backends
        just release their resources; close is idempotent either way.
        """
        if self.backend.persistent:
            self.backend.save_meta(
                {
                    "next_page_id": self._next_page_id,
                    "checksums": {
                        str(pid): crc
                        for pid, crc in sorted(self._checksums.items())
                    },
                    "tags": {
                        str(pid): tag
                        for pid, tag in sorted(self._tags.items())
                    },
                }
            )
        self.backend.close()

    # -- integrity ----------------------------------------------------------

    def _stored_checksum(self, page_id: int) -> int:
        """The recorded (intended) CRC32 of ``page_id``; strict lookup."""
        try:
            return self._checksums[page_id]
        except KeyError:
            raise PageError(f"unknown page {page_id}") from None

    def checksum_of(self, page_id: int) -> int:
        """The stored (intended) CRC32 of ``page_id``; no I/O is counted."""
        return self._stored_checksum(page_id)

    def raw_page_bytes(self, page_id: int) -> bytes:
        """The stored bytes of ``page_id``, uncounted and unverified.

        An offline access path for persistence and integrity probes; the
        counted, verified path is :meth:`read_page`.
        """
        try:
            return self.backend.read(page_id)
        except KeyError:
            raise PageError(f"unknown page {page_id}") from None

    def tamper_page(self, page_id: int, data: bytes) -> None:
        """Overwrite stored bytes *without* updating the checksum.

        Models at-rest corruption (a medium error under the device's
        error-correction radar): the recorded checksum still describes
        the intended bytes, so every later counted read of the page
        fails verification.  Used by the fault and recovery harnesses.
        """
        if len(data) != self.page_size:
            raise PageError(
                f"page {page_id}: tamper buffer is {len(data)} bytes, "
                f"expected {self.page_size}"
            )
        try:
            self.backend.write(page_id, bytes(data))
        except KeyError:
            raise PageError(f"unknown page {page_id}") from None

    def verify_page(self, page_id: int) -> bool:
        """Whether ``page_id``'s stored bytes match its stored checksum.

        An offline integrity probe (recovery scans, tests): reads nothing
        through the counted path and never raises on mismatch.  Uses the
        same strict lookups as :meth:`read_page`, so an unknown page
        fails identically everywhere in the lifecycle.
        """
        return page_checksum(self.raw_page_bytes(page_id)) == self._stored_checksum(
            page_id
        )

    # -- physical I/O ---------------------------------------------------------

    def read_page(self, page_id: int) -> Page:
        """Physically read and verify ``page_id``; counts one read (and tag).

        Raises :class:`~repro.core.exceptions.TransientReadError` on an
        injected device error and
        :class:`~repro.core.exceptions.ChecksumError` when the returned
        bytes fail CRC verification (in-flight bit rot, or a torn write
        persisted earlier).  Failed attempts are *not* counted as reads —
        including a failed tag attribution, which raises
        :class:`~repro.core.exceptions.PageError` via the same strict
        lookup as :meth:`tag_of` instead of silently falling back to
        ``"untagged"``.
        """
        try:
            data = self.backend.read(page_id)
        except KeyError:
            raise PageError(f"read of unknown page {page_id}") from None
        # Strict attribution up front: if the read cannot be attributed
        # it fails before the fault draw and before it is counted.
        tag = self.tag_of(page_id)
        self.faults.before_read(page_id, self.stats)
        data = self.faults.maybe_rot(data, self.stats)
        stored_checksum = self._stored_checksum(page_id)
        if page_checksum(data) != stored_checksum:
            self.stats.record_checksum_failure()
            METRICS.inc("disk.checksum_failure")
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.event("disk.checksum_failure", page_id=page_id)
            raise ChecksumError(
                f"page {page_id}: CRC32 mismatch "
                f"(stored 0x{stored_checksum:08x}, "
                f"read 0x{page_checksum(data):08x})"
            )
        self.stats.record_read()
        self.reads_by_tag[tag] = self.reads_by_tag.get(tag, 0) + 1
        METRICS.inc("disk.read")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event("disk.read", page_id=page_id, tag=tag)
        return Page(page_id, bytearray(data), size=self.page_size)

    def write_page(self, page: Page) -> None:
        """Physically write ``page``; counts one write.

        The checksum of the *intended* bytes is always recorded; an
        injected torn write may persist only a prefix of them, leaving a
        page whose every later read fails verification.
        """
        try:
            old = self.backend.read(page.page_id)
        except KeyError:
            raise PageError(f"write of unknown page {page.page_id}") from None
        if len(page.data) != self.page_size:
            raise PageError(
                f"page {page.page_id}: buffer is {len(page.data)} bytes, "
                f"expected {self.page_size}"
            )
        intended = bytes(page.data)
        stored = self.faults.maybe_tear(intended, old, self.stats)
        self.backend.write(page.page_id, stored)
        self._checksums[page.page_id] = page_checksum(intended)
        self.stats.record_write()
        METRICS.inc("disk.write")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event("disk.write", page_id=page.page_id)

    # -- attachment (persistence) ---------------------------------------------

    def install_image(
        self,
        pages: dict[int, bytes],
        checksums: dict[int, int],
        tags: dict[int, str],
        next_page_id: int,
    ) -> None:
        """Install a salvaged page image (the persistence attach paths).

        Installs pages with their *stored* checksums — a page torn in the
        image stays detectably torn — and a complete tag table, so the
        strict attribution of :meth:`read_page` holds on a reloaded disk.
        Installation is setup, not I/O: nothing is counted.
        """
        for page_id in sorted(pages):
            self.backend.allocate(page_id, pages[page_id])
        self._checksums = {int(pid): int(crc) for pid, crc in checksums.items()}
        self._tags = {int(pid): str(tag) for pid, tag in tags.items()}
        self._next_page_id = int(next_page_id)

    # -- introspection --------------------------------------------------------

    def page_ids(self) -> list[int]:
        """Ids of every currently allocated page, ascending."""
        return self.backend.page_ids()

    def has_page(self, page_id: int) -> bool:
        """Whether ``page_id`` is currently allocated (no I/O counted)."""
        return page_id in self.backend

    @property
    def num_pages(self) -> int:
        """Number of currently allocated pages."""
        return len(self.backend)

    @property
    def size_in_bytes(self) -> int:
        """Total size of all allocated pages."""
        return self.num_pages * self.page_size

    def __repr__(self) -> str:
        return (
            f"DiskManager(pages={self.num_pages}, "
            f"page_size={self.page_size}, backend={self.backend.name!r}, "
            f"stats={self.stats!r})"
        )
