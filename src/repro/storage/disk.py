"""Simulated disk with physical-I/O accounting and page checksums.

The paper measures index performance as the number of disk I/O operations
per query.  We reproduce that metric with an in-memory "disk": a mapping
from page id to page bytes whose every physical read and write increments
the counters in :class:`~repro.storage.stats.IOStatistics`.  Wall-clock time
is deliberately *not* the metric — see DESIGN.md, "Substitutions".

A :class:`DiskManager` is shared by everything belonging to one index
structure (its tree pages, posting pages, heap pages, ...), so the
per-query read delta is exactly the paper's y-axis.

Integrity
---------
Every page carries a CRC32 checksum, recomputed on each write and
verified on each read.  Checksums are stored *out-of-band* (a side table
keyed by page id, mirroring the sector-metadata area of a real device),
so page payload capacity — and therefore every simulated I/O count — is
exactly what it was without them.  A mismatch raises
:class:`~repro.core.exceptions.ChecksumError` *before* the read is
counted: only successful, verified page transfers contribute to the
paper's metric.  Fault injection (see :mod:`repro.storage.faults`) hooks
into both paths to exercise the detection machinery.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

from repro.core.exceptions import ChecksumError, PageError
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS
from repro.storage.page import DEFAULT_PAGE_SIZE, Page
from repro.storage.stats import IOStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults imports disk)
    from repro.storage.faults import FaultPlan


def page_checksum(data: bytes) -> int:
    """The CRC32 checksum of a page's bytes (unsigned 32-bit)."""
    return zlib.crc32(data) & 0xFFFFFFFF


class DiskManager:
    """An in-memory page store that counts physical I/O operations.

    Parameters
    ----------
    page_size:
        Size of every page in bytes (default 8 KB, as in the paper).
    fault_plan:
        Fault-injection plan for this disk.  ``None`` (the default)
        consults :func:`repro.storage.faults.active_plan`, which resolves
        to the process-wide override or the ``REPRO_FAULT_*`` environment
        knobs; pass a plan with all rates zero to force a clean disk
        regardless of the environment.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.page_size = page_size
        self.stats = IOStatistics()
        self._pages: dict[int, bytes] = {}
        #: Out-of-band CRC32 of each page's *intended* bytes.  Lives beside
        #: the payload (like a device's sector metadata), so it consumes no
        #: page capacity and no simulated I/O.
        self._checksums: dict[int, int] = {}
        self._tags: dict[int, str] = {}
        self._next_page_id = 0
        #: Physical reads attributed to each allocation tag.
        self.reads_by_tag: dict[str, int] = {}
        # Imported lazily: faults.py subclasses DiskManager.
        from repro.storage.faults import FaultInjector, active_plan

        self.faults = FaultInjector(fault_plan if fault_plan is not None else active_plan())

    # -- lifecycle ----------------------------------------------------------

    def allocate_page(self, tag: str = "untagged") -> int:
        """Allocate a fresh zero-filled page and return its id.

        ``tag`` names the component the page belongs to ("postings",
        "tuples", "pdr-node", ...); every later physical read of the
        page is attributed to it in :attr:`reads_by_tag`.  Allocation
        itself is not counted as a read or a write.
        """
        page_id = self._next_page_id
        self._next_page_id += 1
        data = bytes(self.page_size)
        self._pages[page_id] = data
        self._checksums[page_id] = page_checksum(data)
        self._tags[page_id] = tag
        self.stats.record_allocation()
        return page_id

    def tag_of(self, page_id: int) -> str:
        """The allocation tag of ``page_id``."""
        try:
            return self._tags[page_id]
        except KeyError:
            raise PageError(f"unknown page {page_id}") from None

    def snapshot_tags(self) -> dict[str, int]:
        """A copy of the per-tag read counters (pair with delta math)."""
        return dict(self.reads_by_tag)

    def deallocate_page(self, page_id: int) -> None:
        """Release ``page_id``.  Accessing it afterwards raises PageError."""
        if page_id not in self._pages:
            raise PageError(f"cannot deallocate unknown page {page_id}")
        del self._pages[page_id]
        self._checksums.pop(page_id, None)
        self._tags.pop(page_id, None)

    # -- integrity ----------------------------------------------------------

    def checksum_of(self, page_id: int) -> int:
        """The stored (intended) CRC32 of ``page_id``; no I/O is counted."""
        try:
            return self._checksums[page_id]
        except KeyError:
            raise PageError(f"unknown page {page_id}") from None

    def verify_page(self, page_id: int) -> bool:
        """Whether ``page_id``'s stored bytes match its stored checksum.

        An offline integrity probe (recovery scans, tests): reads nothing
        through the counted path and never raises on mismatch.
        """
        try:
            data = self._pages[page_id]
        except KeyError:
            raise PageError(f"unknown page {page_id}") from None
        return page_checksum(data) == self._checksums[page_id]

    # -- physical I/O ---------------------------------------------------------

    def read_page(self, page_id: int) -> Page:
        """Physically read and verify ``page_id``; counts one read (and tag).

        Raises :class:`~repro.core.exceptions.TransientReadError` on an
        injected device error and
        :class:`~repro.core.exceptions.ChecksumError` when the returned
        bytes fail CRC verification (in-flight bit rot, or a torn write
        persisted earlier).  Failed attempts are *not* counted as reads.
        """
        try:
            data = self._pages[page_id]
        except KeyError:
            raise PageError(f"read of unknown page {page_id}") from None
        self.faults.before_read(page_id, self.stats)
        data = self.faults.maybe_rot(data, self.stats)
        if page_checksum(data) != self._checksums[page_id]:
            self.stats.record_checksum_failure()
            METRICS.inc("disk.checksum_failure")
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.event("disk.checksum_failure", page_id=page_id)
            raise ChecksumError(
                f"page {page_id}: CRC32 mismatch "
                f"(stored 0x{self._checksums[page_id]:08x}, "
                f"read 0x{page_checksum(data):08x})"
            )
        self.stats.record_read()
        tag = self._tags.get(page_id, "untagged")
        self.reads_by_tag[tag] = self.reads_by_tag.get(tag, 0) + 1
        METRICS.inc("disk.read")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event("disk.read", page_id=page_id, tag=tag)
        return Page(page_id, bytearray(data), size=self.page_size)

    def write_page(self, page: Page) -> None:
        """Physically write ``page``; counts one write.

        The checksum of the *intended* bytes is always recorded; an
        injected torn write may persist only a prefix of them, leaving a
        page whose every later read fails verification.
        """
        if page.page_id not in self._pages:
            raise PageError(f"write of unknown page {page.page_id}")
        if len(page.data) != self.page_size:
            raise PageError(
                f"page {page.page_id}: buffer is {len(page.data)} bytes, "
                f"expected {self.page_size}"
            )
        intended = bytes(page.data)
        stored = self.faults.maybe_tear(
            intended, self._pages[page.page_id], self.stats
        )
        self._pages[page.page_id] = stored
        self._checksums[page.page_id] = page_checksum(intended)
        self.stats.record_write()
        METRICS.inc("disk.write")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event("disk.write", page_id=page.page_id)

    # -- introspection --------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of currently allocated pages."""
        return len(self._pages)

    @property
    def size_in_bytes(self) -> int:
        """Total size of all allocated pages."""
        return len(self._pages) * self.page_size

    def __repr__(self) -> str:
        return (
            f"DiskManager(pages={self.num_pages}, "
            f"page_size={self.page_size}, stats={self.stats!r})"
        )
