"""Decoded-object cache: memoized node/posting decodings keyed by version.

The paper's cost model (Section 4) counts only physical page I/O, so
re-decoding a resident page's bytes into Python objects on every access
is free in the model but dominates real wall-clock time.  The
:class:`DecodedCache` sits between the buffer pool and the index layers
and memoizes the *decoded* form of a page — a B+-tree node, a PDR-tree
node, or a posting-leaf array pair — under ``(kind, page_id, version)``.

Correctness rests on three invariants:

1. **Version keying.**  Every write to a :class:`~repro.storage.page.Page`
   bumps its :attr:`~repro.storage.page.Page.version`, so a stale decoding
   can never be returned for modified bytes — the lookup key simply no
   longer matches.
2. **Eviction with the frame.**  The owning
   :class:`~repro.storage.buffer.BufferPool` drops all of a page's entries
   when its frame is evicted (:meth:`DecodedCache.evict_page`), so a page
   re-read from disk (a fresh ``Page`` at version 0) cannot alias a
   decoding of the previous incarnation.
3. **No I/O bypass.**  Callers must fetch the page through the buffer
   pool *before* consulting the cache (:meth:`DecodedCache.get` /
   :meth:`DecodedCache.get_or_decode` take the fetched page), so
   simulated read counts are bit-identical with the cache on or off.

Cached values are shared, so decoders must return objects that do not
alias the live page buffer (materialize with ``bytes(...)`` or
``ndarray.astype``) and callers must treat them as immutable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.obs import trace as _trace
from repro.obs.metrics import METRICS
from repro.storage.page import Page

#: Decoded entries retained per buffer-pool frame by default.  Each page
#: has at most a handful of live decodings (one per kind), so a small
#: multiple of the pool capacity keeps every resident page's decodings
#: warm plus some slack for version churn.
DEFAULT_ENTRIES_PER_FRAME = 4


class DecodedCache:
    """A bounded LRU of decoded page objects keyed by ``(kind, page_id, version)``.

    Parameters
    ----------
    capacity:
        Maximum number of cached decodings.  ``0`` disables the cache
        entirely: every lookup misses and nothing is stored, which is the
        baseline configuration the I/O-equivalence tests compare against.
    """

    __slots__ = ("capacity", "_entries", "_page_keys", "hits", "misses")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, int, int], Any] = OrderedDict()
        # page_id -> set of keys currently cached for that page, so that
        # frame eviction is O(entries for that page), not O(cache).
        self._page_keys: dict[int, set[tuple[str, int, int]]] = {}
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup ------------------------------------------------------------

    def get(self, kind: str, page: Page) -> Any | None:
        """Return the cached decoding of ``page`` at its current version."""
        if not self.capacity:
            self.misses += 1
            METRICS.inc("decoded.miss")
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.event(
                    "decoded.miss", decode_kind=kind, page_id=page.page_id
                )
            return None
        key = (kind, page.page_id, page.version)
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            METRICS.inc("decoded.miss")
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.event(
                    "decoded.miss", decode_kind=kind, page_id=page.page_id
                )
            return None
        self.hits += 1
        METRICS.inc("decoded.hit")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event("decoded.hit", decode_kind=kind, page_id=page.page_id)
        self._entries.move_to_end(key)
        return value

    def get_or_decode(
        self, kind: str, page: Page, decode: Callable[[Page], Any]
    ) -> Any:
        """Return the cached decoding, running ``decode(page)`` on a miss.

        The decoded value is stored (evicting LRU entries past capacity)
        and returned.  ``decode`` must not return ``None`` — the cache
        uses ``None`` as its miss sentinel.
        """
        value = self.get(kind, page)
        if value is None:
            value = decode(page)
            self.put(kind, page, value)
        return value

    # -- insertion / removal -----------------------------------------------

    def put(self, kind: str, page: Page, value: Any) -> None:
        """Cache ``value`` as the decoding of ``page`` at its current version.

        Any entry for the same ``(kind, page_id)`` at an older version is
        dropped immediately (it can never be hit again).
        """
        if not self.capacity or value is None:
            return
        key = (kind, page.page_id, page.version)
        keys = self._page_keys.setdefault(page.page_id, set())
        # Drop superseded versions of this (kind, page) pair.
        for stale in [k for k in keys if k[0] == kind and k[2] != page.version]:
            keys.discard(stale)
            self._entries.pop(stale, None)
        self._entries[key] = value
        self._entries.move_to_end(key)
        keys.add(key)
        while len(self._entries) > self.capacity:
            old_key, _ = self._entries.popitem(last=False)
            old_page_keys = self._page_keys.get(old_key[1])
            if old_page_keys is not None:
                old_page_keys.discard(old_key)
                if not old_page_keys:
                    del self._page_keys[old_key[1]]

    def pop(self, kind: str, page: Page) -> Any | None:
        """Remove and return the decoding of ``page`` at its current version.

        Used by writers that mutate a decoded object in place: pop before
        the page write, re-``put`` after, so the cache never holds an
        object mid-mutation under a stale key.
        """
        if not self.capacity:
            return None
        key = (kind, page.page_id, page.version)
        value = self._entries.pop(key, None)
        if value is not None:
            keys = self._page_keys.get(page.page_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._page_keys[page.page_id]
        return value

    def evict_page(self, page_id: int) -> None:
        """Drop every cached decoding of ``page_id`` (any kind, any version).

        Called by the buffer pool when the page's frame is evicted: the
        next fetch constructs a fresh ``Page`` whose version restarts at
        0, so entries from the previous residency must not survive.
        """
        keys = self._page_keys.pop(page_id, None)
        if keys:
            for key in keys:
                self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._entries.clear()
        self._page_keys.clear()

    # -- introspection -----------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero :attr:`hits` / :attr:`misses`; cached entries are kept.

        The decoded-cache half of :meth:`BufferPool.reset_counters
        <repro.storage.buffer.BufferPool.reset_counters>`: per-window
        :attr:`hit_rate` reporting for long-lived serving pools.
        """
        self.hits = 0
        self.misses = 0

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if the internal indexes disagree."""
        assert len(self._entries) <= max(self.capacity, 0)
        indexed = {key for keys in self._page_keys.values() for key in keys}
        assert indexed == set(self._entries), (
            "page-key index out of sync with entries"
        )
        for page_id, keys in self._page_keys.items():
            assert keys, f"empty key set retained for page {page_id}"
            assert all(k[1] == page_id for k in keys)

    def __repr__(self) -> str:
        return (
            f"DecodedCache(capacity={self.capacity}, entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
