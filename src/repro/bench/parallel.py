"""Process-pool parallel experiment runner.

Every measured query already runs against its own fresh buffer pool
(:func:`repro.bench.harness.measure_query`) over a deterministically
seeded dataset, so whole experiments are embarrassingly parallel: fanning
them out across worker processes changes wall-clock only, never the
simulated I/O counts.  Determinism is preserved by construction —

* each experiment is self-contained (its own disk, indexes, and seeded
  workload; nothing is shared across experiments but read-only caches),
* workers receive the experiment *name* and rebuild everything from the
  same seeds, and
* results are merged in submission order, so the output is byte-identical
  for any ``--jobs`` value.

``--jobs 1`` (or ``REPRO_JOBS=1``) runs inline in this process, which
also lets consecutive experiments share the module-level dataset/index
caches of :mod:`repro.bench.experiments` — the sequential fast path.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterator
from concurrent.futures import ProcessPoolExecutor

from repro.bench.experiments import ALL_EXPERIMENTS, ExperimentScale
from repro.bench.harness import ExperimentResult
from repro.core.config import parse_int_knob, read_env_int
from repro.core.exceptions import QueryError
from repro.exec import (
    batch_override,
    join_block_override,
    resolve_batch,
    resolve_join_block,
)
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import BenchCollector, MemorySink, Tracer
from repro.storage.backends import (
    BackendSpec,
    active_backend_spec,
    backend_scope,
)
from repro.storage.faults import FaultPlan, active_plan, fault_plan

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count from the argument, env, or CPU count.

    ``None`` falls back to ``REPRO_JOBS``; an unset/``auto``/``0`` value
    means one worker per CPU.  The result is always >= 1.  A malformed
    ``REPRO_JOBS`` raises a :class:`~repro.core.exceptions.ConfigError`
    naming the variable (see :mod:`repro.core.config`).
    """
    if jobs is None:
        value = read_env_int(JOBS_ENV, minimum=0, special={"auto": 0})
        jobs = 0 if value is None else value
    else:
        jobs = parse_int_knob(jobs, "jobs", minimum=0)
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _run_one(
    name: str,
    scale: ExperimentScale,
    plan: FaultPlan | None = None,
    trace: bool = False,
    batch: int | None = None,
    join_block: int | None = None,
    backend: BackendSpec | None = None,
) -> tuple[ExperimentResult, float, list[str] | None, dict[str, int]]:
    """Run one experiment by name.

    Returns ``(result, elapsed_seconds, trace_lines, metrics_snapshot)``.
    ``trace_lines`` is the experiment's canonical JSONL trace (``None``
    when ``trace`` is false); ``metrics_snapshot`` is the measurement-
    scoped counter delta collected by the installed
    :class:`~repro.obs.trace.BenchCollector`.

    Module-level so worker processes can unpickle it; the experiment
    callable itself is looked up in the worker, keeping the payload to a
    name plus the (frozen, picklable) scale and fault plan.  The plan is
    passed *by value* rather than re-read from the environment so workers
    inject identical fault sequences regardless of fork/spawn semantics;
    the override is scoped so inline runs don't leak it into the caller.
    The collector's tracer is activated only around measured queries (see
    :func:`repro.bench.harness.measure_query`), so the trace — like the
    metrics — is byte-identical whether the experiment ran inline against
    warm per-process caches or in a cold worker.  The experiment
    begin/end markers deliberately carry no timing fields.
    """
    if plan is None:
        plan = active_plan()
    if batch is None:
        batch = resolve_batch()
    if join_block is None:
        join_block = resolve_join_block()
    if backend is None:
        backend = active_backend_spec()
    collector = BenchCollector(Tracer(MemorySink()) if trace else None)
    with fault_plan(plan), batch_override(batch), join_block_override(
        join_block
    ), backend_scope(backend), _trace.bench_collection(collector):
        if collector.tracer is not None:
            collector.tracer.event("experiment.begin", name=name)
        started = time.perf_counter()
        result = ALL_EXPERIMENTS[name](scale)
        elapsed = time.perf_counter() - started
        if collector.tracer is not None:
            collector.tracer.event("experiment.end", name=name)
    lines = (
        collector.tracer.sink.jsonl_lines()
        if collector.tracer is not None
        else None
    )
    return result, elapsed, lines, collector.metrics.snapshot()


def run_experiments(
    names: list[str],
    scale: ExperimentScale,
    jobs: int | None = None,
    trace_path=None,
    metrics: MetricsRegistry | None = None,
    batch: int | None = None,
    join_block: int | None = None,
) -> Iterator[tuple[str, ExperimentResult, float]]:
    """Run experiments, yielding ``(name, result, elapsed)`` per experiment.

    Results are always yielded in the order of ``names`` regardless of
    worker completion order, so any downstream report is deterministic.
    ``elapsed`` is the experiment's own wall-clock (inside its worker),
    not the end-to-end latency.

    ``trace_path`` enables measurement-scoped tracing: each experiment's
    JSONL records are appended to the file in submission order, making
    the file byte-identical for any ``jobs`` value.  ``metrics``, when
    given, accumulates every experiment's measurement-scoped counter
    snapshot (a caller-owned registry — the workers' process-global
    counters are not otherwise visible to this process).
    """
    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        raise QueryError(f"unknown experiment(s): {', '.join(unknown)}")
    jobs = resolve_jobs(jobs)
    plan = active_plan()  # resolve once; ship the same plan to every worker
    batch = resolve_batch(batch)  # likewise shipped by value
    join_block = resolve_join_block(join_block)
    backend = active_backend_spec()  # likewise: workers never re-read env
    trace = trace_path is not None
    trace_file = open(trace_path, "w", encoding="utf-8") if trace else None

    def absorb(lines: list[str] | None, snapshot: dict[str, int]) -> None:
        if trace_file is not None and lines is not None:
            trace_file.writelines(line + "\n" for line in lines)
        if metrics is not None:
            metrics.merge(snapshot)

    try:
        if jobs == 1 or len(names) <= 1:
            for name in names:
                result, elapsed, lines, snapshot = _run_one(
                    name, scale, plan, trace, batch, join_block, backend
                )
                absorb(lines, snapshot)
                yield name, result, elapsed
            return
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(names))
        ) as executor:
            futures = [
                executor.submit(
                    _run_one,
                    name,
                    scale,
                    plan,
                    trace,
                    batch,
                    join_block,
                    backend,
                )
                for name in names
            ]
            for name, future in zip(names, futures):
                result, elapsed, lines, snapshot = future.result()
                absorb(lines, snapshot)
                yield name, result, elapsed
    finally:
        if trace_file is not None:
            trace_file.close()
