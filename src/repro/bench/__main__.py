"""Command-line experiment runner.

Usage::

    python -m repro.bench --list
    python -m repro.bench fig4 fig10 --scale quick
    python -m repro.bench all --scale default --out results/

Each experiment prints its series table (the paper's figure as rows and
columns) and optionally writes it to a file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.experiments import ALL_EXPERIMENTS, ExperimentScale
from repro.bench.parallel import run_experiments
from repro.bench.reporting import format_result
from repro.obs.trace import TRACE_ENV, resolve_trace_path

_SCALES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale.default,
    "paper": ExperimentScale.paper,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's figures (and the ablations).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig4 fig10 abl_buffer) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="quick",
        help="dataset/workload scale (default: quick)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write the series tables into",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or the CPU count; "
        "1 runs inline)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a measurement-scoped JSONL query trace to PATH "
        f"(default: the {TRACE_ENV} environment variable, else off)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="queries per buffer pool (default: REPRO_BATCH or 1; "
        "1 is the paper's per-query protocol, >1 amortizes each pool "
        "over the batch via repro.exec.BatchExecutor)",
    )
    parser.add_argument(
        "--join-block",
        type=int,
        default=None,
        metavar="N",
        help="outer tuples per join block (default: REPRO_JOIN_BLOCK or 1; "
        ">1 enables the block rank-join engine)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, fn in ALL_EXPERIMENTS.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:18s} {summary}")
        return 0

    names = (
        list(ALL_EXPERIMENTS)
        if args.experiments == ["all"]
        else args.experiments
    )
    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(choose from {', '.join(ALL_EXPERIMENTS)})"
        )
    scale = _SCALES[args.scale]()
    trace_path = resolve_trace_path(
        str(args.trace) if args.trace is not None else None
    )
    for name, result, elapsed in run_experiments(
        names,
        scale,
        args.jobs,
        trace_path=trace_path,
        batch=args.batch,
        join_block=args.join_block,
    ):
        table = format_result(result)
        print(table)
        print(f"[{name}: {elapsed:.1f}s]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(table + "\n")
    if trace_path is not None:
        print(f"trace written to {trace_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
