"""Experiment definitions for every figure in the paper's evaluation.

Each ``figureN`` function reproduces the corresponding figure of
Section 4 as an :class:`~repro.bench.harness.ExperimentResult` (series of
mean disk-I/Os per query).  The ``ablation_*`` functions go beyond the
paper: strategy shoot-outs, MBR compression, insert policies, and buffer
sensitivity (see DESIGN.md, "Ablations").

Scale is controlled by :class:`ExperimentScale`; the paper's full sizes
(100 k CRM tuples) are available via ``ExperimentScale.paper()`` or
``REPRO_SCALE=paper``, while the default keeps datasets large enough to
show every trend yet fast enough for CI.  Datasets and built indexes are
cached per (kind, size, seed, configuration) within the process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.bench.harness import (
    ExperimentResult,
    IndexUnderTest,
    SeriesPoint,
    measure_point,
)
from repro.core.exceptions import QueryError
from repro.core.relation import UncertainRelation
from repro.datagen.crm import crm1_dataset, crm2_dataset
from repro.datagen.synthetic import (
    gen3_dataset,
    pairwise_dataset,
    uniform_dataset,
    zipf_dataset,
)
from repro.datagen.workload import CalibratedQuery, build_workload
from repro.invindex.index import ProbabilisticInvertedIndex
from repro.pdrtree.tree import PDRTree, PDRTreeConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Dataset/workload sizes for one experiment run."""

    crm_tuples: int
    synth_tuples: int
    queries_per_point: int
    selectivities: tuple[float, ...]
    fig8_sizes: tuple[int, ...]
    fig9_domains: tuple[int, ...]
    fixed_selectivity: float = 0.01
    pool_size: int = 100
    seed: int = 7

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Seconds-per-figure scale for tests and CI."""
        return cls(
            crm_tuples=2_500,
            synth_tuples=3_000,
            queries_per_point=3,
            selectivities=(0.001, 0.01, 0.1),
            fig8_sizes=(1_000, 2_000, 4_000),
            fig9_domains=(10, 50, 100),
        )

    @classmethod
    def default(cls) -> "ExperimentScale":
        """The benchmark default: every paper trend, minutes per figure."""
        return cls(
            crm_tuples=20_000,
            synth_tuples=10_000,
            queries_per_point=8,
            selectivities=(0.0001, 0.001, 0.01, 0.1),
            fig8_sizes=(5_000, 10_000, 20_000, 40_000),
            fig9_domains=(10, 25, 50, 100, 250, 500),
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The paper's sizes (100 k CRM tuples; slow in pure Python)."""
        return cls(
            crm_tuples=100_000,
            synth_tuples=10_000,
            queries_per_point=10,
            selectivities=(0.0001, 0.001, 0.01, 0.1),
            fig8_sizes=(10_000, 25_000, 50_000, 75_000, 100_000),
            fig9_domains=(5, 10, 50, 100, 250, 500),
        )

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Pick a preset from ``REPRO_SCALE`` (quick/default/paper)."""
        name = os.environ.get("REPRO_SCALE", "quick").lower()
        presets = {
            "quick": cls.quick,
            "default": cls.default,
            "paper": cls.paper,
        }
        if name not in presets:
            raise QueryError(
                f"REPRO_SCALE must be one of {sorted(presets)}, got {name!r}"
            )
        return presets[name]()


# ---------------------------------------------------------------------------
# Cached datasets, workloads, and index builds
# ---------------------------------------------------------------------------

@lru_cache(maxsize=32)
def _dataset(kind: str, num_tuples: int, domain_size: int, seed: int) -> UncertainRelation:
    if kind == "crm1":
        return crm1_dataset(num_tuples=num_tuples, seed=seed)
    if kind == "crm2":
        return crm2_dataset(num_tuples=num_tuples, seed=seed)
    if kind == "uniform":
        return uniform_dataset(num_tuples=num_tuples, seed=seed)
    if kind == "pairwise":
        return pairwise_dataset(num_tuples=num_tuples, seed=seed)
    if kind == "gen3":
        return gen3_dataset(
            num_tuples=num_tuples, domain_size=domain_size, seed=seed
        )
    if kind.startswith("zipf"):
        # kind encodes the skew: "zipf1.4" -> exponent 1.4.
        skew = float(kind.removeprefix("zipf"))
        return zipf_dataset(num_tuples=num_tuples, skew=skew, seed=seed)
    raise QueryError(f"unknown dataset kind {kind!r}")


_DatasetKey = tuple[str, int, int, int]


@lru_cache(maxsize=64)
def _workload(
    key: _DatasetKey,
    selectivities: tuple[float, ...],
    queries_per_point: int,
    seed: int,
) -> dict[float, list[CalibratedQuery]]:
    return build_workload(
        _dataset(*key),
        selectivities=selectivities,
        queries_per_point=queries_per_point,
        seed=seed,
    )


@lru_cache(maxsize=32)
def _inverted(key: _DatasetKey) -> ProbabilisticInvertedIndex:
    relation = _dataset(*key)
    index = ProbabilisticInvertedIndex(len(relation.domain))
    index.build(relation)
    return index


@lru_cache(maxsize=32)
def _pdr(
    key: _DatasetKey,
    insert_policy: str = "hybrid",
    split_strategy: str = "bottom_up",
    divergence: str = "kl",
    fold_size: int | None = None,
    bits: int | None = None,
) -> PDRTree:
    relation = _dataset(*key)
    config = PDRTreeConfig(
        insert_policy=insert_policy,
        split_strategy=split_strategy,
        divergence=divergence,
        fold_size=fold_size,
        bits=bits,
    )
    tree = PDRTree(len(relation.domain), config=config)
    tree.build(relation)
    return tree


def clear_caches() -> None:
    """Drop every cached dataset and index (frees memory between runs)."""
    _dataset.cache_clear()
    _workload.cache_clear()
    _inverted.cache_clear()
    _pdr.cache_clear()


def _sweep(
    result: ExperimentResult,
    under_test: IndexUnderTest,
    workload: dict[float, list[CalibratedQuery]],
    kinds: tuple[str, ...],
    pool_size: int,
    suffix: dict[str, str] | None = None,
) -> None:
    """Measure ``under_test`` over a selectivity workload, both kinds."""
    labels = suffix or {"threshold": "Thres", "topk": "TopK"}
    for kind in kinds:
        for selectivity, queries in workload.items():
            point = measure_point(
                under_test,
                queries,
                kind,
                x=selectivity * 100.0,  # percent, like the paper's x-axis
                pool_size=pool_size,
            )
            result.add_point(f"{under_test.name}-{labels[kind]}", point)


# ---------------------------------------------------------------------------
# Figures 4-10
# ---------------------------------------------------------------------------

def figure4(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Figure 4 — L1 vs L2 vs KL as the PDR-tree clustering measure (CRM1).

    Paper finding: for low selectivities KL clearly outperforms L1, which
    outperforms L2; top-k costs a roughly constant factor over threshold.
    """
    scale = scale or ExperimentScale.from_env()
    key = ("crm1", scale.crm_tuples, 0, scale.seed)
    workload = _workload(
        key, scale.selectivities, scale.queries_per_point, scale.seed
    )
    result = ExperimentResult("Figure 4: L1 vs L2 vs KL (PDR-tree, CRM1)", "selectivity %")
    for divergence in ("l1", "l2", "kl"):
        # The figure compares the *similarity measures*, so similarity is
        # the primary insert criterion for these trees.
        tree = _pdr(key, divergence=divergence, insert_policy="most_similar")
        under_test = IndexUnderTest(f"CRM1-{divergence.upper()}", tree)
        _sweep(result, under_test, workload, ("topk", "threshold"), scale.pool_size)
    return result


def _structure_comparison(
    name: str,
    dataset_kinds: tuple[str, ...],
    num_tuples: int,
    scale: ExperimentScale,
) -> ExperimentResult:
    result = ExperimentResult(name, "selectivity %")
    for kind in dataset_kinds:
        key = (kind, num_tuples, 0, scale.seed)
        workload = _workload(
            key, scale.selectivities, scale.queries_per_point, scale.seed
        )
        pretty = kind.capitalize() if not kind.startswith("crm") else kind.upper()
        inverted = IndexUnderTest(f"{pretty}-Inv", _inverted(key), "highest_prob_first")
        pdr = IndexUnderTest(f"{pretty}-PDR", _pdr(key))
        _sweep(result, inverted, workload, ("threshold", "topk"), scale.pool_size)
        _sweep(result, pdr, workload, ("threshold", "topk"), scale.pool_size)
    return result


def figure5(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Figure 5 — inverted index vs PDR-tree on Uniform and Pairwise.

    Paper finding: the PDR-tree wins on Uniform (dense tuples touch many
    lists); the inverted index does much better on Pairwise but the
    PDR-tree still wins.
    """
    scale = scale or ExperimentScale.from_env()
    return _structure_comparison(
        "Figure 5: Inverted Index vs PDR-tree (synthetic)",
        ("uniform", "pairwise"),
        scale.synth_tuples,
        scale,
    )


def figure6(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Figure 6 — inverted index vs PDR-tree on CRM1 (sparse).

    Paper finding: the PDR-tree significantly outperforms the inverted
    index; CRM1 costs are roughly 10x below CRM2's (Figure 7).
    """
    scale = scale or ExperimentScale.from_env()
    return _structure_comparison(
        "Figure 6: Inverted Index vs PDR-tree (CRM1)",
        ("crm1",),
        scale.crm_tuples,
        scale,
    )


def figure7(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Figure 7 — inverted index vs PDR-tree on CRM2 (dense)."""
    scale = scale or ExperimentScale.from_env()
    return _structure_comparison(
        "Figure 7: Inverted Index vs PDR-tree (CRM2)",
        ("crm2",),
        scale.crm_tuples,
        scale,
    )


def figure8(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Figure 8 — scalability with dataset size (CRM2, 10k-100k tuples).

    Paper finding: the inverted index scales linearly with dataset size,
    the PDR-tree sub-linearly.  x is thousands of tuples; queries are
    fixed at ``scale.fixed_selectivity``.
    """
    scale = scale or ExperimentScale.from_env()
    result = ExperimentResult(
        "Figure 8: Scalability with Dataset Size (CRM2)", "tuples (x1000)"
    )
    for num_tuples in scale.fig8_sizes:
        key = ("crm2", num_tuples, 0, scale.seed)
        workload = _workload(
            key, (scale.fixed_selectivity,), scale.queries_per_point, scale.seed
        )
        queries = workload[scale.fixed_selectivity]
        x = num_tuples / 1000.0
        for under_test in (
            IndexUnderTest("CRM2-Inv", _inverted(key), "highest_prob_first"),
            IndexUnderTest("CRM2-PDR", _pdr(key)),
        ):
            for kind, label in (("threshold", "Thres"), ("topk", "TopK")):
                point = measure_point(
                    under_test, queries, kind, x=x, pool_size=scale.pool_size
                )
                result.add_point(f"{under_test.name}-{label}", point)
    return result


def figure9(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Figure 9 — scalability with domain size (Gen3, 5-500 items).

    Paper finding: the inverted index *improves* as the domain grows
    (shorter lists); the PDR-tree rises then falls across the sweep.
    """
    scale = scale or ExperimentScale.from_env()
    result = ExperimentResult(
        "Figure 9: Scalability with Domain Size (Gen3)", "domain size"
    )
    for domain_size in scale.fig9_domains:
        key = ("gen3", scale.synth_tuples, domain_size, scale.seed)
        workload = _workload(
            key, (scale.fixed_selectivity,), scale.queries_per_point, scale.seed
        )
        queries = workload[scale.fixed_selectivity]
        for under_test in (
            IndexUnderTest("Gen3-Inv", _inverted(key), "highest_prob_first"),
            IndexUnderTest("Gen3-PDR", _pdr(key)),
        ):
            for kind, label in (("threshold", "Thres"), ("topk", "TopK")):
                point = measure_point(
                    under_test,
                    queries,
                    kind,
                    x=float(domain_size),
                    pool_size=scale.pool_size,
                )
                result.add_point(f"{under_test.name}-{label}", point)
    return result


def figure10(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Figure 10 — top-down vs bottom-up PDR split (Uniform, threshold).

    Paper finding: bottom-up outperforms top-down, whose seeds suffer
    from outliers.
    """
    scale = scale or ExperimentScale.from_env()
    key = ("uniform", scale.synth_tuples, 0, scale.seed)
    workload = _workload(
        key, scale.selectivities, scale.queries_per_point, scale.seed
    )
    result = ExperimentResult(
        "Figure 10: PDR Split Algorithm (Uniform)", "selectivity %"
    )
    for split in ("top_down", "bottom_up"):
        tree = _pdr(key, split_strategy=split)
        pretty = "TopDown" if split == "top_down" else "BottomUp"
        under_test = IndexUnderTest(f"Uniform-{pretty}", tree)
        _sweep(result, under_test, workload, ("threshold",), scale.pool_size)
    return result


# ---------------------------------------------------------------------------
# Ablations beyond the paper
# ---------------------------------------------------------------------------

def ablation_strategies(scale: ExperimentScale | None = None) -> ExperimentResult:
    """A1 — the five inverted-index search strategies on CRM1."""
    scale = scale or ExperimentScale.from_env()
    key = ("crm1", scale.crm_tuples, 0, scale.seed)
    workload = _workload(
        key, scale.selectivities, scale.queries_per_point, scale.seed
    )
    result = ExperimentResult(
        "Ablation A1: Inverted-Index Search Strategies (CRM1)",
        "selectivity %",
    )
    index = _inverted(key)
    short = {
        "inv_index_search": "Brute",
        "highest_prob_first": "HPF",
        "row_pruning": "Row",
        "column_pruning": "Col",
        "no_random_access": "NRA",
    }
    for strategy, label in short.items():
        under_test = IndexUnderTest(label, index, strategy)
        _sweep(result, under_test, workload, ("threshold", "topk"), scale.pool_size)
    return result


def ablation_compression(scale: ExperimentScale | None = None) -> ExperimentResult:
    """A2 — MBR compression schemes on the largest Gen3 domain.

    Series report query I/O; the tree sizes (pages) are in
    ``extra_info`` printed by the benchmark.
    """
    scale = scale or ExperimentScale.from_env()
    domain_size = max(scale.fig9_domains)
    key = ("gen3", scale.synth_tuples, domain_size, scale.seed)
    workload = _workload(
        key, (scale.fixed_selectivity,), scale.queries_per_point, scale.seed
    )
    queries = workload[scale.fixed_selectivity]
    result = ExperimentResult(
        f"Ablation A2: MBR Compression (Gen3, |D|={domain_size})",
        "scheme (0=raw 1=bits4 2=fold 3=fold+bits2)",
    )
    variants = [
        ("Raw", None, None),
        ("Disc4", None, 4),
        ("Fold", max(8, domain_size // 8), None),
        ("FoldDisc2", max(8, domain_size // 8), 2),
    ]
    for position, (label, fold_size, bits) in enumerate(variants):
        tree = _pdr(key, fold_size=fold_size, bits=bits)
        under_test = IndexUnderTest(label, tree)
        for kind, kind_label in (("threshold", "Thres"), ("topk", "TopK")):
            point = measure_point(
                under_test,
                queries,
                kind,
                x=float(position),
                pool_size=scale.pool_size,
            )
            result.add_point(f"Gen3-{kind_label}-{label}", point)
    return result


def ablation_insert_policy(scale: ExperimentScale | None = None) -> ExperimentResult:
    """A3 — minimum-area vs most-similar vs hybrid insert policy (CRM1)."""
    scale = scale or ExperimentScale.from_env()
    key = ("crm1", scale.crm_tuples, 0, scale.seed)
    workload = _workload(
        key, scale.selectivities, scale.queries_per_point, scale.seed
    )
    result = ExperimentResult(
        "Ablation A3: PDR Insert Policy (CRM1)", "selectivity %"
    )
    for policy in ("min_area", "most_similar", "hybrid"):
        tree = _pdr(key, insert_policy=policy)
        under_test = IndexUnderTest(f"CRM1-{policy}", tree)
        _sweep(result, under_test, workload, ("threshold",), scale.pool_size)
    return result


def ablation_buffer(scale: ExperimentScale | None = None) -> ExperimentResult:
    """A4 — buffer-pool size sensitivity (CRM2; the paper fixes 100)."""
    scale = scale or ExperimentScale.from_env()
    key = ("crm2", scale.crm_tuples, 0, scale.seed)
    workload = _workload(
        key, (scale.fixed_selectivity,), scale.queries_per_point, scale.seed
    )
    queries = workload[scale.fixed_selectivity]
    result = ExperimentResult(
        "Ablation A4: Buffer Pool Size (CRM2)", "buffer frames"
    )
    for pool_size in (10, 25, 50, 100, 200, 400):
        for under_test in (
            IndexUnderTest("CRM2-Inv", _inverted(key), "highest_prob_first"),
            IndexUnderTest("CRM2-PDR", _pdr(key)),
        ):
            point = measure_point(
                under_test,
                queries,
                "threshold",
                x=float(pool_size),
                pool_size=pool_size,
            )
            result.add_point(f"{under_test.name}-Thres", point)
    return result


def ablation_skew(scale: ExperimentScale | None = None) -> ExperimentResult:
    """A5 — item-popularity skew (Zipf) sensitivity of both structures.

    Skewed data concentrates postings in a few hot lists (hurting the
    inverted index's popular-item queries) while giving the PDR-tree
    natural clusters.
    """
    scale = scale or ExperimentScale.from_env()
    result = ExperimentResult(
        "Ablation A5: Item-Popularity Skew (Zipf)", "zipf exponent"
    )
    for skew in (1.1, 1.5, 2.0, 3.0):
        key = (f"zipf{skew}", scale.synth_tuples, 0, scale.seed)
        workload = _workload(
            key, (scale.fixed_selectivity,), scale.queries_per_point, scale.seed
        )
        queries = workload[scale.fixed_selectivity]
        for under_test in (
            IndexUnderTest("Zipf-Inv", _inverted(key), "highest_prob_first"),
            IndexUnderTest("Zipf-PDR", _pdr(key)),
        ):
            point = measure_point(
                under_test,
                queries,
                "threshold",
                x=skew,
                pool_size=scale.pool_size,
            )
            result.add_point(f"{under_test.name}-Thres", point)
    return result


def ablation_join(scale: ExperimentScale | None = None) -> ExperimentResult:
    """A6 — PETJ execution: nested loop vs index-nested-loop.

    Measures total I/O for a self-join of a Uniform sample through each
    access path (the naive inner scan costs nothing in pages here, so
    the interesting comparison is inverted vs PDR probing).
    """
    from repro.exec.join import BlockJoinExecutor, resolve_join_block
    from repro.storage.buffer import BufferPool

    scale = scale or ExperimentScale.from_env()
    block = resolve_join_block()
    sample = min(scale.synth_tuples, 60)  # outer side of the join
    key = ("uniform", scale.synth_tuples, 0, scale.seed)
    relation = _dataset(*key)
    outer = UncertainRelation(relation.domain, name="outer")
    for tid in range(sample):
        outer.append(relation.uda_of(tid))
    result = ExperimentResult(
        f"Ablation A6: PETJ access paths (Uniform, {sample} outer tuples)",
        "join threshold",
    )
    for threshold in (0.2, 0.3, 0.4):
        for name, index in (
            ("Join-Inv", _inverted(key)),
            ("Join-PDR", _pdr(key)),
        ):
            index.pool = BufferPool(index.disk, scale.pool_size)
            # pool_size=None keeps this shared-pool protocol; at the
            # default block size 1 the engine delegates to the legacy
            # per-probe join, so the committed baseline is unchanged.
            engine = BlockJoinExecutor(relation, index, block_size=block)
            before = index.disk.stats.snapshot()
            join = engine.petj(outer, threshold)
            delta = index.disk.stats.delta_since(before)
            result.add_point(
                f"{name}-Thres",
                SeriesPoint(
                    x=threshold,
                    mean_reads=delta.reads / sample,
                    num_queries=sample,
                    mean_result_size=len(join) / sample,
                    total_checksum_failures=delta.checksum_failures,
                    total_faults_injected=delta.faults_injected,
                    # The merged per-probe work counters the join used to
                    # drop (kept out of mean_reads_by_tag, whose committed
                    # baseline for this experiment is empty).
                    probe_stats={
                        "num_probes": join.num_probes,
                        "candidates_examined": join.stats.candidates_examined,
                        "entries_scanned": join.stats.entries_scanned,
                        "nodes_visited": join.stats.nodes_visited,
                        "random_accesses": join.stats.random_accesses,
                    },
                ),
            )
    return result


#: Every experiment by id, for harness drivers and docs.
ALL_EXPERIMENTS = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "abl_strategies": ablation_strategies,
    "abl_compression": ablation_compression,
    "abl_insert_policy": ablation_insert_policy,
    "abl_buffer": ablation_buffer,
    "abl_skew": ablation_skew,
    "abl_join": ablation_join,
}
