"""Measurement harness: disk I/Os per query under per-query buffering.

Reproduces the paper's measurement protocol (Section 4): every query runs
against a freshly allocated clock-replacement buffer pool of 100 blocks,
and the reported number is the physical page *reads* the query incurs
(writes never happen during read-only queries).

An :class:`IndexUnderTest` adapts the two index structures (and the naive
full-scan baseline) to one uniform "execute a query descriptor" surface so
experiments can sweep structure x strategy x query kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from repro.core.exceptions import QueryError
from repro.core.queries import Query
from repro.core.results import QueryResult
from repro.datagen.workload import CalibratedQuery
from repro.invindex.index import ProbabilisticInvertedIndex
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS, hit_rate
from repro.pdrtree.tree import PDRTree
from repro.storage.buffer import DEFAULT_POOL_SIZE, BufferPool


@dataclass
class IndexUnderTest:
    """A measurable index: structure plus fixed execution options."""

    name: str
    index: ProbabilisticInvertedIndex | PDRTree
    strategy: str | None = None  # inverted-index search strategy

    def execute(self, query: Query) -> QueryResult:
        if isinstance(self.index, ProbabilisticInvertedIndex):
            return self.index.execute(
                query, strategy=self.strategy or "highest_prob_first"
            )
        if self.strategy is not None:
            raise QueryError("PDR-tree takes no search strategy")
        return self.index.execute(query)


@dataclass
class Measurement:
    """One measured query execution."""

    reads: int
    result_size: int
    #: Physical reads attributed per component ("postings", "tuples",
    #: "pdr-node", ...) — the breakdown behind the total.
    reads_by_tag: dict[str, int] = field(default_factory=dict)
    #: Buffer-pool fetch counters for the query's fresh pool, sourced from
    #: the :data:`repro.obs.metrics.METRICS` delta over the execution.
    #: Wall-clock telemetry only; the I/O numbers above are the paper's
    #: metric.
    pool_hits: int = 0
    pool_misses: int = 0
    #: Decoded-object cache counters (see repro.storage.cache).
    decoded_hits: int = 0
    decoded_misses: int = 0
    #: Fault-tolerance telemetry (zero unless REPRO_FAULT_* injection is
    #: active; failed read attempts are never counted in ``reads``).
    checksum_failures: int = 0
    retries: int = 0
    faults_injected: int = 0
    #: The full metrics delta of this query execution — the per-kind
    #: event histogram the trace of the same execution would show.
    metrics: dict[str, int] = field(default_factory=dict)
    #: Why the executor stopped consuming input (None for executors
    #: without an early-stop decision; see ``QueryStats.stop_reason``).
    stop_reason: str | None = None

    @property
    def pool_hit_rate(self) -> float:
        """Zero-safe pool hit ratio (0.0 when the query fetched nothing)."""
        return hit_rate(self.pool_hits, self.pool_misses)

    @property
    def decoded_hit_rate(self) -> float:
        """Zero-safe decoded-cache hit ratio (0.0 with no lookups)."""
        return hit_rate(self.decoded_hits, self.decoded_misses)


@dataclass
class SeriesPoint:
    """One x-position of one series: mean I/O over its queries."""

    x: float
    mean_reads: float
    num_queries: int
    mean_result_size: float
    #: Mean per-tag read breakdown over the point's queries.
    mean_reads_by_tag: dict[str, float] = field(default_factory=dict)
    #: Mean cache telemetry (wall-clock side; not part of the I/O model).
    mean_pool_hit_rate: float = 0.0
    mean_decoded_hit_rate: float = 0.0
    #: Fault-tolerance telemetry summed over the point's queries (zero
    #: without injection, so deterministic benchmark fields are unchanged).
    total_checksum_failures: int = 0
    total_retries: int = 0
    total_faults_injected: int = 0
    #: Merged inner-probe work counters for join experiments (empty for
    #: plain select experiments).
    probe_stats: dict[str, int] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """A named set of series, each a list of (x, mean I/O) points."""

    name: str
    x_label: str
    y_label: str = "disk I/Os per query"
    series: dict[str, list[SeriesPoint]] = field(default_factory=dict)

    def add_point(self, series_name: str, point: SeriesPoint) -> None:
        self.series.setdefault(series_name, []).append(point)

    def series_values(self, series_name: str) -> list[float]:
        """Mean-I/O values of one series in x order."""
        points = sorted(self.series[series_name], key=lambda p: p.x)
        return [p.mean_reads for p in points]

    def xs(self) -> list[float]:
        """Sorted union of x positions across series."""
        positions = {
            point.x for points in self.series.values() for point in points
        }
        return sorted(positions)


def measure_query(
    under_test: IndexUnderTest,
    query: Query,
    pool_size: int = DEFAULT_POOL_SIZE,
) -> Measurement:
    """Run one query with a fresh buffer pool; return its physical reads.

    Observability: the measurement is scoped *after* the pool swap (the
    old pool's flush is setup cost, not query cost) — the
    :data:`~repro.obs.metrics.METRICS` snapshot taken here makes the
    returned :attr:`Measurement.metrics` delta exactly this query's event
    histogram.  Under a benchmark run with ``--trace``, the installed
    :class:`~repro.obs.trace.BenchCollector`'s tracer is activated around
    ``execute`` only, so index builds and dataset generation (which may
    be skipped by per-process caches) never appear in the trace.
    """
    index = under_test.index
    pool = BufferPool(index.disk, pool_size)
    index.pool = pool
    collector = _trace.BENCH_COLLECTOR
    tracer = _trace.ACTIVE
    bench_tracer = None
    if tracer is None and collector is not None:
        bench_tracer = collector.tracer
    emit = tracer if tracer is not None else bench_tracer
    metrics_before = METRICS.snapshot()
    before = index.disk.stats.snapshot()
    tags_before = index.disk.snapshot_tags()
    if emit is not None:
        emit.event(
            "measure.begin",
            index=under_test.name,
            query=type(query).__name__,
            pool_size=pool_size,
            backend=index.disk.backend.name,
        )
    if bench_tracer is not None:
        with _trace.tracing(bench_tracer):
            result = under_test.execute(query)
    else:
        result = under_test.execute(query)
    delta = index.disk.stats.delta_since(before)
    metrics_delta = METRICS.delta_since(metrics_before)
    if emit is not None:
        emit.event(
            "measure.end",
            index=under_test.name,
            reads=delta.reads,
            matches=len(result),
        )
    if collector is not None:
        collector.metrics.merge(metrics_delta)
    tags_after = index.disk.snapshot_tags()
    breakdown = {
        tag: tags_after[tag] - tags_before.get(tag, 0)
        for tag in tags_after
        if tags_after[tag] != tags_before.get(tag, 0)
    }
    return Measurement(
        reads=delta.reads,
        result_size=len(result),
        reads_by_tag=breakdown,
        pool_hits=metrics_delta.get("pool.hit", 0),
        pool_misses=metrics_delta.get("pool.miss", 0),
        decoded_hits=metrics_delta.get("decoded.hit", 0),
        decoded_misses=metrics_delta.get("decoded.miss", 0),
        checksum_failures=delta.checksum_failures,
        retries=pool.retries,
        faults_injected=delta.faults_injected,
        metrics=metrics_delta,
        stop_reason=result.stats.stop_reason,
    )


def measure_point(
    under_test: IndexUnderTest,
    queries: list[CalibratedQuery],
    kind: str,
    x: float,
    pool_size: int = DEFAULT_POOL_SIZE,
    batch_size: int | None = None,
) -> SeriesPoint:
    """Mean I/O of one workload point (one selectivity, one query kind).

    ``kind`` is ``"threshold"`` (PETQ) or ``"topk"`` (PEQ-top-k).

    ``batch_size`` selects the execution protocol (``None`` consults
    ``REPRO_BATCH`` via :func:`repro.exec.resolve_batch`): 1 is the
    paper's per-query regime — fresh pool per query — and larger values
    run the point through :class:`~repro.exec.BatchExecutor`, amortizing
    each batch's pool across its queries (answers identical, reads
    lower; see ``docs/batch-execution.md``).
    """
    from repro.exec import resolve_batch

    if kind not in ("threshold", "topk"):
        raise QueryError(f"kind must be threshold or topk, got {kind!r}")
    query_list: list[Query] = [
        calibrated.threshold_query()
        if kind == "threshold"
        else calibrated.top_k_query()
        for calibrated in queries
    ]
    batch = resolve_batch(batch_size)
    if batch > 1:
        return _measure_point_batched(
            under_test, query_list, x, pool_size, batch
        )
    measurements = []
    for query in query_list:
        measurements.append(measure_query(under_test, query, pool_size))
    tags = sorted({tag for m in measurements for tag in m.reads_by_tag})
    return SeriesPoint(
        x=x,
        mean_reads=mean(m.reads for m in measurements),
        num_queries=len(measurements),
        mean_result_size=mean(m.result_size for m in measurements),
        mean_reads_by_tag={
            tag: mean(m.reads_by_tag.get(tag, 0) for m in measurements)
            for tag in tags
        },
        mean_pool_hit_rate=mean(m.pool_hit_rate for m in measurements),
        mean_decoded_hit_rate=mean(m.decoded_hit_rate for m in measurements),
        total_checksum_failures=sum(m.checksum_failures for m in measurements),
        total_retries=sum(m.retries for m in measurements),
        total_faults_injected=sum(m.faults_injected for m in measurements),
    )


def _measure_point_batched(
    under_test: IndexUnderTest,
    query_list: list[Query],
    x: float,
    pool_size: int,
    batch: int,
) -> SeriesPoint:
    """One workload point through the batch executor.

    The observability scoping mirrors :func:`measure_query`, but around
    the whole point: one METRICS / disk-stats / tag delta covers every
    batch, and per-query read attribution is deliberately not attempted
    (pools are shared within a batch, so a page read "belongs" to the
    whole batch; the point reports the amortized mean).
    """
    from repro.exec import BatchExecutor

    index = under_test.index
    executor = BatchExecutor(
        index,
        strategy=under_test.strategy
        if isinstance(index, ProbabilisticInvertedIndex)
        else None,
        pool_size=pool_size,
        batch_size=batch,
    )
    collector = _trace.BENCH_COLLECTOR
    tracer = _trace.ACTIVE
    bench_tracer = None
    if tracer is None and collector is not None:
        bench_tracer = collector.tracer
    metrics_before = METRICS.snapshot()
    before = index.disk.stats.snapshot()
    tags_before = index.disk.snapshot_tags()
    if bench_tracer is not None:
        with _trace.tracing(bench_tracer):
            results = executor.run(query_list)
    else:
        results = executor.run(query_list)
    delta = index.disk.stats.delta_since(before)
    metrics_delta = METRICS.delta_since(metrics_before)
    if collector is not None:
        collector.metrics.merge(metrics_delta)
    tags_after = index.disk.snapshot_tags()
    n = len(query_list)
    return SeriesPoint(
        x=x,
        mean_reads=delta.reads / n,
        num_queries=n,
        mean_result_size=mean(len(result) for result in results),
        mean_reads_by_tag={
            tag: (tags_after[tag] - tags_before.get(tag, 0)) / n
            for tag in tags_after
            if tags_after[tag] != tags_before.get(tag, 0)
        },
        mean_pool_hit_rate=hit_rate(
            metrics_delta.get("pool.hit", 0), metrics_delta.get("pool.miss", 0)
        ),
        mean_decoded_hit_rate=hit_rate(
            metrics_delta.get("decoded.hit", 0),
            metrics_delta.get("decoded.miss", 0),
        ),
        total_checksum_failures=delta.checksum_failures,
        total_retries=metrics_delta.get("pool.retry", 0),
        total_faults_injected=delta.faults_injected,
    )
